#!/usr/bin/env python
"""The CUDA-by-Example spin lock bug (Sec. 3.2.2, Figs. 2 and 9).

Nvidia's own textbook shipped a spin lock with no fences; the paper shows
a critical section protected by it can read stale values, and the
dot-product client computes wrong answers.  Nvidia published an erratum.

This example runs the *published* and the *fixed* lock in a dot-product
client on several simulated chips, then confirms the distilled litmus
test (cas-sl) agrees with the axiomatic model.
"""

from repro.apps import cuda_by_example_lock, dot_product, stuart_owens_lock
from repro.harness import run_paper_config
from repro.litmus import library
from repro.model.models import ptx_model

#: Stress stands in for the paper's incantations: the bug fires at
#: 47-748 per 100k on hardware, so we boost the relaxation intents.
STRESS = 100.0


def main():
    print("dot product under the CUDA-by-Example lock (Fig. 2)")
    print("%-8s %-22s %-s" % ("chip", "published (no fences)", "with fences"))
    for chip in ["TesC", "Titan", "GTX7", "HD6570", "HD7970"]:
        wrong, runs = dot_product(chip, cuda_by_example_lock, fenced=False,
                                  runs=400, seed=1, intensity=STRESS)
        fixed, _ = dot_product(chip, cuda_by_example_lock, fenced=True,
                               runs=400, seed=1, intensity=STRESS)
        print("%-8s %4d/%d wrong sums      %d wrong"
              % (chip, wrong, runs, fixed))

    print()
    print("Stuart-Owens: atomicExch is not a fence either")
    wrong, runs = dot_product("Titan", stuart_owens_lock, fenced=False,
                              runs=400, seed=2, intensity=STRESS)
    print("  exchange lock, no fences: %d/%d wrong sums" % (wrong, runs))

    print()
    print("the distilled litmus test (cas-sl, Fig. 9):")
    test = library.build("cas-sl")
    result = run_paper_config(test, "Titan", iterations=20000, seed=7)
    print("  %s" % result.summary())
    print("  paper observed 512/100k on the GTX Titan")
    model = ptx_model()
    print("  PTX model: %s (and %s once membar.gl fences are added)"
          % ("Allowed" if model.allows_condition(test) else "Forbidden",
             "Allowed" if model.allows_condition(
                 library.build("cas-sl+membar.gls")) else "Forbidden"))


if __name__ == "__main__":
    main()
