#!/usr/bin/env python
"""The published spin-lock bugs (Sec. 3.2.2-3.2.3, Figs. 2 and 10).

Nvidia's own textbook shipped a spin lock with no fences; the paper shows
a critical section protected by it can read stale values, and the
dot-product client computes wrong answers.  Nvidia published an erratum.

This example runs the whole spin-lock slice of the scenario registry —
the CUDA by Example, Stuart-Owens and He-Yu locks at both placements,
the He-Yu isolation violation and the ticket-lock counter, published and
fixed variants side by side — as *one* app campaign through the sharded,
memoising session (the same pipeline `repro-litmus app` drives), then
confirms the distilled litmus test (cas-sl) agrees with the axiomatic
model.
"""

from repro.apps import run_app_campaign, select_scenarios
from repro.harness import run_paper_config
from repro.litmus import library
from repro.model.models import ptx_model

#: Intensity stands in for the paper's incantations: the bugs fire at
#: 47-748 per 100k on hardware, so we boost the relaxation intents.
STRESS = 100.0


def main():
    print("spin-lock scenarios under stress (losses per 100k launches):")
    scenarios = select_scenarios(
        ["dot-cbe", "dot-cbe-cta", "dot-so", "dot-so-cta", "dot-heyu",
         "dot-heyu-cta", "isolation", "ticket"])
    campaign = run_app_campaign(
        scenarios, ["TesC", "Titan", "GTX7", "HD7970"],
        runs=400, seed=1, intensity=STRESS)
    print(campaign.summary_table())
    print(campaign.summary())
    fenced_losses = [key for key in campaign.weak_cells()
                     if key[0].endswith("+fenced")]
    assert not fenced_losses, fenced_losses
    print("every +fenced variant stayed clean; the published variants "
          "lose on the weak chips")

    print()
    print("the distilled litmus test (cas-sl, Fig. 9):")
    test = library.build("cas-sl")
    result = run_paper_config(test, "Titan", iterations=20000, seed=7)
    print("  %s" % result.summary())
    print("  paper observed 512/100k on the GTX Titan")
    model = ptx_model()
    print("  PTX model: %s (and %s once membar.gl fences are added)"
          % ("Allowed" if model.allows_condition(test) else "Forbidden",
             "Allowed" if model.allows_condition(
                 library.build("cas-sl+membar.gls")) else "Forbidden"))


if __name__ == "__main__":
    main()
