#!/usr/bin/env python
"""Guarding litmus tests against the compiler (Secs. 4.4-4.5).

A litmus result is only meaningful if the compiled code still *is* the
test.  This example shows the three compiler hazards the paper documents
and the defences against them:

1. the CUDA 5.5 assembler reordering volatile loads — caught by optcheck;
2. ``ptxas -O3`` deleting the classic xor false-dependency — avoided by
   the and-with-high-bit scheme of Fig. 13(b);
3. the AMD OpenCL backends removing fences (GCN 1.0) and reordering a
   load past a CAS (TeraScale 2).
"""

from repro.compiler import (FENCE_REMOVED, LOAD_CAS_REORDERED, assemble,
                            compile_opencl_thread, cuobjdump,
                            dependent_load_pair, optcheck,
                            sass_address_dependency_intact)
from repro.errors import OptcheckViolation
from repro.litmus import library
from repro.ptx import Addr, Ld, Loc, Reg
from repro.ptx.program import ThreadProgram
from repro.ptx.types import Scope


def main():
    # 1. optcheck vs the CUDA 5.5 volatile-load reordering.
    two_volatile_loads = ThreadProgram(0, [
        Ld(Reg("r1"), Addr(Loc("x")), volatile=True),
        Ld(Reg("r2"), Addr(Loc("x")), volatile=True),
    ])
    caught = 0
    for seed in range(20):
        try:
            optcheck(two_volatile_loads, cuda_version="5.5", seed=seed)
        except OptcheckViolation:
            caught += 1
    print("optcheck vs CUDA 5.5: caught the volatile reorder in %d/20 "
          "schedules (CUDA 6.0: 0/20)" % caught)
    for seed in range(20):
        optcheck(two_volatile_loads, cuda_version="6.0", seed=seed)

    # 2. Manufactured dependencies under -O3 (Fig. 13).
    print()
    for scheme in ("xor", "and"):
        instructions, _ = dependent_load_pair("x", "y", scheme=scheme)
        sass = assemble(ThreadProgram(0, instructions), "-O3")
        intact = sass_address_dependency_intact(sass)
        print("Fig. 13(%s) %s scheme: dependency %s after -O3"
              % ("a" if scheme == "xor" else "b", scheme,
                 "intact" if intact else "OPTIMISED AWAY"))
    print()
    print("disassembly of the surviving chain:")
    instructions, _ = dependent_load_pair("x", "y", scheme="and")
    print(cuobjdump(assemble(ThreadProgram(0, instructions), "-O3")))

    # 3. The AMD backends.
    print()
    fenced_mp = library.mp(fence0=Scope.GL, fence1=Scope.GL)
    gcn = compile_opencl_thread(fenced_mp.threads[1], "GCN 1.0")
    print("GCN 1.0 compiles the fenced mp reader to:")
    print(gcn.isa_text)
    assert FENCE_REMOVED in gcn.transformations
    print("-> the fence between the loads is gone: fenced mp stays weak "
          "on the HD 7970 (Sec. 3.1.2)")

    print()
    dlb = library.build("dlb-lb")
    evergreen = compile_opencl_thread(dlb.threads[1], "TeraScale 2")
    assert LOAD_CAS_REORDERED in evergreen.transformations
    print("TeraScale 2 reorders dlb-lb's load past the CAS: %s"
          % evergreen.transformations)
    print("-> the HD 6570 column of Fig. 8 is therefore n/a")


if __name__ == "__main__":
    main()
