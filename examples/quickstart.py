#!/usr/bin/env python
"""Quickstart: write a litmus test, run it on a simulated GPU, and check
it against the paper's axiomatic PTX model.

This walks the paper's core loop (Sec. 4-5): a litmus test probes a
hardware guarantee; the harness runs it 100k times under incantations;
the model says whether the observed behaviour is allowed.
"""

from repro.harness import run_paper_config
from repro.litmus import parse_litmus
from repro.model.models import ptx_model, sc_model

# The message-passing idiom (Fig. 14): T0 publishes data (x) then a flag
# (y); T1 reads the flag then the data.  Can T1 see the flag but stale
# data?  On a GPU with no fences: yes.
MP = r"""
GPU_PTX mp-example
{ 0:.reg .s32 r0; 1:.reg .s32 r1; 1:.reg .s32 r2; }
 T0                | T1                ;
 st.cg.s32 [x], 1  | ld.cg.s32 r1, [y] ;
 st.cg.s32 [y], 1  | ld.cg.s32 r2, [x] ;
ScopeTree (grid (cta (warp T0)) (cta (warp T1)))
exists (1:r1=1 /\ 1:r2=0)
"""


def main():
    test = parse_litmus(MP)
    print(test)

    # 1. Run on a simulated GTX Titan under the paper's most effective
    #    incantations (Sec. 4.3).  The weak outcome shows up at a rate
    #    comparable to the paper's Table 6 mp row.
    result = run_paper_config(test, "Titan", iterations=20000, seed=42)
    print(result.histogram.pretty(test.condition))
    print(result.summary())
    print()

    # 2. Ask the models.  The paper's PTX model (RMO per scope) allows
    #    the weak outcome; sequential consistency forbids it.
    for model in (ptx_model(), sc_model()):
        verdict = "Allowed" if model.allows_condition(test) else "Forbidden"
        print("%-4s model: %s" % (model.name, verdict))

    # 3. The fix: membar.gl fences between the accesses.  Re-run and
    #    re-check — the weak outcome disappears and the model forbids it.
    from repro.litmus import library
    from repro.ptx.types import Scope
    fixed = library.mp(fence0=Scope.GL, fence1=Scope.GL)
    fixed_result = run_paper_config(fixed, "Titan", iterations=20000, seed=42)
    print()
    print("with membar.gl fences: %d weak outcomes in %d runs; model: %s"
          % (fixed_result.observations, fixed_result.iterations,
             "Allowed" if ptx_model().allows_condition(fixed) else "Forbidden"))


if __name__ == "__main__":
    main()
