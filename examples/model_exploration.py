#!/usr/bin/env python
"""Exploring the axiomatic PTX model (Sec. 5) herd-style.

Enumerate the candidate executions of a litmus test, dump the Fig. 14
execution graph of the weak candidate, see which model check kills it (or
does not), and generate a fresh family of tests with diy to compare the
PTX model against SC, TSO and plain RMO.
"""

from repro.diy import default_pool, generate_tests
from repro.litmus import library
from repro.model.enumerate import enumerate_executions
from repro.model.models import ptx_model, rmo_model, sc_model, tso_model
from repro.ptx.types import Scope


def main():
    ptx = ptx_model()

    # 1. Fig. 14: the intra-CTA mp with membar.cta / membar.gl fences.
    test = library.build("mp-fig14")
    print("candidate executions of %s:" % test.name)
    for execution in enumerate_executions(test):
        weak = test.condition.holds(execution.final_state)
        allowed = ptx.allows(execution)
        print("  final %-30s %s%s"
              % (execution.final_state,
                 "allowed" if allowed else "FORBIDDEN",
                 "   <- the weak candidate" if weak else ""))
        if weak:
            print()
            print(execution.pretty())
            for failure in ptx.failed_checks(execution):
                print("  killed by: %s (cycle of %d events)"
                      % (failure.name, len(failure.cycle)))
            print()

    # 2. The same cycle inter-CTA: membar.cta no longer helps — the
    #    cta-constraint only applies within a CTA (Sec. 5.3).
    inter = library.mp(fence0=Scope.CTA, fence1=Scope.CTA,
                       placement="inter-cta")
    print("inter-CTA mp+membar.ctas: %s by the PTX model"
          % ("Allowed" if ptx.allows_condition(inter) else "Forbidden"))

    # 3. Model comparison over a diy-generated family.
    print()
    print("diy family: PTX vs SC vs TSO vs unscoped RMO")
    models = [sc_model(), tso_model(), rmo_model(), ptx]
    tests = generate_tests(default_pool(fences=(Scope.GL,)), max_length=4,
                           max_tests=60)
    counts = {model.name: 0 for model in models}
    for test in tests:
        for model in models:
            if model.allows_condition(test):
                counts[model.name] += 1
    for model in models:
        print("  %-4s allows the weak outcome of %2d / %d generated tests"
              % (model.name, counts[model.name], len(tests)))
    print("(weak-to-strong: sc <= tso <= rmo <= ptx)")


if __name__ == "__main__":
    main()
