#!/usr/bin/env python
"""The work-stealing deque bugs (Sec. 3.2.1, Figs. 6-8).

The Cederman-Tsigas deque from GPU Computing Gems uses no fences.  Two
weak behaviours each make it lose a task:

* a steal can see the new ``tail`` but read a stale task (mp shape);
* a steal can read a *later* push while the pop's CAS observes the steal
  (lb shape).

This example reproduces both on simulated chips and shows the paper's
fences fixing them, then cross-checks the distilled litmus tests — and
demonstrates the TeraScale 2 *compiler* bug that invalidated dlb-lb on
the HD 6570 (the "n/a" in Fig. 8).
"""

from repro.apps import lb_scenario, mp_scenario
from repro.compiler import LOAD_CAS_REORDERED, effective_litmus
from repro.harness import run_paper_config
from repro.litmus import library

STRESS = 100.0


def main():
    print("deque scenarios on simulated chips (under stress):")
    for chip in ["TesC", "Titan", "GTX7", "HD7970"]:
        mp_lost, runs = mp_scenario(chip, fenced=False, runs=400, seed=1,
                                    intensity=STRESS)
        lb_lost, _ = lb_scenario(chip, fenced=False, runs=400, seed=1,
                                 intensity=STRESS)
        mp_fixed, _ = mp_scenario(chip, fenced=True, runs=400, seed=1,
                                  intensity=STRESS)
        lb_fixed, _ = lb_scenario(chip, fenced=True, runs=400, seed=1,
                                  intensity=STRESS)
        print("  %-7s lost tasks: mp %3d/%d, lb %3d/%d; with fences: %d, %d"
              % (chip, mp_lost, runs, lb_lost, runs, mp_fixed, lb_fixed))

    print()
    print("distilled litmus tests (paper rates per 100k: dlb-mp Titan 65,")
    print("dlb-lb Titan 2292, dlb-lb HD7970 13591):")
    for name, chip in [("dlb-mp", "Titan"), ("dlb-lb", "Titan"),
                       ("dlb-lb", "HD7970")]:
        result = run_paper_config(library.build(name), chip,
                                  iterations=20000, seed=3)
        print("  %s" % result.summary())

    print()
    print("the TeraScale 2 compiler bug (Fig. 8's n/a):")
    effective, transformations, valid = effective_litmus(
        library.build("dlb-lb"), "TeraScale 2")
    print("  compiling dlb-lb for Evergreen applies: %s" % transformations)
    print("  test valid after compilation: %s  -> reported n/a, as in Fig. 8"
          % valid)
    assert LOAD_CAS_REORDERED in transformations


if __name__ == "__main__":
    main()
