#!/usr/bin/env python
"""The work-stealing deque bugs (Sec. 3.2.1, Figs. 6-8).

The Cederman-Tsigas deque from GPU Computing Gems uses no fences.  Two
weak behaviours each make it lose a task:

* a steal can see the new ``tail`` but read a stale task (mp shape);
* a steal can read a *later* push while the pop's CAS observes the steal
  (lb shape).

This example runs the deque slice of the scenario registry — the mp and
lb distillations plus the two-slot round trip, published and fenced —
as one app campaign across chips (parallel shards, memoised cells),
cross-checks the distilled litmus tests, and demonstrates the
TeraScale 2 *compiler* bug that invalidated dlb-lb on the HD 6570 (the
"n/a" in Fig. 8).
"""

from repro.apps import run_app_campaign, select_scenarios
from repro.compiler import LOAD_CAS_REORDERED, effective_litmus
from repro.harness import run_paper_config
from repro.litmus import library

STRESS = 100.0


def main():
    print("deque scenarios under stress (losses per 100k launches):")
    campaign = run_app_campaign(
        select_scenarios(["deque-mp", "deque-lb", "deque-rt"]),
        ["TesC", "Titan", "GTX7", "HD7970"],
        runs=400, seed=1, intensity=STRESS, jobs=2)
    print(campaign.summary_table())
    print(campaign.summary())
    fenced_losses = [key for key in campaign.weak_cells()
                     if key[0].endswith("+fenced")]
    assert not fenced_losses, fenced_losses
    print("the paper's fences fix every variant, including the round trip")

    print()
    print("distilled litmus tests (paper rates per 100k: dlb-mp Titan 65,")
    print("dlb-lb Titan 2292, dlb-lb HD7970 13591):")
    for name, chip in [("dlb-mp", "Titan"), ("dlb-lb", "Titan"),
                       ("dlb-lb", "HD7970")]:
        result = run_paper_config(library.build(name), chip,
                                  iterations=20000, seed=3)
        print("  %s" % result.summary())

    print()
    print("the TeraScale 2 compiler bug (Fig. 8's n/a):")
    effective, transformations, valid = effective_litmus(
        library.build("dlb-lb"), "TeraScale 2")
    print("  compiling dlb-lb for Evergreen applies: %s" % transformations)
    print("  test valid after compilation: %s  -> reported n/a, as in Fig. 8"
          % valid)
    assert LOAD_CAS_REORDERED in transformations


if __name__ == "__main__":
    main()
