"""Pruning harness for the exhaustive explorer (``BENCH_exhaust.json``).

Unlike its engine/model/app siblings this bench's headline metric is not
wall-clock but *transitions explored*: per cell of a pinned corpus it
runs :func:`~repro.exhaustive.explore.explore_test` twice — once with
persistent-set/sleep-set DPOR and once with naive full interleaving
enumeration — and records the reduction factor alongside the soundness
contract (both strategies must reach the *identical* final-state set;
a perf number from a diverged pruned exploration would be meaningless).

The corpus mixes the two regimes the explorer lives in:

* **application scenarios** on a weak chip (Titan), where every thread
  holds several co-enabled reorderable ops (issue order is itself a
  relaxation choice, so DPOR's persistent sets seed dependence
  clusters and the reduction is modest);
* **litmus cells with independent work** — iriw and ``mp-padN``
  (message passing behind N private stores per thread) — where
  commuting transitions dominate and the reduction grows
  combinatorially; GTX280 (in-order, the paper's SC-like control)
  isolates the scheduler-interleaving space from the relaxation space.

Schema v2 adds the parallel dimension.  *DPOR-only* cells (wide windows
whose naive enumeration is intractable — exactly the cells branch
sharding exists for) skip the naive leg and instead measure the
sharded exploration: a ``jobs=workers`` process-pool session per cell
records ``parallel_seconds``/``wall_speedup`` (machine-dependent,
advisory — a single-core CI runner shows ~1x) and ``balance_speedup``,
the deterministic load-balance bound of the branch partition at
``workers`` workers (LPT makespan over per-branch transition counts).
``balance_speedup`` is exact arithmetic over exact counts, so
``bench_compare.py`` diffs it across machines like the reduction
columns; wall numbers are excluded there like any other timing.

``benchmarks/bench_perf_exhaust.py`` emits the report; CI runs the tiny
corpus as part of perf-smoke and diffs it against the checked-in
baseline via ``bench_compare.py``.
"""

import heapq
import json
import math
import time
from dataclasses import asdict, dataclass

from ..errors import ReproError
from ..exhaustive.explore import (DEFAULT_LOOP_BOUND, Explorer, explore_test)

#: The pinned exhaust corpus: ``(kind, name, chip)`` cells, where kind
#: is ``scenario`` (registry name) or ``litmus`` (see
#: :func:`exhaust_corpus_test`).
EXHAUST_PINNED_CORPUS = (
    ("scenario", "deque-mp", "Titan"),
    ("scenario", "deque-mp+fenced", "Titan"),
    ("scenario", "isolation", "Titan"),
    ("scenario", "ticket", "Titan"),
    ("scenario", "ticket+fenced", "Titan"),
    ("litmus", "iriw", "GTX280"),
    ("litmus", "iriw", "Titan"),
    ("litmus", "mp-pad2", "Titan"),
    ("litmus", "mp-pad4", "GTX280"),
    ("litmus", "mp-pad6", "GTX280"),
    ("litmus", "mp-pad4", "Titan"),
    ("litmus", "mp-pad8-3t", "Titan"),
    ("litmus", "mp-pad12-3t", "Titan"),
)

#: CI-sized subset for the perf-smoke job.  ``mp-pad4`` on Titan is the
#: cell the ISSUE-10 rework exists for (it exceeded the 2M-transition
#: budget before intra-thread independence): keeping it here makes
#: every CI run a budget gate.
EXHAUST_TINY_CORPUS = (
    ("scenario", "deque-mp", "Titan"),
    ("scenario", "ticket+fenced", "Titan"),
    ("litmus", "iriw", "GTX280"),
    ("litmus", "mp-pad4", "GTX280"),
    ("litmus", "mp-pad4", "Titan"),
)

#: Cells whose naive enumeration is intractable (wide weak-chip
#: windows): the bench skips their naive leg and measures the parallel
#: sharding instead.  These are the "widest cells" of the corpus — the
#: ones the ISSUE-10 acceptance bounds (balance >= 2.5x at 4 workers).
EXHAUST_DPOR_ONLY = frozenset((
    ("litmus", "mp-pad4", "Titan"),
    ("litmus", "mp-pad8-3t", "Titan"),
    ("litmus", "mp-pad12-3t", "Titan"),
))

#: Worker count for the parallel leg (and the balance bound).
DEFAULT_WORKERS = 4

_EXHAUST_CORPORA = {"pinned": EXHAUST_PINNED_CORPUS,
                    "tiny": EXHAUST_TINY_CORPUS}


def exhaust_corpus_by_name(name):
    """Resolve an exhaust corpus name (``pinned``/``tiny``) to cells."""
    try:
        return _EXHAUST_CORPORA[name]
    except KeyError:
        raise ReproError("unknown exhaust perf corpus %r (expected %s)"
                         % (name, "/".join(sorted(_EXHAUST_CORPORA)))
                         ) from None


def padded_mp(pads, threads=2):
    """Message passing behind ``pads`` private stores per thread.

    The private locations (``a0..``, ``b0..``, ``c0..``) make most
    cross-thread transition pairs commute — the regime DPOR exists for —
    while the mp core (flag ``y`` publishing ``x``) keeps a weak outcome
    for the differential oracles to agree on.  ``threads=3`` adds a
    third thread of pure private stores.
    """
    from ..litmus import parse_litmus
    cols = [
        ["st.cg.s32 [a%d], 1" % i for i in range(pads)]
        + ["st.cg.s32 [x], 1", "st.cg.s32 [y], 1"],
        ["st.cg.s32 [b%d], 1" % i for i in range(pads)]
        + ["ld.cg.s32 r0, [y]", "ld.cg.s32 r1, [x]"],
    ]
    if threads == 3:
        cols.append(["st.cg.s32 [c%d], 1" % i for i in range(pads)])
    height = max(len(col) for col in cols)
    for col in cols:
        col += [""] * (height - len(col))
    rows = "\n".join(" " + " | ".join(row) + " ;" for row in zip(*cols))
    header = " | ".join("T%d" % i for i in range(len(cols)))
    tree = " ".join("(cta (warp T%d))" % i for i in range(len(cols)))
    name = "mp-pad%d" % pads if threads == 2 else "mp-pad%d-%dt" % (pads,
                                                                    threads)
    source = """GPU_PTX %s
"mp behind %d private stores per thread"
{
 1:.reg .s32 r0;
 1:.reg .s32 r1;
}
 %s ;
%s
ScopeTree (grid %s)
exists (1:r0=1 /\\ 1:r1=0)
""" % (name, pads, header, rows, tree)
    return parse_litmus(source)


def exhaust_corpus_test(kind, name):
    """Resolve a corpus cell to a litmus test.

    ``scenario`` names resolve through the app registry (the compiled
    launch test whose condition is the loss predicate); ``litmus`` names
    are ``iriw`` or ``mp-padN[-3t]``.
    """
    if kind == "scenario":
        from ..apps.scenario import get_scenario
        return get_scenario(name).test()
    if kind == "litmus":
        if name == "iriw":
            from ..litmus import iriw
            return iriw()
        if name.startswith("mp-pad"):
            spec = name[len("mp-pad"):]
            threads = 3 if spec.endswith("-3t") else 2
            pads = int(spec[:-3] if spec.endswith("-3t") else spec)
            return padded_mp(pads, threads)
        raise ReproError("unknown exhaust litmus cell %r" % name)
    raise ReproError("unknown exhaust corpus kind %r" % kind)


def balance_bound(branch_transitions, workers):
    """The deterministic speedup bound of the branch partition: total
    work over the LPT (longest-processing-time greedy) makespan at
    ``workers`` workers.

    Exact arithmetic over exact per-branch transition counts — the same
    number on every machine, so it gates "the decomposition admits
    >= Nx" in CI without trusting a runner's core count.
    """
    if not branch_transitions:
        return 1.0
    loads = [0] * max(1, workers)
    for work in sorted(branch_transitions, reverse=True):
        heapq.heappush(loads, heapq.heappop(loads) + work)
    makespan = max(loads)
    return sum(branch_transitions) / makespan if makespan else 1.0


@dataclass(frozen=True)
class ExhaustBenchCell:
    """Measured exploration sizes for one (test, chip) cell."""

    name: str
    chip: str
    kind: str                 #: scenario or litmus
    loop_bound: int
    states: int               #: reachable final states (both strategies)
    losses: int               #: losing executions under DPOR
    bounded: bool
    identical: bool           #: differential oracles matched (see bench)
    dpor_transitions: int
    naive_transitions: int    #: 0 on dpor-only cells (naive skipped)
    dpor_executions: int
    naive_executions: int
    reduction: float          #: naive / DPOR transitions; 0 if dpor-only
    dpor_seconds: float
    naive_seconds: float
    dpor_only: bool           #: naive leg skipped (intractable)
    branches: int             #: root-plan entries (parallel shards)
    workers: int              #: pool width of the parallel leg
    parallel_seconds: float   #: sharded process-pool wall (advisory)
    wall_speedup: float       #: dpor_seconds / parallel_seconds (advisory)
    balance_speedup: float    #: deterministic LPT bound at ``workers``


def bench_exhaust_cell(kind, name, chip_short, loop_bound=DEFAULT_LOOP_BOUND,
                       workers=DEFAULT_WORKERS):
    """Measure one corpus cell; returns an :class:`ExhaustBenchCell`.

    The DPOR leg walks the root plan branch by branch (the exact
    decomposition a ``--jobs`` run shards), so the serial wall time,
    the per-branch profile behind ``balance_speedup`` and the parallel
    leg all describe the same work.  ``identical`` asserts every oracle
    pair that ran: DPOR vs naive reachable sets on differential cells,
    and serial vs process-pool merged verdicts everywhere.
    """
    from ..sim.chip import CHIPS
    test = exhaust_corpus_test(kind, name)
    chip = CHIPS[chip_short]
    dpor_only = (kind, name, chip_short) in EXHAUST_DPOR_ONLY

    began = time.perf_counter()
    explorer = Explorer(test, chip, strategy="dpor", loop_bound=loop_bound)
    plan = explorer.root_plan()
    branch_transitions = []
    reachable = set()
    executions = transitions = losses = 0
    bounded = False
    for index in range(len(plan)):
        branch = explorer.run_branch(index)
        branch_transitions.append(branch.transitions)
        reachable |= branch.reachable
        executions += branch.executions
        transitions += branch.transitions
        losses += branch.losses
        bounded = bounded or branch.bounded
    dpor_seconds = time.perf_counter() - began

    # Parallel leg: the same exploration through the session's process
    # pool.  Its merged verdict must reproduce the serial counts — that
    # is the determinism invariant the parallel mode rests on.
    from ..api.spec import RunSpec
    from ..exhaustive.backend import exhaustive_session, exhaustive_verdict
    spec = RunSpec.make(test, chip, iterations=1, seed=0)
    session = exhaustive_session(jobs=workers, executor="process",
                                 cache=False, loop_bound=loop_bound)
    began = time.perf_counter()
    merged = session.run(spec)
    parallel_seconds = time.perf_counter() - began
    verdict = exhaustive_verdict(merged.histogram, test.condition)
    identical = (verdict["transitions"] == transitions
                 and verdict["states"] == len(reachable)
                 and verdict["losses"] == losses)

    if dpor_only:
        naive_transitions = naive_executions = 0
        naive_seconds = reduction = 0.0
    else:
        began = time.perf_counter()
        naive = explore_test(test, chip, strategy="naive",
                             loop_bound=loop_bound)
        naive_seconds = time.perf_counter() - began
        identical = identical and naive.reachable == frozenset(reachable)
        bounded = bounded or naive.bounded
        naive_transitions = naive.transitions
        naive_executions = naive.executions
        reduction = naive.transitions / max(1, transitions)

    return ExhaustBenchCell(
        name=name, chip=chip_short, kind=kind, loop_bound=loop_bound,
        states=len(reachable), losses=losses, bounded=bounded,
        identical=identical,
        dpor_transitions=transitions,
        naive_transitions=naive_transitions,
        dpor_executions=executions,
        naive_executions=naive_executions,
        reduction=reduction,
        dpor_seconds=dpor_seconds, naive_seconds=naive_seconds,
        dpor_only=dpor_only, branches=len(plan), workers=workers,
        parallel_seconds=parallel_seconds,
        wall_speedup=dpor_seconds / max(parallel_seconds, 1e-9),
        balance_speedup=balance_bound(branch_transitions, workers))


def bench_exhaust(corpus=EXHAUST_PINNED_CORPUS,
                  loop_bound=DEFAULT_LOOP_BOUND, workers=DEFAULT_WORKERS):
    """Measure every corpus cell; returns a list of cells."""
    return [bench_exhaust_cell(kind, name, chip, loop_bound=loop_bound,
                               workers=workers)
            for kind, name, chip in corpus]


def summarize_exhaust(cells):
    """Aggregate stats: reduction factors over the differential cells,
    the balance-bound floor over the dpor-only (widest) cells."""
    measured = [cell for cell in cells if not cell.dpor_only]
    wide = [cell for cell in cells if cell.dpor_only]
    total_dpor = sum(cell.dpor_transitions for cell in measured)
    total_naive = sum(cell.naive_transitions for cell in measured)
    log_sum = sum(math.log(max(cell.reduction, 1e-9)) for cell in measured)
    summary = {
        "cells": len(cells),
        "dpor_only_cells": len(wide),
        # The reduction ratio and its totals cover the differential
        # cells only (dpor-only cells have no naive number to divide);
        # the _all total additionally counts the dpor-only work.
        "total_dpor_transitions": total_dpor,
        "total_dpor_transitions_all": sum(c.dpor_transitions
                                          for c in cells),
        "total_naive_transitions": total_naive,
        "reduction_total": total_naive / max(1, total_dpor),
        "reduction_geomean": math.exp(log_sum / max(1, len(measured))),
        "min_reduction": min((cell.reduction for cell in measured),
                             default=0.0),
        "max_reduction": max((cell.reduction for cell in measured),
                             default=0.0),
        "all_identical": all(cell.identical for cell in cells),
        "min_balance_speedup": min(
            (cell.balance_speedup for cell in wide or cells), default=1.0),
    }
    return summary


#: Report schema version (bump on layout changes).  v2: dpor-only
#: cells, branch counts, parallel-leg wall numbers and the
#: deterministic ``balance_speedup`` bound.
EXHAUST_SCHEMA_VERSION = 2


def write_exhaust_report(path, cells, corpus_name, loop_bound, extra=None):
    """Write the ``BENCH_exhaust.json`` trajectory entry."""
    payload = {
        "version": EXHAUST_SCHEMA_VERSION,
        "benchmark": "exhaust",
        "corpus": corpus_name,
        "loop_bound": loop_bound,
        "cells": [
            {key: (round(value, 4) if isinstance(value, float) else value)
             for key, value in asdict(cell).items()}
            for cell in cells
        ],
        "summary": {key: (round(value, 4) if isinstance(value, float)
                          else value)
                    for key, value in summarize_exhaust(cells).items()},
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return payload


def render_exhaust_table(cells):
    """Human-readable comparison table for the console."""
    from .._util import format_table
    rows = [[cell.name, cell.chip, cell.kind, cell.states, cell.losses,
             "yes" if cell.bounded else "no",
             cell.dpor_transitions,
             "-" if cell.dpor_only else cell.naive_transitions,
             "-" if cell.dpor_only else "%.1fx" % cell.reduction,
             cell.branches, "%.2fx" % cell.balance_speedup,
             "%.3fs" % cell.dpor_seconds,
             "-" if cell.dpor_only else "%.3fs" % cell.naive_seconds,
             "yes" if cell.identical else "NO"]
            for cell in cells]
    return format_table(
        ["cell", "chip", "kind", "states", "losses", "bounded",
         "dpor tr", "naive tr", "reduction", "branches", "balance",
         "dpor s", "naive s", "identical"], rows)
