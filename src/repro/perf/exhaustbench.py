"""Pruning harness for the exhaustive explorer (``BENCH_exhaust.json``).

Unlike its engine/model/app siblings this bench's headline metric is not
wall-clock but *transitions explored*: per cell of a pinned corpus it
runs :func:`~repro.exhaustive.explore.explore_test` twice — once with
persistent-set/sleep-set DPOR and once with naive full interleaving
enumeration — and records the reduction factor alongside the soundness
contract (both strategies must reach the *identical* final-state set;
a perf number from a diverged pruned exploration would be meaningless).

The corpus mixes the two regimes the explorer lives in:

* **application scenarios** on a weak chip (Titan), where every thread
  holds several co-enabled reorderable ops (issue order is itself a
  relaxation choice, so DPOR's persistent sets seed whole threads and
  the reduction is modest);
* **litmus cells with independent work** — iriw and ``mp-padN``
  (message passing behind N private stores per thread) — where
  commuting transitions dominate and the reduction grows
  combinatorially; GTX280 (in-order, the paper's SC-like control)
  isolates the scheduler-interleaving space from the relaxation space.

``benchmarks/bench_perf_exhaust.py`` emits the report; CI runs the tiny
corpus as part of perf-smoke and diffs it against the checked-in
baseline via ``bench_compare.py``.
"""

import json
import math
import time
from dataclasses import asdict, dataclass

from ..errors import ReproError
from ..exhaustive.explore import DEFAULT_LOOP_BOUND, explore_test

#: The pinned exhaust corpus: ``(kind, name, chip)`` cells, where kind
#: is ``scenario`` (registry name) or ``litmus`` (see
#: :func:`exhaust_corpus_test`).
EXHAUST_PINNED_CORPUS = (
    ("scenario", "deque-mp", "Titan"),
    ("scenario", "deque-mp+fenced", "Titan"),
    ("scenario", "isolation", "Titan"),
    ("scenario", "ticket", "Titan"),
    ("scenario", "ticket+fenced", "Titan"),
    ("litmus", "iriw", "GTX280"),
    ("litmus", "iriw", "Titan"),
    ("litmus", "mp-pad2", "Titan"),
    ("litmus", "mp-pad4", "GTX280"),
    ("litmus", "mp-pad6", "GTX280"),
)

#: CI-sized subset for the perf-smoke job.
EXHAUST_TINY_CORPUS = (
    ("scenario", "deque-mp", "Titan"),
    ("scenario", "ticket+fenced", "Titan"),
    ("litmus", "iriw", "GTX280"),
    ("litmus", "mp-pad4", "GTX280"),
)

_EXHAUST_CORPORA = {"pinned": EXHAUST_PINNED_CORPUS,
                    "tiny": EXHAUST_TINY_CORPUS}


def exhaust_corpus_by_name(name):
    """Resolve an exhaust corpus name (``pinned``/``tiny``) to cells."""
    try:
        return _EXHAUST_CORPORA[name]
    except KeyError:
        raise ReproError("unknown exhaust perf corpus %r (expected %s)"
                         % (name, "/".join(sorted(_EXHAUST_CORPORA)))
                         ) from None


def padded_mp(pads, threads=2):
    """Message passing behind ``pads`` private stores per thread.

    The private locations (``a0..``, ``b0..``, ``c0..``) make most
    cross-thread transition pairs commute — the regime DPOR exists for —
    while the mp core (flag ``y`` publishing ``x``) keeps a weak outcome
    for the differential oracles to agree on.  ``threads=3`` adds a
    third thread of pure private stores.
    """
    from ..litmus import parse_litmus
    cols = [
        ["st.cg.s32 [a%d], 1" % i for i in range(pads)]
        + ["st.cg.s32 [x], 1", "st.cg.s32 [y], 1"],
        ["st.cg.s32 [b%d], 1" % i for i in range(pads)]
        + ["ld.cg.s32 r0, [y]", "ld.cg.s32 r1, [x]"],
    ]
    if threads == 3:
        cols.append(["st.cg.s32 [c%d], 1" % i for i in range(pads)])
    height = max(len(col) for col in cols)
    for col in cols:
        col += [""] * (height - len(col))
    rows = "\n".join(" " + " | ".join(row) + " ;" for row in zip(*cols))
    header = " | ".join("T%d" % i for i in range(len(cols)))
    tree = " ".join("(cta (warp T%d))" % i for i in range(len(cols)))
    name = "mp-pad%d" % pads if threads == 2 else "mp-pad%d-%dt" % (pads,
                                                                    threads)
    source = """GPU_PTX %s
"mp behind %d private stores per thread"
{
 1:.reg .s32 r0;
 1:.reg .s32 r1;
}
 %s ;
%s
ScopeTree (grid %s)
exists (1:r0=1 /\\ 1:r1=0)
""" % (name, pads, header, rows, tree)
    return parse_litmus(source)


def exhaust_corpus_test(kind, name):
    """Resolve a corpus cell to a litmus test.

    ``scenario`` names resolve through the app registry (the compiled
    launch test whose condition is the loss predicate); ``litmus`` names
    are ``iriw`` or ``mp-padN[-3t]``.
    """
    if kind == "scenario":
        from ..apps.scenario import get_scenario
        return get_scenario(name).test()
    if kind == "litmus":
        if name == "iriw":
            from ..litmus import iriw
            return iriw()
        if name.startswith("mp-pad"):
            spec = name[len("mp-pad"):]
            threads = 3 if spec.endswith("-3t") else 2
            pads = int(spec[:-3] if spec.endswith("-3t") else spec)
            return padded_mp(pads, threads)
        raise ReproError("unknown exhaust litmus cell %r" % name)
    raise ReproError("unknown exhaust corpus kind %r" % kind)


@dataclass(frozen=True)
class ExhaustBenchCell:
    """Measured exploration sizes for one (test, chip) cell."""

    name: str
    chip: str
    kind: str                 #: scenario or litmus
    loop_bound: int
    states: int               #: reachable final states (both strategies)
    losses: int               #: losing executions under DPOR
    bounded: bool
    identical: bool           #: DPOR and naive reachable sets matched
    dpor_transitions: int
    naive_transitions: int
    dpor_executions: int
    naive_executions: int
    reduction: float          #: naive / DPOR transitions (the headline)
    dpor_seconds: float
    naive_seconds: float


def bench_exhaust_cell(kind, name, chip_short,
                       loop_bound=DEFAULT_LOOP_BOUND):
    """Measure one corpus cell; returns an :class:`ExhaustBenchCell`."""
    from ..sim.chip import CHIPS
    test = exhaust_corpus_test(kind, name)
    chip = CHIPS[chip_short]

    began = time.perf_counter()
    dpor = explore_test(test, chip, strategy="dpor", loop_bound=loop_bound)
    dpor_seconds = time.perf_counter() - began
    began = time.perf_counter()
    naive = explore_test(test, chip, strategy="naive", loop_bound=loop_bound)
    naive_seconds = time.perf_counter() - began

    return ExhaustBenchCell(
        name=name, chip=chip_short, kind=kind, loop_bound=loop_bound,
        states=len(dpor.reachable), losses=dpor.losses,
        bounded=dpor.bounded or naive.bounded,
        identical=dpor.reachable == naive.reachable,
        dpor_transitions=dpor.transitions,
        naive_transitions=naive.transitions,
        dpor_executions=dpor.executions,
        naive_executions=naive.executions,
        reduction=naive.transitions / max(1, dpor.transitions),
        dpor_seconds=dpor_seconds, naive_seconds=naive_seconds)


def bench_exhaust(corpus=EXHAUST_PINNED_CORPUS,
                  loop_bound=DEFAULT_LOOP_BOUND):
    """Measure every corpus cell; returns a list of cells."""
    return [bench_exhaust_cell(kind, name, chip, loop_bound=loop_bound)
            for kind, name, chip in corpus]


def summarize_exhaust(cells):
    """Aggregate stats: total and per-cell-geomean reduction factors."""
    total_dpor = sum(cell.dpor_transitions for cell in cells)
    total_naive = sum(cell.naive_transitions for cell in cells)
    log_sum = sum(math.log(max(cell.reduction, 1e-9)) for cell in cells)
    return {
        "cells": len(cells),
        "total_dpor_transitions": total_dpor,
        "total_naive_transitions": total_naive,
        "reduction_total": total_naive / max(1, total_dpor),
        "reduction_geomean": math.exp(log_sum / max(1, len(cells))),
        "min_reduction": min(cell.reduction for cell in cells),
        "max_reduction": max(cell.reduction for cell in cells),
        "all_identical": all(cell.identical for cell in cells),
    }


#: Report schema version (bump on layout changes).
EXHAUST_SCHEMA_VERSION = 1


def write_exhaust_report(path, cells, corpus_name, loop_bound, extra=None):
    """Write the ``BENCH_exhaust.json`` trajectory entry."""
    payload = {
        "version": EXHAUST_SCHEMA_VERSION,
        "benchmark": "exhaust",
        "corpus": corpus_name,
        "loop_bound": loop_bound,
        "cells": [
            {key: (round(value, 4) if isinstance(value, float) else value)
             for key, value in asdict(cell).items()}
            for cell in cells
        ],
        "summary": {key: (round(value, 4) if isinstance(value, float)
                          else value)
                    for key, value in summarize_exhaust(cells).items()},
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return payload


def render_exhaust_table(cells):
    """Human-readable comparison table for the console."""
    from .._util import format_table
    rows = [[cell.name, cell.chip, cell.kind, cell.states, cell.losses,
             "yes" if cell.bounded else "no",
             cell.dpor_transitions, cell.naive_transitions,
             "%.1fx" % cell.reduction,
             "%.3fs" % cell.dpor_seconds, "%.3fs" % cell.naive_seconds,
             "yes" if cell.identical else "NO"]
            for cell in cells]
    return format_table(
        ["cell", "chip", "kind", "states", "losses", "bounded",
         "dpor tr", "naive tr", "reduction", "dpor s", "naive s",
         "identical"], rows)
