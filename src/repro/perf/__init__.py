"""repro.perf — the performance-measurement subsystem.

Times the simulation engines against each other on a pinned corpus and
records the repo's perf trajectory in ``BENCH_engine.json`` (written by
``benchmarks/bench_perf_engine.py``, checked in CI's perf-smoke job).
"""

from .enginebench import (EngineBenchCell, PINNED_CORPUS, TINY_CORPUS,
                          bench_engines, corpus_by_name, render_table,
                          summarize, write_report)

__all__ = [
    "EngineBenchCell", "PINNED_CORPUS", "TINY_CORPUS",
    "bench_engines", "corpus_by_name", "render_table", "summarize",
    "write_report",
]
