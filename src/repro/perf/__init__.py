"""repro.perf — the performance-measurement subsystem.

Times the fast engines against their reference twins on pinned corpora
and records the repo's perf trajectory: the operational side in
``BENCH_engine.json`` (``benchmarks/bench_perf_engine.py``) and the
axiomatic side in ``BENCH_model.json``
(``benchmarks/bench_perf_model.py``), both checked in CI's perf-smoke
job.
"""

from .enginebench import (EngineBenchCell, PINNED_CORPUS, TINY_CORPUS,
                          bench_engines, corpus_by_name, render_table,
                          summarize, write_report)
from .modelbench import (MODEL_PINNED_CORPUS, MODEL_TINY_CORPUS,
                         ModelBenchCell, bench_model_cell,
                         bench_model_engines, deep_corpus_tests,
                         model_corpus_by_name, render_model_table,
                         summarize_model, write_model_report)

__all__ = [
    "EngineBenchCell", "PINNED_CORPUS", "TINY_CORPUS",
    "bench_engines", "corpus_by_name", "render_table", "summarize",
    "write_report",
    "MODEL_PINNED_CORPUS", "MODEL_TINY_CORPUS", "ModelBenchCell",
    "bench_model_cell", "bench_model_engines", "deep_corpus_tests",
    "model_corpus_by_name", "render_model_table", "summarize_model",
    "write_model_report",
]
