"""repro.perf — the performance-measurement subsystem.

Times the fast engines against their reference twins on pinned corpora
and records the repo's perf trajectory: the operational side in
``BENCH_engine.json`` (``benchmarks/bench_perf_engine.py``), the
axiomatic side in ``BENCH_model.json``
(``benchmarks/bench_perf_model.py``), the application-campaign side
in ``BENCH_apps.json`` (``benchmarks/bench_perf_apps.py``) and the
exhaustive explorer's DPOR-vs-naive pruning factor in
``BENCH_exhaust.json`` (``benchmarks/bench_perf_exhaust.py``), all
checked in CI's perf-smoke job.
"""

from .appbench import (APP_PINNED_CORPUS, APP_TINY_CORPUS, AppBenchCell,
                       app_corpus_by_name, bench_app_cell, bench_apps,
                       render_app_table, summarize_apps, write_app_report)
from .compare import (CompareResult, DEFAULT_THRESHOLD, MetricDelta,
                      compare_reports, load_report, render_compare)
from .exhaustbench import (EXHAUST_DPOR_ONLY, EXHAUST_PINNED_CORPUS,
                           EXHAUST_TINY_CORPUS, ExhaustBenchCell,
                           balance_bound, bench_exhaust,
                           bench_exhaust_cell, exhaust_corpus_by_name,
                           exhaust_corpus_test, padded_mp,
                           render_exhaust_table, summarize_exhaust,
                           write_exhaust_report)
from .enginebench import (EngineBenchCell, PINNED_CORPUS, TINY_CORPUS,
                          bench_engines, corpus_by_name, render_table,
                          summarize, tvd, tvd_envelope, write_report)
from .modelbench import (MODEL_PINNED_CORPUS, MODEL_TINY_CORPUS,
                         ModelBenchCell, bench_model_cell,
                         bench_model_engines, deep_corpus_tests,
                         model_corpus_by_name, render_model_table,
                         summarize_model, write_model_report)

__all__ = [
    "APP_PINNED_CORPUS", "APP_TINY_CORPUS", "AppBenchCell",
    "app_corpus_by_name", "bench_app_cell", "bench_apps",
    "render_app_table", "summarize_apps", "write_app_report",
    "CompareResult", "DEFAULT_THRESHOLD", "MetricDelta",
    "compare_reports", "load_report", "render_compare",
    "EXHAUST_DPOR_ONLY", "EXHAUST_PINNED_CORPUS", "EXHAUST_TINY_CORPUS",
    "ExhaustBenchCell", "balance_bound",
    "bench_exhaust", "bench_exhaust_cell", "exhaust_corpus_by_name",
    "exhaust_corpus_test", "padded_mp", "render_exhaust_table",
    "summarize_exhaust", "write_exhaust_report",
    "EngineBenchCell", "PINNED_CORPUS", "TINY_CORPUS",
    "bench_engines", "corpus_by_name", "render_table", "summarize",
    "tvd", "tvd_envelope", "write_report",
    "MODEL_PINNED_CORPUS", "MODEL_TINY_CORPUS", "ModelBenchCell",
    "bench_model_cell", "bench_model_engines", "deep_corpus_tests",
    "model_corpus_by_name", "render_model_table", "summarize_model",
    "write_model_report",
]
