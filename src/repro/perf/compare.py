"""Diff two BENCH_*.json perf-trajectory reports (``bench_compare.py``).

The trajectory files (``BENCH_engine.json``, ``BENCH_model.json``,
``BENCH_apps.json``) record absolute rates *and* engine-relative
speedups.  Absolute rates are machine-dependent — comparing them across
a laptop and a CI runner is noise — so this module diffs the
**speedup** columns (fast vs reference, batch vs fast), which divide
the machine out: the same interpreter overheads appear in numerator and
denominator.  ``BENCH_exhaust.json``'s **reduction** columns (naive vs
DPOR transitions explored) are diffed the same way — they are exact
counts, not timings, so any drop is a real pruning regression.

:func:`compare_reports` pairs cells by identity key (test/scenario x
chip), computes per-cell and geomean ratios ``new / old`` for every
speedup metric the two reports share, and flags any ratio below
``1 - threshold`` as a regression.  ``benchmarks/bench_compare.py``
wraps this as the CLI the CI perf-smoke job runs (nonzero exit on
regression), so the perf trajectory is machine-checkable instead of a
number in prose.
"""

import json
from dataclasses import dataclass

from ..errors import ReproError

#: Default tolerated fractional drop before a delta counts as a
#: regression.  Speedup ratios still carry scheduler noise even though
#: the machine divides out; 15% covers shared-runner jitter while
#: catching any real (2x-order) regression.
DEFAULT_THRESHOLD = 0.15

#: Cell-identity fields, in priority order, used to pair cells across
#: the two reports.
_KEY_FIELDS = ("test", "scenario", "name", "chip")


def load_report(path):
    """Read one BENCH_*.json file; raises :class:`ReproError` on junk."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ReproError("cannot read perf report %s: %s"
                         % (path, error)) from None
    except ValueError as error:
        raise ReproError("perf report %s is not valid JSON: %s"
                         % (path, error)) from None
    if not isinstance(payload, dict) or "cells" not in payload:
        raise ReproError("perf report %s has no 'cells' list "
                         "(not a BENCH_*.json file?)" % path)
    return payload


def _cell_key(cell):
    return tuple(cell.get(field) for field in _KEY_FIELDS)


def _speedup_metrics(cell_a, cell_b):
    """The speedup/reduction columns both cells carry with usable
    numbers."""
    metrics = []
    for key in sorted(set(cell_a) & set(cell_b)):
        if "speedup" not in key and "reduction" not in key:
            continue
        if "wall" in key:
            # wall_speedup (exhaust v2) is a measured timing ratio —
            # worthless across machines (a single-core runner pins it
            # at ~1x) unlike the exact-count reduction/balance columns.
            continue
        old, new = cell_a[key], cell_b[key]
        if (isinstance(old, (int, float)) and isinstance(new, (int, float))
                and old > 0 and new > 0):
            metrics.append(key)
    return metrics


@dataclass(frozen=True)
class MetricDelta:
    """One compared speedup column of one paired cell."""

    key: tuple          #: cell identity (test/scenario, chip)
    metric: str
    old: float
    new: float

    @property
    def ratio(self):
        return self.new / self.old

    def regressed(self, threshold):
        return self.ratio < 1.0 - threshold


def _geomean(values):
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@dataclass(frozen=True)
class CompareResult:
    """Everything :func:`compare_reports` measured."""

    benchmark: str          #: report kind ("engine"/"model"/"apps")
    deltas: tuple           #: per-cell MetricDelta rows
    geomeans: tuple         #: (metric, old geomean, new geomean) rows
    only_old: tuple         #: cell keys present only in the old report
    only_new: tuple         #: cell keys present only in the new report

    def regressions(self, threshold=DEFAULT_THRESHOLD):
        """Per-cell and geomean regressions beyond ``threshold``."""
        cells = [delta for delta in self.deltas
                 if delta.regressed(threshold)]
        summaries = [(metric, old, new)
                     for metric, old, new in self.geomeans
                     if old > 0 and new / old < 1.0 - threshold]
        return cells, summaries


def compare_reports(old, new):
    """Pair the cells of two loaded reports and diff their speedups.

    Both arguments are parsed report payloads (:func:`load_report`).
    Comparing reports of different benchmarks (engine vs apps) is
    refused — same-named metrics would mean different corpora.
    """
    kind_old = old.get("benchmark", "?")
    kind_new = new.get("benchmark", "?")
    if kind_old != kind_new:
        raise ReproError(
            "cannot compare a %r report against a %r report"
            % (kind_old, kind_new))
    cells_old = {_cell_key(cell): cell for cell in old["cells"]}
    cells_new = {_cell_key(cell): cell for cell in new["cells"]}
    deltas = []
    per_metric = {}
    for key in sorted(set(cells_old) & set(cells_new)):
        cell_old, cell_new = cells_old[key], cells_new[key]
        for metric in _speedup_metrics(cell_old, cell_new):
            delta = MetricDelta(key=key, metric=metric,
                                old=float(cell_old[metric]),
                                new=float(cell_new[metric]))
            deltas.append(delta)
            per_metric.setdefault(metric, []).append(delta)
    geomeans = tuple(
        (metric,
         _geomean([delta.old for delta in rows]),
         _geomean([delta.new for delta in rows]))
        for metric, rows in sorted(per_metric.items()))
    return CompareResult(
        benchmark=kind_old, deltas=tuple(deltas), geomeans=geomeans,
        only_old=tuple(sorted(set(cells_old) - set(cells_new))),
        only_new=tuple(sorted(set(cells_new) - set(cells_old))))


def render_compare(result, threshold=DEFAULT_THRESHOLD):
    """Human-readable delta table for the console."""
    from .._util import format_table

    rows = []
    for delta in result.deltas:
        label = "/".join(str(part) for part in delta.key if part is not None)
        rows.append([label, delta.metric,
                     "%.2fx" % delta.old, "%.2fx" % delta.new,
                     "%+.1f%%" % ((delta.ratio - 1.0) * 100.0),
                     "REGRESSED" if delta.regressed(threshold) else "ok"])
    for metric, old, new in result.geomeans:
        change = (new / old - 1.0) * 100.0 if old > 0 else 0.0
        rows.append(["geomean", metric, "%.2fx" % old, "%.2fx" % new,
                     "%+.1f%%" % change,
                     ("REGRESSED" if old > 0 and new / old < 1.0 - threshold
                      else "ok")])
    table = format_table(
        ["cell", "metric", "old", "new", "change", "verdict"], rows)
    notes = []
    if result.only_old:
        notes.append("cells only in the old report: %s"
                     % ", ".join("/".join(str(p) for p in key if p)
                                 for key in result.only_old))
    if result.only_new:
        notes.append("cells only in the new report: %s"
                     % ", ".join("/".join(str(p) for p in key if p)
                                 for key in result.only_new))
    return "\n".join([table] + notes)
