"""Timing harness for the model-checking engines (``BENCH_model.json``).

Measures, per test of a pinned corpus, how long each model engine takes
to compute the complete allowed set under the paper's PTX model:

* ``reference`` — materialise every candidate execution
  (:func:`~repro.model.enumerate.enumerate_executions`) and interpret
  the ``.cat`` text against each;
* ``fast`` — compile the model once and run the pruned,
  consistency-aware enumeration over indexed relations
  (:func:`~repro.model.enumerate.enumerate_allowed`).

Each timed run also cross-checks the parity contract: the two engines
must produce the identical allowed set, so a perf number can never come
from a semantically diverged fast path.

The corpus spans the behaviour classes the axiomatic side spends its
cycles on — the paper's own message-passing/coherence/fence tests, the
RMW-heavy spinlock tests (many symbolic path combinations), and
deep diy cycles of length 6 and 7 whose coherence-permutation blow-up
is exactly what branch pruning exists to tame.  The deep cells are
rebuilt deterministically from a fixed edge pool, so the numbers are
comparable across runs and machines.

The output schema (:func:`write_model_report`) is the model side of the
repo's perf trajectory: ``benchmarks/bench_perf_model.py`` emits it as
``BENCH_model.json``, CI uploads it as an artifact and fails if the
fast engine loses to the reference engine, and the README's Performance
section quotes it.
"""

import json
import time
from dataclasses import asdict, dataclass

from ..errors import ReproError
from ..litmus import library
from ..model.models import load_model

#: Report schema version (bump on layout changes).
MODEL_SCHEMA_VERSION = 1

#: The pinned model-perf corpus: ``("library", name)`` builds a paper
#: test, ``("deep", name)`` a diy cycle from :func:`deep_corpus_tests`.
MODEL_PINNED_CORPUS = (
    ("library", "mp"),
    ("library", "sb"),
    ("library", "coRR"),
    ("library", "mp+membar.gls"),
    ("library", "lb+membar.ctas"),
    ("library", "cas-sl"),
    ("library", "sl-future"),
    ("deep", "Coe+PosWW+PosWW+PosWW+Rfe+Fre"),
    ("deep", "Coe+PosWW+PosWW+Rfe+Fre+PosWW+PosWW"),
)

#: CI-sized subset for the perf-smoke job (cells with comfortable
#: margins on noisy shared runners, plus one length-6 deep cycle).
MODEL_TINY_CORPUS = (
    ("library", "mp"),
    ("library", "coRR"),
    ("library", "mp+membar.gls"),
    ("deep", "Coe+PosWW+PosWW+PosWW+Rfe+Fre"),
)

_MODEL_CORPORA = {"pinned": MODEL_PINNED_CORPUS, "tiny": MODEL_TINY_CORPUS}

#: Deep-cycle edge pool: same-location program-order pairs plus the
#: three communication edges — the smallest pool whose length-6/7
#: cycles pile writes onto few locations (factorial coherence blow-up).
_DEEP_MAX_LENGTH = 7


def _deep_pool():
    from ..diy import coe, fre, po, rfe

    return [po("W", "W", same_loc=True), po("R", "R", same_loc=True),
            rfe(), fre(), coe()]


def deep_corpus_tests():
    """Deterministic name → test map of the deep diy cycles (length up
    to 7 over the fixed pool; first cycle classifying to a name wins)."""
    from ..diy import cycles_up_to
    from ..diy.generate import cycle_to_test
    from ..errors import GenerationError

    tests = {}
    for cycle in cycles_up_to(_deep_pool(), _DEEP_MAX_LENGTH):
        try:
            test = cycle_to_test(cycle)
        except GenerationError:
            continue
        tests.setdefault(test.name, test)
    return tests


def model_corpus_by_name(name):
    """Resolve a model-perf corpus name (``pinned``/``tiny``)."""
    try:
        return _MODEL_CORPORA[name]
    except KeyError:
        raise ReproError("unknown model perf corpus %r (expected %s)"
                         % (name, "/".join(sorted(_MODEL_CORPORA)))) from None


def _build_cell_test(kind, name, deep_tests):
    if kind == "library":
        return library.build(name)
    if kind == "deep":
        try:
            return deep_tests[name]
        except KeyError:
            raise ReproError("no deep cycle classifies to %r" % name) \
                from None
    raise ReproError("unknown corpus cell kind %r" % kind)


@dataclass(frozen=True)
class ModelBenchCell:
    """Measured allowed-set times for one (test, model) cell, seconds."""

    test: str
    kind: str                 #: "library" | "deep"
    model: str
    allowed_states: int
    reference_s: float
    fast_s: float
    speedup: float
    identical: bool           #: the engines' allowed sets matched exactly


def _timed(run, repeats):
    """Best-of-``repeats`` wall-clock of ``run()``; returns (s, result)."""
    best = None
    result = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return max(best, 1e-9), result


def bench_model_cell(kind, name, model="ptx", repeats=3, deep_tests=None,
                     fuel=128):
    """Measure one corpus cell; returns a :class:`ModelBenchCell`."""
    if deep_tests is None:
        deep_tests = deep_corpus_tests() if kind == "deep" else {}
    test = _build_cell_test(kind, name, deep_tests)
    axiomatic = load_model(model) if isinstance(model, str) else model
    axiomatic.compiled()  # compile outside the timed region (steady state)

    reference_s, reference_set = _timed(
        lambda: axiomatic.allowed_outcomes(test, fuel=fuel,
                                           on_fuel="discard",
                                           engine="reference"), repeats)
    fast_s, fast_set = _timed(
        lambda: axiomatic.allowed_outcomes(test, fuel=fuel,
                                           on_fuel="discard",
                                           engine="fast"), repeats)
    return ModelBenchCell(
        test=test.name, kind=kind, model=axiomatic.name,
        allowed_states=len(fast_set),
        reference_s=reference_s, fast_s=fast_s,
        speedup=reference_s / fast_s,
        identical=(set(reference_set) == set(fast_set)))


def bench_model_engines(corpus=MODEL_PINNED_CORPUS, model="ptx", repeats=3):
    """Measure every corpus cell; returns a list of cells."""
    needs_deep = any(kind == "deep" for kind, _ in corpus)
    deep_tests = deep_corpus_tests() if needs_deep else {}
    axiomatic = load_model(model) if isinstance(model, str) else model
    return [bench_model_cell(kind, name, model=axiomatic, repeats=repeats,
                             deep_tests=deep_tests)
            for kind, name in corpus]


def _geomean(values):
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def summarize_model(cells):
    """Aggregate stats over measured cells (geomean/min speedups)."""
    speedups = [cell.speedup for cell in cells]
    return {
        "cells": len(cells),
        "geomean_speedup": round(_geomean(speedups), 3),
        "min_speedup": round(min(speedups), 3) if speedups else 0.0,
        "max_speedup": round(max(speedups), 3) if speedups else 0.0,
        "all_identical": all(cell.identical for cell in cells),
    }


def write_model_report(path, cells, corpus_name, repeats, extra=None):
    """Write the ``BENCH_model.json`` trajectory entry."""
    payload = {
        "version": MODEL_SCHEMA_VERSION,
        "benchmark": "model",
        "corpus": corpus_name,
        "repeats": repeats,
        "cells": [
            {key: (round(value, 6) if isinstance(value, float) else value)
             for key, value in asdict(cell).items()}
            for cell in cells
        ],
        "summary": summarize_model(cells),
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return payload


def render_model_table(cells):
    """Human-readable comparison table for the console."""
    from .._util import format_table

    rows = [[cell.test, cell.kind, cell.model, cell.allowed_states,
             "%.1f" % (cell.reference_s * 1000),
             "%.1f" % (cell.fast_s * 1000),
             "%.2fx" % cell.speedup,
             "yes" if cell.identical else "NO"]
            for cell in cells]
    return format_table(
        ["test", "kind", "model", "allowed", "ref ms", "fast ms",
         "speedup", "identical"], rows)
