"""Timing harness for the simulation engines (``BENCH_engine.json``).

Measures, per cell of a pinned ``(test, chip)`` corpus, how many
iterations per second each engine sustains:

* ``reference`` — the generic interpreter of
  :class:`~repro.sim.machine.GpuMachine`;
* ``fast (cold)`` — one :func:`~repro.sim.compile.compile_cell` pass
  *plus* the run, i.e. what a process-pool worker pays on its first
  shard of a cell;
* ``fast (warm)`` — the compiled cell reused, i.e. the steady state of
  every campaign (all shards after the first, and every cell a
  session's in-process memo already holds);
* ``batch (cold/warm)`` — the numpy lockstep lowering of
  :mod:`repro.sim.batch`, same cold/warm split (skipped, with null
  fields, when numpy is not installed).

Each timed run also cross-checks the engine contracts: reference and
fast must produce bit-identical same-seed histograms, and the batch
engine's histogram must stay distribution-equivalent to theirs (total
variation distance within the sampling-noise envelope for the cell's
iteration count) — so a perf number can never come from a semantically
diverged engine.

The output schema (:func:`write_report`) is the repo's perf trajectory:
``benchmarks/bench_perf_engine.py`` emits it as ``BENCH_engine.json``,
CI uploads it as an artifact and fails if the fast engine loses to the
reference engine or the batch engine loses to the fast engine, and the
README's Performance section quotes it.
"""

import gc
import json
import random
import time
from dataclasses import asdict, dataclass

from ..errors import ReproError
from ..harness.incantations import best_for, efficacy
from ..litmus import library
from ..sim.batch import compile_batch_cell, have_numpy
from ..sim.chip import CHIPS
from ..sim.compile import compile_cell
from ..sim.engine import run_batch
from ..sim.machine import GpuMachine

#: Report schema version (bump on layout changes).  v2 added the batch
#: engine columns.
SCHEMA_VERSION = 2

#: The pinned perf corpus: one cell per behaviour class the simulator
#: spends its cycles on — plain message passing, the load-load hazard,
#: AMD's R->W reordering, store buffering, atomics, the L1-staleness
#: machinery (the memory-system-heavy worst case for the fast path) and
#: a spin-loop test.  Chips chosen so every vendor/architecture family
#: with distinct switch sets is represented.
PINNED_CORPUS = (
    ("mp", "Titan"),
    ("coRR", "GTX5"),
    ("lb", "HD7970"),
    ("sb", "TesC"),
    ("cas-sl", "GTX6"),
    ("dlb-mp", "Titan"),
    ("mp-L1", "TesC"),
    ("sl-future", "Titan"),
)

#: CI-sized subset for the perf-smoke job.
TINY_CORPUS = (
    ("mp", "Titan"),
    ("coRR", "GTX5"),
    ("lb", "HD7970"),
    ("mp-L1", "TesC"),
)

_CORPORA = {"pinned": PINNED_CORPUS, "tiny": TINY_CORPUS}


def corpus_by_name(name):
    """Resolve a corpus name (``pinned``/``tiny``) to cell pairs."""
    try:
        return _CORPORA[name]
    except KeyError:
        raise ReproError("unknown perf corpus %r (expected %s)"
                         % (name, "/".join(sorted(_CORPORA)))) from None


@dataclass(frozen=True)
class EngineBenchCell:
    """Measured rates for one (test, chip) cell, iterations/second."""

    test: str
    chip: str
    iterations: int
    reference_ips: float
    fast_cold_ips: float      #: includes the one-off compile
    fast_warm_ips: float      #: compiled cell reused (steady state)
    speedup_cold: float
    speedup_warm: float
    identical: bool           #: same-seed histograms matched exactly
    #: Batch-engine columns (None when numpy is not installed).  The
    #: speedups are measured against the *fast warm* rate — the number
    #: the tentpole target (>=10x geomean) reads — and
    #: ``batch_equivalent`` records the distribution-equivalence
    #: cross-check (total variation distance vs the fast histogram
    #: within the sampling-noise envelope).
    batch_cold_ips: float = None
    batch_warm_ips: float = None
    batch_speedup_cold: float = None
    batch_speedup_warm: float = None
    batch_tvd: float = None
    batch_equivalent: bool = None


def _timed(machine, iterations, seed, setup=None, repeats=1):
    """Best-of-``repeats`` timing of ``iterations`` runs.

    ``setup`` (when given) builds the machine *inside* the timed region
    — that is how the cold-compile cost is charged.  Every repeat
    reseeds identically, so the returned histogram counts are the same
    each time and the minimum wall-clock is a fair noise filter.

    The collector is paused (and drained) around each repeat so a GC
    cycle triggered by a previous measurement's garbage cannot land
    inside this one — that is how a warm pass used to lose to its own
    cold pass in the tracked reports.
    """
    best = None
    counts = None
    was_enabled = gc.isenabled()
    try:
        for _ in range(max(repeats, 1)):
            gc.collect()
            gc.disable()
            rng = random.Random(seed)
            start = time.perf_counter()
            timed_machine = setup() if setup is not None else machine
            histogram = run_batch(timed_machine, iterations, rng)
            elapsed = time.perf_counter() - start
            if was_enabled:
                gc.enable()
            if best is None or elapsed < best:
                best = elapsed
            counts = histogram.counts
    finally:
        if was_enabled:
            gc.enable()
    return max(best, 1e-9), counts


def _timed_set(configs, iterations, seed, repeats=1):
    """Interleaved best-of-``repeats`` timing of several engine
    configurations of one cell.

    ``configs`` is a list of ``(machine, setup)`` pairs as for
    :func:`_timed`.  Timing each engine's repeats back to back lets
    machine-state drift between the phases land entirely in one
    engine's numbers and skew the speedup *ratios* the trajectory
    files track; round-robin interleaving samples every engine under
    the same noise, so the best-of ratios compare like with like.
    Returns ``[(seconds, counts), ...]`` in input order.
    """
    best = [None] * len(configs)
    counts = [None] * len(configs)
    for _ in range(max(repeats, 1)):
        for index, (machine, setup) in enumerate(configs):
            seconds, observed = _timed(machine, iterations, seed,
                                       setup=setup, repeats=1)
            if best[index] is None or seconds < best[index]:
                best[index] = seconds
            counts[index] = observed
    return list(zip(best, counts))


def tvd(counts_a, counts_b, iterations):
    """Total variation distance between two outcome histograms."""
    states = set(counts_a) | set(counts_b)
    return 0.5 * sum(abs(counts_a.get(state, 0) - counts_b.get(state, 0))
                     for state in states) / max(iterations, 1)


def tvd_envelope(iterations):
    """Acceptance envelope for the batch distribution cross-check.

    Two same-distribution multinomial samples of size N have expected
    TVD on the order of ``1/sqrt(N)``; a genuinely diverged engine
    (a wrong transition rule shifts whole states) lands an order of
    magnitude higher.  The floor keeps small CI-sized runs meaningful.
    """
    return 0.05 + 2.0 / max(iterations, 1) ** 0.5


def bench_cell(test_name, chip_short, iterations=2000, seed=0, repeats=3):
    """Measure one corpus cell; returns an :class:`EngineBenchCell`."""
    test = library.build(test_name)
    chip = CHIPS[chip_short]
    incantations = best_for(chip.vendor, test.idiom or "mp")
    intensity = efficacy(chip.vendor, test.idiom or "mp", incantations)
    shuffle = incantations.thread_rand

    def reference():
        return GpuMachine(test, chip, intensity=intensity,
                          shuffle_placement=shuffle)

    def compiled():
        return compile_cell(test, chip, intensity=intensity,
                            shuffle_placement=shuffle)

    def batched():
        return compile_batch_cell(test, chip, intensity=intensity,
                                  shuffle_placement=shuffle)

    warm_cell = compile_cell(test, chip, intensity=intensity,
                             shuffle_placement=shuffle)
    run_batch(warm_cell, 50, random.Random(seed))  # pre-touch
    configs = [(None, reference), (None, compiled), (warm_cell, None)]
    if have_numpy():
        batch_cell = batched()
        run_batch(batch_cell, 50, random.Random(seed))  # pre-touch
        configs += [(None, batched), (batch_cell, None)]
    results = _timed_set(configs, iterations, seed, repeats=repeats)
    (ref_seconds, ref_counts), (cold_seconds, cold_counts), \
        (warm_seconds, warm_counts) = results[:3]

    batch = {}
    if have_numpy():
        (batch_cold_seconds, _), (batch_warm_seconds, batch_counts) = \
            results[3:]
        distance = tvd(warm_counts, batch_counts, iterations)
        batch = {
            "batch_cold_ips": iterations / batch_cold_seconds,
            "batch_warm_ips": iterations / batch_warm_seconds,
            "batch_speedup_cold": warm_seconds / batch_cold_seconds,
            "batch_speedup_warm": warm_seconds / batch_warm_seconds,
            "batch_tvd": distance,
            "batch_equivalent": distance <= tvd_envelope(iterations),
        }

    return EngineBenchCell(
        test=test_name, chip=chip_short, iterations=iterations,
        reference_ips=iterations / ref_seconds,
        fast_cold_ips=iterations / cold_seconds,
        fast_warm_ips=iterations / warm_seconds,
        speedup_cold=ref_seconds / cold_seconds,
        speedup_warm=ref_seconds / warm_seconds,
        identical=(ref_counts == cold_counts == warm_counts),
        **batch)


def bench_engines(corpus=PINNED_CORPUS, iterations=2000, seed=0, repeats=3):
    """Measure every corpus cell; returns a list of cells."""
    return [bench_cell(test, chip, iterations=iterations, seed=seed,
                       repeats=repeats)
            for test, chip in corpus]


def _geomean(values):
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def summarize(cells):
    """Aggregate stats over measured cells (geomean/min speedups)."""
    warm = [cell.speedup_warm for cell in cells]
    cold = [cell.speedup_cold for cell in cells]
    summary = {
        "cells": len(cells),
        "geomean_speedup_warm": round(_geomean(warm), 3),
        "geomean_speedup_cold": round(_geomean(cold), 3),
        "min_speedup_warm": round(min(warm), 3) if warm else 0.0,
        "min_speedup_cold": round(min(cold), 3) if cold else 0.0,
        "all_identical": all(cell.identical for cell in cells),
    }
    batch_warm = [cell.batch_speedup_warm for cell in cells
                  if cell.batch_speedup_warm is not None]
    if batch_warm:
        # Batch speedups are measured against the fast warm rate (the
        # tentpole's >=10x target), not against the reference engine.
        summary["geomean_batch_speedup_warm"] = round(
            _geomean(batch_warm), 3)
        summary["min_batch_speedup_warm"] = round(min(batch_warm), 3)
        summary["all_batch_equivalent"] = all(
            cell.batch_equivalent for cell in cells
            if cell.batch_equivalent is not None)
    return summary


def write_report(path, cells, corpus_name, iterations, seed, extra=None):
    """Write the ``BENCH_engine.json`` trajectory entry."""
    payload = {
        "version": SCHEMA_VERSION,
        "benchmark": "engine",
        "corpus": corpus_name,
        "iterations_per_cell": iterations,
        "seed": seed,
        "cells": [
            {key: (round(value, 1) if isinstance(value, float) else value)
             for key, value in asdict(cell).items()}
            for cell in cells
        ],
        "summary": summarize(cells),
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return payload


def render_table(cells):
    """Human-readable comparison table for the console."""
    from .._util import format_table

    def opt(value, fmt):
        return "-" if value is None else fmt % value

    rows = [[cell.test, cell.chip, cell.iterations,
             "%.0f" % cell.reference_ips,
             "%.0f" % cell.fast_warm_ips,
             opt(cell.batch_warm_ips, "%.0f"),
             "%.2fx" % cell.speedup_cold,
             "%.2fx" % cell.speedup_warm,
             opt(cell.batch_speedup_warm, "%.2fx"),
             "yes" if cell.identical else "NO",
             ("-" if cell.batch_equivalent is None
              else ("yes" if cell.batch_equivalent else "NO"))]
            for cell in cells]
    return format_table(
        ["test", "chip", "iters", "ref it/s", "fast-warm it/s",
         "batch-warm it/s", "fast cold", "fast warm", "batch/fast",
         "bit-identical", "batch-equiv"], rows)
