"""Timing harness for application campaigns (``BENCH_apps.json``).

The app-layer sibling of :mod:`repro.perf.enginebench`: measures, per
cell of a pinned ``(scenario, chip)`` corpus, how many *launches* per
second each engine sustains —

* ``reference`` — the generic :class:`~repro.sim.machine.GpuMachine`
  interpreter (what ``repro.apps`` ran on before the campaign rebase);
* ``fast (cold)`` — one :func:`~repro.sim.compile.compile_cell` pass
  *plus* the run (a process-pool worker's first shard of a cell);
* ``fast (warm)`` — the compiled cell reused: the steady state of every
  app campaign, where the spin-loop kernels compile once and machine
  state is reused across launches;
* ``batch (cold/warm)`` — the numpy lockstep lowering of
  :mod:`repro.sim.batch` (null fields when numpy is not installed).

Each timed run cross-checks the engine contracts twice over: the
reference and fast engines must produce identical outcome histograms
**and** identical loss counts from the same seed, so a perf number can
never come from a semantically diverged fast path; the batch engine
must stay distribution-equivalent (total variation distance within the
sampling-noise envelope) and agree on the scenario loss verdict.

``benchmarks/bench_perf_apps.py`` emits the report as
``BENCH_apps.json``; CI runs the tiny corpus as a perf-smoke gate and
uploads the JSON next to ``BENCH_engine.json``/``BENCH_model.json``.
"""

import json
import random
from dataclasses import asdict, dataclass

from ..apps.backend import DEFAULT_APP_SHARD_SIZE
from ..errors import ReproError
from ..sim.batch import compile_batch_cell, have_numpy
from ..sim.compile import compile_cell
from ..sim.engine import run_batch
from ..sim.machine import GpuMachine
from .enginebench import _timed_set, summarize, tvd, tvd_envelope

#: The pinned app perf corpus: one cell per scenario shape the campaign
#: layer spends its cycles on — CAS spin locks (CAS loop + atomics),
#: the exchange lock, an intra-CTA critical section, the branchy deque
#: steals (predicated If bodies), the two-slot round trip (the largest
#: kernel pair), the ticket lock (volatile spin + plain handoff) and
#: the isolation read.  Chips cover both vendors and the strong/weak
#: switch sets.
APP_PINNED_CORPUS = (
    ("dot-cbe", "Titan"),
    ("dot-so", "HD7970"),
    ("dot-heyu-cta", "TesC"),
    ("isolation", "Titan"),
    ("deque-mp", "Titan"),
    ("deque-lb", "HD7970"),
    ("deque-rt", "GTX6"),
    ("ticket", "TesC"),
)

#: CI-sized subset for the perf-smoke job.
APP_TINY_CORPUS = (
    ("dot-cbe", "Titan"),
    ("deque-lb", "HD7970"),
    ("ticket", "TesC"),
)

_APP_CORPORA = {"pinned": APP_PINNED_CORPUS, "tiny": APP_TINY_CORPUS}

#: Default intensity for timed cells (the campaign default).
BENCH_INTENSITY = 100.0

#: Default launches per timed cell: one campaign shard.  The bench
#: times the unit the session layer actually dispatches — and the
#: batch engine sizes its chunks adaptively within that width, so
#: timing a narrower slice would understate the lockstep density a
#: real campaign shard enjoys.
BENCH_APP_RUNS = DEFAULT_APP_SHARD_SIZE

#: A warm pass reuses what the matching cold pass had to build, so it
#: can only lose to cold through measurement noise; re-measure up to
#: this many times before declaring a persistent inversion an error.
_WARM_FLOOR = 0.9
_WARM_RETRIES = 2


def _warm_checked(label, measure_pair):
    """Measure a cold/warm pair under the warm-floor invariant:
    ``warm rate >= _WARM_FLOOR * cold rate`` per cell.
    ``measure_pair`` returns ``(cold seconds, cold counts, warm
    seconds, warm counts)`` measured interleaved; on inversion the
    whole pair is re-measured (either side may have eaten the noise),
    a bounded number of times."""
    cold_seconds, cold_counts, warm_seconds, warm_counts = measure_pair()
    for _ in range(_WARM_RETRIES):
        if warm_seconds * _WARM_FLOOR <= cold_seconds:
            break
        cold_seconds, cold_counts, warm_seconds, warm_counts = \
            measure_pair()
    if warm_seconds * _WARM_FLOOR > cold_seconds:
        raise ReproError(
            "appbench warm-vs-cold inversion persists for %s: warm "
            "%.4fs vs cold %.4fs (floor %.0f%%) after %d re-measures — "
            "the warm pass is re-lowering instead of reusing its plan"
            % (label, warm_seconds, cold_seconds, 100 * _WARM_FLOOR,
               _WARM_RETRIES))
    return cold_seconds, cold_counts, warm_seconds, warm_counts


def app_corpus_by_name(name):
    """Resolve an app corpus name (``pinned``/``tiny``) to cell pairs."""
    try:
        return _APP_CORPORA[name]
    except KeyError:
        raise ReproError("unknown app perf corpus %r (expected %s)"
                         % (name, "/".join(sorted(_APP_CORPORA)))) from None


@dataclass(frozen=True)
class AppBenchCell:
    """Measured rates for one (scenario, chip) cell, launches/second."""

    scenario: str
    chip: str
    runs: int
    losses: int               #: loss-predicate observations (both engines)
    reference_lps: float
    fast_cold_lps: float      #: includes the one-off compile
    fast_warm_lps: float      #: compiled cell reused (steady state)
    speedup_cold: float
    speedup_warm: float
    identical: bool           #: same-seed histograms + losses matched
    #: Batch-engine columns (None when numpy is not installed).
    #: Speedups are against the fast warm rate; ``batch_equivalent``
    #: couples the distribution cross-check with loss-verdict agreement.
    batch_cold_lps: float = None
    batch_warm_lps: float = None
    batch_speedup_cold: float = None
    batch_speedup_warm: float = None
    batch_losses: int = None
    batch_tvd: float = None
    batch_equivalent: bool = None


def bench_app_cell(scenario_name, chip_short, runs=BENCH_APP_RUNS, seed=0,
                   intensity=BENCH_INTENSITY, repeats=3):
    """Measure one corpus cell; returns an :class:`AppBenchCell`."""
    from ..apps.scenario import get_scenario
    from ..harness.histogram import Histogram
    from ..sim.chip import CHIPS

    scenario = get_scenario(scenario_name)
    test = scenario.test()
    chip = CHIPS[chip_short]

    def reference():
        return GpuMachine(test, chip, intensity=intensity)

    def compiled():
        return compile_cell(test, chip, intensity=intensity)

    def batched(plan=None):
        return compile_batch_cell(test, chip, intensity=intensity, plan=plan)

    def pair(cold_setup, warm_machine):
        def measure():
            (c_sec, c_counts), (w_sec, w_counts) = _timed_set(
                [(None, cold_setup), (warm_machine, None)], runs, seed,
                repeats=repeats)
            return c_sec, c_counts, w_sec, w_counts
        return measure

    (ref_seconds, ref_counts), = _timed_set([(None, reference)], runs,
                                            seed, repeats=repeats)
    warm_cell = compile_cell(test, chip, intensity=intensity)
    run_batch(warm_cell, 50, random.Random(seed))  # pre-touch
    cold_seconds, cold_counts, warm_seconds, warm_counts = _warm_checked(
        "%s/%s fast" % (scenario_name, chip_short),
        pair(compiled, warm_cell))

    identical = ref_counts == cold_counts == warm_counts
    losses = Histogram(dict(ref_counts)).observations(test.condition)
    fast_losses = Histogram(dict(warm_counts)).observations(test.condition)
    identical = identical and losses == fast_losses

    batch = {}
    if have_numpy():
        # The warm cell reuses the cold pass's memoized analysis plan —
        # the steady state of a campaign worker behind the plan cache —
        # so a warm deficit can only be measurement noise (and trips
        # the warm-floor check rather than landing in the report).
        batch_cell = batched(batched().plan())
        run_batch(batch_cell, 50, random.Random(seed))  # pre-touch
        (batch_cold_seconds, _,
         batch_warm_seconds, batch_counts) = _warm_checked(
            "%s/%s batch" % (scenario_name, chip_short),
            pair(batched, batch_cell))
        batch_losses = Histogram(dict(batch_counts)).observations(
            test.condition)
        distance = tvd(warm_counts, batch_counts, runs)
        # Loss-*verdict* agreement, not loss-count equality: counts are
        # statistical, so only a decisive loss mass may contradict a
        # zero on the other engine.
        decisive = max(losses, batch_losses) >= 5
        verdict_ok = (not decisive) or ((losses > 0) == (batch_losses > 0))
        batch = {
            "batch_cold_lps": runs / batch_cold_seconds,
            "batch_warm_lps": runs / batch_warm_seconds,
            "batch_speedup_cold": warm_seconds / batch_cold_seconds,
            "batch_speedup_warm": warm_seconds / batch_warm_seconds,
            "batch_losses": batch_losses,
            "batch_tvd": distance,
            "batch_equivalent": (distance <= tvd_envelope(runs)
                                 and verdict_ok),
        }

    return AppBenchCell(
        scenario=scenario_name, chip=chip_short, runs=runs, losses=losses,
        reference_lps=runs / ref_seconds,
        fast_cold_lps=runs / cold_seconds,
        fast_warm_lps=runs / warm_seconds,
        speedup_cold=ref_seconds / cold_seconds,
        speedup_warm=ref_seconds / warm_seconds,
        identical=identical,
        **batch)


def bench_apps(corpus=APP_PINNED_CORPUS, runs=BENCH_APP_RUNS, seed=0,
               intensity=BENCH_INTENSITY, repeats=3):
    """Measure every corpus cell; returns a list of cells."""
    return [bench_app_cell(scenario, chip, runs=runs, seed=seed,
                           intensity=intensity, repeats=repeats)
            for scenario, chip in corpus]


def summarize_apps(cells):
    """Aggregate stats over measured cells (geomean/min speedups).

    App cells share the engine-bench cells' speedup/identical attribute
    names, so the summary schema is shared too — one place to change.
    """
    return summarize(cells)


#: Report schema version (bump on layout changes).  v2 added the batch
#: engine columns.
APP_SCHEMA_VERSION = 2


def write_app_report(path, cells, corpus_name, runs, seed, extra=None):
    """Write the ``BENCH_apps.json`` trajectory entry."""
    payload = {
        "version": APP_SCHEMA_VERSION,
        "benchmark": "apps",
        "corpus": corpus_name,
        "runs_per_cell": runs,
        "seed": seed,
        "cells": [
            {key: (round(value, 1) if isinstance(value, float) else value)
             for key, value in asdict(cell).items()}
            for cell in cells
        ],
        "summary": summarize_apps(cells),
    }
    if extra:
        payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False)
        handle.write("\n")
    return payload


def render_app_table(cells):
    """Human-readable comparison table for the console."""
    from .._util import format_table

    def opt(value, fmt):
        return "-" if value is None else fmt % value

    rows = [[cell.scenario, cell.chip, cell.runs, cell.losses,
             "%.0f" % cell.reference_lps,
             "%.0f" % cell.fast_warm_lps,
             opt(cell.batch_warm_lps, "%.0f"),
             "%.2fx" % cell.speedup_cold,
             "%.2fx" % cell.speedup_warm,
             opt(cell.batch_speedup_warm, "%.2fx"),
             "yes" if cell.identical else "NO",
             ("-" if cell.batch_equivalent is None
              else ("yes" if cell.batch_equivalent else "NO"))]
            for cell in cells]
    return format_table(
        ["scenario", "chip", "runs", "losses", "ref l/s", "fast-warm l/s",
         "batch-warm l/s", "fast cold", "fast warm", "batch/fast",
         "bit-identical", "batch-equiv"], rows)
