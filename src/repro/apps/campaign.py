"""Application campaigns: scenarios x chips through a shared Session.

The front door for running :mod:`repro.apps.scenario` scenarios at
scale.  Everything routes through :class:`repro.api.session.Session`
with an :class:`~repro.apps.backend.AppBackend`, so application
campaigns inherit the litmus campaigns' guarantees verbatim: sharded
parallel execution whose histograms merge bit-identically to the serial
order, two-tier result caching keyed by content fingerprint, in-plan
deduplication, and the fast/reference engine switch.

Results are ordinary :class:`~repro.api.result.SpecResult` /
:class:`~repro.api.result.CampaignResult` values whose observation
counts are the scenarios' *loss* counts (lost tasks, wrong sums,
isolation violations) — ``campaign.summary_table()`` therefore prints
the paper-style losses-per-100k grid of Sec. 3.2.

Example::

    from repro.apps import run_app_campaign, select_scenarios

    campaign = run_app_campaign(select_scenarios(["deque-mp", "ticket"]),
                                ["Titan", "HD7970"], runs=2000, jobs=4)
    print(campaign.summary_table())
"""

from ..api.result import CampaignResult
from ..api.session import Session
from .backend import DEFAULT_APP_SHARD_SIZE, AppBackend
from .scenario import STRESS, ScenarioSpec


def app_session(jobs=1, executor="thread", cache=True, cache_dir=None,
                shard_size=DEFAULT_APP_SHARD_SIZE, pool=None):
    """A :class:`Session` configured for application campaigns.

    ``shard_size`` is the session's decomposition unit (launches per
    parallel work unit) — the app default is finer than the sim
    backend's because launches cost more than litmus iterations.
    """
    return Session(backend=AppBackend(shard_size=shard_size), jobs=jobs,
                   executor=executor, cache=cache, cache_dir=cache_dir,
                   shard_size=shard_size, pool=pool)


def app_matrix(scenarios, chips, runs=None, seed=0, intensity=STRESS,
               engine=None, batch_tail=None):
    """Cartesian-product campaign plan: one :class:`ScenarioSpec` per
    (scenario, chip) cell — the app twin of :func:`repro.api.spec.matrix`."""
    specs = []
    for scenario in scenarios:
        for chip in chips:
            specs.append(ScenarioSpec.make(scenario, chip, runs=runs,
                                           seed=seed, intensity=intensity,
                                           engine=engine,
                                           batch_tail=batch_tail))
    return specs


def run_scenario(scenario, chip, runs=None, seed=0, intensity=STRESS,
                 engine=None, batch_tail=None, jobs=1, session=None):
    """Execute one scenario cell; returns its
    :class:`~repro.api.result.SpecResult` (``result.observations`` is
    the loss count over ``runs`` launches)."""
    if session is None:
        session = app_session(jobs=jobs)
    spec = ScenarioSpec.make(scenario, chip, runs=runs, seed=seed,
                             intensity=intensity, engine=engine,
                             batch_tail=batch_tail)
    return session.run_specs([spec])[0]


def run_app_campaign(scenarios, chips, runs=None, seed=0, intensity=STRESS,
                     engine=None, batch_tail=None, jobs=1, executor="thread",
                     cache_dir=None, session=None):
    """Plan and execute a scenarios x chips campaign; returns a
    :class:`~repro.api.result.CampaignResult` keyed by
    ``(scenario name, chip short)``."""
    if session is None:
        session = app_session(jobs=jobs, executor=executor,
                              cache_dir=cache_dir)
    specs = app_matrix(scenarios, chips, runs=runs, seed=seed,
                       intensity=intensity, engine=engine,
                       batch_tail=batch_tail)
    campaign = CampaignResult()
    for result in session.run_specs(specs):
        campaign.add(result)
    return campaign
