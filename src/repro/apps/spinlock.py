"""The published GPU spin locks the paper studies (Sec. 3.2.2-3.2.3).

Three locks, each in its published (buggy) and fixed form:

* :func:`cuda_by_example_lock` — Fig. 2, from Nvidia's *CUDA by Example*
  App. 1: CAS acquire, exchange release, **no fences**.  Nvidia published
  an erratum after the paper reported the bug.
* :func:`stuart_owens_lock` — the exchange-based lock of Stuart & Owens,
  who chose ``atomicExch`` *instead of* a fence "because the atomic queue
  has predictable behavior".
* :func:`he_yu_lock` — Fig. 10, from He & Yu's GPU transaction engine:
  the release is a plain store, and the trailing ``__threadfence`` sits
  *after* the release where it cannot help.

Each lock is a pair (acquire statements, release statements) to splice
into a kernel around a critical section.
"""

from ..compiler.cuda import (AddTo, AtomicCas, AtomicExchange, Cond, If,
                             Kernel, Load, Store, Threadfence, While,
                             do_while_cas_spin)
from .runtime import Grid

MUTEX = "mutex"


def cuda_by_example_lock(fenced):
    """Fig. 2: ``lock()``/``unlock()`` of CUDA by Example (App. 1).

    ``fenced=True`` adds the two ``__threadfence()`` calls marked ``(+)``
    in the paper — the fix Nvidia's erratum now requires.
    """
    acquire = [do_while_cas_spin(MUTEX)]
    if fenced:
        acquire.append(Threadfence())
    release = []
    if fenced:
        release.append(Threadfence())
    release.append(AtomicExchange("old", MUTEX, 0))
    return acquire, release


def stuart_owens_lock(fenced):
    """Stuart-Owens: acquire and release via unconditional exchange."""
    acquire = [While(Cond("got", "ne", 0),
                     body=(AtomicExchange("got", MUTEX, 1),))]
    if fenced:
        acquire.append(Threadfence())
    release = []
    if fenced:
        release.append(Threadfence())
    release.append(AtomicExchange("old", MUTEX, 0))
    return acquire, release


def he_yu_lock(fixed):
    """Fig. 10: the He-Yu transaction lock.

    The published version releases with a plain volatile store and fences
    *after* the release (useless).  The fix: fence at entry and exit,
    release via ``atomicExch`` (PTX annuls atomic guarantees when plain
    stores touch the same location, Sec. 3.2.3).
    """
    acquire = [do_while_cas_spin(MUTEX, var="lockValue")]
    if fixed:
        acquire.append(Threadfence())
    release = []
    if fixed:
        release.append(Threadfence())
        release.append(AtomicExchange("old", MUTEX, 0))
    else:
        release.append(Store(MUTEX, 0))
        release.append(Threadfence())  # the misplaced fence of Fig. 10
    return acquire, release


def _accumulate_kernel(lock, local_value):
    """One dot-product CTA: add a local partial sum into the global sum
    under the lock (CUDA by Example App. 1.2)."""
    acquire, release = lock
    body = [
        Load("temp", "sum"),
        AddTo("temp", "temp", local_value),
        Store("sum", "temp"),
    ]
    return Kernel(list(acquire) + body + list(release))


def dot_product(chip, lock_builder, fenced, locals_=(5, 7), runs=200, seed=0,
                intensity=1.0):
    """The paper's dot-product client: each CTA adds its partial sum to a
    global total under the lock.

    Returns ``(wrong_results, runs)``: how many launches produced a final
    sum different from ``sum(locals_)`` — the "incorrect results" the
    broken locks permit (Sec. 3.2.2).
    """
    lock = lock_builder(fenced)
    kernels = [_accumulate_kernel(lock, value) for value in locals_]
    grid = Grid(kernels, chip, init_mem={"sum": 0, MUTEX: 0},
                intensity=intensity)
    expected = sum(locals_)
    wrong = 0
    for result in grid.launch_many(runs, seed=seed):
        if result["sum"] != expected:
            wrong += 1
    return wrong, runs


def isolation_test(chip, fixed, runs=200, seed=0, intensity=1.0):
    """The He-Yu isolation scenario (Fig. 11 distilled back into CUDA).

    T0 holds the lock, reads ``x`` inside its critical section, releases.
    T1 acquires and writes ``x`` in the *next* critical section.  Under
    the buggy lock T0 can read T1's *future* value — an isolation
    violation.  Returns ``(violations, runs)``.
    """
    acquire, release = he_yu_lock(fixed)
    reader = Kernel([Load("r0", "x")] + list(release) + [Store("out", "r0")])
    writer = Kernel(
        [AtomicCas("got", MUTEX, 0, 1),
         If(Cond("got", "eq", 0), body=(Store("x", 1),))])
    grid = Grid([reader, writer], chip,
                init_mem={"x": 0, MUTEX: 1, "out": 0}, intensity=intensity)
    violations = 0
    for result in grid.launch_many(runs, seed=seed):
        if result["out"] == 1:
            violations += 1
    return violations, runs
