"""The published GPU spin locks the paper studies (Sec. 3.2.2-3.2.3).

Three locks, each in its published (buggy) and fixed form:

* :func:`cuda_by_example_lock` — Fig. 2, from Nvidia's *CUDA by Example*
  App. 1: CAS acquire, exchange release, **no fences**.  Nvidia published
  an erratum after the paper reported the bug.
* :func:`stuart_owens_lock` — the exchange-based lock of Stuart & Owens,
  who chose ``atomicExch`` *instead of* a fence "because the atomic queue
  has predictable behavior".
* :func:`he_yu_lock` — Fig. 10, from He & Yu's GPU transaction engine:
  the release is a plain store, and the trailing ``__threadfence`` sits
  *after* the release where it cannot help.

Each lock is a pair (acquire statements, release statements) to splice
into a kernel around a critical section.  :func:`ticket_kernel` adds a
ticket-lock counter client (plain-store handoff between tickets — the
same unfenced release-vs-critical-section race, without any atomic in
the release path).

The clients (:func:`dot_product`, :func:`isolation_test`) are thin
wrappers over the declarative registry of :mod:`repro.apps.scenario`,
executed through the sharded, memoising campaign pipeline of
:mod:`repro.apps.campaign`.
"""

from ..compiler.cuda import (AddTo, AtomicCas, AtomicExchange, Cond, If,
                             Kernel, Load, Store, Threadfence, While,
                             do_while_cas_spin)

MUTEX = "mutex"

#: Ticket-lock locations: the handoff index and the protected counter.
SERVING, COUNTER = "serving", "counter"


def cuda_by_example_lock(fenced):
    """Fig. 2: ``lock()``/``unlock()`` of CUDA by Example (App. 1).

    ``fenced=True`` adds the two ``__threadfence()`` calls marked ``(+)``
    in the paper — the fix Nvidia's erratum now requires.
    """
    acquire = [do_while_cas_spin(MUTEX)]
    if fenced:
        acquire.append(Threadfence())
    release = []
    if fenced:
        release.append(Threadfence())
    release.append(AtomicExchange("old", MUTEX, 0))
    return acquire, release


def stuart_owens_lock(fenced):
    """Stuart-Owens: acquire and release via unconditional exchange."""
    acquire = [While(Cond("got", "ne", 0),
                     body=(AtomicExchange("got", MUTEX, 1),))]
    if fenced:
        acquire.append(Threadfence())
    release = []
    if fenced:
        release.append(Threadfence())
    release.append(AtomicExchange("old", MUTEX, 0))
    return acquire, release


def he_yu_lock(fixed):
    """Fig. 10: the He-Yu transaction lock.

    The published version releases with a plain volatile store and fences
    *after* the release (useless).  The fix: fence at entry and exit,
    release via ``atomicExch`` (PTX annuls atomic guarantees when plain
    stores touch the same location, Sec. 3.2.3).
    """
    acquire = [do_while_cas_spin(MUTEX, var="lockValue")]
    if fixed:
        acquire.append(Threadfence())
    release = []
    if fixed:
        release.append(Threadfence())
        release.append(AtomicExchange("old", MUTEX, 0))
    else:
        release.append(Store(MUTEX, 0))
        release.append(Threadfence())  # the misplaced fence of Fig. 10
    return acquire, release


#: The lock builders by registry key — the vocabulary shared by the
#: scenario registry, the CLI and the docs.
LOCKS = {
    "cbe": cuda_by_example_lock,
    "so": stuart_owens_lock,
    "heyu": he_yu_lock,
}


def accumulate_kernel(lock, local_value):
    """One dot-product CTA: add a local partial sum into the global sum
    under the lock (CUDA by Example App. 1.2)."""
    acquire, release = lock
    body = [
        Load("temp", "sum"),
        AddTo("temp", "temp", local_value),
        Store("sum", "temp"),
    ]
    return Kernel(list(acquire) + body + list(release))


def ticket_kernel(ticket, local_value, fenced):
    """One ticket-lock client: spin until served, bump the counter, hand
    the lock to the next ticket with a plain volatile store.

    Tickets are pre-assigned (thread *i* holds ticket *i* — the
    deterministic handoff order a 2-CTA ticket lock produces anyway), so
    the scenario isolates the *release* race: without the fences, the
    ``serving`` handoff can overtake the critical section's ``counter``
    write, and the next ticket reads a stale counter — a lost increment
    with no atomic anywhere in the release path.
    """
    statements = [While(Cond("s", "ne", ticket),
                        body=(Load("s", SERVING, volatile=True),))]
    if fenced:
        statements.append(Threadfence())
    statements.extend([
        Load("tmp", COUNTER),
        AddTo("tmp", "tmp", local_value),
        Store(COUNTER, "tmp"),
    ])
    if fenced:
        statements.append(Threadfence())
    statements.append(Store(SERVING, ticket + 1, volatile=True))
    return Kernel(statements)


def _lock_key(lock_builder):
    for key, builder in LOCKS.items():
        if builder is lock_builder:
            return key
    return None


def dot_product(chip, lock_builder, fenced, locals_=(5, 7), runs=200, seed=0,
                intensity=1.0, engine=None, jobs=1, session=None,
                placement="inter-cta"):
    """The paper's dot-product client: each CTA adds its partial sum to a
    global total under the lock.

    Returns ``(wrong_results, runs)``: how many launches produced a final
    sum different from ``sum(locals_)`` — the "incorrect results" the
    broken locks permit (Sec. 3.2.2).
    """
    from .campaign import run_scenario
    from .scenario import dot_product_scenario

    key = _lock_key(lock_builder)
    if key is not None:
        scenario = dot_product_scenario(key, fenced, placement=placement,
                                        locals_=tuple(locals_))
    else:
        # An unregistered lock builder: build an ad-hoc scenario around it.
        from .scenario import make_dot_scenario
        scenario = make_dot_scenario("dot-custom", lock_builder, fenced,
                                     placement=placement,
                                     locals_=tuple(locals_))
    result = run_scenario(scenario, chip, runs=runs, seed=seed,
                          intensity=intensity, engine=engine, jobs=jobs,
                          session=session)
    return result.observations, runs


def ticket_counter(chip, fenced, locals_=(5, 7), runs=200, seed=0,
                   intensity=1.0, engine=None, jobs=1, session=None):
    """The ticket-lock counter client.  Returns ``(wrong_results, runs)``."""
    from .campaign import run_scenario
    from .scenario import get_scenario, ticket_counter_scenario

    if tuple(locals_) == (5, 7):  # the registry's canonical client
        scenario = get_scenario("ticket" + ("+fenced" if fenced else ""))
    else:
        scenario = ticket_counter_scenario(fenced, locals_=tuple(locals_))
    result = run_scenario(scenario, chip, runs=runs, seed=seed,
                          intensity=intensity, engine=engine, jobs=jobs,
                          session=session)
    return result.observations, runs


def isolation_test(chip, fixed, runs=200, seed=0, intensity=1.0, engine=None,
                   jobs=1, session=None):
    """The He-Yu isolation scenario (Fig. 11 distilled back into CUDA).

    T0 holds the lock, reads ``x`` inside its critical section, releases.
    T1 acquires and writes ``x`` in the *next* critical section.  Under
    the buggy lock T0 can read T1's *future* value — an isolation
    violation.  Returns ``(violations, runs)``.
    """
    from .campaign import run_scenario
    result = run_scenario("isolation" + ("+fenced" if fixed else ""), chip,
                          runs=runs, seed=seed, intensity=intensity,
                          engine=engine, jobs=jobs, session=session)
    return result.observations, runs


def reader_kernel(fixed):
    """The isolation scenario's T0: read ``x`` in the critical section it
    already holds, then release with the (published or fixed) He-Yu
    release sequence."""
    _, release = he_yu_lock(fixed)
    return Kernel([Load("r0", "x")] + list(release) + [Store("out", "r0")])


def writer_kernel():
    """The isolation scenario's T1: acquire (one CAS attempt) and write
    ``x`` in its own critical section."""
    return Kernel(
        [AtomicCas("got", MUTEX, 0, 1),
         If(Cond("got", "eq", 0), body=(Store("x", 1),))])
