"""The Cederman-Tsigas work-stealing deque (Sec. 3.2.1, Fig. 6).

The GPU Computing Gems implementation assumes no weak memory behaviour:
it uses no fences.  The paper distils two bugs, both of which lose a
task:

* **message passing** (Fig. 7): a steal sees the incremented ``tail`` but
  reads a *stale* task from the ``tasks`` array;
* **load buffering** (Fig. 8): a steal reads the task pushed by a *later*
  pop-then-push, while the pop's CAS reads the steal's CAS.

This module implements the deque operations as CUDA-eDSL kernels (one
deque slot — the distilled scenarios touch a single index) in published
and fixed (fenced) variants, plus a two-slot *round trip* (owner pushes,
thief steals and hands a processed task back through the second slot).

The scenario drivers (:func:`mp_scenario`, :func:`lb_scenario`) are thin
wrappers over the declarative registry of :mod:`repro.apps.scenario`,
executed through the sharded, memoising campaign pipeline of
:mod:`repro.apps.campaign` — losses are counted by each scenario's loss
predicate over the outcome histogram.
"""

from ..compiler.cuda import (AddTo, AtomicCas, AtomicExchange, Cond, If,
                             Kernel, Load, Store, Threadfence)

#: Memory locations: one task slot, the two volatile indices of Fig. 6.
TASK, HEAD, TAIL = "task0", "head", "tail"

#: The second slot of the round-trip scenario: the thief publishes its
#: processed task here and bumps the matching index.
TASK2, TAIL2 = "task1", "tail2"


def push_kernel(task_value, fenced):
    """``push(task)`` (Fig. 6 lines 2-5): write the task, bump ``tail``.

    The fix (line 4, ``(+)``): a ``__threadfence()`` between the task
    write and the ``tail`` increment.
    """
    statements = [Store(TASK, task_value)]
    if fenced:
        statements.append(Threadfence())
    statements.extend([
        Load("t", TAIL, volatile=True),
        AddTo("t", "t", 1),
        Store(TAIL, "t", volatile=True),
    ])
    return Kernel(statements)


def steal_kernel(fenced):
    """``steal()`` (Fig. 6 lines 6-14): read ``tail``; if work is
    available read the task and claim it with a CAS on ``head``.

    The published code reads the task with no fence on either side; the
    fix adds fences before and after the task read (lines 9 and 11).
    The stolen task value is reported in ``stolen`` and the steal's
    success in ``claimed``.
    """
    statements = [Load("old", TAIL, volatile=True)]
    body = []
    if fenced:
        body.append(Threadfence())
    body.append(Load("task", TASK))
    if fenced:
        body.append(Threadfence())
    body.extend([
        AtomicCas("claimed", HEAD, 0, 1),
        Store("stolen", "task"),
        Store("claimed_out", "claimed"),
    ])
    statements.append(If(Cond("old", "ne", 0), body=tuple(body)))
    return Kernel(statements)


def pop_then_push_kernel(task_value, fenced):
    """The pop-returns-empty-then-push sequence of Fig. 8's left thread
    (Fig. 6 lines 15-25 followed by a push to the same slot).

    The pop's CAS on ``head`` observes whether a steal got there first;
    the fix (line 21, ``(+)``) fences between the CAS and the later push
    (and the reset of ``head`` uses ``atomicExch``, line 23).
    """
    statements = [AtomicCas("r0", HEAD, 0, 1)]
    if fenced:
        statements.append(Threadfence())
    statements.extend([
        Store("popped_out", "r0"),
        Store(TASK, task_value),
    ])
    if fenced:
        statements.append(AtomicExchange("reset", HEAD, 0))
    return Kernel(statements)


def owner_roundtrip_kernel(task_value, fenced):
    """The round trip's owner: push a task to slot 0, then try to pop
    the thief's processed task from slot 1.

    The pop polls ``tail2`` once (launches where the thief has not
    published yet simply see nothing) and, when the index has moved,
    reads the second slot — the same push/steal shapes as Fig. 6, so the
    fix is the same fence placement.
    """
    statements = [Store(TASK, task_value)]
    if fenced:
        statements.append(Threadfence())
    statements.extend([
        Load("t", TAIL, volatile=True),
        AddTo("t", "t", 1),
        Store(TAIL, "t", volatile=True),
        Load("t2", TAIL2, volatile=True),
    ])
    body = []
    if fenced:
        body.append(Threadfence())
    body.extend([
        Load("r", TASK2),
        Store("got", "r"),
    ])
    statements.append(If(Cond("t2", "ne", 0), body=tuple(body)))
    return Kernel(statements)


def thief_roundtrip_kernel(result_value, fenced):
    """The round trip's thief: steal slot 0, publish the processed task
    in slot 1 and bump ``tail2`` — a second, reversed push whose missing
    fence (between the slot-1 write and the ``tail2`` bump) loses the
    processed task on weak chips exactly like Fig. 7's.
    """
    statements = [Load("t", TAIL, volatile=True)]
    body = []
    if fenced:
        body.append(Threadfence())
    body.append(Load("task", TASK))
    if fenced:
        body.append(Threadfence())
    body.extend([
        AtomicCas("claimed", HEAD, 0, 1),
        Store("stolen", "task"),
        Store(TASK2, result_value),
    ])
    if fenced:
        body.append(Threadfence())
    body.extend([
        Load("t2", TAIL2, volatile=True),
        AddTo("t2", "t2", 1),
        Store(TAIL2, "t2", volatile=True),
    ])
    statements.append(If(Cond("t", "ne", 0), body=tuple(body)))
    return Kernel(statements)


def _variant(fenced):
    return "+fenced" if fenced else ""


def mp_scenario(chip, fenced, runs=300, seed=0, intensity=1.0, engine=None,
                jobs=1, session=None):
    """Fig. 7's scenario: T0 pushes task 1, T1 steals.

    A *lost task* is a steal that saw the new ``tail`` (tail=1) but read
    the stale task slot (stolen=0).  Returns ``(lost, runs)``.
    """
    from .campaign import run_scenario
    result = run_scenario("deque-mp" + _variant(fenced), chip, runs=runs,
                          seed=seed, intensity=intensity, engine=engine,
                          jobs=jobs, session=session)
    return result.observations, runs


def lb_scenario(chip, fenced, runs=300, seed=0, intensity=1.0, engine=None,
                jobs=1, session=None):
    """Fig. 8's scenario: T0 pops (CAS) then pushes task 1; T1 steals.

    The lost-task signature: T0's CAS read the steal's claim (``r0=1``,
    so the pop returned FAILED) *and* the steal read the later push
    (``stolen=1``) — the deque lost a task.  Returns ``(lost, runs)``.
    """
    from .campaign import run_scenario
    result = run_scenario("deque-lb" + _variant(fenced), chip, runs=runs,
                          seed=seed, intensity=intensity, engine=engine,
                          jobs=jobs, session=session)
    return result.observations, runs


def roundtrip_scenario(chip, fenced, runs=300, seed=0, intensity=1.0,
                       engine=None, jobs=1, session=None):
    """The two-slot round trip: owner pushes, thief steals and hands the
    processed task back through slot 1.

    A loss is either leg going stale: the thief saw the new ``tail`` but
    stole the empty slot, or the owner saw the new ``tail2`` but read
    slot 1 before the thief's write landed.  Returns ``(lost, runs)``.
    """
    from .campaign import run_scenario
    result = run_scenario("deque-rt" + _variant(fenced), chip, runs=runs,
                          seed=seed, intensity=intensity, engine=engine,
                          jobs=jobs, session=session)
    return result.observations, runs
