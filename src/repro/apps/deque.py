"""The Cederman-Tsigas work-stealing deque (Sec. 3.2.1, Fig. 6).

The GPU Computing Gems implementation assumes no weak memory behaviour:
it uses no fences.  The paper distils two bugs, both of which lose a
task:

* **message passing** (Fig. 7): a steal sees the incremented ``tail`` but
  reads a *stale* task from the ``tasks`` array;
* **load buffering** (Fig. 8): a steal reads the task pushed by a *later*
  pop-then-push, while the pop's CAS reads the steal's CAS.

This module implements the deque operations as CUDA-eDSL kernels (one
deque slot — the distilled scenarios touch a single index) in published
and fixed (fenced) variants, plus scenario drivers that count lost
tasks over many launches.
"""

from ..compiler.cuda import (AddTo, AtomicCas, AtomicExchange, Cond, If,
                             Kernel, Load, Store, Threadfence)
from .runtime import Grid

#: Memory locations: one task slot, the two volatile indices of Fig. 6.
TASK, HEAD, TAIL = "task0", "head", "tail"


def push_kernel(task_value, fenced):
    """``push(task)`` (Fig. 6 lines 2-5): write the task, bump ``tail``.

    The fix (line 4, ``(+)``): a ``__threadfence()`` between the task
    write and the ``tail`` increment.
    """
    statements = [Store(TASK, task_value)]
    if fenced:
        statements.append(Threadfence())
    statements.extend([
        Load("t", TAIL, volatile=True),
        AddTo("t", "t", 1),
        Store(TAIL, "t", volatile=True),
    ])
    return Kernel(statements)


def steal_kernel(fenced):
    """``steal()`` (Fig. 6 lines 6-14): read ``tail``; if work is
    available read the task and claim it with a CAS on ``head``.

    The published code reads the task with no fence on either side; the
    fix adds fences before and after the task read (lines 9 and 11).
    The stolen task value is reported in ``stolen`` and the steal's
    success in ``claimed``.
    """
    statements = [Load("old", TAIL, volatile=True)]
    body = []
    if fenced:
        body.append(Threadfence())
    body.append(Load("task", TASK))
    if fenced:
        body.append(Threadfence())
    body.extend([
        AtomicCas("claimed", HEAD, 0, 1),
        Store("stolen", "task"),
        Store("claimed_out", "claimed"),
    ])
    statements.append(If(Cond("old", "ne", 0), body=tuple(body)))
    return Kernel(statements)


def pop_then_push_kernel(task_value, fenced):
    """The pop-returns-empty-then-push sequence of Fig. 8's left thread
    (Fig. 6 lines 15-25 followed by a push to the same slot).

    The pop's CAS on ``head`` observes whether a steal got there first;
    the fix (line 21, ``(+)``) fences between the CAS and the later push
    (and the reset of ``head`` uses ``atomicExch``, line 23).
    """
    statements = [AtomicCas("r0", HEAD, 0, 1)]
    if fenced:
        statements.append(Threadfence())
    statements.extend([
        Store("popped_out", "r0"),
        Store(TASK, task_value),
    ])
    if fenced:
        statements.append(AtomicExchange("reset", HEAD, 0))
    return Kernel(statements)


def mp_scenario(chip, fenced, runs=300, seed=0, intensity=1.0):
    """Fig. 7's scenario: T0 pushes task 1, T1 steals.

    A *lost task* is a steal that saw the new ``tail`` (tail=1) but read
    the stale task slot (stolen=0).  Returns ``(lost, runs)``.
    """
    grid = Grid([push_kernel(1, fenced), steal_kernel(fenced)], chip,
                init_mem={TASK: 0, HEAD: 0, TAIL: 0,
                          "stolen": -1, "claimed_out": -1},
                intensity=intensity)
    lost = 0
    for result in grid.launch_many(runs, seed=seed):
        if result[TAIL] == 1 and result["stolen"] == 0:
            lost += 1
    return lost, runs


def lb_scenario(chip, fenced, runs=300, seed=0, intensity=1.0):
    """Fig. 8's scenario: T0 pops (CAS) then pushes task 1; T1 steals.

    The lost-task signature: T0's CAS read the steal's claim (``r0=1``,
    so the pop returned FAILED) *and* the steal read the later push
    (``stolen=1``) — the deque lost a task.  Returns ``(lost, runs)``.
    """
    grid = Grid([pop_then_push_kernel(1, fenced), steal_kernel(fenced)], chip,
                init_mem={TASK: 0, HEAD: 0, TAIL: 1,
                          "stolen": -1, "claimed_out": -1,
                          "popped_out": -1},
                intensity=intensity)
    lost = 0
    for result in grid.launch_many(runs, seed=seed):
        if result["popped_out"] == 1 and result["stolen"] == 1:
            lost += 1
    return lost, runs
