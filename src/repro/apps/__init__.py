"""Published GPU applications the paper studies, on the simulator."""

from .deque import lb_scenario, mp_scenario, pop_then_push_kernel, push_kernel, steal_kernel
from .runtime import Grid, LaunchResult, launch
from .spinlock import (cuda_by_example_lock, dot_product, he_yu_lock,
                       isolation_test, stuart_owens_lock)

__all__ = [
    "lb_scenario", "mp_scenario", "pop_then_push_kernel", "push_kernel",
    "steal_kernel",
    "Grid", "LaunchResult", "launch",
    "cuda_by_example_lock", "dot_product", "he_yu_lock", "isolation_test",
    "stuart_owens_lock",
]
