"""Published GPU applications the paper studies, on the simulator.

Three layers:

* :mod:`~repro.apps.runtime` — the mini CUDA runtime (``Grid``,
  ``launch``) for one-off launches;
* :mod:`~repro.apps.scenario` — the declarative scenario corpus
  (kernels + init memory + placement + projection + loss predicate) and
  its registry;
* :mod:`~repro.apps.campaign` / :mod:`~repro.apps.backend` — scenario
  campaigns on the sharded, memoising ``repro.api`` Session stack.
"""

from .deque import (lb_scenario, mp_scenario, owner_roundtrip_kernel,
                    pop_then_push_kernel, push_kernel, roundtrip_scenario,
                    steal_kernel, thief_roundtrip_kernel)
from .runtime import Grid, LaunchResult, build_launch_test, launch
from .spinlock import (LOCKS, cuda_by_example_lock, dot_product, he_yu_lock,
                       isolation_test, stuart_owens_lock, ticket_counter,
                       ticket_kernel)
from .scenario import (DEFAULT_RUNS, FAMILIES, SCENARIOS, STRESS, Scenario,
                       ScenarioSpec, dot_product_scenario, get_scenario,
                       select_scenarios)
from .backend import DEFAULT_APP_SHARD_SIZE, AppBackend
from .campaign import (app_matrix, app_session, run_app_campaign,
                       run_scenario)

__all__ = [
    "lb_scenario", "mp_scenario", "owner_roundtrip_kernel",
    "pop_then_push_kernel", "push_kernel", "roundtrip_scenario",
    "steal_kernel", "thief_roundtrip_kernel",
    "Grid", "LaunchResult", "build_launch_test", "launch",
    "LOCKS", "cuda_by_example_lock", "dot_product", "he_yu_lock",
    "isolation_test", "stuart_owens_lock", "ticket_counter",
    "ticket_kernel",
    "DEFAULT_RUNS", "FAMILIES", "SCENARIOS", "STRESS", "Scenario",
    "ScenarioSpec", "dot_product_scenario", "get_scenario",
    "select_scenarios",
    "DEFAULT_APP_SHARD_SIZE", "AppBackend",
    "app_matrix", "app_session", "run_app_campaign", "run_scenario",
]
