"""A mini CUDA-like runtime: launch eDSL kernels on the simulator.

The paper's application studies (the spin locks of Figs. 2 and 10, the
work-stealing deque of Fig. 6) are CUDA programs.  This runtime lowers
:class:`~repro.compiler.cuda.Kernel` bodies through the Table 5 mapping
and executes them as a grid on a simulated chip, returning the final
memory image — the GPU-side of ``cudaMemcpy`` back to the host.

A :class:`Grid` compiles its kernels into a litmus-shaped
:class:`~repro.litmus.test.LitmusTest` once and binds it to a machine on
either simulation engine (``fast``: a
:class:`~repro.sim.compile.CompiledCell` built once and reused across
launches — the spin-loop kernels of the application studies are exactly
the shapes the compiler specialises best; ``reference``: the generic
:class:`~repro.sim.machine.GpuMachine` interpreter).  Both those
engines consume the ``Random`` stream identically, so
:meth:`Grid.launch` / :meth:`Grid.launch_many` return bit-identical
results on either — they are the RNG-stream-parity wrappers over
:func:`~repro.sim.engine.run_batch`'s batched loop.  ``engine="batch"``
(:mod:`repro.sim.batch`) also works here — :meth:`Grid.launch_batch`
then executes all runs as one numpy lockstep batch, with
distribution-equivalent (not bit-identical) outcome histograms.

Campaign-scale application runs should not loop over ``launch_many``;
they go through :mod:`repro.apps.campaign`, which shards
:class:`~repro.apps.scenario.ScenarioSpec` runs across a session pool
and memoises outcome histograms.
"""

import random
from dataclasses import dataclass

from ..compiler.cuda import compile_kernel
from ..errors import ConfigurationError
from ..hierarchy import MemoryMap, ScopeTree
from ..litmus.condition import trivial_condition
from ..litmus.test import LitmusTest
from ..sim.chip import CHIPS, ChipProfile
from ..sim.compile import compile_cell
from ..sim.engine import resolve_engine, run_batch
from ..sim.machine import GpuMachine


@dataclass
class LaunchResult:
    """Final memory image of one kernel launch."""

    memory: dict  # location name -> final value

    def __getitem__(self, location):
        return self.memory[location]


def _as_chip(chip):
    """Accept a :class:`ChipProfile` or a Table 1 short name."""
    if isinstance(chip, ChipProfile):
        return chip
    try:
        return CHIPS[chip]
    except KeyError:
        raise ConfigurationError(
            "unknown chip %r; valid chips: %s"
            % (chip, ", ".join(sorted(CHIPS)))) from None


def build_launch_test(kernels, init_mem, condition=None, placement="inter-cta",
                      shared=(), name="kernel-launch"):
    """Lower CUDA-eDSL kernels into a launch-shaped :class:`LitmusTest`.

    One kernel per thread, placed per ``placement``
    (``inter-cta``/``intra-cta``/``intra-warp``).  ``condition`` defaults
    to the trivial (always-true) condition — a plain launch asserts
    nothing; scenario campaigns install their loss predicate here so
    histogram observation counts read as loss counts.
    """
    if not init_mem:
        raise ValueError("a launch needs at least one memory location")
    programs = tuple(compile_kernel(kernel, tid)
                     for tid, kernel in enumerate(kernels))
    names = [program.name for program in programs]
    return LitmusTest(
        name=name, threads=programs,
        scope_tree=ScopeTree.for_threads(names, placement),
        memory_map=MemoryMap({location: "shared" for location in shared}),
        init_mem=dict(init_mem),
        condition=condition if condition is not None else trivial_condition())


class Grid:
    """A compiled grid: one kernel per thread, ready to launch.

    ``engine`` picks the execution engine (``None`` defers to
    ``REPRO_ENGINE``, default ``fast``); ``reference`` and ``fast``
    results are bit-identical for the same seed, ``batch`` results are
    deterministic in the seed but follow the batch RNG-stream contract
    (distribution-equivalent histograms).
    """

    def __init__(self, kernels, chip, init_mem, placement="inter-cta",
                 shared=(), intensity=1.0, engine=None, condition=None,
                 name="kernel-launch"):
        self.chip = _as_chip(chip)
        self.test = build_launch_test(kernels, init_mem, condition=condition,
                                      placement=placement, shared=shared,
                                      name=name)
        self.engine = resolve_engine(engine)
        if self.engine == "fast":
            self.machine = compile_cell(self.test, self.chip,
                                        intensity=intensity)
        elif self.engine == "batch":
            from ..sim.batch import compile_batch_cell
            self.machine = compile_batch_cell(self.test, self.chip,
                                              intensity=intensity)
        else:
            self.machine = GpuMachine(self.test, self.chip,
                                      intensity=intensity)

    def launch(self, seed=0):
        """Run the grid once; returns a :class:`LaunchResult`."""
        state = self.machine.run_once(random.Random(seed))
        return LaunchResult(memory=state.mem_dict())

    def launch_many(self, runs, seed=0):
        """Run the grid ``runs`` times; yields LaunchResults.

        One ``Random(seed)`` stream drives all runs in sequence — the
        same stream :meth:`launch_batch` (and a single-shard app
        campaign) consumes, so per-run inspection and batched counting
        agree bit for bit.
        """
        rng = random.Random(seed)
        for _ in range(runs):
            state = self.machine.run_once(rng)
            yield LaunchResult(memory=state.mem_dict())

    def launch_batch(self, runs, seed=0, histogram=None):
        """Run the grid ``runs`` times into an outcome histogram.

        The batched twin of :meth:`launch_many` on
        :func:`~repro.sim.engine.run_batch`: same stream, same final
        states, but accumulated as a
        :class:`~repro.harness.histogram.Histogram` of full (unprojected)
        final states instead of per-run dicts.
        """
        return run_batch(self.machine, runs, random.Random(seed), histogram)


def launch(kernels, chip, init_mem, placement="inter-cta", shared=(),
           seed=0, intensity=1.0, engine=None):
    """One-shot convenience wrapper around :class:`Grid`."""
    grid = Grid(kernels, chip, init_mem, placement=placement, shared=shared,
                intensity=intensity, engine=engine)
    return grid.launch(seed=seed)
