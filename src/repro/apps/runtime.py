"""A mini CUDA-like runtime: launch eDSL kernels on the simulator.

The paper's application studies (the spin locks of Figs. 2 and 10, the
work-stealing deque of Fig. 6) are CUDA programs.  This runtime lowers
:class:`~repro.compiler.cuda.Kernel` bodies through the Table 5 mapping
and executes them as a grid on a simulated chip, returning the final
memory image — the GPU-side of ``cudaMemcpy`` back to the host.
"""

import random
from dataclasses import dataclass

from ..compiler.cuda import compile_kernel
from ..hierarchy import MemoryMap, ScopeTree
from ..litmus.condition import Condition, MemEq
from ..litmus.test import LitmusTest
from ..sim.chip import CHIPS, ChipProfile
from ..sim.machine import GpuMachine


@dataclass
class LaunchResult:
    """Final state of one kernel launch."""

    memory: dict  # location name -> final value
    iterations: int = 1

    def __getitem__(self, location):
        return self.memory[location]


def _as_chip(chip):
    return chip if isinstance(chip, ChipProfile) else CHIPS[chip]


class Grid:
    """A compiled grid: one kernel per thread, ready to launch."""

    def __init__(self, kernels, chip, init_mem, placement="inter-cta",
                 shared=(), intensity=1.0):
        self.chip = _as_chip(chip)
        programs = tuple(compile_kernel(kernel, tid)
                         for tid, kernel in enumerate(kernels))
        names = [program.name for program in programs]
        locations = sorted(init_mem)
        if not locations:
            raise ValueError("a launch needs at least one memory location")
        # The condition is a placeholder: applications read final memory,
        # not litmus conditions.
        condition = Condition("exists", MemEq(locations[0],
                                              init_mem[locations[0]]))
        self.test = LitmusTest(
            name="kernel-launch", threads=programs,
            scope_tree=ScopeTree.for_threads(names, placement),
            memory_map=MemoryMap({name: "shared" for name in shared}),
            init_mem=dict(init_mem), condition=condition)
        self.machine = GpuMachine(self.test, self.chip, intensity=intensity)

    def launch(self, seed=0):
        """Run the grid once; returns a :class:`LaunchResult`."""
        state = self.machine.run_once(random.Random(seed))
        return LaunchResult(memory=state.mem_dict())

    def launch_many(self, runs, seed=0):
        """Run the grid ``runs`` times; yields LaunchResults."""
        rng = random.Random(seed)
        for _ in range(runs):
            state = self.machine.run_once(rng)
            yield LaunchResult(memory=state.mem_dict())


def launch(kernels, chip, init_mem, placement="inter-cta", shared=(),
           seed=0, intensity=1.0):
    """One-shot convenience wrapper around :class:`Grid`."""
    grid = Grid(kernels, chip, init_mem, placement=placement, shared=shared,
                intensity=intensity)
    return grid.launch(seed=seed)
