"""The application backend: scenario campaigns on the campaign stack.

:class:`AppBackend` implements the :class:`repro.api.backends.Backend`
protocol for :class:`~repro.apps.scenario.ScenarioSpec` cells, which is
what buys application campaigns everything PRs 1-4 built for litmus
campaigns — deterministic sharded parallel execution, two-tier result
caching, in-plan deduplication and session accounting — without the
session layer knowing scenarios exist:

* **sharding** — a spec's launches split into fixed-size shards through
  the shared planner (:func:`repro.api.backends.plan_shards`); shard 0
  runs on the spec's own seed, so a single-shard campaign cell consumes
  the exact ``Random`` stream of ``Grid.launch_many`` (driver parity),
  and later shards derive their seeds from the fingerprint.
* **engines** — ``spec.engine`` picks ``fast`` (one
  :func:`repro.sim.compile.compile_cell` per scenario x chip x
  intensity, memoised per worker thread and reused across shards; the
  spin-loop kernels compile once and the machine state is reused across
  launches), ``batch`` (the numpy lockstep lowering of
  :mod:`repro.sim.batch` — one :func:`~repro.sim.batch.compile_batch_cell`
  per cell under the same memo discipline, each shard executed as one
  structure-of-arrays batch) or ``reference`` (the generic
  interpreter).  ``reference``/``fast`` are bit-identical; ``batch`` is
  distribution-equivalent under the documented seeded stream-break, and
  all three are kept apart in the cache signature.
* **projection** — each shard's raw histogram is folded onto the
  scenario's observable locations before it leaves the backend, so the
  cache stores (and campaigns merge) the projected outcome histograms
  the loss predicates read.
"""

import random
import threading

from ..api.backends import Backend, plan_shards
from ..harness.histogram import Histogram
from ..litmus.writer import write_litmus
from ..sim.batch import compile_batch_cell
from ..sim.compile import compile_cell
from ..sim.engine import run_batch
from ..sim.machine import GpuMachine

#: Default launches per shard.  Application launches are an order of
#: magnitude slower than litmus iterations (spin loops, multi-statement
#: critical sections), so app campaigns shard finer than the sim
#: backend's 25k: a paper-scale 100k-launch cell splits into ten
#: parallelisable shards while every interactive/test-sized cell still
#: fits in one shard and reproduces the serial driver stream exactly.
#: The batch engine sizes its own chunks adaptively from the cell's
#: retirement profile (see :func:`repro.sim.batch.compile_batch_cell`),
#: so the shard is a pure parallelism granule — wide shards keep the
#: numpy lockstep dense instead of fragmenting it.
DEFAULT_APP_SHARD_SIZE = 10000


class AppBackend(Backend):
    """Scenario execution on the simulated chips (Secs. 3.2, 6-7)."""

    name = "app"
    supports_sharding = True

    #: Compiled-cell memo cap per worker thread.
    MAX_COMPILED = 128

    def __init__(self, shard_size=DEFAULT_APP_SHARD_SIZE):
        self.shard_size = shard_size
        # Per-*thread* memo: a CompiledCell mutates its own machine state
        # during run_once, so two pool threads must never share one.
        self._local = threading.local()
        # Plan-cache directory — a plain string so it pickles into
        # process-pool workers, which then share lowered batch plans
        # instead of re-analysing per process (see
        # :mod:`repro.sim.plancache`).
        self.plan_dir = None

    def set_plan_cache(self, directory):
        """Share lowered batch plans through ``directory`` (None
        disables)."""
        self.plan_dir = directory

    def __getstate__(self):
        # Compiled cells hold closures; drop the memo when a process
        # pool pickles the backend into its workers.
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()

    def cache_signature(self, spec):
        """Fingerprint plus engine — same rationale as the sim backend:
        the fingerprint stays engine-neutral, but a histogram cached by
        one engine must never mask a divergence in another (and batch
        histograms are only distribution-equivalent).  The batch tail
        joins for batch cells: different tails are different RNG
        streams and must not share entries."""
        if spec.engine == "batch":
            return "%s-%s-tail%g" % (spec.fingerprint(), spec.engine,
                                     spec.batch_tail)
        return "%s-%s" % (spec.fingerprint(), spec.engine)

    def cache_variant(self, spec, shard_size):
        """Per-shard seeding makes the histogram a function of the
        effective decomposition, exactly as for the sim backend."""
        return "shard%d" % min(shard_size, spec.iterations)

    def _machine(self, spec):
        if spec.engine in ("fast", "batch"):
            cells = getattr(self._local, "cells", None)
            if cells is None:
                cells = self._local.cells = {}
            # Key on what the compiled cell depends on — the engine, the
            # scenario's compiled litmus text, the chip profile and the
            # intensity — so run/seed variants of one cell share a
            # compilation.
            key = (spec.engine, spec.scenario.name, write_litmus(spec.test),
                   repr(spec.chip), spec.intensity)
            if spec.engine == "batch":
                key += (spec.batch_tail,)
            machine = cells.get(key)
            if machine is None:
                if len(cells) >= self.MAX_COMPILED:
                    cells.clear()
                if spec.engine == "batch":
                    machine = self._lower_batch(spec)
                else:
                    machine = compile_cell(spec.test, spec.chip,
                                           intensity=spec.intensity)
                cells[key] = machine
            return machine
        return GpuMachine(spec.test, spec.chip, intensity=spec.intensity)

    def _lower_batch(self, spec):
        """Lower a batch cell through the cross-worker plan cache —
        same discipline as ``SimBackend._lower_batch``: plans are
        content-keyed, tail-independent, and any miss publishes the
        fresh analysis for the other workers."""
        plan = store = signature = None
        if self.plan_dir:
            from ..sim.batch import PLAN_VERSION
            from ..sim.plancache import plan_signature, plan_store
            store = plan_store(self.plan_dir)
            signature = plan_signature(
                "app-batch", PLAN_VERSION, write_litmus(spec.test),
                repr(spec.chip), spec.intensity)
            plan = store.get(signature)
        machine = compile_batch_cell(spec.test, spec.chip,
                                     intensity=spec.intensity,
                                     tail_fraction=spec.batch_tail,
                                     plan=plan)
        if store is not None and plan is None:
            store.put(signature, machine.plan())
        return machine

    def consume_stats(self):
        if not self.plan_dir:
            return None
        from ..sim.plancache import plan_store
        return plan_store(self.plan_dir).consume_stats()

    def run_shard(self, spec, shard):
        histogram = run_batch(self._machine(spec), shard.iterations,
                              random.Random(shard.seed), Histogram())
        return spec.scenario.project_histogram(histogram)

    def run(self, spec):
        return Histogram.merge(self.run_shard(spec, shard)
                               for shard in plan_shards(spec, self.shard_size))
