"""Declarative application scenarios: the Sec. 3.2 / 6-7 case studies
as campaign-ready value objects.

The paper's headline argument is that weak behaviours break *deployed*
GPU code — the CUDA by Example / Stuart-Owens / He-Yu spin locks and the
Cederman-Tsigas work-stealing deque.  A :class:`Scenario` captures one
such study declaratively:

* the CUDA-eDSL **kernels** (one per thread),
* the **initial memory** image and thread **placement**,
* a **projection** of the final memory onto the observable locations
  (so outcome histograms stay small and readable), and
* a **loss predicate** — a litmus :class:`~repro.litmus.condition.Condition`
  over the projected final memory whose observation count *is* the
  paper's lost-task / wrong-result / isolation-violation count.

Compiling a scenario yields a launch-shaped
:class:`~repro.litmus.test.LitmusTest` whose condition is the loss
predicate, which is what lets the whole campaign stack (histograms,
``SpecResult.observations``, ``CampaignResult`` tables, caching) treat
application campaigns exactly like litmus campaigns.

:data:`SCENARIOS` registers the full corpus: the deque's mp/lb
distillations and a two-slot round trip, every published lock x
fenced/unfenced x inter-CTA/intra-CTA dot-product placement, the He-Yu
isolation scenario and a ticket-lock counter.  Each unfenced scenario's
name pairs with a ``+fenced`` twin carrying the paper's fix.

A :class:`ScenarioSpec` pins one execution cell — scenario x chip x
runs x seed x intensity x engine — and fingerprints it, mirroring
:class:`repro.api.spec.RunSpec`: the fingerprint drives the result
cache and the deterministic per-shard seeds, and deliberately excludes
the engine (fast/reference bit-identity keeps shard streams shared).
"""

import hashlib
from dataclasses import dataclass, replace

from ..errors import ConfigurationError, ReproError
from ..litmus.condition import And, Condition, FinalState, MemEq, Not, Or
from ..litmus.writer import write_litmus
from ..sim.chip import ChipProfile
from ..sim.engine import (DEFAULT_BATCH_TAIL, resolve_batch_tail,
                          resolve_engine)
from .runtime import _as_chip, build_launch_test
from .deque import (HEAD, TAIL, TAIL2, TASK, TASK2, owner_roundtrip_kernel,
                    pop_then_push_kernel, push_kernel, steal_kernel,
                    thief_roundtrip_kernel)
from .spinlock import (COUNTER, LOCKS, MUTEX, SERVING, accumulate_kernel,
                       reader_kernel, ticket_kernel, writer_kernel)

#: Default relaxation-intent multiplier for app campaigns.  It stands in
#: for the paper's stressful workloads: on hardware the app bugs fire at
#: 4-750 per 100k, far below interactive run budgets, so campaigns boost
#: the chips' relaxation intents the way the incantations do for litmus
#: tests (Sec. 4.3).
STRESS = 100.0

#: Default launches per scenario cell.
DEFAULT_RUNS = 300


def _exists(expr):
    return Condition("exists", expr)


@dataclass(frozen=True)
class Scenario:
    """One declarative application scenario.

    ``name`` is ``family`` plus the ``+fenced`` marker; the loss
    predicate's locations must lie inside the projection, which must lie
    inside the initial memory (validated at registration).
    """

    name: str
    family: str
    fenced: bool
    kernels: tuple            #: one CUDA-eDSL Kernel per thread
    init_mem: tuple           #: sorted ((location, value), ...)
    loss: Condition           #: loss predicate over projected final memory
    placement: str = "inter-cta"
    shared: tuple = ()
    projection: tuple = ()    #: observable locations; () = all
    description: str = ""
    section: str = ""         #: paper anchor (figure / section)

    @staticmethod
    def make(name, family, fenced, kernels, init_mem, loss, **kwargs):
        """Build and validate a scenario (``init_mem`` may be a dict)."""
        scenario = Scenario(name=name, family=family, fenced=fenced,
                            kernels=tuple(kernels),
                            init_mem=tuple(sorted(dict(init_mem).items())),
                            loss=loss, **kwargs)
        scenario.validate()
        return scenario

    def validate(self):
        locations = {location for location, _ in self.init_mem}
        if not locations:
            raise ReproError("scenario %r has no memory locations"
                             % self.name)
        projection = set(self.projection) if self.projection else locations
        missing = projection - locations
        if missing:
            raise ReproError("scenario %r projects unknown locations %s"
                             % (self.name, sorted(missing)))
        unobservable = self.loss.locations() - projection
        if unobservable:
            raise ReproError(
                "scenario %r: loss predicate reads %s outside the "
                "projection" % (self.name, sorted(unobservable)))
        if self.loss.registers():
            raise ReproError("scenario %r: loss predicates range over "
                             "final memory, not registers" % self.name)

    def test(self):
        """The launch-shaped litmus test (built once, memoised).

        The test's condition *is* the loss predicate, so histogram
        observation counts read directly as loss counts.
        """
        cached = self.__dict__.get("_test")
        if cached is None:
            cached = build_launch_test(
                self.kernels, dict(self.init_mem), condition=self.loss,
                placement=self.placement, shared=self.shared, name=self.name)
            object.__setattr__(self, "_test", cached)
        return cached

    def project(self, state):
        """Project a full :class:`FinalState` onto the observable
        locations (a no-op for scenarios that observe everything)."""
        if not self.projection:
            return state
        keep = self._projection_set()
        return FinalState(
            regs=(), mem=tuple((location, value) for location, value
                               in state.mem if location in keep))

    def _projection_set(self):
        cached = self.__dict__.get("_projection_cache")
        if cached is None:
            cached = frozenset(self.projection)
            object.__setattr__(self, "_projection_cache", cached)
        return cached

    def project_histogram(self, histogram):
        """Fold a histogram of full final states onto the projection."""
        if not self.projection:
            return histogram
        from ..harness.histogram import Histogram
        projected = Histogram()
        for state, count in histogram.counts.items():
            projected.add(self.project(state), count)
        return projected

    def __str__(self):
        return "%s [%s, %d threads]%s" % (
            self.name, self.placement, len(self.kernels),
            " — %s" % self.description if self.description else "")


@dataclass(frozen=True)
class ScenarioSpec:
    """One application execution cell: scenario x chip x runs x seed x
    intensity x engine.

    The campaign-layer twin of :class:`repro.api.spec.RunSpec`: the
    same fingerprint/sharding/caching contracts, with the scenario's
    compiled litmus text as the content anchor.  ``iterations`` counts
    kernel launches (the app analogue of litmus iterations — the shared
    shard planner reads this field).
    """

    scenario: Scenario
    chip: ChipProfile
    iterations: int
    seed: int = 0
    intensity: float = STRESS
    #: Simulation engine, with the same contract as ``RunSpec.engine``:
    #: excluded from the fingerprint (shard seeds stay engine-neutral),
    #: included in the app backend's cache signature.
    engine: str = "fast"
    #: Straggler-tail threshold of the batch engine — same contract as
    #: :attr:`repro.api.spec.RunSpec.batch_tail`: excluded from the
    #: fingerprint, included in the app backend's cache signature when
    #: the engine is ``batch``, ignored otherwise.
    batch_tail: float = DEFAULT_BATCH_TAIL

    @staticmethod
    def make(scenario, chip, runs=None, seed=0, intensity=STRESS,
             engine=None, batch_tail=None):
        """Build a normalised spec; ``scenario`` may be a registry name
        and ``chip`` a Table 1 short name."""
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        chip = _as_chip(chip)
        if runs is None:
            runs = DEFAULT_RUNS
        if runs < 1:
            raise ReproError("runs must be positive, got %r" % runs)
        return ScenarioSpec(scenario=scenario, chip=chip,
                            iterations=int(runs), seed=int(seed),
                            intensity=float(intensity),
                            engine=resolve_engine(engine),
                            batch_tail=resolve_batch_tail(batch_tail))

    @property
    def test(self):
        return self.scenario.test()

    @property
    def key(self):
        """The campaign grid key: ``(scenario name, chip short)``."""
        return (self.scenario.name, self.chip.short)

    @property
    def runs(self):
        return self.iterations

    @property
    def incantations(self):
        """App campaigns stress chips through the intensity multiplier
        rather than Table 6 incantations; this is the display/caching
        stand-in the shared result plumbing expects."""
        return "intensity=%g" % self.intensity

    def with_engine(self, engine):
        return replace(self, engine=resolve_engine(engine))

    def with_batch_tail(self, batch_tail):
        return replace(self, batch_tail=resolve_batch_tail(batch_tail))

    def with_runs(self, runs):
        return replace(self, iterations=int(runs))

    def fingerprint(self):
        """Stable content hash (hex digest), memoised.

        Covers the scenario's full compiled litmus text (kernels,
        placement, initial memory, loss predicate), the projection, the
        chip's complete profile, the intensity, runs and seed.  The
        ``engine`` is deliberately excluded — per-shard seeds derive
        from this digest, and engine-independent seeding is what makes
        the fast/reference bit-identity contract testable.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        payload = "\x1e".join([
            write_litmus(self.test),
            "projection=%s" % ",".join(self.scenario.projection),
            repr(self.chip),
            "intensity=%r" % self.intensity,
            "runs=%d" % self.iterations,
            "seed=%d" % self.seed,
        ])
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def __str__(self):
        return "%s on %s [x%g] x%d seed=%d" % (
            self.scenario.name, self.chip.short, self.intensity,
            self.iterations, self.seed)


# -- scenario builders ------------------------------------------------------

def _name(family, fenced):
    return family + ("+fenced" if fenced else "")


def deque_mp_scenario(fenced):
    """Fig. 7: push vs steal — the deque's message-passing loss."""
    return Scenario.make(
        _name("deque-mp", fenced), "deque-mp", fenced,
        kernels=(push_kernel(1, fenced), steal_kernel(fenced)),
        init_mem={TASK: 0, HEAD: 0, TAIL: 0,
                  "stolen": -1, "claimed_out": -1},
        loss=_exists(And(MemEq(TAIL, 1), MemEq("stolen", 0))),
        projection=(TAIL, "stolen"),
        description="deque push vs steal: steal sees the new tail but a "
                    "stale task",
        section="Sec. 3.2.1, Fig. 7")


def deque_lb_scenario(fenced):
    """Fig. 8: pop-then-push vs steal — the load-buffering loss."""
    return Scenario.make(
        _name("deque-lb", fenced), "deque-lb", fenced,
        kernels=(pop_then_push_kernel(1, fenced),
                 steal_kernel(fenced)),
        init_mem={TASK: 0, HEAD: 0, TAIL: 1,
                  "stolen": -1, "claimed_out": -1, "popped_out": -1},
        loss=_exists(And(MemEq("popped_out", 1), MemEq("stolen", 1))),
        projection=("popped_out", "stolen"),
        description="deque pop+push vs steal: the steal reads the later "
                    "push while the pop's CAS reads the steal",
        section="Sec. 3.2.1, Fig. 8")


def deque_roundtrip_scenario(fenced):
    """Two-slot round trip: owner pushes, thief steals and hands a
    processed task back through the second slot."""
    return Scenario.make(
        _name("deque-rt", fenced), "deque-rt", fenced,
        kernels=(owner_roundtrip_kernel(1, fenced),
                 thief_roundtrip_kernel(2, fenced)),
        init_mem={TASK: 0, HEAD: 0, TAIL: 0,
                  TASK2: 0, TAIL2: 0,
                  "stolen": -1, "got": -1},
        loss=_exists(Or(And(MemEq(TAIL, 1), MemEq("stolen", 0)),
                        MemEq("got", 0))),
        projection=(TAIL, TAIL2, "stolen", "got"),
        description="two-slot deque round trip: either leg can lose its "
                    "task to a stale slot read",
        section="Sec. 3.2.1, Figs. 6-7 (round trip)")


def make_dot_scenario(family, lock_builder, fenced, placement="inter-cta",
                      locals_=(5, 7), description="", section=""):
    """Build a dot-product scenario around an arbitrary lock builder."""
    lock = lock_builder(fenced)
    kernels = tuple(accumulate_kernel(lock, value)
                    for value in locals_)
    expected = sum(locals_)
    return Scenario.make(
        _name(family, fenced), family, fenced,
        kernels=kernels,
        init_mem={"sum": 0, MUTEX: 0},
        loss=_exists(Not(MemEq("sum", expected))),
        placement=placement,
        projection=("sum",),
        description=description, section=section)


_LOCK_TITLES = {
    "cbe": ("CUDA by Example lock", "Sec. 3.2.2, Fig. 2"),
    "so": ("Stuart-Owens exchange lock", "Sec. 3.2.2"),
    "heyu": ("He-Yu transaction lock", "Sec. 3.2.3, Fig. 10"),
}


def dot_product_scenario(lock, fenced, placement="inter-cta",
                         locals_=(5, 7)):
    """The dot-product client under a registered lock (``cbe``/``so``/
    ``heyu``), at either placement."""
    try:
        builder = LOCKS[lock]
    except KeyError:
        raise ConfigurationError(
            "unknown lock %r; valid locks: %s"
            % (lock, ", ".join(sorted(LOCKS)))) from None
    title, section = _LOCK_TITLES[lock]
    family = "dot-%s" % lock
    if placement != "inter-cta":
        family += "-cta"
    return make_dot_scenario(
        family, builder, fenced, placement=placement, locals_=locals_,
        description="dot-product partial sums under the %s (%s)"
                    % (title, placement),
        section=section)


def isolation_scenario(fixed):
    """Fig. 11 distilled back into CUDA: the He-Yu lock's isolation
    violation (a critical section reads a *future* value)."""
    return Scenario.make(
        _name("isolation", fixed), "isolation", fixed,
        kernels=(reader_kernel(fixed), writer_kernel()),
        init_mem={"x": 0, MUTEX: 1, "out": 0},
        loss=_exists(MemEq("out", 1)),
        projection=("out",),
        description="He-Yu isolation: the holder's critical section reads "
                    "the next critical section's write",
        section="Sec. 3.2.3, Fig. 11")


def ticket_counter_scenario(fenced, locals_=(5, 7)):
    """A ticket-lock counter: plain-store lock handoff between tickets."""
    kernels = tuple(ticket_kernel(ticket, value, fenced)
                    for ticket, value in enumerate(locals_))
    expected = sum(locals_)
    return Scenario.make(
        _name("ticket", fenced), "ticket", fenced,
        kernels=kernels,
        init_mem={COUNTER: 0, SERVING: 0},
        loss=_exists(Not(MemEq(COUNTER, expected))),
        projection=(COUNTER,),
        description="ticket-lock counter: the serving handoff overtakes "
                    "the critical section's counter write",
        section="Sec. 3.2.2 (ticket-lock variant)")


def _build_registry():
    scenarios = []
    for fenced in (False, True):
        scenarios.append(deque_mp_scenario(fenced))
        scenarios.append(deque_lb_scenario(fenced))
        scenarios.append(deque_roundtrip_scenario(fenced))
        for lock in sorted(LOCKS):
            for placement in ("inter-cta", "intra-cta"):
                scenarios.append(dot_product_scenario(
                    lock, fenced, placement=placement))
        scenarios.append(isolation_scenario(fenced))
        scenarios.append(ticket_counter_scenario(fenced))
    registry = {}
    for scenario in scenarios:
        if scenario.name in registry:
            raise ReproError("duplicate scenario name %r" % scenario.name)
        registry[scenario.name] = scenario
    return registry


#: The scenario registry: name -> canonical :class:`Scenario`.
SCENARIOS = _build_registry()

#: Scenario families (unfenced/fenced pairs), in registry order.
FAMILIES = list(dict.fromkeys(scenario.family
                              for scenario in SCENARIOS.values()))


def get_scenario(name):
    """Resolve a registry name to its :class:`Scenario`."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown scenario %r; valid scenarios: %s"
            % (name, ", ".join(sorted(SCENARIOS)))) from None


def select_scenarios(names=("all",), fenced="both"):
    """Resolve CLI-style selectors to scenario objects, in registry order.

    Each selector is ``all``, a family name (both variants — a family
    shares its name with its unfenced member, and the family wins; use
    the ``fenced`` filter or the explicit ``+fenced`` name to pick one
    variant) or a full scenario name; ``fenced`` filters to
    ``on``/``off``/``both``.
    """
    if fenced not in ("on", "off", "both"):
        raise ConfigurationError(
            "fenced filter must be on/off/both, got %r" % (fenced,))
    chosen = []
    for selector in names:
        if selector == "all":
            chosen.extend(SCENARIOS.values())
        elif selector in FAMILIES:
            chosen.extend(scenario for scenario in SCENARIOS.values()
                          if scenario.family == selector)
        elif selector in SCENARIOS:
            chosen.append(SCENARIOS[selector])
        else:
            raise ConfigurationError(
                "unknown scenario selector %r; valid: all, a family (%s) "
                "or a full name (see `repro-litmus list`)"
                % (selector, ", ".join(FAMILIES)))
    if fenced != "both":
        want = fenced == "on"
        chosen = [scenario for scenario in chosen
                  if scenario.fenced == want]
    # De-duplicate while preserving selection order.
    unique = list(dict.fromkeys(scenario.name for scenario in chosen))
    return [SCENARIOS[name] for name in unique]
