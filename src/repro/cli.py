"""Command-line interface: ``repro-litmus``.

Subcommands::

    repro-litmus run TEST --chip Titan [--iterations N] [--seed S]
        Run a litmus test (library name or .litmus file) on a simulated
        chip under the paper's best incantations; print the histogram.

    repro-litmus model TEST [--model ptx]
        Enumerate candidate executions and print the model's verdict.

    repro-litmus list
        List the library tests, chips and models.

    repro-litmus generate --length 4 [--max N]
        Generate litmus tests with diy and print them.
"""

import argparse
import os
import sys

from .diy import default_pool, generate_tests
from .harness import run_paper_config
from .litmus import library, parse_litmus, write_litmus
from .model.models import MODELS, load_model
from .sim.chip import CHIPS


def _load_test(spec):
    if os.path.exists(spec):
        with open(spec) as handle:
            return parse_litmus(handle.read())
    if spec in library.PAPER_TESTS:
        return library.build(spec)
    raise SystemExit("unknown test %r (not a file, not a library test; "
                     "see `repro-litmus list`)" % spec)


def _cmd_run(args):
    test = _load_test(args.test)
    result = run_paper_config(test, args.chip, iterations=args.iterations,
                              seed=args.seed)
    print(result.histogram.pretty(test.condition))
    print(result.summary())
    return 0


def _cmd_model(args):
    test = _load_test(args.test)
    model = load_model(args.model)
    allowed = model.allowed_outcomes(test)
    verdict = model.allows_condition(test)
    print(write_litmus(test))
    print("%d allowed final states under %s:" % (len(allowed), model.name))
    for state in sorted(allowed, key=str):
        print("  %s" % state)
    print("condition %s: %s" % (test.condition,
                                "Allowed" if verdict else "Forbidden"))
    return 0


def _cmd_list(args):
    print("library tests:")
    for name in sorted(library.PAPER_TESTS):
        print("  %s" % name)
    print("chips: %s" % ", ".join(sorted(CHIPS)))
    print("models: %s" % ", ".join(sorted(MODELS)))
    return 0


def _cmd_generate(args):
    tests = generate_tests(default_pool(), max_length=args.length,
                           max_tests=args.max)
    for test in tests:
        print(write_litmus(test))
    print("// %d tests" % len(tests), file=sys.stderr)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-litmus",
        description="GPU litmus testing on simulated chips (ASPLOS'15 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a test on a simulated chip")
    run.add_argument("test")
    run.add_argument("--chip", default="Titan", choices=sorted(CHIPS))
    run.add_argument("--iterations", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=_cmd_run)

    model = sub.add_parser("model", help="model-check a test")
    model.add_argument("test")
    model.add_argument("--model", default="ptx", choices=sorted(MODELS))
    model.set_defaults(func=_cmd_model)

    lst = sub.add_parser("list", help="list tests, chips and models")
    lst.set_defaults(func=_cmd_list)

    gen = sub.add_parser("generate", help="generate tests with diy")
    gen.add_argument("--length", type=int, default=4)
    gen.add_argument("--max", type=int, default=20)
    gen.set_defaults(func=_cmd_generate)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
