"""Command-line interface: ``repro-litmus``.

Subcommands::

    repro-litmus run TEST --chip Titan [--iterations N] [--seed S]
                 [--incantations best|none|stress+sync+random|COLUMN]
                 [--jobs N] [--backend sim|model|model:NAME] [--cache-dir D]
        Run a litmus test (library name or .litmus file) on a simulated
        chip; print the histogram.  The default incantations are the
        paper's most effective combination; ``--incantations none``
        reproduces the bare Sec. 4.2 configuration.

    repro-litmus campaign TEST [TEST ...] [--chips A B ...] [--jobs N]
                 [--backend ...] [--cache-dir D] [--iterations N]
        Run a test x chip campaign through one session (sharded across
        workers, memoised by content fingerprint) and print the
        paper-style obs/100k summary table.  ``all`` expands to every
        library test.

    repro-litmus model TEST [--model ptx]
        Enumerate candidate executions and print the model's verdict.

    repro-litmus list
        List the library tests, chips and models.

    repro-litmus generate --length 4 [--max N]
        Generate litmus tests with diy and print them.
"""

import argparse
import os
import sys

from .api import Session
from .diy import default_pool, generate_tests
from .errors import ReproError
from .litmus import library, parse_litmus, write_litmus
from .model.models import MODELS, load_model
from .sim.chip import CHIPS, RESULT_CHIPS


def _load_test(spec):
    if os.path.exists(spec):
        with open(spec) as handle:
            return parse_litmus(handle.read())
    if spec in library.PAPER_TESTS:
        return library.build(spec)
    raise SystemExit("unknown test %r (not a file, not a library test; "
                     "see `repro-litmus list`)" % spec)


def _load_tests(specs):
    if list(specs) == ["all"]:
        return [library.build(name) for name in sorted(library.PAPER_TESTS)]
    return [_load_test(spec) for spec in specs]


def _session(args):
    try:
        return Session(backend=args.backend, jobs=args.jobs,
                       executor=args.executor, cache_dir=args.cache_dir)
    except ReproError as error:
        raise SystemExit(str(error))


def _session_arguments(parser):
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count for sharded execution")
    parser.add_argument("--executor", default="process",
                        choices=("process", "thread"),
                        help="worker pool kind for --jobs > 1 (default: "
                             "process — the simulator is CPU-bound pure "
                             "Python, so threads cannot speed it up)")
    parser.add_argument("--backend", default="sim",
                        help="execution backend: sim (default), model, "
                             "or model:NAME")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache")


def _cmd_run(args):
    test = _load_test(args.test)
    session = _session(args)
    try:
        result = session.run(test, args.chip, incantations=args.incantations,
                             iterations=args.iterations, seed=args.seed)
    except ReproError as error:
        raise SystemExit(str(error))
    print(result.histogram.pretty(test.condition))
    print(result.summary())
    return 0


def _cmd_campaign(args):
    tests = _load_tests(args.tests)
    session = _session(args)
    try:
        campaign = session.campaign(tests, args.chips,
                                    incantations=args.incantations,
                                    iterations=args.iterations,
                                    seed=args.seed)
    except ReproError as error:
        raise SystemExit(str(error))
    print(campaign.summary_table())
    print(campaign.summary())
    stats = session.stats
    print("session: %d cells executed, %d cache hits, %d deduplicated, "
          "%d shards, %d simulated iterations"
          % (stats.executed, stats.cache_hits, stats.deduplicated,
             stats.shards_executed, stats.simulated_iterations))
    return 0


def _cmd_model(args):
    test = _load_test(args.test)
    model = load_model(args.model)
    allowed = model.allowed_outcomes(test)
    verdict = model.allows_condition(test)
    print(write_litmus(test))
    print("%d allowed final states under %s:" % (len(allowed), model.name))
    for state in sorted(allowed, key=str):
        print("  %s" % state)
    print("condition %s: %s" % (test.condition,
                                "Allowed" if verdict else "Forbidden"))
    return 0


def _cmd_list(args):
    print("library tests:")
    for name in sorted(library.PAPER_TESTS):
        print("  %s" % name)
    print("chips: %s" % ", ".join(sorted(CHIPS)))
    print("models: %s" % ", ".join(sorted(MODELS)))
    return 0


def _cmd_generate(args):
    tests = generate_tests(default_pool(), max_length=args.length,
                           max_tests=args.max)
    for test in tests:
        print(write_litmus(test))
    print("// %d tests" % len(tests), file=sys.stderr)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-litmus",
        description="GPU litmus testing on simulated chips (ASPLOS'15 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a test on a simulated chip")
    run.add_argument("test")
    run.add_argument("--chip", default="Titan", choices=sorted(CHIPS))
    run.add_argument("--iterations", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--incantations", default="best",
                     help="incantation combination: best (default), none "
                          "(bare Sec. 4.2 setup), all, a Table 6 column "
                          "1-16, or flags like stress+sync+random")
    _session_arguments(run)
    run.set_defaults(func=_cmd_run)

    campaign = sub.add_parser(
        "campaign", help="run a test x chip campaign through one session")
    campaign.add_argument("tests", nargs="+",
                          help="library tests / .litmus files, or 'all'")
    campaign.add_argument("--chips", nargs="+", default=list(RESULT_CHIPS),
                          choices=sorted(CHIPS), metavar="CHIP",
                          help="chips to sweep (default: the paper's "
                               "result chips)")
    campaign.add_argument("--iterations", type=int, default=None)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--incantations", default="best",
                          help="as for `run`")
    _session_arguments(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    model = sub.add_parser("model", help="model-check a test")
    model.add_argument("test")
    model.add_argument("--model", default="ptx", choices=sorted(MODELS))
    model.set_defaults(func=_cmd_model)

    lst = sub.add_parser("list", help="list tests, chips and models")
    lst.set_defaults(func=_cmd_list)

    gen = sub.add_parser("generate", help="generate tests with diy")
    gen.add_argument("--length", type=int, default=4)
    gen.add_argument("--max", type=int, default=20)
    gen.set_defaults(func=_cmd_generate)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
