"""Command-line interface: ``repro-litmus``.

Subcommands::

    repro-litmus run TEST --chip Titan [--iterations N] [--seed S]
                 [--incantations best|none|stress+sync+random|COLUMN]
                 [--jobs N] [--backend sim|model|model:NAME] [--cache-dir D]
                 [--engine fast|reference|batch]
        Run a litmus test (library name or .litmus file) on a simulated
        chip; print the histogram.  The default incantations are the
        paper's most effective combination; ``--incantations none``
        reproduces the bare Sec. 4.2 configuration.

    repro-litmus campaign TEST [TEST ...] [--chips A B ...] [--jobs N]
                 [--backend ...] [--cache-dir D] [--iterations N]
                 [--prescreen]
        Run a test x chip campaign through one session (sharded across
        workers, memoised by content fingerprint) and print the
        paper-style obs/100k summary table.  ``all`` expands to every
        library test.  ``--prescreen`` statically analyses each test
        first and skips execution for provably-clean cells.

    repro-litmus analyze [TEST ...] [--scenario NAME ...] [--fenced F]
                 [--detail] [--cross-check] [--chips A B ...] [--runs N]
                 [--jobs N] [--cache-dir D]
        Static pre-screening (no simulation): classify every conflicting
        access pair of the named litmus tests and/or app scenarios as
        provably racy / provably ordered / sync-exempt / unknown under
        the scoped-fence semantics, fold them into per-test verdicts,
        and print guard diagnostics (spin deadlock, SIMT warp
        divergence, unordered guards, annulled atomics).
        ``--cross-check`` then holds every clean verdict to its proof
        obligation — clean scenarios must never lose in a simulation
        campaign, clean (data-race-free) litmus tests must stay SC under
        the PTX model — and exits non-zero on any contradiction (the CI
        ``analysis-consistency`` job).

    repro-litmus model TEST [--model ptx] [--model-engine fast|reference]
        Enumerate candidate executions and print the model's verdict.

    repro-litmus witness TEST [--model ptx|none] [--output FILE]
        Render the first weak candidate execution of a test as a
        Graphviz (DOT) graph in the style of Fig. 14 — events as nodes,
        po/rf/co/fr and dependency edges — annotated with the chosen
        model's allowed/forbidden verdict.  Writes to stdout unless
        ``--output`` names a file (pipe into ``dot -Tpdf``).

    repro-litmus app [--scenario NAME ...] [--chips A B ...]
                 [--fenced both|on|off] [--runs N] [--seed S]
                 [--intensity X] [--jobs N] [--engine fast|reference|batch]
                 [--cache-dir D] [--prescreen]
        Run application scenario campaigns (the deque / spin-lock /
        ticket-lock case studies of Secs. 3.2 and 6-7) through the
        sharded app backend and print the losses-per-100k grid.
        ``--scenario`` takes registry names or families (``all`` runs
        the whole registry); ``--fenced`` filters to the published
        (``off``) or fixed (``on``) variants.

    repro-litmus list
        List the library tests, chips, models and application scenarios.

    repro-litmus generate [--length 4] [--max-tests N] [--fences cta gl sys]
                 [--scopes dev cta]
        Generate litmus tests with diy and print them in deterministic
        (name-sorted) order.  The corpus-shaping flags pick the edge
        pool: ``--fences`` the membar scopes, ``--scopes`` the
        communication-edge scope annotations.

    repro-litmus soundness [corpus flags as for generate, default
                 --fences cta gl] [--chips A B ...] [--iterations N]
                 [--seed S] [--model ptx] [--jobs N] [--cache-dir D]
                 [--chunk-size N]
        The Sec. 5.4 validation campaign: generate the diy corpus, run
        every test on every chip through the sharded session pool, check
        each observed final state against the model's allowed set
        (enumerated once per test, memoised across chips and runs), and
        print the conformance report.  Exits non-zero if any observation
        is model-forbidden.
"""

import argparse
import os
import sys

from .api import Session
from .api.conformance import SOUNDNESS_CHIPS, run_soundness
from .api.result import CampaignResult
from .apps import (FAMILIES, SCENARIOS, STRESS, app_matrix, app_session,
                   run_app_campaign, select_scenarios)
from .diy import (default_pool, fences_from_names, generate_tests,
                  scopes_from_names)
from .errors import ReproError
from .harness.runner import default_iterations
from .litmus import library, parse_litmus, write_litmus
from .model.dot import weak_witness_dot
from .model.models import (DEFAULT_MODEL_ENGINE, MODELS, MODEL_ENGINES,
                           load_model)
from .sim.chip import CHIPS, RESULT_CHIPS
from .sim.engine import DEFAULT_ENGINE, ENGINES


def _load_test(spec):
    if os.path.exists(spec):
        with open(spec) as handle:
            return parse_litmus(handle.read())
    if spec in library.PAPER_TESTS:
        return library.build(spec)
    raise SystemExit("unknown test %r (not a file, not a library test; "
                     "see `repro-litmus list`)" % spec)


def _load_tests(specs):
    if list(specs) == ["all"]:
        return [library.build(name) for name in sorted(library.PAPER_TESTS)]
    return [_load_test(spec) for spec in specs]


def _session(args):
    try:
        return Session(backend=args.backend, jobs=args.jobs,
                       executor=args.executor, cache_dir=args.cache_dir,
                       engine=args.engine,
                       model_engine=getattr(args, "model_engine", None),
                       batch_tail=getattr(args, "batch_tail", None))
    except ReproError as error:
        raise SystemExit(str(error))


def _engine_argument(parser):
    parser.add_argument("--engine", default=None, choices=ENGINES,
                        help="simulation engine: fast (compiled cells, "
                             "the default; bit-identical to reference "
                             "and several times quicker), reference "
                             "(the generic interpreter), or batch "
                             "(numpy lockstep shards, another order of "
                             "magnitude quicker; distribution-"
                             "equivalent histograms, needs the "
                             "repro[batch] extra) — tracked speedups "
                             "live in BENCH_engine.json; REPRO_ENGINE "
                             "sets the default")


def _batch_tail_argument(parser):
    parser.add_argument("--batch-tail", default=None,
                        help="batch-engine straggler hand-off threshold: "
                             "the live-row fraction below which a "
                             "chunk's survivors leave numpy lockstep "
                             "and drain on the compiled fast engine "
                             "(float in [0, 0.5]; 0 disables the "
                             "hand-off and reproduces the pre-tail "
                             "bit-exact batch stream; REPRO_BATCH_TAIL "
                             "sets the default)")


def _model_engine_argument(parser):
    parser.add_argument("--model-engine", default=None,
                        choices=MODEL_ENGINES,
                        help="model-checking engine: fast (compiled "
                             "model + pruned enumeration, the default) "
                             "or reference (materialise every candidate "
                             "execution) — identical verdicts, speedups "
                             "tracked in BENCH_model.json; "
                             "REPRO_MODEL_ENGINE sets the default")


def _session_arguments(parser):
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker count for sharded execution")
    parser.add_argument("--executor", default="process",
                        choices=("process", "thread"),
                        help="worker pool kind for --jobs > 1 (default: "
                             "process — the simulator is CPU-bound pure "
                             "Python, so threads cannot speed it up)")
    parser.add_argument("--backend", default="sim",
                        help="execution backend: sim (default), model, "
                             "model:NAME, analysis (static verdicts), or "
                             "exhaustive (DPOR stateless model checking)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache")
    _engine_argument(parser)
    _batch_tail_argument(parser)
    _model_engine_argument(parser)


def _cmd_run(args):
    test = _load_test(args.test)
    session = _session(args)
    try:
        result = session.run(test, args.chip, incantations=args.incantations,
                             iterations=args.iterations, seed=args.seed)
    except ReproError as error:
        raise SystemExit(str(error))
    print(result.histogram.pretty(test.condition))
    print(result.summary())
    return 0


def _run_prescreened_campaign(specs, session, skip=None, proof="by proof"):
    """Static triage, then execution: analyse every cell, skip the ones
    the proof covers, print the triage summary, and return the
    assembled :class:`CampaignResult`."""
    from .analysis import AnalysisBackend, run_prescreened
    results, verdicts = run_prescreened(specs, session, skip=skip)
    campaign = CampaignResult()
    for result in results:
        campaign.add(result)
    verdict_by_test = {}
    skipped_names = set()
    for spec, verdict, result in zip(specs, verdicts, results):
        verdict_by_test.setdefault(spec.test.name, verdict)
        if result.backend == AnalysisBackend.name:
            skipped_names.add(spec.test.name)
    counts = {}
    for verdict in verdict_by_test.values():
        counts[verdict] = counts.get(verdict, 0) + 1
    skipped = sum(1 for result in results
                  if result.backend == AnalysisBackend.name)
    print("prescreen: %s — skipped %d/%d cells"
          % (", ".join("%d %s" % (counts[verdict], verdict)
                       for verdict in ("racy", "unknown", "clean")
                       if verdict in counts),
             skipped, len(specs)))
    if skipped_names:
        print("prescreen: zero observations %s: %s"
              % (proof, ", ".join(sorted(skipped_names))))
    return campaign


def _cmd_campaign(args):
    tests = _load_tests(args.tests)
    session = _session(args)
    try:
        if args.prescreen:
            from .analysis import CLEAN, condition_skippable
            specs = list(session.plan(tests, args.chips,
                                      incantations=args.incantations,
                                      iterations=args.iterations,
                                      seed=args.seed))
            # A clean verdict is not enough for a litmus condition (a
            # race-free test can still observe an SC-reachable state) —
            # skip only conditions the SC model forbids under a
            # DRF-implies-SC verdict.
            memo = {}
            def _skip(spec, verdict):
                if spec.test.name not in memo:
                    memo[spec.test.name] = (verdict == CLEAN
                                            and condition_skippable(spec.test))
                return memo[spec.test.name]
            campaign = _run_prescreened_campaign(
                specs, session, skip=_skip,
                proof="by proof (clean, SC-implied, SC-forbidden condition)")
        else:
            campaign = session.campaign(tests, args.chips,
                                        incantations=args.incantations,
                                        iterations=args.iterations,
                                        seed=args.seed)
    except ReproError as error:
        raise SystemExit(str(error))
    print(campaign.summary_table())
    print(campaign.summary())
    stats = session.stats
    print("session: %d cells executed, %d cache hits, %d deduplicated, "
          "%d shards, %d simulated iterations"
          % (stats.executed, stats.cache_hits, stats.deduplicated,
             stats.shards_executed, stats.simulated_iterations))
    return 0


def _cmd_model(args):
    test = _load_test(args.test)
    model = load_model(args.model)
    try:
        allowed = model.allowed_outcomes(test, engine=args.model_engine)
        verdict = model.allows_condition(test, engine=args.model_engine)
    except ReproError as error:
        raise SystemExit(str(error))
    print(write_litmus(test))
    print("%d allowed final states under %s:" % (len(allowed), model.name))
    for state in sorted(allowed, key=str):
        print("  %s" % state)
    print("condition %s: %s" % (test.condition,
                                "Allowed" if verdict else "Forbidden"))
    return 0


def _cmd_witness(args):
    test = _load_test(args.test)
    model = None if args.model == "none" else load_model(args.model)
    try:
        dot = weak_witness_dot(test, model=model)
    except (ReproError, ValueError) as error:
        raise SystemExit(str(error))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(dot + "\n")
        print("wrote %s" % args.output, file=sys.stderr)
    else:
        print(dot)
    return 0


def _run_verify(scenarios, chips, intensity, jobs, executor, cache_dir,
                loop_bound=None, max_transitions=None, witnesses=True):
    """Shared exhaustive-verification driver for ``verify`` and
    ``app --mode exhaustive``.  Exit status mirrors ``app``: nonzero iff
    a *fenced* scenario loses (an unfenced loss is the paper's point)."""
    from .exhaustive import (DEFAULT_LOOP_BOUND, DEFAULT_MAX_TRANSITIONS,
                             verify_scenarios)
    report = verify_scenarios(
        scenarios, chips, intensity=intensity,
        loop_bound=(DEFAULT_LOOP_BOUND if loop_bound is None
                    else loop_bound),
        max_transitions=(DEFAULT_MAX_TRANSITIONS if max_transitions is None
                         else max_transitions),
        jobs=jobs, executor=executor, cache_dir=cache_dir,
        witnesses=witnesses)
    print("exhaustive verification (intensity is structural: any positive "
          "value explores the same space):")
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_verify(args):
    try:
        scenarios = select_scenarios(args.scenarios, fenced=args.fenced)
        if not scenarios:
            raise ReproError("the scenario selection is empty")
        return _run_verify(scenarios, args.chips, args.intensity,
                           args.jobs, args.executor, args.cache_dir,
                           loop_bound=args.loop_bound,
                           max_transitions=args.max_transitions,
                           witnesses=not args.no_witness)
    except ReproError as error:
        raise SystemExit(str(error))


def _cmd_app(args):
    try:
        runs = (args.runs if args.runs is not None
                else default_iterations(300))
        scenarios = select_scenarios(args.scenarios, fenced=args.fenced)
        if not scenarios:
            raise ReproError("the scenario selection is empty")
        if args.mode == "exhaustive":
            return _run_verify(scenarios, args.chips, args.intensity,
                               args.jobs, args.executor, args.cache_dir)
        session = app_session(jobs=args.jobs, executor=args.executor,
                              cache_dir=args.cache_dir)
        if args.prescreen:
            specs = app_matrix(scenarios, args.chips, runs=runs,
                               seed=args.seed, intensity=args.intensity,
                               engine=args.engine,
                               batch_tail=args.batch_tail)
            campaign = _run_prescreened_campaign(
                specs, session, proof="(losses) by proof")
        else:
            campaign = run_app_campaign(scenarios, args.chips, runs=runs,
                                        seed=args.seed,
                                        intensity=args.intensity,
                                        engine=args.engine,
                                        batch_tail=args.batch_tail,
                                        session=session)
    except ReproError as error:
        raise SystemExit(str(error))
    print("losses per 100k launches (x%g intensity, %d runs/cell):"
          % (args.intensity, runs))
    print(campaign.summary_table())
    print(campaign.summary())
    lossy_fenced = [key for key in campaign.weak_cells()
                    if SCENARIOS[key[0]].fenced]
    for name, chip in lossy_fenced:
        print("UNEXPECTED: fenced scenario %s lost on %s" % (name, chip))
    stats = session.stats
    print("session: %d cells executed, %d cache hits, %d deduplicated, "
          "%d shards, %d launches"
          % (stats.executed, stats.cache_hits, stats.deduplicated,
             stats.shards_executed, stats.simulated_iterations))
    if stats.plan_cache_hits or stats.plan_cache_misses:
        print("plan cache: %d hits, %d misses"
              % (stats.plan_cache_hits, stats.plan_cache_misses))
    return 1 if lossy_fenced else 0


def _cmd_analyze(args):
    from .analysis import analyze_test, run_consistency
    try:
        tests = _load_tests(args.tests) if args.tests else []
        scenarios = (select_scenarios(args.scenarios, fenced=args.fenced)
                     if args.scenarios else [])
    except ReproError as error:
        raise SystemExit(str(error))
    if not tests and not scenarios:
        raise SystemExit("nothing to analyze: name litmus tests (or 'all') "
                         "and/or select scenarios with --scenario")
    reports = ([analyze_test(scenario.test()) for scenario in scenarios]
               + [analyze_test(test) for test in tests])
    counts = {}
    for report in reports:
        counts[report.verdict] = counts.get(report.verdict, 0) + 1
        if args.detail:
            for line in report.lines():
                print(line)
        else:
            print(report.summary())
    print("verdicts: %s"
          % ", ".join("%d %s" % (counts[verdict], verdict)
                      for verdict in ("racy", "unknown", "clean")
                      if verdict in counts))
    if not args.cross_check:
        return 0
    runs = args.runs if args.runs is not None else default_iterations(300)
    try:
        consistency = run_consistency(
            scenarios=scenarios, tests=tests, chips=args.chips, runs=runs,
            seed=args.seed, intensity=args.intensity, jobs=args.jobs,
            executor=args.executor, cache_dir=args.cache_dir, fuel=args.fuel)
    except ReproError as error:
        raise SystemExit(str(error))
    print()
    for line in consistency.lines():
        print(line)
    return 0 if consistency.ok else 1


def _cmd_list(args):
    print("library tests:")
    for name in sorted(library.PAPER_TESTS):
        print("  %s" % name)
    print("chips: %s" % ", ".join(sorted(CHIPS)))
    print("models: %s" % ", ".join(sorted(MODELS)))
    print("sim engines: %s (default %s)" % (", ".join(ENGINES),
                                            DEFAULT_ENGINE))
    print("model engines: %s (default %s)" % (", ".join(MODEL_ENGINES),
                                              DEFAULT_MODEL_ENGINE))
    print("app scenarios (x = published, +fenced = the paper's fix):")
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]
        print("  %-22s %s [%s]" % (name, scenario.description,
                                   scenario.section))
    print("app scenario families: %s" % ", ".join(FAMILIES))
    return 0


def _corpus_arguments(parser, default_fences, default_max):
    """The corpus-shaping flags shared by ``generate`` and ``soundness``."""
    parser.add_argument("--length", type=int, default=4,
                        help="maximum relaxation-cycle length (default 4)")
    parser.add_argument("--max-tests", "--max", dest="max_tests", type=int,
                        default=default_max,
                        help="cap on generated tests (default %s)"
                             % (default_max if default_max is not None
                                else "unbounded"))
    parser.add_argument("--fences", nargs="*", default=list(default_fences),
                        metavar="SCOPE",
                        help="membar scopes in the edge pool: cta/gl/sys, "
                             "or all/none (default: %s)"
                             % " ".join(default_fences))
    parser.add_argument("--scopes", nargs="*", default=["dev", "cta"],
                        metavar="SCOPE",
                        help="communication-edge scope annotations: dev "
                             "(inter-CTA) and/or cta (default: both)")


def _corpus(args):
    """Build the diy corpus an invocation's corpus flags describe,
    sorted by (unique) test name for deterministic output."""
    try:
        pool = default_pool(scopes=scopes_from_names(args.scopes),
                            fences=fences_from_names(args.fences))
        tests = generate_tests(pool, max_length=args.length,
                               max_tests=args.max_tests)
    except ReproError as error:
        raise SystemExit(str(error))
    return sorted(tests, key=lambda test: test.name)


def _cmd_generate(args):
    tests = _corpus(args)
    for test in tests:
        print(write_litmus(test))
    print("// %d tests" % len(tests), file=sys.stderr)
    return 0


def _cmd_soundness(args):
    tests = _corpus(args)
    if not tests:
        raise SystemExit("the corpus flags generated no tests")
    iterations = (args.iterations if args.iterations is not None
                  else default_iterations(2500))
    try:
        report = run_soundness(
            tests, args.chips, model=args.model,
            incantations=args.incantations, iterations=iterations,
            seed=args.seed, jobs=args.jobs, executor=args.executor,
            cache_dir=args.cache_dir, chunk_size=args.chunk_size,
            engine=args.engine, model_engine=args.model_engine)
    except ReproError as error:
        raise SystemExit(str(error))
    print(report.summary_table(max_rows=args.max_rows))
    print()
    print(report.coverage_table())
    print()
    print(report.summary())
    for line in report.violation_lines():
        print("VIOLATION: %s" % line)
    sim, model = report.sim_stats, report.model_stats
    print("sim session: %d cells executed, %d cache hits, %d shards"
          % (sim["executed"], sim["cache_hits"], sim["shards_executed"]))
    print("model session: %d enumerations, %d cache hits (%d tests)"
          % (model["executed"], model["cache_hits"], len(tests)))
    return 0 if report.ok else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-litmus",
        description="GPU litmus testing on simulated chips (ASPLOS'15 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a test on a simulated chip")
    run.add_argument("test")
    run.add_argument("--chip", default="Titan", choices=sorted(CHIPS))
    run.add_argument("--iterations", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--incantations", default="best",
                     help="incantation combination: best (default), none "
                          "(bare Sec. 4.2 setup), all, a Table 6 column "
                          "1-16, or flags like stress+sync+random")
    _session_arguments(run)
    run.set_defaults(func=_cmd_run)

    campaign = sub.add_parser(
        "campaign", help="run a test x chip campaign through one session")
    campaign.add_argument("tests", nargs="+",
                          help="library tests / .litmus files, or 'all'")
    campaign.add_argument("--chips", nargs="+", default=list(RESULT_CHIPS),
                          choices=sorted(CHIPS), metavar="CHIP",
                          help="chips to sweep (default: the paper's "
                               "result chips)")
    campaign.add_argument("--iterations", type=int, default=None)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--incantations", default="best",
                          help="as for `run`")
    campaign.add_argument("--prescreen", action="store_true",
                          help="statically analyse each test first; "
                               "provably-clean cells skip execution and "
                               "report zero observations by proof")
    _session_arguments(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    app = sub.add_parser(
        "app", help="run application scenario campaigns (Secs. 3.2, 6-7)")
    app.add_argument("--scenario", "-s", dest="scenarios", nargs="+",
                     default=["all"], metavar="NAME",
                     help="scenario names or families; 'all' (default) "
                          "runs the whole registry (see `repro-litmus "
                          "list`)")
    app.add_argument("--chips", "--chip", dest="chips", nargs="+",
                     default=list(RESULT_CHIPS), choices=sorted(CHIPS),
                     metavar="CHIP",
                     help="chips to sweep (default: the paper's result "
                          "chips)")
    app.add_argument("--fenced", choices=("both", "on", "off"),
                     default="both",
                     help="variant filter: off = published (buggy) code, "
                          "on = the paper's fences, both (default)")
    app.add_argument("--runs", type=int, default=None,
                     help="launches per cell (default: REPRO_ITERS or 300)")
    app.add_argument("--seed", type=int, default=0)
    app.add_argument("--intensity", type=float, default=STRESS,
                     help="relaxation-intent multiplier standing in for "
                          "the paper's stressful workloads (default %g; "
                          "1.0 = bare chip rates)" % STRESS)
    app.add_argument("--jobs", type=int, default=1,
                     help="worker count for sharded execution")
    app.add_argument("--executor", default="process",
                     choices=("process", "thread"),
                     help="worker pool kind for --jobs > 1")
    app.add_argument("--cache-dir", default=None,
                     help="directory for the on-disk result cache")
    app.add_argument("--prescreen", action="store_true",
                     help="statically analyse each scenario first; "
                          "provably-clean cells skip simulation and "
                          "report zero losses by proof")
    app.add_argument("--mode", choices=("stress", "exhaustive"),
                     default="stress",
                     help="stress (default): sample --runs launches per "
                          "cell; exhaustive: enumerate every execution "
                          "with DPOR pruning and report verified/lost "
                          "verdicts (ignores --runs/--seed/--engine; see "
                          "`repro-litmus verify` for the full knob set)")
    _engine_argument(app)
    _batch_tail_argument(app)
    app.set_defaults(func=_cmd_app)

    verify = sub.add_parser(
        "verify",
        help="exhaustively verify scenarios: enumerate every execution "
             "(DPOR-pruned) and prove fenced variants lose zero times")
    verify.add_argument("--scenario", "-s", dest="scenarios", nargs="+",
                        default=["all"], metavar="NAME",
                        help="scenario names or families; 'all' (default) "
                             "runs the whole registry")
    verify.add_argument("--chips", "--chip", dest="chips", nargs="+",
                        default=list(RESULT_CHIPS), choices=sorted(CHIPS),
                        metavar="CHIP",
                        help="chips to sweep (default: the paper's result "
                             "chips)")
    verify.add_argument("--fenced", choices=("both", "on", "off"),
                        default="both",
                        help="variant filter: off = published (buggy) code, "
                             "on = the paper's fences, both (default)")
    verify.add_argument("--intensity", type=float, default=1.0,
                        help="relaxation intent (structural: any positive "
                             "value explores the same space; default 1.0)")
    verify.add_argument("--loop-bound", type=int, default=None,
                        help="spin-retry bound per backward branch "
                             "(default 3); verdicts at the bound carry an "
                             "explicit 'bounded' marker")
    verify.add_argument("--max-transitions", type=int, default=None,
                        help="abort a cell loudly past this many "
                             "transitions (default 2000000)")
    verify.add_argument("--no-witness", action="store_true",
                        help="skip re-deriving losing execution traces")
    verify.add_argument("--jobs", type=int, default=1,
                        help="worker count: each cell's exploration shards "
                             "by root branch across the pool (and cells fan "
                             "out like any other campaign); verdicts are "
                             "bit-identical to --jobs 1")
    verify.add_argument("--executor", default="process",
                        choices=("process", "thread"),
                        help="worker pool kind for --jobs > 1")
    verify.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk verdict cache")
    verify.set_defaults(func=_cmd_verify)

    analyze = sub.add_parser(
        "analyze",
        help="static race/ordering verdicts, no simulation; --cross-check "
             "holds clean verdicts to campaign losses and model "
             "allowed-sets")
    analyze.add_argument("tests", nargs="*",
                         help="library tests / .litmus files, or 'all'")
    analyze.add_argument("--scenario", "-s", dest="scenarios", nargs="+",
                         default=None, metavar="NAME",
                         help="app scenarios or families to analyse; 'all' "
                              "= the whole registry")
    analyze.add_argument("--fenced", choices=("both", "on", "off"),
                         default="both",
                         help="scenario variant filter, as for `app`")
    analyze.add_argument("--detail", action="store_true",
                         help="print every pair classification, unresolved "
                              "address and guard diagnostic")
    analyze.add_argument("--cross-check", action="store_true",
                         help="run the consistency oracles: clean scenarios "
                              "must never lose in a campaign, clean litmus "
                              "tests must stay SC under the PTX model; "
                              "exits 1 on any contradiction")
    analyze.add_argument("--chips", nargs="+", default=list(RESULT_CHIPS),
                         choices=sorted(CHIPS), metavar="CHIP",
                         help="chips for the cross-check campaign (default: "
                              "the paper's result chips)")
    analyze.add_argument("--runs", type=int, default=None,
                         help="launches per cross-check cell (default: "
                              "REPRO_ITERS or 300)")
    analyze.add_argument("--seed", type=int, default=0)
    analyze.add_argument("--intensity", type=float, default=STRESS,
                         help="cross-check campaign intensity (default %g)"
                              % STRESS)
    analyze.add_argument("--fuel", type=int, default=128,
                         help="model enumeration fuel for the library "
                              "cross-check (default 128)")
    analyze.add_argument("--jobs", type=int, default=1,
                         help="worker count for the cross-check campaign")
    analyze.add_argument("--executor", default="process",
                         choices=("process", "thread"),
                         help="worker pool kind for --jobs > 1")
    analyze.add_argument("--cache-dir", default=None,
                         help="on-disk result cache for the cross-check "
                              "campaign")
    analyze.set_defaults(func=_cmd_analyze)

    model = sub.add_parser("model", help="model-check a test")
    model.add_argument("test")
    model.add_argument("--model", default="ptx", choices=sorted(MODELS))
    _model_engine_argument(model)
    model.set_defaults(func=_cmd_model)

    witness = sub.add_parser(
        "witness",
        help="render a test's weak candidate execution as Graphviz DOT")
    witness.add_argument("test")
    witness.add_argument("--model", default="ptx",
                         choices=sorted(MODELS) + ["none"],
                         help="annotate the witness with this model's "
                              "allowed/forbidden verdict, or 'none' for "
                              "the bare graph (default: ptx)")
    witness.add_argument("--output", "-o", default=None, metavar="FILE",
                         help="write the DOT text to FILE instead of "
                              "stdout")
    witness.set_defaults(func=_cmd_witness)

    lst = sub.add_parser("list", help="list tests, chips and models")
    lst.set_defaults(func=_cmd_list)

    gen = sub.add_parser("generate", help="generate tests with diy")
    _corpus_arguments(gen, default_fences=("cta", "gl", "sys"),
                      default_max=20)
    gen.set_defaults(func=_cmd_generate)

    soundness = sub.add_parser(
        "soundness",
        help="Sec. 5.4: check a diy corpus's observations against a model")
    _corpus_arguments(soundness, default_fences=("cta", "gl"),
                      default_max=None)
    soundness.add_argument("--chips", nargs="+",
                           default=list(SOUNDNESS_CHIPS),
                           choices=sorted(CHIPS), metavar="CHIP",
                           help="chips to validate on (default: %s)"
                                % " ".join(SOUNDNESS_CHIPS))
    soundness.add_argument("--iterations", type=int, default=None,
                           help="sim iterations per cell (default: "
                                "REPRO_ITERS or 2500; the paper used 100k)")
    soundness.add_argument("--seed", type=int, default=0)
    soundness.add_argument("--model", default="ptx", choices=sorted(MODELS),
                           help="axiomatic reference model (default: ptx)")
    soundness.add_argument("--incantations", default="best",
                           help="as for `run`")
    soundness.add_argument("--chunk-size", type=int, default=64,
                           help="tests per streaming chunk (default 64)")
    soundness.add_argument("--max-rows", type=int, default=40,
                           help="summary-table row cap; violations always "
                                "shown (default 40)")
    # The session knobs of _session_arguments minus --backend: the
    # soundness pipeline is inherently dual-backend (sim + model).
    soundness.add_argument("--jobs", type=int, default=1,
                           help="worker count shared by the sim shards and "
                                "the model enumerations")
    soundness.add_argument("--executor", default="process",
                           choices=("process", "thread"),
                           help="worker pool kind for --jobs > 1")
    soundness.add_argument("--cache-dir", default=None,
                           help="on-disk result cache shared by both "
                                "backends; a second identical run is "
                                "served from it")
    _engine_argument(soundness)
    _model_engine_argument(soundness)
    soundness.set_defaults(func=_cmd_soundness)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
