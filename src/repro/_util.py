"""Small shared helpers: fixed-width integer arithmetic, formatting and
environment parsing."""

import os

from .errors import ConfigurationError

MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF
HIGH_BIT32 = 0x80000000


def wrap32(value):
    """Wrap ``value`` to an unsigned 32-bit integer (two's complement)."""
    return value & MASK32


def wrap64(value):
    """Wrap ``value`` to an unsigned 64-bit integer (two's complement)."""
    return value & MASK64


def to_signed32(value):
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value & HIGH_BIT32 else value


def env_int(name, fallback, minimum=1):
    """Parse an integer knob from the environment.

    Unset/empty returns ``fallback``; a non-integer value fails fast
    with a :class:`~repro.errors.ConfigurationError` (never a raw
    traceback); values below ``minimum`` are clamped up to it.
    """
    value = os.environ.get(name)
    if not value:
        return fallback
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigurationError(
            "%s must be an integer, got %r (unset it or export something "
            "like %s=%d)" % (name, value, name, max(fallback or 1, minimum))
        ) from None
    return max(parsed, minimum)


def resolve_choice(value, env_var, choices, default, what):
    """Resolve a two-source configuration choice (the engine-switch
    idiom shared by ``repro.sim.engine.resolve_engine`` and
    ``repro.model.models.resolve_model_engine``).

    ``value=None`` consults the ``env_var`` environment variable
    (falling back to ``default``), rejecting junk with a
    :class:`~repro.errors.ConfigurationError`; an explicit ``value``
    must name one of ``choices`` or a
    :class:`~repro.errors.ReproError` is raised, with ``what`` naming
    the knob in the message.
    """
    if value is None:
        value = os.environ.get(env_var) or default
        if value not in choices:
            raise ConfigurationError(
                "%s must be one of %s, got %r"
                % (env_var, "/".join(choices), value))
        return value
    if value not in choices:
        from .errors import ReproError
        raise ReproError("unknown %s %r (expected %s)"
                         % (what, value,
                            " or ".join(repr(choice) for choice in choices)))
    return value


def format_table(headers, rows, *, sep="  "):
    """Render ``rows`` (sequences of cells) under ``headers`` as plain text.

    Column widths adapt to content; all cells are stringified.  Used by the
    benchmark harness to print paper-style observation tables.
    """
    table = [[str(cell) for cell in row] for row in rows]
    header_cells = [str(cell) for cell in headers]
    widths = [len(cell) for cell in header_cells]
    for row in table:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))
    lines = [sep.join(cell.ljust(widths[i]) for i, cell in enumerate(header_cells)).rstrip()]
    lines.append(sep.join("-" * width for width in widths))
    for row in table:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)
