"""Scenario verification: the ``repro-litmus verify`` work horse.

Runs every selected ``(scenario, chip)`` cell through the exhaustive
explorer and renders the verdicts the paper's fence-fix claims deserve:
a fenced scenario is *verified* — ``verified: 0 losses over all
executions`` — while its unfenced twin reports a concrete losing
execution trace (the schedule plus the final state it reaches), not just
a loss rate.

Verdicts route through an exhaustive
:class:`~repro.api.session.Session`, so repeat invocations hit the
fingerprint-keyed cache and ``--jobs`` fans work out exactly like any
other campaign — not just across cells: every cell's exploration
shards by root branch (:meth:`ExhaustiveBackend.shards`), so a single
wide scenario saturates the pool too, and the shard-ordered merge
keeps every verdict bit-identical to a serial run.  The witness trace
for a losing cell is re-derived locally (the exploration is
deterministic, so the re-run reaches the same first witness the cached
verdict counted).
"""

from dataclasses import dataclass

from ..apps.scenario import ScenarioSpec, select_scenarios
from ..errors import ReproError
from ..sim.chip import CHIPS
from .backend import exhaustive_session, exhaustive_verdict
from .explore import (DEFAULT_LOOP_BOUND, DEFAULT_MAX_TRANSITIONS,
                      explore_test)

#: The exact verified-verdict sentence (tested verbatim; keep stable).
VERIFIED_TEXT = "verified: 0 losses over all executions"


@dataclass(frozen=True)
class VerifyRow:
    """One verified (scenario, chip) cell."""

    scenario: str
    chip: str
    fenced: bool          #: scenario carries the paper's fence fix
    states: int           #: distinct reachable final states
    executions: int       #: complete executions explored
    transitions: int      #: transitions executed
    losses: int           #: losing executions (0 = verified)
    bounded: bool         #: spin retries truncated at the loop bound
    witness: object       #: Witness for the first loss, or None

    @property
    def verified(self):
        return self.losses == 0

    def verdict(self):
        """One-line verdict; the verified sentence is verbatim-stable."""
        if self.verified:
            text = VERIFIED_TEXT
            if self.bounded:
                text += " (spin retries truncated at the loop bound)"
            return text
        text = "LOST: %d of %d executions violate the invariant" \
            % (self.losses, self.executions)
        if self.bounded:
            text += " (spin retries truncated at the loop bound)"
        return text


@dataclass(frozen=True)
class VerifyReport:
    """Every verified cell plus the campaign-level verdict."""

    rows: tuple
    loop_bound: int

    @property
    def ok(self):
        """No *fenced* scenario may lose; unfenced losses are the
        paper's point, not a failure."""
        return not self.unexpected()

    def unexpected(self):
        """Fenced rows that lost — each one is a real bug somewhere."""
        return [row for row in self.rows if row.fenced and not row.verified]

    def lines(self):
        out = []
        for row in self.rows:
            out.append("%-24s %-8s states=%-3d executions=%-6d "
                       "transitions=%-8d %s"
                       % (row.scenario, row.chip, row.states, row.executions,
                          row.transitions, row.verdict()))
            if row.witness is not None:
                out.append("  losing execution:")
                out.extend("    " + line for line in row.witness.lines())
        verified = sum(1 for row in self.rows if row.verified)
        out.append("%d/%d cells verified (loop bound %d)"
                   % (verified, len(self.rows), self.loop_bound))
        for row in self.unexpected():
            out.append("UNEXPECTED: fenced scenario %s lost on %s"
                       % (row.scenario, row.chip))
        return out


def _as_chip(chip):
    if isinstance(chip, str):
        try:
            return CHIPS[chip]
        except KeyError:
            raise ReproError("unknown chip %r; valid chips: %s"
                             % (chip, ", ".join(sorted(CHIPS)))) from None
    return chip


def verify_scenarios(scenarios, chips, intensity=1.0,
                     loop_bound=DEFAULT_LOOP_BOUND,
                     max_transitions=DEFAULT_MAX_TRANSITIONS,
                     session=None, jobs=1, executor="thread",
                     cache_dir=None, witnesses=True):
    """Exhaustively verify every ``(scenario, chip)`` cell.

    ``scenarios`` holds :class:`~repro.apps.scenario.Scenario` objects
    (or registry names), ``chips`` short names or profiles.
    ``intensity`` is structural — any positive value explores the same
    space — and defaults to 1.0, the "small intensity" of the bench
    corpus.  Returns a :class:`VerifyReport`.
    """
    from ..apps.scenario import get_scenario
    scenarios = [get_scenario(s) if isinstance(s, str) else s
                 for s in scenarios]
    chips = [_as_chip(chip) for chip in chips]
    if session is None:
        session = exhaustive_session(jobs=jobs, executor=executor,
                                     cache_dir=cache_dir,
                                     loop_bound=loop_bound,
                                     max_transitions=max_transitions)
    specs = [ScenarioSpec(scenario=scenario, chip=chip, iterations=1,
                          seed=0, intensity=float(intensity))
             for scenario in scenarios for chip in chips]
    rows = []
    for spec, result in zip(specs, session.run_specs(specs)):
        verdict = exhaustive_verdict(result.histogram, spec.test.condition)
        witness = None
        if witnesses and verdict["losses"] > 0:
            # Deterministic re-exploration: same first witness as the
            # (possibly cached) verdict's run.
            witness = explore_test(
                spec.test, spec.chip, intensity=float(intensity),
                loop_bound=loop_bound,
                max_transitions=max_transitions).witness
        rows.append(VerifyRow(
            scenario=spec.scenario.name, chip=spec.chip.short,
            fenced=spec.scenario.fenced, states=verdict["states"],
            executions=verdict["executions"],
            transitions=verdict["transitions"], losses=verdict["losses"],
            bounded=verdict["bounded"], witness=witness))
    return VerifyReport(rows=tuple(rows), loop_bound=loop_bound)


def verify_selection(names=("all",), fenced="both", chips=None, **kwargs):
    """Name-based front end: resolve the registry selection, then
    :func:`verify_scenarios`."""
    scenarios = select_scenarios(names, fenced=fenced)
    if not scenarios:
        raise ReproError("the scenario selection is empty")
    return verify_scenarios(scenarios, chips or ["Titan"], **kwargs)
