"""Stateless model checking of compiled cells (the GPUMC direction).

The verifier tier of the stack: where campaigns *sample* executions and
the axiomatic model enumerates *candidate graphs*, this package walks
every schedule of the operational semantics —
:mod:`repro.sim.compile`'s compiled cells driven transition by
transition — with persistent-set/sleep-set DPOR pruning, bounded spin
retries, and fence-choice enumeration, so a fenced scenario can be
*verified* (zero losses over all executions) rather than stress-tested.

Layers:

* :mod:`repro.exhaustive.explore` — the explorer itself
  (:func:`explore_test`, :class:`Explorer`, :class:`ExhaustiveResult`,
  witness traces, the :func:`execution_graph` bridge to the model's
  :class:`~repro.model.relation.IndexedRelation` machinery);
* :mod:`repro.exhaustive.backend` — :class:`ExhaustiveBackend`, the
  :class:`~repro.api.session.Session`-compatible verdict backend with
  fingerprint-keyed caching;
* :mod:`repro.exhaustive.verify` — the ``repro-litmus verify`` report
  (:func:`verify_scenarios`, :class:`VerifyReport`).
"""

from .backend import (EXHAUSTIVE_VERSION, ExhaustiveBackend,
                      encode_exhaustive_histogram, exhaustive_session,
                      exhaustive_verdict, split_exhaustive_histogram)
from .explore import (DEFAULT_LOOP_BOUND, DEFAULT_MAX_TRANSITIONS,
                      STRATEGIES, ExhaustiveResult, Explorer, Witness,
                      WitnessEvent, execution_graph, explore_test)
from .verify import (VERIFIED_TEXT, VerifyReport, VerifyRow,
                     verify_scenarios, verify_selection)

__all__ = [
    "DEFAULT_LOOP_BOUND", "DEFAULT_MAX_TRANSITIONS", "EXHAUSTIVE_VERSION",
    "ExhaustiveBackend", "ExhaustiveResult", "Explorer", "STRATEGIES",
    "VERIFIED_TEXT", "VerifyReport", "VerifyRow", "Witness", "WitnessEvent",
    "encode_exhaustive_histogram", "execution_graph", "exhaustive_session",
    "exhaustive_verdict", "explore_test", "split_exhaustive_histogram",
    "verify_scenarios", "verify_selection",
]
