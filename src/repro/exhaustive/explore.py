"""Stateless DPOR exploration of compiled cells: the verification core.

The campaign stack answers "did the scenario lose?" statistically: it
samples scheduler interleavings and relaxation draws.  This module
answers it *exhaustively*, GPUMC-style: every reachable final state of a
``(test, chip)`` cell under the operational semantics, by systematically
enumerating the per-tick choice points of the compiled fast engine
(:mod:`repro.sim.compile`) with persistent-set/sleep-set dynamic
partial-order reduction (Flanagan-Godefroid DPOR).

**The transition system.**  A state is the compiled cell's machine state
with every thread decoded to fixpoint; a transition issues one eligible
pending op of one thread (``_Thread.issue``) and re-decodes that thread.
Decode is thread-local and touches no memory, so folding it into the
preceding issue preserves reachability; younger queue entries never
block older ones, so eager decode only *adds* issue candidates.  The
intent vector is *structural*: slot ``s`` is enabled iff the chip's draw
probability is non-zero, which makes every per-iteration sampled intent
vector a subset — any behaviour the simulator can sample is explored
here (and the exploration realises reorderings the per-iteration
scheduler merely makes unlikely).

**Choice points.**  Three kinds, all enumerated:

* the scheduler: which thread issues which eligible op (the DPOR
  domain — persistent sets prune commuting interleavings, sleep sets
  kill re-explorations, both provably preserving the reachable final
  states);
* under-scoped fence damping: the only ``rng`` draw on the decode path
  (:meth:`_Compiler._compile_membar`), scripted through
  :class:`_ChoiceRng` and binary-enumerated per transition;
* spin retries: backward branches are wrapped with a per-thread loop
  bound — exceeding it abandons the branch and flags the result
  ``bounded`` (the explicit verdict qualifier; GPUMC bounds loops the
  same way).

Memory-system cache draws (L1 warm/evict) are *not* choice points: every
modelled chip has ``p_stale = 0``, so L1 content is unobservable and the
draws are semantically inert (enforced at construction).

The happens-before bookkeeping uses the same integer-bitmask row idiom
as PR 4's :class:`~repro.model.relation.IndexedRelation`;
:func:`execution_graph` hands a witness trace back to that machinery for
rendering and tests.
"""

from dataclasses import dataclass

from ..errors import ConfigurationError, ExplorationLimit, SimulationError
from ..ptx.instructions import Bra
from ..sim.compile import (K_ADD, K_CAS, K_EXCH, K_FENCE, K_LOAD, K_STORE,
                           compile_cell)

#: Per-thread backward-branch budget per execution: enough to resolve a
#: two-thread spin-lock handoff with a retry to spare, small enough to
#: keep lock scenarios tractable.
DEFAULT_LOOP_BOUND = 3

#: Transition budget (see :class:`~repro.errors.ExplorationLimit`).
DEFAULT_MAX_TRANSITIONS = 2_000_000

#: Exploration strategies: ``dpor`` (persistent + sleep sets) and
#: ``naive`` (every enabled transition at every state with no sleep-set
#: pruning — full interleaving enumeration, the baseline the benchmark
#: compares against).
STRATEGIES = ("dpor", "naive")

KIND_NAMES = {K_LOAD: "load", K_STORE: "store", K_FENCE: "fence",
              K_CAS: "cas", K_EXCH: "exch", K_ADD: "add"}


class _LoopBoundExceeded(Exception):
    """Internal: a wrapped backward branch exceeded the loop bound."""


class _ChoiceRng:
    """Scriptable stand-in for the per-thread ``Random``.

    The only draw the compiled decode path performs is the under-scoped
    fence test ``rng.random() >= damping``.  Damping 0 (or scope-covered
    fences, which draw nothing) forces *effective*; damping >= 1 forces
    *ineffective*; anything in between is a genuine binary choice point:
    the scripted outcome is replayed, outcomes beyond the script default
    to effective, and every outcome taken is recorded so the caller can
    enumerate the untaken siblings.
    """

    __slots__ = ("damping", "script", "taken", "cursor")

    def __init__(self, damping):
        self.damping = damping
        self.script = ()
        self.taken = []
        self.cursor = 0

    def begin(self, script):
        self.script = script
        self.taken = []
        self.cursor = 0

    def random(self):
        damping = self.damping
        if damping <= 0.0:
            return 0.5          # always effective: not a choice point
        if damping >= 1.0:
            return 0.0          # never effective: not a choice point
        index = self.cursor
        effective = self.script[index] if index < len(self.script) else True
        self.cursor = index + 1
        self.taken.append(effective)
        # The closure tests `random() >= damping`: returning the damping
        # itself realises "effective", 0.0 realises "ineffective".
        return damping if effective else 0.0


class _StubRng:
    """The memory system's rng: cache-effect draws (L1 evict/inval) only
    touch L1 lines, which are unobservable when staleness is off, so a
    fixed value is semantically inert."""

    __slots__ = ()

    def random(self):
        return 0.5


@dataclass(frozen=True)
class WitnessEvent:
    """One issued op of a witness trace."""

    tid: int
    op: str             #: kind name: load/store/fence/cas/exch/add
    location: str       #: memory location name, or None for fences
    value: int          #: value read (loads/atomics) or written (stores)
    is_store: bool

    def __str__(self):
        if self.op == "fence":
            return "T%d fence" % self.tid
        arrow = "<-" if self.is_store and self.op == "store" else "->"
        return "T%d %s %s %s %s" % (self.tid, self.op, self.location,
                                    arrow, self.value)


@dataclass(frozen=True)
class Witness:
    """A concrete execution trace reaching a condition-satisfying state."""

    events: tuple       #: WitnessEvent sequence, in issue order
    state: object       #: the FinalState it reaches

    def lines(self):
        out = ["%2d. %s" % (index, event)
               for index, event in enumerate(self.events, 1)]
        out.append("final: %s" % (self.state,))
        return out


@dataclass(frozen=True)
class ExhaustiveResult:
    """The verdict of one exhaustive exploration."""

    reachable: frozenset  #: every reachable final state
    executions: int       #: complete executions examined
    transitions: int      #: transitions executed (the pruning metric)
    losses: int           #: executions satisfying the condition
    bounded: bool         #: True if any branch hit the loop bound
    strategy: str
    loop_bound: int
    witness: object       #: first condition-satisfying Witness, or None

    @property
    def complete(self):
        """All executions covered (no loop-bound truncation)."""
        return not self.bounded

    @property
    def verified(self):
        """Zero condition-satisfying states among all reachable ones."""
        return self.losses == 0


class _Event:
    """One executed transition on the current DPOR path."""

    __slots__ = ("label", "hb", "detail")

    def __init__(self, label, hb, detail):
        self.label = label
        self.hb = hb          # bitmask over earlier path positions
        self.detail = detail  # (tid, kind, address, value, is_store)


class _Frame:
    """One state on the explicit DPOR stack."""

    __slots__ = ("snapshot", "enabled", "backtrack", "done", "sleep",
                 "label", "variants")

    def __init__(self, snapshot, enabled, sleep):
        self.snapshot = snapshot
        self.enabled = enabled    # label -> pending _Op
        self.backtrack = set()
        self.done = set()
        self.sleep = sleep
        self.label = None         # label currently being explored
        self.variants = []        # pending fence-choice scripts for label


def _dependent(a, b):
    """May the transitions labelled ``a`` and ``b`` not commute?

    Same-thread transitions are always dependent (program order).
    Cross-thread: fences touch only their own SM's L1 (unobservable, see
    :class:`_StubRng`) and are independent of everything; memory ops
    conflict iff they target the same address with at least one writer.
    Shared-memory addresses are per-SM but treated address-wise —
    conservative dependencies only cost pruning, never soundness.
    """
    if a[0] == b[0]:
        return True
    if a[2] == K_FENCE or b[2] == K_FENCE:
        return False
    if a[3] != b[3]:
        return False
    return a[4] or b[4]


class Explorer:
    """Exhaustive exploration of one ``(test, chip)`` cell.

    Compiles a private :class:`~repro.sim.compile.CompiledCell` (default
    CTA placement — the one every non-``thread_rand`` campaign runs) and
    drives its threads' ``decode``/``eligible_ops``/``issue`` machinery
    directly, so the per-transition semantics are exactly the fast
    engine's.  ``intensity`` only matters structurally (zero vs
    non-zero): slot ``s`` of the intent vector is enabled iff its draw
    probability is positive.
    """

    def __init__(self, test, chip, intensity=1.0, strategy="dpor",
                 loop_bound=DEFAULT_LOOP_BOUND,
                 max_transitions=DEFAULT_MAX_TRANSITIONS, condition=None):
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                "unknown exploration strategy %r (expected one of: %s)"
                % (strategy, ", ".join(STRATEGIES)))
        if loop_bound < 1:
            raise ConfigurationError(
                "loop_bound must be >= 1, got %r" % (loop_bound,))
        self.test = test
        self.chip = chip
        self.strategy = strategy
        self.loop_bound = loop_bound
        self.max_transitions = max_transitions
        cell = compile_cell(test, chip, intensity=intensity)
        if cell.p_stale > 0.0:
            raise ConfigurationError(
                "exhaustive mode cannot enumerate stale-L1 nondeterminism "
                "(chip %s has p_stale=%g)" % (chip.short, cell.p_stale))
        self.cell = cell
        self.threads = cell.threads
        self.memory = cell.memory
        self.iv = [probability > 0.0 for probability in cell.draw_probs]
        self.condition = condition if condition is not None else test.condition
        self._choice_rng = _ChoiceRng(chip.underscoped_fence_damping)
        self._loop_counts = [0] * len(self.threads)
        self._wrap_backward_branches()
        self._loc_names = {address: name
                           for name, address in cell.address_map.items()}
        self.memory.reset(_StubRng(), False)
        for thread in self.threads:
            thread.reset(self._choice_rng)
        self.reachable = set()
        self.executions = 0
        self.transitions = 0
        self.losses = 0
        self.bounded = False
        self.witness = None

    # -- loop bounding ------------------------------------------------------

    def _wrap_backward_branches(self):
        """Wrap every backward ``bra`` with the per-thread loop counter.

        Only *taken backward* jumps count (a guarded branch that falls
        through advances the pc instead); exceeding the bound abandons
        the branch via :class:`_LoopBoundExceeded` and flags the result
        ``bounded``.
        """
        bound = self.loop_bound
        counts = self._loop_counts
        for tid, program in enumerate(self.test.threads):
            thread = self.threads[tid]
            for pc, instruction in enumerate(program.instructions):
                if not isinstance(instruction, Bra):
                    continue
                target = program.labels[instruction.target]
                if target > pc:
                    continue

                def step(t, _inner=thread.code[pc], _target=target,
                         _tid=tid, _counts=counts, _bound=bound):
                    result = _inner(t)
                    if result and t.pc == _target:
                        _counts[_tid] += 1
                        if _counts[_tid] > _bound:
                            raise _LoopBoundExceeded()
                    return result

                thread.code[pc] = step

    # -- state save/restore -------------------------------------------------

    def _snapshot(self):
        memory = self.memory
        return (tuple((t.pc, t.seq, dict(t.regs), set(t.pending),
                       list(t.queue)) for t in self.threads),
                dict(memory.global_mem),
                [dict(bank) for bank in memory.shared_mem],
                [dict(line) for line in memory.l1],
                list(self._loop_counts))

    def _restore(self, snapshot):
        thread_states, global_mem, shared_mem, l1, loop_counts = snapshot
        for thread, (pc, seq, regs, pending, queue) in zip(self.threads,
                                                           thread_states):
            thread.pc = pc
            thread.seq = seq
            thread.regs.clear()
            thread.regs.update(regs)
            thread.pending.clear()
            thread.pending.update(pending)
            thread.queue[:] = queue
        memory = self.memory
        memory.global_mem.clear()
        memory.global_mem.update(global_mem)
        for bank, saved in zip(memory.shared_mem, shared_mem):
            bank.clear()
            bank.update(saved)
        for line, saved in zip(memory.l1, l1):
            line.clear()
            line.update(saved)
        self._loop_counts[:] = loop_counts

    # -- transitions --------------------------------------------------------

    def _enabled(self):
        """All enabled transition labels at the current (decoded) state.

        A label ``(tid, seq, kind, address, is_store, is_load)`` is
        path-stable (the pending op keeps its identity until issued) and
        deterministically ordered: ``(tid, seq)`` alone is unique, so
        tuple comparison never reaches the possibly-None address.
        """
        enabled = {}
        iv = self.iv
        for tid, thread in enumerate(self.threads):
            if thread.pc < thread.ncode or thread.queue:
                for op in thread.eligible_ops(iv):
                    st = op.st
                    enabled[(tid, op.seq, st.kind, op.address,
                             st.is_store, st.is_load)] = op
        return enabled

    def _execute(self, label, op):
        """Issue ``op`` and re-decode its thread to fixpoint."""
        self.transitions += 1
        if self.transitions > self.max_transitions:
            raise ExplorationLimit(
                "exhaustive exploration of %s on %s exceeded %d "
                "transitions; raise max_transitions or lower the loop "
                "bound" % (self.test.name, self.chip.short,
                           self.max_transitions))
        tid = label[0]
        thread = self.threads[tid]
        thread.issue(op)
        st = op.st
        if st.kind == K_STORE:
            value = op.value
        elif st.kind == K_FENCE:
            value = None
        else:
            value = thread.regs.get(st.dst)
        while thread.decode():
            pass
        return (tid, st.kind, op.address, value, st.is_store)

    @staticmethod
    def _queue_variants(worklist, script, taken):
        """Enumerate the untaken fence-choice siblings of one execution:
        for every effective draw beyond the forced prefix, the script
        that flips it (classic binary-tree stateless enumeration)."""
        for index in range(len(script), len(taken)):
            if taken[index]:
                worklist.append(taken[:index] + (False,))

    # -- terminal states ----------------------------------------------------

    def _record_terminal(self, events):
        for thread in self.threads:
            if not thread.done:
                raise SimulationError(
                    "exhaustive exploration wedged in %s: a thread has "
                    "work but no eligible op (decode-fixpoint invariant "
                    "violated)" % self.test.name)
        state = self.cell._final_state()
        self.executions += 1
        self.reachable.add(state)
        if self.condition is not None and self.condition.holds(state):
            self.losses += 1
            if self.witness is None:
                self.witness = self._capture_witness(events, state)

    def _capture_witness(self, events, state):
        out = []
        for event in events:
            tid, kind, address, value, is_store = event.detail
            out.append(WitnessEvent(
                tid=tid, op=KIND_NAMES[kind],
                location=self._loc_names.get(address), value=value,
                is_store=is_store))
        return Witness(events=tuple(out), state=state)

    # -- DPOR ---------------------------------------------------------------

    def _make_frame(self, sleep, events=()):
        enabled = self._enabled()
        if not enabled:
            self._record_terminal(events)
            return None
        frame = _Frame(self._snapshot(), enabled, sleep)
        if self.strategy == "naive":
            frame.backtrack = set(enabled)
        else:
            # Seed the persistent set with *every* enabled op of one
            # thread, not one op: a thread's eligible ops are mutually
            # dependent (issue order is itself a relaxation choice), and
            # cross-thread race reversal can never recover an
            # intra-thread reordering.
            awake = [label for label in enabled if label not in sleep]
            if awake:
                seed_tid = min(awake)[0]
                frame.backtrack.update(label for label in awake
                                       if label[0] == seed_tid)
            # else: every enabled transition is asleep — this state's
            # subtree is already covered elsewhere (sleep-set blocking).
        return frame

    def _pick(self, frame):
        """Next unexplored backtrack label, or None when exhausted.

        Called only between labels (never between fence variants), so
        the previous label is fully explored here — the moment it joins
        the sleep set for its later siblings.
        """
        if frame.label is not None:
            frame.sleep.add(frame.label)
            frame.label = None
        candidates = [label for label in frame.backtrack
                      if label not in frame.done and label not in frame.sleep]
        if not candidates:
            return None
        return min(candidates)

    def _update_races(self, stack, events, label):
        """Happens-before closure + persistent-set race reversal.

        ``events[i]`` was executed from ``stack[i]``; its ``hb`` mask is
        already transitively closed, so the new transition's closure is
        the union over its direct predecessors (same thread or
        dependent) — the same bitmask-row idiom as
        :meth:`~repro.model.relation.IndexedRelation.transitive_closure`.
        A dependent cross-thread event not ordered before ``label``
        through *other* predecessors is a reversible race: seed the
        backtrack set of its pre-state with the threads that can reach
        the reversal (Flanagan-Godefroid's E-set, all labels of those
        threads at our transition granularity; every enabled label if
        none qualify).
        """
        tid = label[0]
        contributors = [index for index, event in enumerate(events)
                        if event.label[0] == tid
                        or _dependent(event.label, label)]
        hb = 0
        for index in contributors:
            hb |= events[index].hb | (1 << index)
        if self.strategy != "dpor":
            return hb
        for index in contributors:
            event = events[index]
            if event.label[0] == tid:
                continue
            ordered = 0
            for other in contributors:
                if other != index:
                    ordered |= events[other].hb | (1 << other)
            if (ordered >> index) & 1:
                continue    # ordered via intermediates: not reversible
            frame = stack[index]
            tids = {tid}
            for later in range(index + 1, len(events)):
                if (hb >> later) & 1:
                    tids.add(events[later].label[0])
            candidates = [other for other in frame.enabled
                          if other[0] in tids]
            frame.backtrack.update(candidates or frame.enabled)
        return hb

    def _dpor(self):
        """Explore every interleaving from the current (decoded) state."""
        root = self._make_frame(set(), [])
        if root is None:
            return
        stack = [root]
        events = []
        rng = self._choice_rng
        while stack:
            depth = len(stack) - 1
            frame = stack[depth]
            del events[depth:]
            if frame.variants:
                script = frame.variants.pop()
            else:
                label = self._pick(frame)
                if label is None:
                    stack.pop()
                    continue
                frame.label = label
                frame.done.add(label)
                script = ()
            self._restore(frame.snapshot)
            hb = self._update_races(stack, events, frame.label)
            rng.begin(script)
            op = frame.enabled[frame.label]
            try:
                detail = self._execute(frame.label, op)
            except _LoopBoundExceeded:
                self.bounded = True
                self._queue_variants(frame.variants, script,
                                     tuple(rng.taken))
                continue
            self._queue_variants(frame.variants, script, tuple(rng.taken))
            events.append(_Event(frame.label, hb, detail))
            if self.strategy == "naive":
                child_sleep = set()
            else:
                child_sleep = {other for other in frame.sleep
                               if not _dependent(other, frame.label)}
            child = self._make_frame(child_sleep, events)
            if child is not None:
                stack.append(child)

    # -- driver -------------------------------------------------------------

    def run(self):
        """Explore everything; returns the :class:`ExhaustiveResult`.

        The initial decode (before any issue) may itself hit fence
        choice points, so its outcomes are enumerated as exploration
        roots; each root then gets the full DPOR treatment.
        """
        base = self._snapshot()
        rng = self._choice_rng
        scripts = [()]
        while scripts:
            script = scripts.pop()
            self._restore(base)
            rng.begin(script)
            try:
                for thread in self.threads:
                    while thread.decode():
                        pass
            except _LoopBoundExceeded:
                self.bounded = True
                self._queue_variants(scripts, script, tuple(rng.taken))
                continue
            self._queue_variants(scripts, script, tuple(rng.taken))
            self._dpor()
        return ExhaustiveResult(
            reachable=frozenset(self.reachable), executions=self.executions,
            transitions=self.transitions, losses=self.losses,
            bounded=self.bounded, strategy=self.strategy,
            loop_bound=self.loop_bound, witness=self.witness)


def explore_test(test, chip, intensity=1.0, strategy="dpor",
                 loop_bound=DEFAULT_LOOP_BOUND,
                 max_transitions=DEFAULT_MAX_TRANSITIONS, condition=None):
    """Exhaustively explore one cell; returns an :class:`ExhaustiveResult`.

    ``condition`` defaults to the test's own final condition (which for
    scenario-built tests *is* the loss predicate), counted per execution
    with the first satisfying trace captured as the witness.
    """
    return Explorer(test, chip, intensity=intensity, strategy=strategy,
                    loop_bound=loop_bound, max_transitions=max_transitions,
                    condition=condition).run()


def execution_graph(witness):
    """Index a witness trace into PR 4's relation machinery.

    Returns ``(index, relations)`` where ``index`` is an
    :class:`~repro.model.relation.EventIndex` over the event positions
    and ``relations`` maps ``po`` (same-thread order), ``com``
    (same-location communication with a writer) and ``hb`` (their
    transitive closure) to :class:`~repro.model.relation.IndexedRelation`
    bitmask rows — the same execution-graph core the axiomatic engine
    compiles against.
    """
    from ..model.relation import EventIndex, IndexedRelation
    events = witness.events
    index = EventIndex(tuple(range(len(events))))
    po_pairs, com_pairs = [], []
    for i, first in enumerate(events):
        for j in range(i + 1, len(events)):
            second = events[j]
            if first.tid == second.tid:
                po_pairs.append((i, j))
            elif (first.location is not None
                    and first.location == second.location
                    and (first.is_store or second.is_store)):
                com_pairs.append((i, j))
    po = IndexedRelation.from_pairs(index, po_pairs)
    com = IndexedRelation.from_pairs(index, com_pairs)
    return index, {"po": po, "com": com, "hb": (po | com).transitive_closure()}
