"""Stateless DPOR exploration of compiled cells: the verification core.

The campaign stack answers "did the scenario lose?" statistically: it
samples scheduler interleavings and relaxation draws.  This module
answers it *exhaustively*, GPUMC-style: every reachable final state of a
``(test, chip)`` cell under the operational semantics, by systematically
enumerating the per-tick choice points of the compiled fast engine
(:mod:`repro.sim.compile`) with persistent-set/sleep-set dynamic
partial-order reduction (Flanagan-Godefroid DPOR).

**The transition system.**  A state is the compiled cell's machine state
with every thread decoded to fixpoint; a transition issues one eligible
pending op of one thread (``_Thread.issue``) and re-decodes that thread.
Decode is thread-local and touches no memory, so folding it into the
preceding issue preserves reachability; younger queue entries never
block older ones, so eager decode only *adds* issue candidates.  The
intent vector is *structural*: slot ``s`` is enabled iff the chip's draw
probability is non-zero, which makes every per-iteration sampled intent
vector a subset — any behaviour the simulator can sample is explored
here (and the exploration realises reorderings the per-iteration
scheduler merely makes unlikely).

**Choice points.**  Three kinds, all enumerated:

* the scheduler: which thread issues which eligible op (the DPOR
  domain — persistent sets prune commuting interleavings, sleep sets
  kill re-explorations, both provably preserving the reachable final
  states);
* under-scoped fence damping: the only ``rng`` draw on the decode path
  (:meth:`_Compiler._compile_membar`), scripted through
  :class:`_ChoiceRng` and binary-enumerated per transition;
* spin retries: backward branches are wrapped with a per-thread loop
  bound — exceeding it abandons the branch and flags the result
  ``bounded`` (the explicit verdict qualifier; GPUMC bounds loops the
  same way).

**Intra-thread independence.**  Same-thread transitions are not blanket
dependent: a static commutation analysis (piggybacking on
:mod:`repro.analysis.accesses`) marks *free* ops — plain non-volatile
loads/stores of straight-line threads whose address resolves statically
and whose destination register the decode path never reads — and two
free ops of one thread targeting distinct addresses with distinct
destinations commute whenever the chip's pass rule lets them reorder at
all.  Persistent-set seeds then shrink from whole threads to
dependence-clusters, which is what makes wide per-thread windows
(``mp-padN``) tractable on reordering chips.

**State-hash loop closure.**  At every taken backward branch the
explorer hashes the machine state (memory, registers, queue occupancy —
not loop counters).  A spin iteration that reproduces a state already
seen in the current same-thread run is a pure cycle: its continuation
duplicates the previous visit's, so the branch closes instead of
re-unrolling (the frames of the cycle are conservatively fully expanded
first, so no race reversal is lost with the truncated future).  Closure
is enabled only when the cell has no genuine fence choice points — a
pending fence script is invisible to the state hash.  Cells that close
every spin no longer flag ``bounded`` and tolerate ``--loop-bound 4+``.

**Parallel exploration.**  The root state's enabled transitions define a
static branch partition: :meth:`Explorer.root_plan` enumerates
``(fence-script, branch)`` entries and :meth:`Explorer.run_branch`
explores one entry in isolation (root backtrack pinned to that branch's
label, earlier siblings asleep).  Serial :meth:`Explorer.run` iterates
the identical entries in order, so a parallel run that merges per-branch
results in plan order is *bit-identical* to the serial one — reachable
sets, transition counts, loss counts and the bounded flag all agree
regardless of ``--jobs`` or executor.  The transition budget applies
per branch for the same reason.

Memory-system cache draws (L1 warm/evict) are *not* choice points: every
modelled chip has ``p_stale = 0``, so L1 content is unobservable and the
draws are semantically inert (enforced at construction).

The happens-before bookkeeping uses the same integer-bitmask row idiom
as PR 4's :class:`~repro.model.relation.IndexedRelation`;
:func:`execution_graph` hands a witness trace back to that machinery for
rendering and tests.
"""

from dataclasses import dataclass

from ..analysis.accesses import decode_read_registers, resolve_address
from ..errors import ConfigurationError, ExplorationLimit, SimulationError
from ..ptx.instructions import Bra
from ..ptx.types import Scope
from ..sim.compile import (_PASS_PAIR, K_ADD, K_CAS, K_EXCH, K_FENCE, K_LOAD,
                           K_STORE, SLOT_BYPASS_BASE, SLOT_MIXED_HAZARD,
                           SLOT_RR_HAZARD, _Thread, compile_cell)

#: Per-thread backward-branch budget per execution: enough to resolve a
#: two-thread spin-lock handoff with a retry to spare, small enough to
#: keep lock scenarios tractable.  Cells whose spins close via the state
#: hash tolerate much larger bounds (the closure fires first).
DEFAULT_LOOP_BOUND = 3

#: Per-branch transition budget (see
#: :class:`~repro.errors.ExplorationLimit`).  Per *branch*, not per run,
#: so parallel and serial explorations abort identically.
DEFAULT_MAX_TRANSITIONS = 2_000_000

#: Exploration strategies: ``dpor`` (persistent + sleep sets) and
#: ``naive`` (every enabled transition at every state with no sleep-set
#: pruning — full interleaving enumeration, the baseline the benchmark
#: compares against).
STRATEGIES = ("dpor", "naive")

#: Cells whose programs enqueue at most this many ops *in total* skip
#: the persistent-seed/race-reversal bookkeeping and explore with full
#: backtrack sets plus sleep sets only: on tiny graphs the happens-before
#: bitmask accounting costs more wall-clock than the transitions it
#: prunes (the deque-mp regression in BENCH_exhaust), while sleep sets
#: alone already visit every Mazurkiewicz trace exactly once.
SLEEP_ONLY_MAX_OPS = 8

KIND_NAMES = {K_LOAD: "load", K_STORE: "store", K_FENCE: "fence",
              K_CAS: "cas", K_EXCH: "exch", K_ADD: "add"}

_ATOMIC_KINDS = (K_CAS, K_EXCH, K_ADD)


class _LoopBoundExceeded(Exception):
    """Internal: a wrapped backward branch exceeded the loop bound."""


class _LoopClosed(Exception):
    """Internal: a backward branch reproduced an already-seen state."""


class _ChoiceRng:
    """Scriptable stand-in for the per-thread ``Random``.

    The only draw the compiled decode path performs is the under-scoped
    fence test ``rng.random() >= damping``.  Damping 0 (or scope-covered
    fences, which draw nothing) forces *effective*; damping >= 1 forces
    *ineffective*; anything in between is a genuine binary choice point:
    the scripted outcome is replayed, outcomes beyond the script default
    to effective, and every outcome taken is recorded so the caller can
    enumerate the untaken siblings.
    """

    __slots__ = ("damping", "script", "taken", "cursor")

    def __init__(self, damping):
        self.damping = damping
        self.script = ()
        self.taken = []
        self.cursor = 0

    def begin(self, script):
        self.script = script
        self.taken = []
        self.cursor = 0

    def random(self):
        damping = self.damping
        if damping <= 0.0:
            return 0.5          # always effective: not a choice point
        if damping >= 1.0:
            return 0.0          # never effective: not a choice point
        index = self.cursor
        effective = self.script[index] if index < len(self.script) else True
        self.cursor = index + 1
        self.taken.append(effective)
        # The closure tests `random() >= damping`: returning the damping
        # itself realises "effective", 0.0 realises "ineffective".
        return damping if effective else 0.0


class _StubRng:
    """The memory system's rng: cache-effect draws (L1 evict/inval) only
    touch L1 lines, which are unobservable when staleness is off, so a
    fixed value is semantically inert."""

    __slots__ = ()

    def random(self):
        return 0.5


@dataclass(frozen=True)
class WitnessEvent:
    """One issued op of a witness trace."""

    tid: int
    op: str             #: kind name: load/store/fence/cas/exch/add
    location: str       #: memory location name, or None for fences
    value: int          #: value read (loads/atomics) or written (stores)
    is_store: bool

    def __str__(self):
        if self.op == "fence":
            return "T%d fence" % self.tid
        arrow = "<-" if self.is_store and self.op == "store" else "->"
        return "T%d %s %s %s %s" % (self.tid, self.op, self.location,
                                    arrow, self.value)


@dataclass(frozen=True)
class Witness:
    """A concrete execution trace reaching a condition-satisfying state."""

    events: tuple       #: WitnessEvent sequence, in issue order
    state: object       #: the FinalState it reaches

    def lines(self):
        out = ["%2d. %s" % (index, event)
               for index, event in enumerate(self.events, 1)]
        out.append("final: %s" % (self.state,))
        return out


@dataclass(frozen=True)
class ExhaustiveResult:
    """The verdict of one exhaustive exploration."""

    reachable: frozenset  #: every reachable final state
    executions: int       #: complete executions examined
    transitions: int      #: transitions executed (the pruning metric)
    losses: int           #: executions satisfying the condition
    bounded: bool         #: True if any branch hit the loop bound
    strategy: str
    loop_bound: int
    witness: object       #: first condition-satisfying Witness, or None

    @property
    def complete(self):
        """All executions covered (no loop-bound truncation)."""
        return not self.bounded

    @property
    def verified(self):
        """Zero condition-satisfying states among all reachable ones."""
        return self.losses == 0


class _Event:
    """One executed transition on the current DPOR path."""

    __slots__ = ("label", "hb", "detail", "marks")

    def __init__(self, label, hb, detail, marks):
        self.label = label
        self.hb = hb          # bitmask over earlier path positions
        self.detail = detail  # (tid, kind, address, value, is_store)
        self.marks = marks    # back-edge state hashes seen during it


class _Frame:
    """One state on the explicit DPOR stack."""

    __slots__ = ("snapshot", "enabled", "backtrack", "done", "sleep",
                 "label", "variants")

    def __init__(self, snapshot, enabled, sleep):
        self.snapshot = snapshot
        self.enabled = enabled    # label -> pending _Op
        self.backtrack = set()
        self.done = set()
        self.sleep = sleep
        self.label = None         # label currently being explored
        self.variants = []        # pending fence-choice scripts for label


class Explorer:
    """Exhaustive exploration of one ``(test, chip)`` cell.

    Compiles a private :class:`~repro.sim.compile.CompiledCell` (default
    CTA placement — the one every non-``thread_rand`` campaign runs) and
    drives its threads' ``decode``/``eligible_ops``/``issue`` machinery
    directly, so the per-transition semantics are exactly the fast
    engine's.  ``intensity`` only matters structurally (zero vs
    non-zero): slot ``s`` of the intent vector is enabled iff its draw
    probability is positive.

    Transition labels are ``(tid, seq, kind, address, is_store, is_load,
    flag)`` tuples; ``(tid, seq)`` alone is unique, so tuple comparison
    never reaches the possibly-``None`` tail.  ``flag`` carries the
    commutation verdict of the static analysis: ``None`` for *barrier*
    ops (always dependent with same-thread company), ``-1`` for free
    stores, the destination register name for free loads.
    """

    def __init__(self, test, chip, intensity=1.0, strategy="dpor",
                 loop_bound=DEFAULT_LOOP_BOUND,
                 max_transitions=DEFAULT_MAX_TRANSITIONS, condition=None):
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                "unknown exploration strategy %r (expected one of: %s)"
                % (strategy, ", ".join(STRATEGIES)))
        if loop_bound < 1:
            raise ConfigurationError(
                "loop_bound must be >= 1, got %r" % (loop_bound,))
        self.test = test
        self.chip = chip
        self.strategy = strategy
        self.loop_bound = loop_bound
        self.max_transitions = max_transitions
        cell = compile_cell(test, chip, intensity=intensity)
        if cell.p_stale > 0.0:
            raise ConfigurationError(
                "exhaustive mode cannot enumerate stale-L1 nondeterminism "
                "(chip %s has p_stale=%g)" % (chip.short, cell.p_stale))
        self.cell = cell
        self.threads = cell.threads
        self.memory = cell.memory
        self.iv = [probability > 0.0 for probability in cell.draw_probs]
        self.condition = condition if condition is not None else test.condition
        self._atomic_ordered = chip.atomic_ordered
        self._choice_rng = _ChoiceRng(chip.underscoped_fence_damping)
        self._flags = self._commute_tables()
        self._slot_index = [
            {id(st): slot for slot, st in enumerate(statics)}
            for statics in cell._op_statics]
        self._sleep_only = (
            strategy == "dpor"
            and sum(len(statics) for statics in cell._op_statics)
            <= SLEEP_ONLY_MAX_OPS)
        self._closure = not self._fence_choice_points()
        self._loop_counts = [0] * len(self.threads)
        self._wrap_backward_branches()
        self._loc_names = {address: name
                           for name, address in cell.address_map.items()}
        self.memory.reset(_StubRng(), False)
        for thread in self.threads:
            thread.reset(self._choice_rng)
        self._base = self._snapshot()
        self._plan = None
        self._active_seen = set()
        self._marks = set()
        self._mark_tid = None
        self._branch_base = 0
        self._reset_results()

    # -- static commutation analysis ----------------------------------------

    def _commute_tables(self):
        """Per-thread ``id(op-static) -> flag`` free-op tables.

        An op is *free* — provably commuting with any same-thread free
        op at a different address and destination — when its thread is
        straight-line (no backward branch) and enqueues at most a
        window's worth of ops (so decode never stalls on a full queue),
        the op is a plain non-volatile load or store, its address
        resolves statically (:func:`resolve_address`, reusing the
        analyzer's rules), and — for loads — the decode path never
        reads nor ALU-writes its destination register
        (:func:`decode_read_registers`): issuing it early or late can
        then steer neither its own thread's front end nor any register
        another instruction consults.  Everything else is a barrier op
        (flag ``None``), dependent with all same-thread company.
        """
        tables = []
        for tid, program in enumerate(self.test.threads):
            tables.append(self._thread_flags(tid, program,
                                             self.cell._op_statics[tid]))
        return tables

    def _thread_flags(self, tid, program, statics):
        table = {}
        instructions = list(program.instructions)
        for pc, instruction in enumerate(instructions):
            if (isinstance(instruction, Bra)
                    and program.labels[instruction.target] <= pc):
                return table    # looping thread: every op is a barrier
        if len(statics) > _Thread.WINDOW:
            return table        # the queue may fill and stall decode
        decode_read = decode_read_registers(program)
        decode_written = set()
        defs_by_reg = {}
        for instruction in instructions:
            if not (instruction.is_memory_access or instruction.is_fence):
                decode_written.update(instruction.defs())
        for index, instruction in enumerate(instructions):
            for reg in instruction.defs():
                defs_by_reg.setdefault(reg, []).append(index)
        queue_instructions = [instruction for instruction in instructions
                              if instruction.is_memory_access
                              or instruction.is_fence]
        if len(queue_instructions) != len(statics):
            return table        # defensive: lowering changed shape
        for instruction, st in zip(queue_instructions, statics):
            if st.kind not in (K_LOAD, K_STORE) or st.volatile:
                continue
            location, _ = resolve_address(instruction.addr, tid,
                                          self.test.reg_init, defs_by_reg)
            if location is None:
                continue        # computed address: stays a barrier
            if st.kind == K_STORE:
                table[id(st)] = -1
            elif st.dst not in decode_read and st.dst not in decode_written:
                table[id(st)] = st.dst
        return table

    def _fence_choice_points(self):
        """Does any execution hit a genuine fence-damping draw?

        Only under-scoped fences draw, and only a damping strictly
        between 0 and 1 makes the draw a binary choice point (the
        :class:`_ChoiceRng` short-circuits both extremes).  When no
        choice point exists the machine state determines the future
        completely and state-hash loop closure is sound.
        """
        damping = self.chip.underscoped_fence_damping
        if damping <= 0.0 or damping >= 1.0:
            return False
        placement = self.test.scope_tree.classify()
        required = Scope.GL if placement == "inter-cta" else Scope.CTA
        for program in self.test.threads:
            for instruction in program.instructions:
                if (instruction.is_fence
                        and not instruction.scope.covers(required)):
                    return True
        return False

    # -- loop bounding and closure ------------------------------------------

    def _wrap_backward_branches(self):
        """Wrap every backward ``bra`` with the per-thread back-edge hook.

        Only *taken backward* jumps count (a guarded branch that falls
        through advances the pc instead); the hook closes the branch on
        a repeated state (:class:`_LoopClosed`) or abandons it past the
        loop bound (:class:`_LoopBoundExceeded`, flagging the result
        ``bounded``).
        """
        for tid, program in enumerate(self.test.threads):
            thread = self.threads[tid]
            for pc, instruction in enumerate(program.instructions):
                if not isinstance(instruction, Bra):
                    continue
                target = program.labels[instruction.target]
                if target > pc:
                    continue

                def step(t, _inner=thread.code[pc], _target=target,
                         _tid=tid, _hook=self._back_edge):
                    result = _inner(t)
                    if result and t.pc == _target:
                        _hook(_tid)
                    return result

                thread.code[pc] = step

    def _back_edge(self, tid):
        counts = self._loop_counts
        counts[tid] += 1
        if self._closure and tid == self._mark_tid:
            key = self._canonical_state()
            if key in self._active_seen or key in self._marks:
                raise _LoopClosed()
            self._marks.add(key)
        if counts[tid] > self.loop_bound:
            raise _LoopBoundExceeded()

    def _canonical_state(self):
        """A hashable image of everything that determines the future.

        Thread fronts (pc, registers, pending destinations, queue
        entries keyed by static slot instead of dynamic seq) plus
        global/shared memory.  Loop counters and absolute sequence
        numbers are deliberately excluded — they advance monotonically
        and would defeat closure — as is L1 content, unobservable with
        staleness off.
        """
        threads = []
        for tid, thread in enumerate(self.threads):
            slots = self._slot_index[tid]
            queue = tuple((slots[id(op.st)], op.address, op.value, op.compare)
                          for op in thread.queue)
            threads.append((thread.pc,
                            tuple(sorted(thread.regs.items())),
                            tuple(sorted(thread.pending)), queue))
        memory = self.memory
        return (tuple(threads),
                tuple(sorted(memory.global_mem.items())),
                tuple(tuple(sorted(bank.items()))
                      for bank in memory.shared_mem))

    # -- state save/restore -------------------------------------------------

    def _snapshot(self):
        memory = self.memory
        return (tuple((t.pc, t.seq, dict(t.regs), set(t.pending),
                       list(t.queue)) for t in self.threads),
                dict(memory.global_mem),
                [dict(bank) for bank in memory.shared_mem],
                [dict(line) for line in memory.l1],
                list(self._loop_counts))

    def _restore(self, snapshot):
        thread_states, global_mem, shared_mem, l1, loop_counts = snapshot
        for thread, (pc, seq, regs, pending, queue) in zip(self.threads,
                                                           thread_states):
            thread.pc = pc
            thread.seq = seq
            thread.regs.clear()
            thread.regs.update(regs)
            thread.pending.clear()
            thread.pending.update(pending)
            thread.queue[:] = queue
        memory = self.memory
        memory.global_mem.clear()
        memory.global_mem.update(global_mem)
        for bank, saved in zip(memory.shared_mem, shared_mem):
            bank.clear()
            bank.update(saved)
        for line, saved in zip(memory.l1, l1):
            line.clear()
            line.update(saved)
        self._loop_counts[:] = loop_counts

    # -- transitions --------------------------------------------------------

    def _enabled(self):
        """All enabled transition labels at the current (decoded) state.

        A label is path-stable (the pending op keeps its identity until
        issued) and deterministically ordered by its unique
        ``(tid, seq)`` prefix.
        """
        enabled = {}
        iv = self.iv
        flags = self._flags
        for tid, thread in enumerate(self.threads):
            if thread.pc < thread.ncode or thread.queue:
                table = flags[tid]
                for op in thread.eligible_ops(iv):
                    st = op.st
                    enabled[(tid, op.seq, st.kind, op.address, st.is_store,
                             st.is_load, table.get(id(st)))] = op
        return enabled

    def _dependent(self, a, b):
        """May the transitions labelled ``a`` and ``b`` not commute?

        Cross-thread: fences touch only their own SM's L1 (unobservable,
        see :class:`_StubRng`) and are independent of everything; memory
        ops conflict iff they target the same address with at least one
        writer.  Same-thread: barrier ops (flag ``None``) are dependent
        with everything; free ops conflict on a shared address, on a
        shared destination register, or when the chip's pass rule pins
        their issue order (a disabled pass slot means the younger op can
        never overtake — order is forced, not commuting).
        """
        if a[0] != b[0]:
            if a[2] == K_FENCE or b[2] == K_FENCE:
                return False
            if a[3] != b[3]:
                return False
            return a[4] or b[4]
        if a[6] is None or b[6] is None:
            return True
        if a[3] == b[3]:
            return True
        if a[5] and b[5] and a[6] == b[6]:
            return True
        older, younger = (a, b) if a[1] < b[1] else (b, a)
        return not self.iv[_PASS_PAIR[younger[4]][older[4]]]

    def _may_precede(self, b, a):
        """May ``b`` ever issue while same-thread ``a`` is still queued?

        The static mirror of ``_Thread.eligible_ops`` pair rules, used
        to skip seeding intra-thread race reversals that the pass rules
        make unrealisable (on in-order chips this is every one of them).
        Conservative towards ``True``: a wrong ``True`` costs a no-op
        backtrack entry, a wrong ``False`` would lose executions.
        """
        if b[1] < a[1]:
            return True         # program-order older: never blocked by a
        if b[2] == K_FENCE:
            return False        # fences never pass anything
        iv = self.iv
        if a[2] == K_FENCE:
            # Only .ca loads slip past fences, and only via a bypass
            # intent; the label can't see the cache op, so any enabled
            # bypass slot keeps the reversal plausible.
            return (b[2] == K_LOAD
                    and any(iv[SLOT_BYPASS_BASE:]))
        if self._atomic_ordered and (b[2] in _ATOMIC_KINDS
                                     or a[2] in _ATOMIC_KINDS):
            return False
        if b[3] == a[3]:
            if b[2] == K_LOAD and a[2] == K_LOAD:
                return iv[SLOT_RR_HAZARD] or iv[SLOT_MIXED_HAZARD]
            return False        # same address: order enforced
        return iv[_PASS_PAIR[b[4]][a[4]]]

    def _execute(self, label, op, events):
        """Issue ``op`` and re-decode its thread to fixpoint."""
        self.transitions += 1
        explored = self.transitions - self._branch_base
        if explored > self.max_transitions:
            raise ExplorationLimit(
                "exhaustive exploration of cell %s on %s aborted after "
                "%d transitions (budget %d per branch): raise "
                "--max-transitions or lower --loop-bound to shrink the "
                "space" % (self.test.name, self.chip.short, explored,
                           self.max_transitions))
        tid = label[0]
        if self._closure:
            active = set()
            for event in reversed(events):
                if event.label[0] != tid:
                    break
                active.update(event.marks)
            self._active_seen = active
            self._marks = set()
            self._mark_tid = tid
        thread = self.threads[tid]
        thread.issue(op)
        st = op.st
        if st.kind == K_STORE:
            value = op.value
        elif st.kind == K_FENCE:
            value = None
        else:
            value = thread.regs.get(st.dst)
        while thread.decode():
            pass
        return (tid, st.kind, op.address, value, st.is_store)

    @staticmethod
    def _queue_variants(worklist, script, taken):
        """Enumerate the untaken fence-choice siblings of one execution:
        for every effective draw beyond the forced prefix, the script
        that flips it (classic binary-tree stateless enumeration)."""
        for index in range(len(script), len(taken)):
            if taken[index]:
                worklist.append(taken[:index] + (False,))

    # -- terminal states ----------------------------------------------------

    def _record_terminal(self, events):
        for thread in self.threads:
            if not thread.done:
                raise SimulationError(
                    "exhaustive exploration wedged in %s: a thread has "
                    "work but no eligible op (decode-fixpoint invariant "
                    "violated)" % self.test.name)
        state = self.cell._final_state()
        self.executions += 1
        self.reachable.add(state)
        if self.condition is not None and self.condition.holds(state):
            self.losses += 1
            if self.witness is None:
                self.witness = self._capture_witness(events, state)

    def _capture_witness(self, events, state):
        out = []
        for event in events:
            tid, kind, address, value, is_store = event.detail
            out.append(WitnessEvent(
                tid=tid, op=KIND_NAMES[kind],
                location=self._loc_names.get(address), value=value,
                is_store=is_store))
        return Witness(events=tuple(out), state=state)

    # -- DPOR ---------------------------------------------------------------

    def _make_frame(self, sleep, events=()):
        enabled = self._enabled()
        if not enabled:
            self._record_terminal(events)
            return None
        frame = _Frame(self._snapshot(), enabled, sleep)
        if self.strategy == "naive":
            frame.backtrack = set(enabled)
            return frame
        awake = [label for label in enabled if label not in sleep]
        if not awake:
            # Every enabled transition is asleep — this state's subtree
            # is already covered elsewhere (sleep-set blocking).
            return frame
        if self._sleep_only:
            frame.backtrack.update(awake)
            return frame
        # Seed the persistent set with the dependence-cluster of the
        # smallest awake label: every awake same-thread op transitively
        # dependent with it.  Free ops outside the cluster commute with
        # all of it and stay out; cross-thread and intra-thread races
        # reach the seed's siblings through _update_races reversal.
        seed = min(awake)
        cluster = {seed}
        thread_awake = [label for label in awake if label[0] == seed[0]]
        grew = True
        while grew:
            grew = False
            for label in thread_awake:
                if label in cluster:
                    continue
                if any(self._dependent(label, member) for member in cluster):
                    cluster.add(label)
                    grew = True
        frame.backtrack.update(cluster)
        return frame

    def _pick(self, frame):
        """Next unexplored backtrack label, or None when exhausted.

        Called only between labels (never between fence variants), so
        the previous label is fully explored here — the moment it joins
        the sleep set for its later siblings.
        """
        if frame.label is not None:
            frame.sleep.add(frame.label)
            frame.label = None
        candidates = [label for label in frame.backtrack
                      if label not in frame.done and label not in frame.sleep]
        if not candidates:
            return None
        return min(candidates)

    def _update_races(self, stack, events, label):
        """Happens-before closure + persistent-set race reversal.

        ``events[i]`` was executed from ``stack[i]``; its ``hb`` mask is
        already transitively closed, so the new transition's closure is
        the union over its direct dependence predecessors — the same
        bitmask-row idiom as
        :meth:`~repro.model.relation.IndexedRelation.transitive_closure`.
        A dependent event not ordered before ``label`` through *other*
        predecessors is a reversible race: seed the backtrack set of its
        pre-state with the threads that can reach the reversal
        (Flanagan-Godefroid's E-set, all labels of those threads at our
        transition granularity; every enabled label if none qualify).
        Same-thread races are seeded too — intra-thread issue reordering
        is a real relaxation — but only when :meth:`_may_precede` says
        the chip's pass rules can realise the reversal.
        """
        if self.strategy != "dpor" or self._sleep_only:
            return 0
        tid = label[0]
        contributors = [index for index, event in enumerate(events)
                        if self._dependent(event.label, label)]
        hb = 0
        for index in contributors:
            hb |= events[index].hb | (1 << index)
        for index in contributors:
            event = events[index]
            if (event.label[0] == tid
                    and not self._may_precede(label, event.label)):
                continue
            ordered = 0
            for other in contributors:
                if other != index:
                    ordered |= events[other].hb | (1 << other)
            if (ordered >> index) & 1:
                continue    # ordered via intermediates: not reversible
            frame = stack[index]
            tids = {tid}
            for later in range(index + 1, len(events)):
                if (hb >> later) & 1:
                    tids.add(events[later].label[0])
            candidates = [other for other in frame.enabled
                          if other[0] in tids]
            frame.backtrack.update(candidates or frame.enabled)
        return hb

    def _expand_cycle(self, stack):
        """Compensate a closed cycle: its truncated future can no longer
        seed race reversals, so every frame of the same-thread cycle run
        is conservatively fully expanded (all non-sleeping enabled
        labels join the backtrack set) before the branch closes."""
        if self.strategy == "naive":
            return
        tid = stack[-1].label[0]
        for frame in reversed(stack):
            if frame.label is None or frame.label[0] != tid:
                break
            frame.backtrack.update(label for label in frame.enabled
                                   if label not in frame.sleep)

    def _dpor(self, branch):
        """Explore one root branch from the current (decoded) state.

        The root frame is pinned to branch ``branch`` of the sorted
        enabled labels, with every earlier sibling asleep (exactly the
        state serial sleep-set exploration reaches after finishing those
        siblings) — so exploring the branches in order equals one
        classic run, and exploring them in parallel merges to the same.
        """
        enabled = self._enabled()
        if not enabled:
            return
        labels = sorted(enabled)
        root = _Frame(self._snapshot(), enabled, set())
        label = labels[branch]
        root.backtrack = {label}
        root.done = set(labels) - {label}
        if self.strategy != "naive":
            root.sleep = set(labels[:branch])
        stack = [root]
        events = []
        rng = self._choice_rng
        while stack:
            depth = len(stack) - 1
            frame = stack[depth]
            del events[depth:]
            if frame.variants:
                script = frame.variants.pop()
            else:
                label = self._pick(frame)
                if label is None:
                    stack.pop()
                    continue
                frame.label = label
                frame.done.add(label)
                script = ()
            self._restore(frame.snapshot)
            hb = self._update_races(stack, events, frame.label)
            rng.begin(script)
            op = frame.enabled[frame.label]
            try:
                detail = self._execute(frame.label, op, events)
            except _LoopBoundExceeded:
                self.bounded = True
                self._queue_variants(frame.variants, script,
                                     tuple(rng.taken))
                continue
            except _LoopClosed:
                self._queue_variants(frame.variants, script,
                                     tuple(rng.taken))
                self._expand_cycle(stack)
                continue
            self._queue_variants(frame.variants, script, tuple(rng.taken))
            events.append(_Event(frame.label, hb, detail,
                                 frozenset(self._marks)))
            if self.strategy == "naive":
                child_sleep = set()
            else:
                child_sleep = {other for other in frame.sleep
                               if not self._dependent(other, frame.label)}
            child = self._make_frame(child_sleep, events)
            if child is not None:
                stack.append(child)

    # -- driver -------------------------------------------------------------

    def _initial_decode(self):
        """Decode every thread to fixpoint before the first issue."""
        self._mark_tid = None   # back-edges here only count, never close
        for thread in self.threads:
            while thread.decode():
                pass

    def root_plan(self):
        """The static branch partition: ``(fence-script, branch)`` pairs.

        The initial decode (before any issue) may itself hit fence
        choice points, so its outcomes are enumerated as exploration
        roots; each root state then contributes one entry per enabled
        transition (``branch >= 0``) or a single ``branch = -1`` entry
        when it is terminal or truncated.  The plan is a pure function
        of the cell — every worker and every serial run derives the
        identical list, which is what makes per-branch results merge
        deterministically.
        """
        if self._plan is not None:
            return self._plan
        plan = []
        rng = self._choice_rng
        scripts = [()]
        while scripts:
            script = scripts.pop()
            self._restore(self._base)
            rng.begin(script)
            try:
                self._initial_decode()
            except _LoopBoundExceeded:
                self._queue_variants(scripts, script, tuple(rng.taken))
                plan.append((script, -1))
                continue
            self._queue_variants(scripts, script, tuple(rng.taken))
            branches = len(self._enabled())
            if branches == 0:
                plan.append((script, -1))
            else:
                plan.extend((script, branch) for branch in range(branches))
        self._restore(self._base)
        self._plan = plan
        return plan

    def _reset_results(self):
        self.reachable = set()
        self.executions = 0
        self.transitions = 0
        self.losses = 0
        self.bounded = False
        self.witness = None
        self._branch_base = 0

    def _result(self):
        return ExhaustiveResult(
            reachable=frozenset(self.reachable), executions=self.executions,
            transitions=self.transitions, losses=self.losses,
            bounded=self.bounded, strategy=self.strategy,
            loop_bound=self.loop_bound, witness=self.witness)

    def _run_branch(self, entry):
        script, branch = entry
        rng = self._choice_rng
        self._restore(self._base)
        self._branch_base = self.transitions
        rng.begin(script)
        try:
            self._initial_decode()
        except _LoopBoundExceeded:
            self.bounded = True
            return
        if branch < 0:
            if not self._enabled():
                self._record_terminal(())
            return
        self._dpor(branch)

    def run(self):
        """Explore everything; returns the :class:`ExhaustiveResult`.

        Iterates :meth:`root_plan` in order — the exact decomposition a
        parallel run shards across workers, so both spell out the same
        transitions in the same per-branch groups.
        """
        self._reset_results()
        for entry in self.root_plan():
            self._run_branch(entry)
        return self._result()

    def run_branch(self, index):
        """Explore exactly one :meth:`root_plan` entry (a parallel shard);
        returns the branch-local :class:`ExhaustiveResult`."""
        self._reset_results()
        self._run_branch(self.root_plan()[index])
        return self._result()


def explore_test(test, chip, intensity=1.0, strategy="dpor",
                 loop_bound=DEFAULT_LOOP_BOUND,
                 max_transitions=DEFAULT_MAX_TRANSITIONS, condition=None):
    """Exhaustively explore one cell; returns an :class:`ExhaustiveResult`.

    ``condition`` defaults to the test's own final condition (which for
    scenario-built tests *is* the loss predicate), counted per execution
    with the first satisfying trace captured as the witness.
    """
    return Explorer(test, chip, intensity=intensity, strategy=strategy,
                    loop_bound=loop_bound, max_transitions=max_transitions,
                    condition=condition).run()


def execution_graph(witness):
    """Index a witness trace into PR 4's relation machinery.

    Returns ``(index, relations)`` where ``index`` is an
    :class:`~repro.model.relation.EventIndex` over the event positions
    and ``relations`` maps ``po`` (same-thread order), ``com``
    (same-location communication with a writer) and ``hb`` (their
    transitive closure) to :class:`~repro.model.relation.IndexedRelation`
    bitmask rows — the same execution-graph core the axiomatic engine
    compiles against.
    """
    from ..model.relation import EventIndex, IndexedRelation
    events = witness.events
    index = EventIndex(tuple(range(len(events))))
    po_pairs, com_pairs = [], []
    for i, first in enumerate(events):
        for j in range(i + 1, len(events)):
            second = events[j]
            if first.tid == second.tid:
                po_pairs.append((i, j))
            elif (first.location is not None
                    and first.location == second.location
                    and (first.is_store or second.is_store)):
                com_pairs.append((i, j))
    po = IndexedRelation.from_pairs(index, po_pairs)
    com = IndexedRelation.from_pairs(index, com_pairs)
    return index, {"po": po, "com": com, "hb": (po | com).transitive_closure()}
