"""The :class:`ExhaustiveBackend`: verified verdicts behind the campaign API.

The verifier tier of the ROADMAP: one exhaustive exploration per
:class:`~repro.api.spec.RunSpec` / :class:`~repro.apps.scenario.ScenarioSpec`,
delivered through the same :class:`~repro.api.session.Session` machinery
as simulations, model enumerations and static analyses —
fingerprint-keyed caching, in-plan deduplication, ``Shard.iterations=0``
accounting (an exploration is not a sampled iteration).

Results travel as histograms so the cache's JSON round-trip and the
``SpecResult`` plumbing apply unchanged: every reachable final state
appears with count 1, and the exploration's metadata (bounded flag,
execution/transition/loss counters) rides along as synthetic single-key
states under the reserved ``__exhaustive*`` locations, decoded back by
:func:`split_exhaustive_histogram`.  The synthetic states never flow
through :meth:`~repro.harness.histogram.Histogram.observations` —
``Not(MemEq(...))`` conditions hold on states that *lack* a location, so
callers must decode first (which is why :func:`exhaustive_verdict`
exists).

Exploration is *intensity-structural*: only which relaxation intents are
non-zero matters (the explorer enumerates both branches of every
surviving choice point), so verdicts dedupe across all positive
intensities, seeds and iteration counts — the cache signature covers the
litmus text, the chip, the structural intent vector, the loop bound and
the strategy.
"""

import hashlib

from ..api.backends import Backend, Shard
from ..harness.histogram import Histogram
from ..litmus.condition import FinalState
from ..litmus.writer import write_litmus
from .explore import (DEFAULT_LOOP_BOUND, DEFAULT_MAX_TRANSITIONS,
                      explore_test)

#: Reserved location prefix for exploration metadata states.  Real
#: programs never name memory locations with a dunder prefix, so the
#: split below is unambiguous.
EXHAUSTIVE_PREFIX = "__exhaustive"

#: The individual metadata locations.
BOUNDED_LOCATION = "__exhaustive_bounded__"
EXECUTIONS_LOCATION = "__exhaustive_executions__"
TRANSITIONS_LOCATION = "__exhaustive_transitions__"
LOSSES_LOCATION = "__exhaustive_losses__"

#: Bump to invalidate cached explorations when the explorer changes.
EXHAUSTIVE_VERSION = 1


def _meta_state(location, value):
    return FinalState.make(mem={location: int(value)})


def encode_exhaustive_histogram(result):
    """Encode an :class:`~repro.exhaustive.explore.ExhaustiveResult` as a
    histogram: reachable states with count 1 plus metadata states."""
    histogram = Histogram()
    for state in result.reachable:
        histogram.add(state)
    histogram.add(_meta_state(BOUNDED_LOCATION, 1 if result.bounded else 0))
    histogram.add(_meta_state(EXECUTIONS_LOCATION, result.executions))
    histogram.add(_meta_state(TRANSITIONS_LOCATION, result.transitions))
    histogram.add(_meta_state(LOSSES_LOCATION, result.losses))
    return histogram


def _is_meta(state):
    mem = state.mem
    return (len(mem) == 1 and not state.regs
            and mem[0][0].startswith(EXHAUSTIVE_PREFIX))


def split_exhaustive_histogram(histogram):
    """Split an encoded histogram into ``(reachable, meta)``.

    ``reachable`` is a :class:`~repro.harness.histogram.Histogram` of the
    real final states (each with count 1); ``meta`` maps the
    ``__exhaustive*`` locations to their integer values.
    """
    reachable = Histogram()
    meta = {}
    for state, count in histogram.counts.items():
        if _is_meta(state):
            meta[state.mem[0][0]] = state.mem[0][1]
        else:
            reachable.add(state, count)
    if BOUNDED_LOCATION not in meta:
        from ..errors import ReproError
        raise ReproError("not an exhaustive histogram: missing %r state"
                         % BOUNDED_LOCATION)
    return reachable, meta


def exhaustive_verdict(histogram, condition):
    """Decode an encoded histogram into a verdict dict.

    Returns ``{"states", "executions", "transitions", "losses",
    "bounded", "losing_states", "verified"}`` where ``losing_states``
    are the reachable states satisfying ``condition`` (the loss
    predicate) and ``verified`` means the exploration saw zero losing
    executions.
    """
    reachable, meta = split_exhaustive_histogram(histogram)
    losing = reachable.witnesses(condition)
    return {
        "states": len(reachable),
        "executions": meta[EXECUTIONS_LOCATION],
        "transitions": meta[TRANSITIONS_LOCATION],
        "losses": meta[LOSSES_LOCATION],
        "bounded": bool(meta[BOUNDED_LOCATION]),
        "losing_states": losing,
        "verified": meta[LOSSES_LOCATION] == 0,
    }


class ExhaustiveBackend(Backend):
    """Stateless model checking as a campaign backend.

    ``run`` explores the spec's compiled cell exhaustively and returns
    the encoded reachable-state histogram.  Like the model and analysis
    backends, each spec is one indivisible work unit with
    ``iterations=0`` (the session's simulated-iteration statistic stays
    a sim/app-only number).  The verdict is a pure function of the spec
    — independent of ``--jobs``, the executor and the seed — so cached
    and fresh results are interchangeable.
    """

    name = "exhaustive"
    supports_sharding = True

    def __init__(self, strategy="dpor", loop_bound=DEFAULT_LOOP_BOUND,
                 max_transitions=DEFAULT_MAX_TRANSITIONS):
        self.strategy = strategy
        self.loop_bound = loop_bound
        self.max_transitions = max_transitions

    def _structural_intent(self, spec):
        """Exploration depends on intensity only through zero/non-zero."""
        return 1 if float(getattr(spec, "intensity", 1.0)) > 0.0 else 0

    def cache_signature(self, spec):
        payload = "exhaustive-v%d\x1e%s\x1e%s\x1eintent=%d\x1ebound=%d\x1e%s" \
            % (EXHAUSTIVE_VERSION, write_litmus(spec.test), repr(spec.chip),
               self._structural_intent(spec), self.loop_bound, self.strategy)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def shards(self, spec, shard_size):
        return [Shard(index=0, iterations=0, seed=spec.seed)]

    def run_shard(self, spec, shard):
        return self.run(spec)

    def run(self, spec):
        intensity = float(getattr(spec, "intensity", 1.0))
        result = explore_test(
            spec.test, spec.chip,
            intensity=intensity if intensity > 0.0 else 0.0,
            strategy=self.strategy, loop_bound=self.loop_bound,
            max_transitions=self.max_transitions)
        return encode_exhaustive_histogram(result)


def exhaustive_session(jobs=1, executor="thread", cache=True, cache_dir=None,
                       pool=None, strategy="dpor",
                       loop_bound=DEFAULT_LOOP_BOUND,
                       max_transitions=DEFAULT_MAX_TRANSITIONS):
    """A :class:`~repro.api.session.Session` wired to the exhaustive
    backend (the verifying twin of
    :func:`repro.analysis.backend.analysis_session`)."""
    from ..api.session import Session
    return Session(backend=ExhaustiveBackend(strategy=strategy,
                                             loop_bound=loop_bound,
                                             max_transitions=max_transitions),
                   jobs=jobs, executor=executor, cache=cache,
                   cache_dir=cache_dir, pool=pool)
