"""The :class:`ExhaustiveBackend`: verified verdicts behind the campaign API.

The verifier tier of the ROADMAP: one exhaustive exploration per
:class:`~repro.api.spec.RunSpec` / :class:`~repro.apps.scenario.ScenarioSpec`,
delivered through the same :class:`~repro.api.session.Session` machinery
as simulations, model enumerations and static analyses —
fingerprint-keyed caching, in-plan deduplication, ``Shard.iterations=0``
accounting (an exploration is not a sampled iteration).

Explorations shard by root branch: :meth:`ExhaustiveBackend.shards`
materialises one shard per :meth:`~repro.exhaustive.explore.Explorer.root_plan`
entry, each worker explores its branch independently
(:meth:`~repro.exhaustive.explore.Explorer.run_branch`), and the
session's shard-index-ordered merge reassembles exactly the serial
result — ``repro-litmus verify --jobs N`` scales with cores without
perturbing a single verdict bit.

Results travel as histograms so the cache's JSON round-trip and the
``SpecResult`` plumbing apply unchanged: every reachable final state
appears with its branch multiplicity, and the exploration's metadata
(bounded flag, execution/transition/loss counters) rides along as
synthetic states under the reserved ``__exhaustive*`` locations.  The
encoding is *merge-additive*: every metadata state keys the same
``{location: 0}`` image and carries its payload in the *count* (value
plus one per branch, so counts stay positive), which makes
``Histogram.merge`` of per-branch encodings equal the encoding of the
merged exploration.  :func:`split_exhaustive_histogram` divides the
shard tally back out.  The synthetic states never flow through
:meth:`~repro.harness.histogram.Histogram.observations` — decode first
(which is why :func:`exhaustive_verdict` exists).

Exploration is *intensity-structural*: only which relaxation intents are
non-zero matters (the explorer enumerates both branches of every
surviving choice point), so verdicts dedupe across all positive
intensities, seeds and iteration counts — the cache signature covers the
litmus text, the chip, the structural intent vector, the loop bound and
the strategy.
"""

import hashlib

from ..api.backends import Backend, Shard
from ..harness.histogram import Histogram
from ..litmus.condition import FinalState
from ..litmus.writer import write_litmus
from .explore import (DEFAULT_LOOP_BOUND, DEFAULT_MAX_TRANSITIONS, Explorer)

#: Reserved location prefix for exploration metadata states.  Real
#: programs never name memory locations with a dunder prefix, so the
#: split below is unambiguous.
EXHAUSTIVE_PREFIX = "__exhaustive"

#: The individual metadata locations.
BOUNDED_LOCATION = "__exhaustive_bounded__"
EXECUTIONS_LOCATION = "__exhaustive_executions__"
TRANSITIONS_LOCATION = "__exhaustive_transitions__"
LOSSES_LOCATION = "__exhaustive_losses__"
SHARDS_LOCATION = "__exhaustive_shards__"

#: Bump to invalidate cached explorations when the explorer changes.
#: v2: branch-sharded explorations, merge-additive metadata encoding,
#: intra-thread independence and state-hash loop closure.
EXHAUSTIVE_VERSION = 2


def _meta_state(location):
    # The *value* in the state is always 0: the payload lives in the
    # histogram count so per-branch encodings merge by addition.
    return FinalState.make(mem={location: 0})


def encode_exhaustive_histogram(result):
    """Encode an :class:`~repro.exhaustive.explore.ExhaustiveResult` —
    of a full exploration or of a single branch — as a histogram:
    reachable states plus count-carrying metadata states.

    Counters encode as ``value + 1`` (counts must stay positive) and
    the bounded flag as ``2 if bounded else 1``; the shard state counts
    how many encodings were merged, so the decoder can subtract the
    per-branch offsets back out.
    """
    histogram = Histogram()
    for state in result.reachable:
        histogram.add(state)
    histogram.add(_meta_state(SHARDS_LOCATION))
    histogram.add(_meta_state(BOUNDED_LOCATION), 2 if result.bounded else 1)
    histogram.add(_meta_state(EXECUTIONS_LOCATION), result.executions + 1)
    histogram.add(_meta_state(TRANSITIONS_LOCATION), result.transitions + 1)
    histogram.add(_meta_state(LOSSES_LOCATION), result.losses + 1)
    return histogram


def _is_meta(state):
    mem = state.mem
    return (len(mem) == 1 and not state.regs
            and mem[0][0].startswith(EXHAUSTIVE_PREFIX))


def split_exhaustive_histogram(histogram):
    """Split an encoded histogram into ``(reachable, meta)``.

    ``reachable`` is a :class:`~repro.harness.histogram.Histogram` of
    the real final states (counted once per branch that reached them);
    ``meta`` maps the ``__exhaustive*`` locations to their decoded
    integer values (branch offsets already divided out) plus the shard
    tally itself.
    """
    reachable = Histogram()
    tallies = {}
    for state, count in histogram.counts.items():
        if _is_meta(state):
            tallies[state.mem[0][0]] = count
        else:
            reachable.add(state, count)
    if SHARDS_LOCATION not in tallies or BOUNDED_LOCATION not in tallies:
        from ..errors import ReproError
        raise ReproError("not an exhaustive histogram: missing %r/%r states"
                         % (SHARDS_LOCATION, BOUNDED_LOCATION))
    shards = tallies[SHARDS_LOCATION]
    meta = {SHARDS_LOCATION: shards}
    for location, count in tallies.items():
        if location == SHARDS_LOCATION:
            continue
        if location == BOUNDED_LOCATION:
            meta[location] = 1 if count > shards else 0
        else:
            meta[location] = count - shards
    return reachable, meta


def exhaustive_verdict(histogram, condition):
    """Decode an encoded histogram into a verdict dict.

    Returns ``{"states", "executions", "transitions", "losses",
    "bounded", "losing_states", "verified"}`` where ``losing_states``
    are the reachable states satisfying ``condition`` (the loss
    predicate) and ``verified`` means the exploration saw zero losing
    executions.
    """
    reachable, meta = split_exhaustive_histogram(histogram)
    losing = reachable.witnesses(condition)
    return {
        "states": len(reachable),
        "executions": meta[EXECUTIONS_LOCATION],
        "transitions": meta[TRANSITIONS_LOCATION],
        "losses": meta[LOSSES_LOCATION],
        "bounded": bool(meta[BOUNDED_LOCATION]),
        "losing_states": losing,
        "verified": meta[LOSSES_LOCATION] == 0,
    }


class ExhaustiveBackend(Backend):
    """Stateless model checking as a campaign backend.

    ``shards`` splits the spec's exploration into its root branches (one
    shard each, ``iterations=0`` — the session's simulated-iteration
    statistic stays a sim/app-only number) and ``run_shard`` explores a
    single branch; the session merges the per-branch histograms in shard
    order, which by the explorer's determinism invariant reproduces the
    serial result bit for bit.  The verdict is a pure function of the
    spec — independent of ``--jobs``, the executor and the seed — so
    cached and fresh results are interchangeable.

    A fresh :class:`~repro.exhaustive.explore.Explorer` is compiled per
    ``run_shard`` call: compiled cells hold closures (unpicklable, so
    process workers must compile locally anyway) and per-run mutable
    state (so thread workers must not share one).  Compilation is
    microseconds against any exploration worth sharding.
    """

    name = "exhaustive"
    supports_sharding = True

    def __init__(self, strategy="dpor", loop_bound=DEFAULT_LOOP_BOUND,
                 max_transitions=DEFAULT_MAX_TRANSITIONS):
        self.strategy = strategy
        self.loop_bound = loop_bound
        self.max_transitions = max_transitions

    def _structural_intent(self, spec):
        """Exploration depends on intensity only through zero/non-zero."""
        return 1 if float(getattr(spec, "intensity", 1.0)) > 0.0 else 0

    def _explorer(self, spec):
        intensity = float(getattr(spec, "intensity", 1.0))
        return Explorer(
            spec.test, spec.chip,
            intensity=intensity if intensity > 0.0 else 0.0,
            strategy=self.strategy, loop_bound=self.loop_bound,
            max_transitions=self.max_transitions)

    def cache_signature(self, spec):
        payload = "exhaustive-v%d\x1e%s\x1e%s\x1eintent=%d\x1ebound=%d\x1e%s" \
            % (EXHAUSTIVE_VERSION, write_litmus(spec.test), repr(spec.chip),
               self._structural_intent(spec), self.loop_bound, self.strategy)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def shards(self, spec, shard_size):
        plan = self._explorer(spec).root_plan()
        return [Shard(index=index, iterations=0, seed=spec.seed)
                for index in range(len(plan))]

    def run_shard(self, spec, shard):
        result = self._explorer(spec).run_branch(shard.index)
        return encode_exhaustive_histogram(result)

    def run(self, spec):
        """One whole exploration, encoded as the merge of its branches
        (so unsharded and sharded runs produce identical histograms)."""
        explorer = self._explorer(spec)
        return Histogram.merge(
            encode_exhaustive_histogram(explorer.run_branch(index))
            for index in range(len(explorer.root_plan())))


def exhaustive_session(jobs=1, executor="thread", cache=True, cache_dir=None,
                       pool=None, strategy="dpor",
                       loop_bound=DEFAULT_LOOP_BOUND,
                       max_transitions=DEFAULT_MAX_TRANSITIONS):
    """A :class:`~repro.api.session.Session` wired to the exhaustive
    backend (the verifying twin of
    :func:`repro.analysis.backend.analysis_session`)."""
    from ..api.session import Session
    return Session(backend=ExhaustiveBackend(strategy=strategy,
                                             loop_bound=loop_bound,
                                             max_transitions=max_transitions),
                   jobs=jobs, executor=executor, cache=cache,
                   cache_dir=cache_dir, pool=pool)
