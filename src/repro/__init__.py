"""repro — a reproduction of "GPU Concurrency: Weak Behaviours and
Programming Assumptions" (Alglave et al., ASPLOS 2015).

The package provides:

* :mod:`repro.api` — the unified execution front door: ``RunSpec``
  plans with content fingerprints, pluggable sim/model backends behind
  one request/result shape, and the ``Session`` engine with sharded
  parallel execution and fingerprint-keyed result caching;
* :mod:`repro.ptx` — the PTX instruction fragment of the paper;
* :mod:`repro.hierarchy` — scope trees and memory maps;
* :mod:`repro.litmus` — the GPU litmus format and the paper's tests;
* :mod:`repro.model` — the axiomatic framework, the ``.cat`` language and
  the PTX model (RMO per scope);
* :mod:`repro.diy` — systematic litmus test generation from relaxation
  cycles;
* :mod:`repro.sim` — an operational GPU simulator standing in for the
  paper's hardware;
* :mod:`repro.harness` — the 100k-iteration test runner with incantations
  (now thin wrappers over :mod:`repro.api`);
* :mod:`repro.compiler` — CUDA→PTX mapping, the SASS pipeline, optcheck
  and the AMD OpenCL compilers;
* :mod:`repro.apps` — the published GPU applications the paper studies.
"""

__version__ = "1.1.0"

from .api import (CampaignResult, RunSpec, Session,  # noqa: F401
                  SpecResult, run_campaign)
from .litmus import LitmusTest, parse_litmus, write_litmus  # noqa: F401

__all__ = [
    "CampaignResult", "RunSpec", "Session", "SpecResult", "run_campaign",
    "LitmusTest", "parse_litmus", "write_litmus", "__version__",
]
