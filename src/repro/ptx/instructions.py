"""Instruction AST for the PTX fragment of the paper (Sec. 2.3).

Supported instructions: loads (``ld``), stores (``st``), read-modify-writes
(``atom.cas``, ``atom.exch``, ``atom.inc``, ``atom.add``), fences
(``membar``), ALU operations (``mov``, ``add``, ``and``, ``xor``, ``cvt``),
predicate setting (``setp.eq``/``setp.ne``), unconditional jumps (``bra``)
and predicated instructions (``@p`` / ``@!p`` prefixes).

Instructions are immutable dataclasses.  ``str()`` produces canonical PTX
text that the parser round-trips.
"""

from dataclasses import dataclass, field

from ..errors import PtxSyntaxError
from .operands import Addr, Imm, Loc, Reg, operand_registers
from .types import CacheOp, LOAD_CACHE_OPS, STORE_CACHE_OPS, Scope, TypeSpec


@dataclass(frozen=True)
class Guard:
    """A predication guard: ``@p`` (execute if set) or ``@!p`` (if unset)."""

    reg: str
    negated: bool = False

    def __str__(self):
        return "@!%s" % self.reg if self.negated else "@%s" % self.reg


@dataclass(frozen=True)
class Instruction:
    """Base class carrying the optional predication guard."""

    guard: Guard = field(default=None, kw_only=True)

    def _prefix(self):
        return "" if self.guard is None else str(self.guard) + " "

    @property
    def is_memory_access(self):
        """True for instructions that generate memory events (ld/st/atom)."""
        return False

    @property
    def is_fence(self):
        return False

    def uses(self):
        """Register names read by this instruction (including the guard)."""
        regs = set() if self.guard is None else {self.guard.reg}
        return regs | self._uses()

    def defs(self):
        """Register names written by this instruction."""
        return self._defs()

    def _uses(self):
        return set()

    def _defs(self):
        return set()


def _type_suffix(typ):
    return "" if typ is None else str(typ)


@dataclass(frozen=True)
class Ld(Instruction):
    """``ld{.volatile}{.cop}{.type} dst, [addr]`` — a load.

    ``cop`` defaults to ``.ca`` (the L1) which the paper notes is the CUDA
    compiler's default for loads (Sec. 3.1.2).  ``volatile`` loads carry no
    cache operator in PTX.
    """

    dst: Reg
    addr: Addr
    cop: CacheOp = None
    volatile: bool = False
    typ: TypeSpec = TypeSpec.S32

    def __post_init__(self):
        if self.cop is not None and self.cop not in LOAD_CACHE_OPS:
            raise PtxSyntaxError("invalid load cache operator %s" % self.cop)
        if self.volatile and self.cop is not None:
            raise PtxSyntaxError("volatile loads cannot carry a cache operator")

    @property
    def is_memory_access(self):
        return True

    @property
    def effective_cop(self):
        """The cache operator the hardware sees (default ``.ca``)."""
        return self.cop if self.cop is not None else CacheOp.CA

    def _uses(self):
        return operand_registers(self.addr)

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        parts = ["ld"]
        if self.volatile:
            parts.append(".volatile")
        elif self.cop is not None:
            parts.append(str(self.cop))
        parts.append(_type_suffix(self.typ))
        return "%s%s %s, %s" % (self._prefix(), "".join(parts), self.dst, self.addr)


@dataclass(frozen=True)
class St(Instruction):
    """``st{.volatile}{.cop}{.type} [addr], src`` — a store."""

    addr: Addr
    src: object  # Reg | Imm
    cop: CacheOp = None
    volatile: bool = False
    typ: TypeSpec = TypeSpec.S32

    def __post_init__(self):
        if self.cop is not None and self.cop not in STORE_CACHE_OPS:
            raise PtxSyntaxError("invalid store cache operator %s" % self.cop)
        if self.volatile and self.cop is not None:
            raise PtxSyntaxError("volatile stores cannot carry a cache operator")

    @property
    def is_memory_access(self):
        return True

    @property
    def effective_cop(self):
        """The cache operator the hardware sees (default write-back)."""
        return self.cop if self.cop is not None else CacheOp.WB

    def _uses(self):
        return operand_registers(self.addr) | operand_registers(self.src)

    def __str__(self):
        parts = ["st"]
        if self.volatile:
            parts.append(".volatile")
        elif self.cop is not None:
            parts.append(str(self.cop))
        parts.append(_type_suffix(self.typ))
        return "%s%s %s, %s" % (self._prefix(), "".join(parts), self.addr, self.src)


@dataclass(frozen=True)
class AtomCas(Instruction):
    """``atom.cas{.type} dst, [addr], cmp, new`` — compare-and-swap.

    Returns the old value in ``dst``; writes ``new`` only if the old value
    equals ``cmp``.  CUDA's ``atomicCAS`` maps here (Table 5).
    """

    dst: Reg
    addr: Addr
    cmp: object  # Reg | Imm
    new: object  # Reg | Imm
    typ: TypeSpec = TypeSpec.B32

    @property
    def is_memory_access(self):
        return True

    def _uses(self):
        return (operand_registers(self.addr) | operand_registers(self.cmp)
                | operand_registers(self.new))

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%satom.cas%s %s, %s, %s, %s" % (
            self._prefix(), _type_suffix(self.typ), self.dst, self.addr, self.cmp, self.new)


@dataclass(frozen=True)
class AtomExch(Instruction):
    """``atom.exch{.type} dst, [addr], src`` — unconditional atomic exchange.

    CUDA's ``atomicExch`` maps here (Table 5).
    """

    dst: Reg
    addr: Addr
    src: object  # Reg | Imm
    typ: TypeSpec = TypeSpec.B32

    @property
    def is_memory_access(self):
        return True

    def _uses(self):
        return operand_registers(self.addr) | operand_registers(self.src)

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%satom.exch%s %s, %s, %s" % (
            self._prefix(), _type_suffix(self.typ), self.dst, self.addr, self.src)


@dataclass(frozen=True)
class AtomInc(Instruction):
    """``atom.inc{.type} dst, [addr]`` — atomic increment.

    The paper maps CUDA ``atomicAdd(..., 1)`` to ``atom.inc`` (Table 5).
    We model it as an unconditional fetch-and-increment.
    """

    dst: Reg
    addr: Addr
    typ: TypeSpec = TypeSpec.U32

    @property
    def is_memory_access(self):
        return True

    def _uses(self):
        return operand_registers(self.addr)

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%satom.inc%s %s, %s" % (
            self._prefix(), _type_suffix(self.typ), self.dst, self.addr)


@dataclass(frozen=True)
class AtomAdd(Instruction):
    """``atom.add{.type} dst, [addr], src`` — atomic fetch-and-add."""

    dst: Reg
    addr: Addr
    src: object  # Reg | Imm
    typ: TypeSpec = TypeSpec.U32

    @property
    def is_memory_access(self):
        return True

    def _uses(self):
        return operand_registers(self.addr) | operand_registers(self.src)

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%satom.add%s %s, %s, %s" % (
            self._prefix(), _type_suffix(self.typ), self.dst, self.addr, self.src)


@dataclass(frozen=True)
class Membar(Instruction):
    """``membar.{cta,gl,sys}`` — a memory fence at the given scope."""

    scope: Scope

    @property
    def is_fence(self):
        return True

    def __str__(self):
        return "%smembar.%s" % (self._prefix(), self.scope)


@dataclass(frozen=True)
class Mov(Instruction):
    """``mov{.type} dst, src`` — register move / immediate load.

    ``src`` may also be a :class:`Loc`, moving a location's address into a
    register (the litmus format's register initialisers use this).
    """

    dst: Reg
    src: object  # Reg | Imm | Loc
    typ: TypeSpec = TypeSpec.S32

    def _uses(self):
        return operand_registers(self.src)

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%smov%s %s, %s" % (self._prefix(), _type_suffix(self.typ), self.dst, self.src)


@dataclass(frozen=True)
class _BinaryAlu(Instruction):
    """Shared shape for two-operand ALU instructions."""

    dst: Reg
    a: object  # Reg | Imm
    b: object  # Reg | Imm
    typ: TypeSpec = TypeSpec.S32

    opcode = None  # overridden

    def _uses(self):
        return operand_registers(self.a) | operand_registers(self.b)

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%s%s%s %s, %s, %s" % (
            self._prefix(), self.opcode, _type_suffix(self.typ), self.dst, self.a, self.b)


@dataclass(frozen=True)
class Add(_BinaryAlu):
    opcode = "add"


@dataclass(frozen=True)
class And(_BinaryAlu):
    opcode = "and"


@dataclass(frozen=True)
class Xor(_BinaryAlu):
    opcode = "xor"


@dataclass(frozen=True)
class Cvt(Instruction):
    """``cvt.u64.u32 dst, src`` — width conversion, used in address
    dependency chains (Fig. 13)."""

    dst: Reg
    src: Reg
    to_typ: TypeSpec = TypeSpec.U64
    from_typ: TypeSpec = TypeSpec.U32

    def _uses(self):
        return {self.src.name}

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%scvt%s%s %s, %s" % (
            self._prefix(), self.to_typ, self.from_typ, self.dst, self.src)


@dataclass(frozen=True)
class Setp(Instruction):
    """``setp.eq/.ne{.type} p, a, b`` — set predicate from a comparison."""

    cmp: str  # "eq" | "ne"
    dst: Reg
    a: object  # Reg | Imm
    b: object  # Reg | Imm
    typ: TypeSpec = TypeSpec.S32

    def __post_init__(self):
        if self.cmp not in ("eq", "ne"):
            raise PtxSyntaxError("unsupported setp comparison %r" % (self.cmp,))

    def _uses(self):
        return operand_registers(self.a) | operand_registers(self.b)

    def _defs(self):
        return {self.dst.name}

    def __str__(self):
        return "%ssetp.%s%s %s, %s, %s" % (
            self._prefix(), self.cmp, _type_suffix(self.typ), self.dst, self.a, self.b)


@dataclass(frozen=True)
class Bra(Instruction):
    """``bra LABEL`` — a jump (conditional when guarded)."""

    target: str

    def __str__(self):
        return "%sbra %s" % (self._prefix(), self.target)


@dataclass(frozen=True)
class Label(Instruction):
    """``NAME:`` — a jump target (pseudo-instruction, never guarded)."""

    name: str

    def __str__(self):
        return "%s:" % self.name


#: Instruction classes that perform an atomic read-modify-write.
RMW_CLASSES = (AtomCas, AtomExch, AtomInc, AtomAdd)


def is_rmw(instruction):
    """True if ``instruction`` is an atomic read-modify-write."""
    return isinstance(instruction, RMW_CLASSES)
