"""The PTX fragment of the paper: types, operands, instructions, parser.

This package models the subset of Nvidia's Parallel Thread Execution ISA
that the paper's litmus tests and formal model use (Sec. 2.3): loads,
stores, atomics, fences at the three scopes, ALU operations, predicate
handling, and jumps.
"""

from .instructions import (Add, And, AtomAdd, AtomCas, AtomExch, AtomInc,
                           Bra, Cvt, Guard, Instruction, Label, Ld, Membar,
                           Mov, Setp, St, Xor, is_rmw)
from .operands import Addr, Imm, Loc, Reg
from .parser import parse_instruction, parse_lines, parse_operand
from .program import ThreadProgram
from .types import (CacheOp, LOAD_CACHE_OPS, MemorySpace, STORE_CACHE_OPS,
                    Scope, TypeSpec)

__all__ = [
    "Add", "And", "AtomAdd", "AtomCas", "AtomExch", "AtomInc", "Bra", "Cvt",
    "Guard", "Instruction", "Label", "Ld", "Membar", "Mov", "Setp", "St",
    "Xor", "is_rmw",
    "Addr", "Imm", "Loc", "Reg",
    "parse_instruction", "parse_lines", "parse_operand",
    "ThreadProgram",
    "CacheOp", "LOAD_CACHE_OPS", "MemorySpace", "STORE_CACHE_OPS", "Scope",
    "TypeSpec",
]
