"""Thread programs: a named sequence of PTX instructions.

A litmus test (and an application kernel) is a list of
:class:`ThreadProgram` objects, one per thread, executed concurrently.
"""

from dataclasses import dataclass, field

from ..errors import PtxSyntaxError
from .instructions import Bra, Instruction, Label


@dataclass(frozen=True)
class ThreadProgram:
    """A sequential PTX program executed by one thread.

    ``name`` follows the litmus convention (``T0``, ``T1``, ...); ``tid``
    is the numeric index within the test.  ``reg_types`` optionally maps
    register names to :class:`~repro.ptx.types.TypeSpec` (litmus tests
    declare their registers, Fig. 12 lines 2–5).
    """

    tid: int
    instructions: tuple
    name: str = None
    reg_types: dict = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "instructions", tuple(self.instructions))
        if self.name is None:
            object.__setattr__(self, "name", "T%d" % self.tid)
        for instruction in self.instructions:
            if not isinstance(instruction, Instruction):
                raise PtxSyntaxError("not an instruction: %r" % (instruction,))
        self._check_labels()

    def _check_labels(self):
        labels = {}
        for index, instruction in enumerate(self.instructions):
            if isinstance(instruction, Label):
                if instruction.name in labels:
                    raise PtxSyntaxError("duplicate label %r in %s" % (instruction.name, self.name))
                labels[instruction.name] = index
        for instruction in self.instructions:
            if isinstance(instruction, Bra) and instruction.target not in labels:
                raise PtxSyntaxError(
                    "undefined branch target %r in %s" % (instruction.target, self.name))
        object.__setattr__(self, "_labels", labels)

    @property
    def labels(self):
        """Mapping from label name to instruction index."""
        return dict(self._labels)

    def registers(self):
        """All register names used or defined by this program."""
        names = set(self.reg_types)
        for instruction in self.instructions:
            names |= instruction.uses() | instruction.defs()
        return names

    def memory_accesses(self):
        """The instructions that generate memory events, in program order."""
        return [i for i in self.instructions if i.is_memory_access]

    def has_loops(self):
        """True if any branch jumps backwards (the program may loop)."""
        for index, instruction in enumerate(self.instructions):
            if isinstance(instruction, Bra) and self._labels[instruction.target] <= index:
                return True
        return False

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __str__(self):
        lines = ["%s:" % self.name]
        lines.extend("  %s" % instruction for instruction in self.instructions)
        return "\n".join(lines)
