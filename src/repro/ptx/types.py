"""PTX type specifiers, cache operators, fence scopes and memory spaces.

The paper (Sec. 2.3) uses a fragment of Nvidia's PTX ISA 4.0.  This module
defines the enumerations shared by the instruction AST, the parser, the
axiomatic model and the simulator.

Terminology note: the paper's figures abbreviate the cache operators
``.ca`` and ``.cg`` as ``.a`` and ``.g``.  We use the full PTX spellings
(``ld.ca`` targets the L1 cache, ``ld.cg`` the L2 cache) and the parser
accepts both spellings.
"""

import enum


class TypeSpec(enum.Enum):
    """PTX type specifier: bit width plus signedness (Sec. 5.2 of the ISA).

    The paper omits type specifiers in its figures and uses ``.s32``
    throughout; we track them because the litmus format (Fig. 12) declares
    typed registers (``.reg .b64 r1 = x``).
    """

    S32 = "s32"
    U32 = "u32"
    B32 = "b32"
    S64 = "s64"
    U64 = "u64"
    B64 = "b64"
    PRED = "pred"

    @property
    def width(self):
        """Bit width of the type (predicates are 1 bit)."""
        if self is TypeSpec.PRED:
            return 1
        return 64 if self.value.endswith("64") else 32

    @property
    def signed(self):
        return self.value.startswith("s")

    def __str__(self):
        return "." + self.value


class CacheOp(enum.Enum):
    """Cache operator on loads and stores (PTX ISA Chap. 8.7).

    Only ``CA`` (cache at all levels, i.e. may hit a stale L1 line) and
    ``CG`` (cache at L2, bypassing L1) have distinct semantics in the paper
    and in our simulator.  ``WB``/``CV``/``WT`` are accepted for
    completeness and behave like the default operator of their instruction
    class.
    """

    CA = "ca"  # loads: L1 (paper's ".a"); default for loads in CUDA 5.5
    CG = "cg"  # L2 (paper's ".g")
    CV = "cv"  # load: consider cached values stale ("volatile-ish")
    WB = "wb"  # store: write-back (default store operator)
    WT = "wt"  # store: write-through

    def __str__(self):
        return "." + self.value


#: Cache operators that are valid on load instructions.
LOAD_CACHE_OPS = frozenset({CacheOp.CA, CacheOp.CG, CacheOp.CV})
#: Cache operators that are valid on store instructions.  The paper notes
#: (Sec. 3.1.2) that PTX has no store operator targeting the L1.
STORE_CACHE_OPS = frozenset({CacheOp.CG, CacheOp.WB, CacheOp.WT})


class Scope(enum.Enum):
    """Fence scope: the level of the execution hierarchy a ``membar``
    provides ordering for (PTX ISA Sec. 8.7.10.2).

    Ordering is inclusive upwards: a ``membar.sys`` is at least as strong
    as a ``membar.gl``, which is at least as strong as a ``membar.cta``
    (Fig. 16 of the paper: ``gl-fence = membar.gl | sys-fence`` etc.).
    """

    CTA = "cta"
    GL = "gl"
    SYS = "sys"

    @property
    def rank(self):
        """Strength rank: cta < gl < sys."""
        return {"cta": 0, "gl": 1, "sys": 2}[self.value]

    def covers(self, other):
        """True if a fence of this scope is at least as strong as ``other``."""
        return self.rank >= other.rank

    def __str__(self):
        return self.value


class MemorySpace(enum.Enum):
    """State space of a memory location (Sec. 2.2 of the paper).

    ``GLOBAL`` is shared by the whole grid and may be cached in L1/L2;
    ``SHARED`` is one region per SM, shared only within a CTA.
    """

    GLOBAL = "global"
    SHARED = "shared"

    def __str__(self):
        return self.value


#: Aliases accepted by parsers (paper figures write ".a"/".g").
CACHE_OP_ALIASES = {
    "a": CacheOp.CA,
    "g": CacheOp.CG,
    "ca": CacheOp.CA,
    "cg": CacheOp.CG,
    "cv": CacheOp.CV,
    "wb": CacheOp.WB,
    "wt": CacheOp.WT,
}

#: Scope aliases: the paper and PTX both write "cta"/"gl"/"sys".
SCOPE_ALIASES = {
    "cta": Scope.CTA,
    "ta": Scope.CTA,  # the paper's ligature-mangled "ta"
    "gl": Scope.GL,
    "sys": Scope.SYS,
}
