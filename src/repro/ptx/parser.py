"""Parser for the PTX fragment used in litmus tests.

Accepts the canonical spellings produced by ``str()`` on the instruction
AST as well as the paper's figure notation: cache operators abbreviated
(``ld.g`` for ``ld.cg``, ``ld.a`` for ``ld.ca``), fences written
``membar.ta``, and bare guards (``!p4 membar.gl`` instead of
``@!p4 membar.gl``).
"""

import re

from ..errors import PtxSyntaxError
from .instructions import (Add, And, AtomAdd, AtomCas, AtomExch, AtomInc,
                           Bra, Cvt, Guard, Label, Ld, Membar, Mov, Setp, St,
                           Xor)
from .operands import Addr, Imm, Loc, Reg
from .types import CACHE_OP_ALIASES, SCOPE_ALIASES, TypeSpec

_REGISTER_RE = re.compile(r"^(r\d+|p\d*|%[A-Za-z_]\w*)$")
_LABEL_RE = re.compile(r"^([A-Za-z_]\w*):$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_ADDR_RE = re.compile(r"^\[\s*([A-Za-z_%]\w*)\s*(?:\+\s*(\d+))?\s*\]$")

_TYPE_NAMES = {t.value: t for t in TypeSpec}


def _looks_like_register(token, registers):
    if registers is not None:
        return token in registers
    return _REGISTER_RE.match(token) is not None


def parse_operand(token, registers=None):
    """Parse one operand token into ``Reg``/``Imm``/``Loc``/``Addr``.

    ``registers`` optionally fixes the set of known register names;
    without it, names matching ``r<N>``/``p<N>`` are treated as registers
    and other identifiers as symbolic locations.
    """
    token = token.strip()
    if not token:
        raise PtxSyntaxError("empty operand")
    match = _ADDR_RE.match(token)
    if match:
        base_name, offset = match.group(1), match.group(2)
        base = (Reg(base_name) if _looks_like_register(base_name, registers)
                else Loc(base_name))
        return Addr(base, int(offset) if offset else 0)
    if _INT_RE.match(token):
        return Imm(int(token, 0))
    if _looks_like_register(token, registers):
        return Reg(token)
    if re.match(r"^[A-Za-z_]\w*$", token):
        return Loc(token)
    raise PtxSyntaxError("cannot parse operand %r" % token)


def _split_operands(text):
    """Split an operand list on commas (brackets never contain commas)."""
    return [part.strip() for part in text.split(",")] if text.strip() else []


def _pop_type(suffixes, default=TypeSpec.S32):
    """Extract one trailing type specifier from the suffix list."""
    if suffixes and suffixes[-1] in _TYPE_NAMES:
        return _TYPE_NAMES[suffixes.pop()]
    return default


def _strip_comment(line):
    for marker in ("//", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip().rstrip(";").strip()


def _parse_guard(tokens):
    """Consume a guard token (``@p``, ``@!p``, ``!p``) if present."""
    head = tokens[0]
    if head.startswith("@"):
        body = head[1:]
        negated = body.startswith("!")
        return Guard(body.lstrip("!"), negated), tokens[1:]
    if head.startswith("!") and _REGISTER_RE.match(head[1:]):
        return Guard(head[1:], True), tokens[1:]
    # Bare positive guards ("p1 membar.gl") are accepted only when the
    # following token is an opcode, to avoid eating instruction operands.
    if (len(tokens) > 1 and _REGISTER_RE.match(head)
            and tokens[1].split(".")[0] in _OPCODES):
        return Guard(head, False), tokens[1:]
    return None, tokens


def parse_instruction(text, registers=None):
    """Parse one PTX instruction line.  Returns an :class:`Instruction`."""
    line = _strip_comment(text)
    if not line:
        raise PtxSyntaxError("empty instruction", text=text)
    label = _LABEL_RE.match(line)
    if label:
        return Label(label.group(1))

    tokens = line.split(None, 1)
    guard, tokens = _parse_guard(tokens if len(tokens) > 1 else [line])
    if guard is not None:
        line = tokens[0] if len(tokens) == 1 else " ".join(tokens)
        tokens = line.split(None, 1)

    opcode_full = tokens[0]
    rest = tokens[1] if len(tokens) > 1 else ""
    parts = opcode_full.split(".")
    opcode, suffixes = parts[0], parts[1:]
    if opcode not in _OPCODES:
        raise PtxSyntaxError("unknown opcode %r" % opcode, text=text)
    operands = [parse_operand(token, registers) for token in _split_operands(rest)]
    try:
        return _OPCODES[opcode](suffixes, operands, guard, text)
    except PtxSyntaxError:
        raise
    except (IndexError, TypeError) as exc:
        raise PtxSyntaxError("malformed %s instruction (%s)" % (opcode, exc), text=text)


def _expect(operands, count, text):
    if len(operands) != count:
        raise PtxSyntaxError("expected %d operands, got %d" % (count, len(operands)),
                             text=text)


def _parse_ld(suffixes, operands, guard, text):
    suffixes = list(suffixes)
    typ = _pop_type(suffixes)
    volatile, cop = False, None
    for suffix in suffixes:
        if suffix == "volatile":
            volatile = True
        elif suffix in CACHE_OP_ALIASES:
            cop = CACHE_OP_ALIASES[suffix]
        else:
            raise PtxSyntaxError("unknown ld suffix %r" % suffix, text=text)
    _expect(operands, 2, text)
    return Ld(operands[0], operands[1], cop=cop, volatile=volatile, typ=typ, guard=guard)


def _parse_st(suffixes, operands, guard, text):
    suffixes = list(suffixes)
    typ = _pop_type(suffixes)
    volatile, cop = False, None
    for suffix in suffixes:
        if suffix == "volatile":
            volatile = True
        elif suffix in CACHE_OP_ALIASES:
            cop = CACHE_OP_ALIASES[suffix]
        else:
            raise PtxSyntaxError("unknown st suffix %r" % suffix, text=text)
    _expect(operands, 2, text)
    return St(operands[0], operands[1], cop=cop, volatile=volatile, typ=typ, guard=guard)


def _parse_atom(suffixes, operands, guard, text):
    suffixes = list(suffixes)
    if not suffixes:
        raise PtxSyntaxError("atom needs an operation suffix", text=text)
    op = suffixes.pop(0)
    typ = _pop_type(suffixes, default=TypeSpec.B32)
    if op == "cas":
        _expect(operands, 4, text)
        return AtomCas(operands[0], operands[1], operands[2], operands[3], typ=typ,
                       guard=guard)
    if op == "exch":
        _expect(operands, 3, text)
        return AtomExch(operands[0], operands[1], operands[2], typ=typ, guard=guard)
    if op == "inc":
        _expect(operands, 2, text)
        return AtomInc(operands[0], operands[1], typ=typ, guard=guard)
    if op == "add":
        _expect(operands, 3, text)
        return AtomAdd(operands[0], operands[1], operands[2], typ=typ, guard=guard)
    raise PtxSyntaxError("unknown atomic operation %r" % op, text=text)


def _parse_membar(suffixes, operands, guard, text):
    _expect(operands, 0, text)
    if len(suffixes) != 1 or suffixes[0] not in SCOPE_ALIASES:
        raise PtxSyntaxError("membar needs a scope (cta/gl/sys)", text=text)
    return Membar(SCOPE_ALIASES[suffixes[0]], guard=guard)


def _parse_mov(suffixes, operands, guard, text):
    typ = _pop_type(list(suffixes))
    _expect(operands, 2, text)
    src = operands[1]
    if isinstance(src, Addr):
        raise PtxSyntaxError("mov source cannot be a memory address", text=text)
    return Mov(operands[0], src, typ=typ, guard=guard)


def _binary(cls):
    def parse(suffixes, operands, guard, text):
        typ = _pop_type(list(suffixes))
        _expect(operands, 3, text)
        return cls(operands[0], operands[1], operands[2], typ=typ, guard=guard)
    return parse


def _parse_cvt(suffixes, operands, guard, text):
    suffixes = list(suffixes)
    if len(suffixes) != 2 or any(s not in _TYPE_NAMES for s in suffixes):
        raise PtxSyntaxError("cvt needs two type specifiers", text=text)
    _expect(operands, 2, text)
    return Cvt(operands[0], operands[1], to_typ=_TYPE_NAMES[suffixes[0]],
               from_typ=_TYPE_NAMES[suffixes[1]], guard=guard)


def _parse_setp(suffixes, operands, guard, text):
    suffixes = list(suffixes)
    if not suffixes or suffixes[0] not in ("eq", "ne"):
        raise PtxSyntaxError("setp needs .eq or .ne", text=text)
    cmp = suffixes.pop(0)
    typ = _pop_type(suffixes)
    _expect(operands, 3, text)
    return Setp(cmp, operands[0], operands[1], operands[2], typ=typ, guard=guard)


def _parse_bra(suffixes, operands, guard, text):
    if suffixes and suffixes != ["uni"]:
        raise PtxSyntaxError("unknown bra suffix", text=text)
    _expect(operands, 1, text)
    target = operands[0]
    if not isinstance(target, Loc):
        raise PtxSyntaxError("bra target must be a label name", text=text)
    return Bra(target.name, guard=guard)


_OPCODES = {
    "ld": _parse_ld,
    "st": _parse_st,
    "atom": _parse_atom,
    "membar": _parse_membar,
    "mov": _parse_mov,
    "add": _binary(Add),
    "and": _binary(And),
    "xor": _binary(Xor),
    "cvt": _parse_cvt,
    "setp": _parse_setp,
    "bra": _parse_bra,
}


def parse_lines(text, registers=None):
    """Parse a block of PTX text (one instruction per line, blank lines and
    comments ignored) into a list of instructions."""
    instructions = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        try:
            instructions.append(parse_instruction(line, registers))
        except PtxSyntaxError as exc:
            raise PtxSyntaxError(str(exc), line=number, text=raw)
    return instructions
