"""Operand AST for the PTX fragment: registers, immediates, addresses."""

from dataclasses import dataclass

from ..errors import PtxSyntaxError


@dataclass(frozen=True)
class Reg:
    """A register reference, e.g. ``r0`` or the predicate ``p1``."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Imm:
    """An integer immediate, printed in decimal (hex if large)."""

    value: int

    def __str__(self):
        if self.value >= 0x10000:
            return hex(self.value)
        return str(self.value)


@dataclass(frozen=True)
class Loc:
    """A symbolic memory location name, e.g. ``x`` in ``st.cg [x],1``.

    Litmus tests address memory through symbolic locations; the simulator
    and the model resolve these to concrete addresses via the test's
    memory map.
    """

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Addr:
    """A memory address operand ``[base+offset]``.

    ``base`` is either a :class:`Loc` (symbolic location) or a
    :class:`Reg` holding an address (Fig. 12 initialises ``.b64``
    registers to locations).  ``offset`` is a byte offset in words — the
    library models word-addressed memory, so offsets count 32-bit cells.
    """

    base: object  # Loc | Reg
    offset: int = 0

    def __post_init__(self):
        if not isinstance(self.base, (Loc, Reg)):
            raise PtxSyntaxError("address base must be a Loc or Reg, got %r" % (self.base,))

    def __str__(self):
        if self.offset:
            return "[%s+%d]" % (self.base, self.offset)
        return "[%s]" % (self.base,)


def operand_registers(operand):
    """Return the set of register names read by ``operand``."""
    if isinstance(operand, Reg):
        return {operand.name}
    if isinstance(operand, Addr) and isinstance(operand.base, Reg):
        return {operand.base.name}
    return set()
