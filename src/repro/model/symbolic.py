"""Symbolic values for candidate-execution enumeration.

Per-thread symbolic execution (see :mod:`repro.model.paths`) cannot know
the value a load returns — that is decided later, by the choice of
read-from edge.  Loads therefore produce :class:`SymVar` variables, ALU
instructions build :class:`SymOp` terms over them, and comparisons build
:class:`SymCmp` terms.  :func:`resolve` evaluates a term under a partial
environment, returning ``None`` while any needed variable is unbound.
"""

from dataclasses import dataclass

from .._util import wrap32


@dataclass(frozen=True)
class SymConst:
    """A known integer."""

    value: int

    def variables(self):
        return frozenset()

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class SymVar:
    """The (as yet unknown) value returned by one load event."""

    vid: int

    def variables(self):
        return frozenset({self.vid})

    def __str__(self):
        return "v%d" % self.vid


@dataclass(frozen=True)
class SymOp:
    """An ALU term: ``op`` is one of ``add``, ``and``, ``xor``, ``cvt``."""

    op: str
    args: tuple

    def variables(self):
        result = frozenset()
        for arg in self.args:
            result |= arg.variables()
        return result

    def __str__(self):
        return "%s(%s)" % (self.op, ", ".join(str(a) for a in self.args))


@dataclass(frozen=True)
class SymCmp:
    """A comparison term (``eq`` or ``ne``), used by ``setp`` predicates."""

    cmp: str
    left: object
    right: object

    def variables(self):
        return self.left.variables() | self.right.variables()

    def __str__(self):
        return "(%s %s %s)" % (self.left, self.cmp, self.right)


_ALU = {
    "add": lambda a, b: wrap32(a + b),
    "and": lambda a, b: a & b,
    "xor": lambda a, b: a ^ b,
}


def resolve(term, env):
    """Evaluate ``term`` under ``env`` (vid -> int).

    Returns an ``int`` (or ``bool`` for comparisons) when every variable
    the term depends on is bound, else ``None``.
    """
    if isinstance(term, SymConst):
        return term.value
    if isinstance(term, SymVar):
        return env.get(term.vid)
    if isinstance(term, SymOp):
        values = [resolve(arg, env) for arg in term.args]
        if any(value is None for value in values):
            return None
        if term.op == "cvt":
            return values[0]
        return _ALU[term.op](*values)
    if isinstance(term, SymCmp):
        left, right = resolve(term.left, env), resolve(term.right, env)
        if left is None or right is None:
            return None
        return (left == right) if term.cmp == "eq" else (left != right)
    raise TypeError("not a symbolic term: %r" % (term,))


def constant(term):
    """Shortcut: the integer value of an already-constant term, else None."""
    return resolve(term, {})


@dataclass(frozen=True)
class Constraint:
    """A path constraint: the comparison must resolve to ``expected``."""

    term: SymCmp
    expected: bool

    def status(self, env):
        """``True``/``False`` once decidable, ``None`` while open."""
        value = resolve(self.term, env)
        if value is None:
            return None
        return value == self.expected

    def __str__(self):
        return "%s is %s" % (self.term, self.expected)
