"""Candidate-execution enumeration (Sec. 5.1.2 of the paper).

Pipeline: per-thread symbolic paths (:mod:`repro.model.paths`) →
cartesian combination of paths → read-from solving (each read picks a
same-address write whose value is consistent with the path constraints)
→ coherence-order enumeration (all per-location total orders respecting
RMW atomicity) → concrete :class:`~repro.model.execution.CandidateExecution`
objects, each with its final state.

Two drivers share that machinery:

* :func:`enumerate_executions` — the reference path: materialise every
  candidate execution, let the caller check each against a model.
* :func:`enumerate_allowed` — the fast path (GPUMC-style pruned
  exploration): a compiled model's monotone checks run *during* the
  search, on indexed partial relations, cutting doomed branches before
  ``_build_execution``; surviving candidates are checked completely and
  only their final states are kept.  Bit-identical allowed sets,
  ``truncated`` flags and :class:`~repro.errors.EnumerationError`
  behaviour by construction: both drivers walk the identical candidate
  sequence (under a ``max_executions`` cap the fast path counts every
  candidate instead of cutting subtrees, so cap semantics match
  exactly).
"""

import itertools

from ..errors import CatEvalError, EnumerationError
from ..litmus.condition import FinalState
from .cat import compile_model
from .events import Event, init_write
from .execution import CandidateExecution
from .paths import DEFAULT_FUEL, enumerate_thread_paths
from .relation import EventIndex, IndexedRelation, Relation
from .symbolic import resolve


class ExecutionEnumeration(list):
    """The enumerated candidate executions plus completeness metadata.

    Behaves exactly like the plain list it used to be, with one extra
    attribute: ``truncated`` is True when the enumeration is known to be
    *incomplete* — the ``max_executions`` cap was hit while more
    executions remained, or a thread path was cut short by fuel
    (``on_fuel="truncate"``).  A truncated enumeration
    under-approximates the allowed set, so consumers deriving "the model
    forbids this state" from it (soundness checking) must refuse it.
    """

    truncated = False


class AllowedStates(set):
    """The final states a model allows for one test (fast-engine result).

    A plain set of :class:`~repro.litmus.condition.FinalState` values
    with the same ``truncated`` marker as :class:`ExecutionEnumeration`:
    True when the enumeration behind it was cut short (cap or fuel), in
    which case the set under-approximates the allowed outcomes.
    """

    truncated = False


def _cap_error(test, max_executions):
    return EnumerationError(
        "%s has more than max_executions=%d candidate executions; the "
        "allowed set would be under-approximated (raise the cap or pass "
        "on_limit='truncate' to accept a partial enumeration)"
        % (test.name, max_executions))


def enumerate_executions(test, fuel=DEFAULT_FUEL, on_fuel="error",
                         max_executions=None, on_limit="error"):
    """Enumerate the candidate executions of ``test``.

    ``fuel`` bounds loop unrolling per thread; ``on_fuel`` selects what to
    do when it runs out ("error", "discard" or "truncate").
    ``max_executions`` caps the total (None = unbounded); ``on_limit``
    selects what to do when the cap cuts the enumeration short:
    ``"error"`` (default) raises :class:`~repro.errors.EnumerationError`,
    since a silently truncated enumeration under-approximates the
    allowed set and turns soundness checking into false violations;
    ``"truncate"`` returns the partial enumeration with its
    ``truncated`` flag set.  A cap that the full enumeration fits inside
    is not a truncation.
    """
    if on_limit not in ("error", "truncate"):
        raise ValueError("on_limit must be 'error' or 'truncate', got %r"
                         % (on_limit,))
    address_map = test.address_map()
    var_counter = itertools.count()
    per_thread = [
        enumerate_thread_paths(program, address_map, test.reg_init,
                               var_counter, fuel, on_fuel)
        for program in test.threads
    ]
    if any(not paths for paths in per_thread):
        raise EnumerationError("a thread of %s has no feasible path" % test.name)

    executions = ExecutionEnumeration()
    capped = False
    for combo in itertools.product(*per_thread):
        for execution in _solve_combo(test, combo, address_map):
            # Only stop once an execution *beyond* the cap shows up, so a
            # cap equal to the total count is a complete enumeration.
            if max_executions is not None and len(executions) >= max_executions:
                capped = True
                break
            executions.append(execution)
        if capped:
            break
    if capped and on_limit == "error":
        raise _cap_error(test, max_executions)
    executions.truncated = capped or any(
        path.truncated for paths in per_thread for path in paths)
    return executions


def enumerate_allowed(test, model, fuel=DEFAULT_FUEL, on_fuel="error",
                      max_executions=None, on_limit="error"):
    """Fast-engine twin of ``enumerate_executions`` + model filtering.

    Compiles ``model`` once (:func:`~repro.model.cat.compile_model`),
    walks the identical candidate sequence, and returns the
    :class:`AllowedStates` the model allows — pruning branches whose
    partial rf/coherence assignments already fail a monotone check, so
    doomed candidates are cut before they are ever built.

    Contract (property-tested against the reference in
    ``tests/test_model_compile.py``): the returned set, its
    ``truncated`` flag, and every raised
    :class:`~repro.errors.EnumerationError` (fuel exhaustion,
    infeasible threads, ``max_executions`` with ``on_limit="error"``)
    are identical to running ``enumerate_executions`` and filtering
    with ``model.allows``.  The one documented divergence: errors the
    reference would raise while *building* a model-forbidden candidate
    (e.g. an unresolved observed register on a pruned branch) cannot
    surface here, because pruned candidates are never materialised.
    """
    if on_limit not in ("error", "truncate"):
        raise ValueError("on_limit must be 'error' or 'truncate', got %r"
                         % (on_limit,))
    compiled = compile_model(model)
    address_map = test.address_map()
    var_counter = itertools.count()
    per_thread = [
        enumerate_thread_paths(program, address_map, test.reg_init,
                               var_counter, fuel, on_fuel)
        for program in test.threads
    ]
    if any(not paths for paths in per_thread):
        raise EnumerationError("a thread of %s has no feasible path" % test.name)

    states = AllowedStates()
    search = _FastSearch(test, compiled, max_executions, states)
    try:
        for combo in itertools.product(*per_thread):
            search.run_combo(_Combo(test, combo, address_map))
    except _Capped:
        pass
    if search.capped and on_limit == "error":
        raise _cap_error(test, max_executions)
    states.truncated = search.capped or any(
        path.truncated for paths in per_thread for path in paths)
    return states


def allowed_final_states(executions, model=None):
    """The distinct final states of ``executions``, optionally filtered by
    an axiomatic model's ``allows`` predicate."""
    outcomes = set()
    for execution in executions:
        if model is None or model.allows(execution):
            outcomes.add(execution.final_state)
    return outcomes


# ---------------------------------------------------------------------------
# Solving one combination of per-thread paths.
# ---------------------------------------------------------------------------

class _Combo:
    """Bookkeeping for one combination of thread paths."""

    def __init__(self, test, paths, address_map):
        self.test = test
        self.paths = paths
        self.address_map = address_map
        self.reverse_address = {addr: name for name, addr in address_map.items()}
        # Symbolic events keyed by (tid, local index).
        self.reads = []
        self.writes = []  # (key, sym_event) for store/rmw writes
        self.sym_events = {}
        for path in paths:
            for sym in path.events:
                key = (path.tid, sym.index)
                self.sym_events[key] = sym
                if sym.kind == "R":
                    self.reads.append(key)
                elif sym.kind == "W":
                    self.writes.append(key)
        self.constraints = [c for path in paths for c in path.constraints]

    def location_of(self, address):
        name = self.reverse_address.get(address)
        if name is not None:
            return name
        raise EnumerationError("access to unmapped address %#x" % address)


def _solve_combo(test, paths, address_map):
    combo = _Combo(test, paths, address_map)
    for env, rf_assign, _ in _solve_rf(combo, env={}, rf_assign={},
                                       remaining=list(combo.reads),
                                       deferred={}, pending_addr=[]):
        yield from _enumerate_co(combo, env, rf_assign)


def _constraints_ok(combo, env):
    """False if a constraint is already violated; True when all are decided
    true or still open."""
    for constraint in combo.constraints:
        if constraint.status(env) is False:
            return False
    return True


def _resolved_addr(combo, key, env):
    sym = combo.sym_events[key]
    return resolve(sym.addr_term, env)


def _candidate_writes(combo, read_key, read_addr, env):
    """The candidate rf sources of a read at ``read_addr``.

    Each candidate is ``(write_key, value, addr_pending)``.  Writes with
    a resolved address join only if it matches; writes whose address is
    still symbolic (the target of an address dependency) join
    *provisionally* with ``addr_pending=True`` — choosing one defers an
    address-equality check until more reads are bound.  A candidate's
    ``value`` may likewise be ``None`` (a data-dependent store whose
    source read is unbound); choosing it defers the read's binding.
    Keeping such writes in the candidate set is what makes the
    enumeration complete regardless of the order reads are solved in —
    dropping them silently under-approximated the allowed set for the
    ``lb+addr``/``lb+data`` double-dependency families.

    Returns (candidates, fully_resolved); the flag steers the solver
    toward reads whose branches prune immediately.
    """
    read_sym = combo.sym_events[read_key]
    candidates, fully_resolved = [], True
    for write_key in combo.writes:
        write_sym = combo.sym_events[write_key]
        if (write_key[0] == read_key[0]
                and write_sym.rmw_group is not None
                and write_sym.rmw_group == read_sym.rmw_group):
            continue  # an RMW cannot read its own write
        write_addr = resolve(write_sym.addr_term, env)
        if write_addr is not None and write_addr != read_addr:
            continue
        value = resolve(write_sym.value_term, env)
        addr_pending = write_addr is None
        if addr_pending or value is None:
            fully_resolved = False
        candidates.append((write_key, value, addr_pending))
    location = combo.location_of(read_addr)
    candidates.append(
        (("init", location), combo.test.initial_value(location), False))
    return candidates, fully_resolved


def _propagate(combo, env, deferred, pending_addr):
    """Settle deferred bindings as far as the environment allows.

    ``deferred`` maps a read key to the write it provisionally reads
    from while that write's value is still symbolic; ``pending_addr``
    lists ``(read_key, write_key, read_addr)`` address-equality checks
    for rf choices made before the write's address resolved.  Each new
    binding can unlock further ones, so iterate to a fixpoint.  Returns
    False when a pending address check resolves to a *mismatch* — the
    branch is contradictory and must be pruned.
    """
    progress = True
    while progress:
        progress = False
        for read_key, write_key in list(deferred.items()):
            value = resolve(combo.sym_events[write_key].value_term, env)
            if value is not None:
                env[combo.sym_events[read_key].var] = value
                del deferred[read_key]
                progress = True
        for check in list(pending_addr):
            _, write_key, read_addr = check
            addr = resolve(combo.sym_events[write_key].addr_term, env)
            if addr is not None:
                if addr != read_addr:
                    return False
                pending_addr.remove(check)
                progress = True
    return True


def _pick_read(combo, env, remaining, deferred):
    """Choose the next read to branch on (the solver's ordering heuristic).

    Candidate sets are complete for any pick (provisional candidates
    included), so the order is a pruning heuristic only: prefer reads
    whose candidates are fully resolved — their branches bind a concrete
    value immediately and contradictions surface early.  Returns
    ``(index, read_key, candidates)``, or ``None`` when every remaining
    read waits on a deferred value (an address dependency chained behind
    a thin-air value cycle — no realisable execution down this branch).
    """
    best_index, best = None, None
    for index, key in enumerate(remaining):
        addr = _resolved_addr(combo, key, env)
        if addr is None:
            continue
        candidates, fully_resolved = _candidate_writes(combo, key, addr, env)
        rank = (not fully_resolved, len(candidates))
        if best is None or rank < best[0]:
            best_index, best = index, (rank, key, candidates)
        if fully_resolved:
            break
    if best is None:
        if deferred:
            return None
        raise EnumerationError(
            "no read with a resolvable address; cyclic address dependency?")
    _, read_key, candidates = best
    return best_index, read_key, candidates


#: Verdicts a fast-path prune hook may return (``None`` = keep going).
_CUT = "cut"              # drop the branch entirely (no cap active)
_FORBIDDEN = "forbidden"  # keep walking for cap counting, skip checking


def _solve_rf(combo, env, rf_assign, remaining, deferred, pending_addr,
              prune=None, forbidden=False):
    """Depth-first assignment of read-from edges.

    Yields ``(env, rf_assign, forbidden)`` leaves.  ``prune`` is the
    fast engine's hook, called after each successful assignment with the
    extended ``(env, rf_assign)``; it may return :data:`_CUT` to drop
    the branch or :data:`_FORBIDDEN` to mark every completion as
    model-rejected while preserving the walk (cap counting).  The
    reference path passes no hook and is unchanged.
    """
    if not _constraints_ok(combo, env):
        return
    if not remaining:
        if deferred:
            # Mutually dependent value bindings with no resolution order
            # (each read provisionally sourced from a store whose value
            # needs the other read): a dp|rf cycle.  No operational
            # execution realises such thin-air values, and no-thin-air
            # forbids the shape — discard the branch.
            return
        if pending_addr:
            raise EnumerationError(
                "address checks unresolved with all reads bound")
        if any(c.status(env) is not True for c in combo.constraints):
            raise EnumerationError("constraints undecided with all reads bound")
        yield env, rf_assign, forbidden
        return

    picked = _pick_read(combo, env, remaining, deferred)
    if picked is None:
        return
    best_index, read_key, candidates = picked
    rest = remaining[:best_index] + remaining[best_index + 1:]
    read_sym = combo.sym_events[read_key]
    for write_key, value, addr_pending in candidates:
        new_env = dict(env)
        new_deferred = dict(deferred)
        new_pending = list(pending_addr)
        if value is not None:
            new_env[read_sym.var] = value
        else:
            new_deferred[read_key] = write_key
        if addr_pending:
            new_pending.append((read_key, write_key,
                                _resolved_addr(combo, read_key, env)))
        if not _propagate(combo, new_env, new_deferred, new_pending):
            continue
        new_rf = dict(rf_assign)
        new_rf[read_key] = write_key
        child_forbidden = forbidden
        if prune is not None and not child_forbidden:
            verdict = prune(new_env, new_rf)
            if verdict is _CUT:
                continue
            if verdict is _FORBIDDEN:
                child_forbidden = True
        yield from _solve_rf(combo, new_env, new_rf, rest, new_deferred,
                             new_pending, prune, child_forbidden)


# ---------------------------------------------------------------------------
# Coherence enumeration and execution construction (reference path).
# ---------------------------------------------------------------------------

def _enumerate_co(combo, env, rf_assign):
    """Enumerate coherence orders (init first) respecting RMW atomicity."""
    writes_by_loc = {}
    for write_key in combo.writes:
        sym = combo.sym_events[write_key]
        address = resolve(sym.addr_term, env)
        location = combo.location_of(address)
        writes_by_loc.setdefault(location, []).append(write_key)
    for location in combo.test.locations():
        writes_by_loc.setdefault(location, [])

    # RMW atomicity: the write of an RMW must immediately follow the write
    # its read read from (the paper's Sec. 5 model inherits this from the
    # enumeration, like herd does).
    atomic_pairs = _atomicity_requirements(combo, rf_assign)

    locations = sorted(writes_by_loc)
    per_location_orders = []
    for location in locations:
        orders = []
        for permutation in itertools.permutations(writes_by_loc[location]):
            order = [("init", location)] + list(permutation)
            if _atomicity_ok(order, atomic_pairs):
                orders.append(order)
        per_location_orders.append(orders)

    for chosen in itertools.product(*per_location_orders):
        co_orders = dict(zip(locations, chosen))
        yield _build_execution(combo, env, rf_assign, co_orders)


def _atomicity_requirements(combo, rf_assign):
    """Map rmw-write-key -> the write key its read read from."""
    requirements = {}
    for read_key, source in rf_assign.items():
        read_sym = combo.sym_events[read_key]
        if read_sym.rmw_group is None:
            continue
        write_key = _rmw_write_of(combo, read_key)
        if write_key is not None:
            requirements[write_key] = source
    return requirements


def _rmw_write_of(combo, read_key):
    tid, _ = read_key
    read_sym = combo.sym_events[read_key]
    for write_key in combo.writes:
        if write_key[0] != tid:
            continue
        sym = combo.sym_events[write_key]
        if sym.rmw_group == read_sym.rmw_group:
            return write_key
    return None


def _atomicity_ok(order, requirements):
    positions = {key: index for index, key in enumerate(order)}
    for write_key, source_key in requirements.items():
        if write_key not in positions:
            continue
        source_position = positions.get(source_key)
        if source_position is None:
            continue  # source is a write to another location (impossible)
        if positions[write_key] != source_position + 1:
            return False
    return True


def _build_execution(combo, env, rf_assign, co_orders):
    test = combo.test
    events = {}
    eid = itertools.count()

    for location in sorted(co_orders):
        events[("init", location)] = init_write(
            next(eid), location, test.initial_value(location))

    for path in combo.paths:
        for sym in path.events:
            key = (path.tid, sym.index)
            if sym.kind == "F":
                events[key] = Event(eid=next(eid), tid=path.tid, kind="F",
                                    po_index=sym.index, scope=sym.scope,
                                    label=sym.label)
                continue
            address = resolve(sym.addr_term, env)
            location = combo.location_of(address)
            value = resolve(sym.value_term, env)
            events[key] = Event(eid=next(eid), tid=path.tid, kind=sym.kind,
                                po_index=sym.index, loc=location, value=value,
                                cop=sym.cop, volatile=sym.volatile,
                                rmw_group=(None if sym.rmw_group is None
                                           else path.tid * 1000 + sym.rmw_group),
                                label=sym.label)

    po_pairs = []
    for path in combo.paths:
        ordered = [events[(path.tid, sym.index)] for sym in path.events]
        po_pairs.extend((ordered[i], ordered[j])
                        for i in range(len(ordered))
                        for j in range(i + 1, len(ordered)))

    rf_pairs = [(events[w_key], events[r_key]) for r_key, w_key in rf_assign.items()]
    co_pairs = []
    for order in co_orders.values():
        concrete = [events[key] for key in order]
        co_pairs.extend((concrete[i], concrete[j])
                        for i in range(len(concrete))
                        for j in range(i + 1, len(concrete)))

    addr_pairs, data_pairs, ctrl_pairs = [], [], []
    for path in combo.paths:
        for sym in path.events:
            target = events[(path.tid, sym.index)]
            for source_index in sym.addr_sources:
                addr_pairs.append((events[(path.tid, source_index)], target))
            for source_index in sym.data_sources:
                data_pairs.append((events[(path.tid, source_index)], target))
            for source_index in sym.ctrl_sources:
                ctrl_pairs.append((events[(path.tid, source_index)], target))

    rmw_pairs = []
    for path in combo.paths:
        groups = {}
        for sym in path.events:
            if sym.rmw_group is not None:
                groups.setdefault(sym.rmw_group, []).append(events[(path.tid, sym.index)])
        for group in groups.values():
            read = [e for e in group if e.kind == "R"]
            write = [e for e in group if e.kind == "W"]
            if read and write:
                rmw_pairs.append((read[0], write[0]))

    final_state = _final_state(combo, env, co_orders,
                               lambda key: events[key].value)

    tree = test.scope_tree
    names = [program.name for program in test.threads]

    def same_cta(tid_a, tid_b):
        return tree.same_cta(names[tid_a], names[tid_b])

    return CandidateExecution(
        events=list(events.values()),
        po=Relation(po_pairs), rf=Relation(rf_pairs), co=Relation(co_pairs),
        addr=Relation(addr_pairs), data=Relation(data_pairs),
        ctrl=Relation(ctrl_pairs), rmw=Relation(rmw_pairs),
        same_cta=same_cta, final_state=final_state, test_name=test.name)


def _final_state(combo, env, co_orders, write_value):
    """Fold registers and final memory into a FinalState.

    ``write_value`` maps a write key (``("init", loc)`` or ``(tid,
    index)``) to its concrete value — the built Event's value on the
    reference path, a direct symbolic resolution on the fast path.
    """
    regs = {}
    paths_by_tid = {path.tid: path for path in combo.paths}
    for tid, reg in combo.test.observed_registers():
        path = paths_by_tid.get(tid)
        term = path.final_regs.get(reg) if path is not None else None
        if term is None:
            regs[(tid, reg)] = 0
            continue
        value = resolve(term, env)
        if isinstance(value, bool):
            value = int(value)
        if value is None:
            raise EnumerationError("final register %d:%s unresolved" % (tid, reg))
        regs[(tid, reg)] = value

    memory = {}
    for location, order in co_orders.items():
        last_key = order[-1]
        memory[location] = write_value(last_key)
    return FinalState.make(regs, memory)


# ---------------------------------------------------------------------------
# Fast path: pruned, consistency-aware exploration over indexed relations.
# ---------------------------------------------------------------------------

class _Capped(Exception):
    """Internal signal: the max_executions cap was exceeded."""


class _Skeleton:
    """Indexed event universe + env-independent relations for one combo.

    Slots mirror ``_build_execution``'s eid order exactly: one init
    write per test location (sorted), then every path event in path
    order.  Relations fixed by the paths alone (po, dependencies,
    fences, scopes, rmw, int/ext, id) are built once here; rf/co/fr and
    the address-dependent loc/po-loc are assembled per search node by
    :class:`_SkeletonView`.
    """

    def __init__(self, combo):
        test = combo.test
        self.combo = combo
        self.locations = sorted(test.locations())
        slots = [("init", location) for location in self.locations]
        for path in combo.paths:
            for sym in path.events:
                slots.append((path.tid, sym.index))
        self.index = EventIndex(slots)
        self.position = {key: i for i, key in enumerate(slots)}
        self.n = len(slots)

        kinds, tids = [], []
        for key in slots:
            if key[0] == "init":
                kinds.append("W")
                tids.append(-1)
            else:
                sym = combo.sym_events[key]
                kinds.append(sym.kind)
                tids.append(key[0])
        self.kinds = kinds
        self.tids = tids

        w_mask = r_mask = f_mask = 0
        for i, kind in enumerate(kinds):
            if kind == "W":
                w_mask |= 1 << i
            elif kind == "R":
                r_mask |= 1 << i
            else:
                f_mask |= 1 << i
        self.kind_masks = {"W": w_mask, "R": r_mask,
                           "M": w_mask | r_mask, "F": f_mask}
        self.access_mask = w_mask | r_mask

        self.fixed = self._fixed_relations(combo, test)

    def _fixed_relations(self, combo, test):
        n = self.n
        position = self.position

        def relation(succ):
            return IndexedRelation(self.index, succ)

        po = [0] * n
        for path in combo.paths:
            ordered = [position[(path.tid, sym.index)] for sym in path.events]
            for i in range(len(ordered)):
                for j in range(i + 1, len(ordered)):
                    po[ordered[i]] |= 1 << ordered[j]

        addr, data, ctrl = [0] * n, [0] * n, [0] * n
        for path in combo.paths:
            for sym in path.events:
                target = 1 << position[(path.tid, sym.index)]
                for source_index in sym.addr_sources:
                    addr[position[(path.tid, source_index)]] |= target
                for source_index in sym.data_sources:
                    data[position[(path.tid, source_index)]] |= target
                for source_index in sym.ctrl_sources:
                    ctrl[position[(path.tid, source_index)]] |= target
        dp = [a | d | c for a, d, c in zip(addr, data, ctrl)]

        # Fence relations: accesses separated in po by a fence of exactly
        # the given scope (mirrors CandidateExecution._fence_relation).
        fences = {"cta": [0] * n, "gl": [0] * n, "sys": [0] * n}
        access = self.access_mask
        for path in combo.paths:
            ordered = [position[(path.tid, sym.index)] for sym in path.events]
            for k, sym in enumerate(path.events):
                if sym.kind != "F":
                    continue
                before = 0
                for slot in ordered[:k]:
                    before |= 1 << slot
                after = 0
                for slot in ordered[k + 1:]:
                    after |= 1 << slot
                before &= access
                after &= access
                rows = fences[sym.scope]
                for slot in range(n):
                    if (before >> slot) & 1:
                        rows[slot] |= after

        rmw = [0] * n
        for path in combo.paths:
            groups = {}
            for sym in path.events:
                if sym.rmw_group is not None:
                    groups.setdefault(sym.rmw_group, []).append(sym)
            for group in groups.values():
                read = [sym for sym in group if sym.kind == "R"]
                write = [sym for sym in group if sym.kind == "W"]
                if read and write:
                    rmw[position[(path.tid, read[0].index)]] |= (
                        1 << position[(path.tid, write[0].index)])

        # Scope relations over *all* events (init writes belong to every
        # scope; mirrors CandidateExecution._scope_relation).  Single-GPU
        # tests share the grid, so ``gl`` and ``sys`` are the universal
        # relation; ``cta`` relates init events, same-thread pairs and
        # same-CTA thread pairs.  All built from per-tid masks instead of
        # pairwise loops — this runs once per path combination.
        tree = test.scope_tree
        names = [program.name for program in test.threads]
        tids = self.tids
        full = self.index.full_mask
        tid_mask = {}
        for i, tid in enumerate(tids):
            tid_mask[tid] = tid_mask.get(tid, 0) | (1 << i)
        init_mask = tid_mask.get(-1, 0)
        cta_mask_by_tid = {}
        for tid in tid_mask:
            if tid == -1:
                continue
            mask = init_mask | tid_mask[tid]
            for other in tid_mask:
                if other in (-1, tid):
                    continue
                if tree.same_cta(names[tid], names[other]):
                    mask |= tid_mask[other]
            cta_mask_by_tid[tid] = mask

        universal = [full & ~(1 << i) for i in range(n)]
        cta = []
        internal = []
        external = []
        for i, tid in enumerate(tids):
            self_bit = 1 << i
            cta.append(((full if tid == -1 else cta_mask_by_tid[tid])
                        & ~self_bit))
            internal.append(tid_mask[tid] & ~self_bit)
            external.append(full & ~tid_mask[tid])

        identity = [1 << i for i in range(n)]

        return {
            "po": relation(po),
            "addr": relation(addr), "data": relation(data),
            "ctrl": relation(ctrl), "dp": relation(dp),
            "membar.cta": relation(fences["cta"]),
            "membar.gl": relation(fences["gl"]),
            "membar.sys": relation(fences["sys"]),
            "rmw": relation(rmw),
            "cta": relation(cta), "gl": relation(universal),
            "sys": relation(list(universal)),
            "int": relation(internal), "ext": relation(external),
            "id": relation(identity),
            "0": IndexedRelation.empty(self.index),
        }

    def locate(self, env):
        """Per-slot location names under ``env`` (None while unresolved
        or for fences); unmapped addresses stay None here — the search
        itself raises exactly where the reference path would."""
        combo = self.combo
        locs = []
        for key, kind in zip(self.index.events, self.kinds):
            if key[0] == "init":
                locs.append(key[1])
                continue
            if kind == "F":
                locs.append(None)
                continue
            address = resolve(combo.sym_events[key].addr_term, env)
            if address is None:
                locs.append(None)
                continue
            locs.append(combo.reverse_address.get(address))
        return locs


class _SkeletonView:
    """Indexed base relations for one (possibly partial) search node."""

    def __init__(self, skeleton, locs, rf_slots, co_succ, fixed_memo):
        self.skeleton = skeleton
        self.index = skeleton.index
        self._locs = locs
        self._rf = rf_slots          # read slot -> source write slot
        self._co = co_succ           # successor masks (shared snapshot)
        self._cache = {}
        #: Slot cache for enumeration-invariant compiled subterms, shared
        #: across every view of one skeleton (see ``_eval_expr``).
        self.fixed_memo = fixed_memo

    def empty(self):
        return IndexedRelation.empty(self.index)

    def kind_mask(self, letter):
        return self.skeleton.kind_masks[letter]

    def relation(self, name):
        relation = self._cache.get(name)
        if relation is None:
            relation = self._build(name)
            self._cache[name] = relation
        return relation

    def _build(self, name):
        skeleton = self.skeleton
        fixed = skeleton.fixed.get(name)
        if fixed is not None:
            return fixed
        if name == "rf":
            succ = [0] * skeleton.n
            for read_slot, write_slot in self._rf.items():
                succ[write_slot] |= 1 << read_slot
            return IndexedRelation(skeleton.index, succ)
        if name in ("co", "ws"):
            return IndexedRelation(skeleton.index, self._co)
        if name == "fr":
            succ = [0] * skeleton.n
            co = self._co
            for read_slot, write_slot in self._rf.items():
                succ[read_slot] |= co[write_slot]
            return IndexedRelation(skeleton.index, succ)
        if name == "rfe":
            return self.relation("rf") & skeleton.fixed["ext"]
        if name == "rfi":
            return self.relation("rf") & skeleton.fixed["int"]
        if name == "coe":
            return self.relation("co") & skeleton.fixed["ext"]
        if name == "coi":
            return self.relation("co") & skeleton.fixed["int"]
        if name == "fre":
            return self.relation("fr") & skeleton.fixed["ext"]
        if name == "fri":
            return self.relation("fr") & skeleton.fixed["int"]
        if name == "com":
            return (self.relation("rf") | self.relation("co")
                    | self.relation("fr"))
        if name == "loc":
            groups = {}
            for slot, location in enumerate(self._locs):
                if location is not None:
                    groups.setdefault(location, 0)
                    groups[location] |= 1 << slot
            succ = [0] * skeleton.n
            for slot, location in enumerate(self._locs):
                if location is not None:
                    succ[slot] = groups[location] & ~(1 << slot)
            return IndexedRelation(skeleton.index, succ)
        if name == "po-loc":
            return skeleton.fixed["po"] & self.relation("loc")
        raise CatEvalError("unknown primitive relation %r" % name)


class _FastSearch:
    """The pruned enumeration driver shared across path combinations."""

    #: Run the rf-stage prune hook at interior nodes only when the rf
    #: search tree is substantial ((writes+1)^reads candidate leaves at
    #: least this large) — below that the hook's own cost exceeds
    #: anything it can save.
    MIN_RF_TREE_FOR_INTERIOR_PRUNE = 64
    #: Prune inside a location's coherence-order construction (and at
    #: completed rf assignments) only when a location could carry at
    #: least this many writes — the per-location factorial is the
    #: blow-up pruning exists to tame.
    MIN_WRITES_FOR_CO_PRUNE = 3

    def __init__(self, test, compiled, max_executions, states):
        self.test = test
        self.compiled = compiled
        self.cap = max_executions
        self.counting = max_executions is not None
        self.states = states
        self.count = 0
        self.capped = False
        self.combo = None
        self.skeleton = None
        self.fixed_memo = None

    # -- rf stage ---------------------------------------------------------

    def run_combo(self, combo):
        self.combo = combo
        self.skeleton = _Skeleton(combo)
        self.fixed_memo = self.compiled.new_fixed_memo()
        prune = None
        n_writes = len(combo.writes)
        prune_worthwhile = (self.compiled.prune_checks
                            and n_writes >= self.MIN_WRITES_FOR_CO_PRUNE)
        if (prune_worthwhile
                and (n_writes + 1) ** len(combo.reads)
                >= self.MIN_RF_TREE_FOR_INTERIOR_PRUNE):
            prune = self._rf_prune
        for env, rf_assign, forbidden in _solve_rf(
                combo, env={}, rf_assign={}, remaining=list(combo.reads),
                deferred={}, pending_addr=[], prune=prune):
            if not forbidden and prune_worthwhile and prune is None:
                # Small rf trees skip interior pruning; still reject the
                # completed rf assignment once before the co search.
                if not self._prune_ok(env, rf_assign):
                    forbidden = True
                    if not self.counting:
                        continue
            self._co_phase(env, rf_assign, forbidden)

    def _rf_slots(self, rf_assign):
        position = self.skeleton.position
        return {position[read_key]: position[write_key]
                for read_key, write_key in rf_assign.items()}

    def _init_co(self, env):
        """The coherence lower bound: init hits memory before any update
        (Sec. 5.2.1), so init→write pairs hold in every completion."""
        skeleton = self.skeleton
        combo = self.combo
        succ = [0] * skeleton.n
        for write_key in combo.writes:
            address = resolve(combo.sym_events[write_key].addr_term, env)
            if address is None:
                continue
            location = combo.reverse_address.get(address)
            if location is None:
                continue
            succ[skeleton.position[("init", location)]] |= (
                1 << skeleton.position[write_key])
        return succ

    def _prune_ok(self, env, rf_assign):
        view = _SkeletonView(self.skeleton, self.skeleton.locate(env),
                             self._rf_slots(rf_assign), self._init_co(env),
                             self.fixed_memo)
        return self.compiled.prune_ok(view)

    def _rf_prune(self, env, rf_assign):
        if self._prune_ok(env, rf_assign):
            return None
        return _FORBIDDEN if self.counting else _CUT

    # -- coherence stage --------------------------------------------------

    def _co_phase(self, env, rf_assign, forbidden):
        combo = self.combo
        skeleton = self.skeleton
        writes_by_loc = {}
        for write_key in combo.writes:
            sym = combo.sym_events[write_key]
            address = resolve(sym.addr_term, env)
            location = combo.location_of(address)
            writes_by_loc.setdefault(location, []).append(write_key)
        for location in combo.test.locations():
            writes_by_loc.setdefault(location, [])
        requirements = _atomicity_requirements(combo, rf_assign)
        locations = sorted(writes_by_loc)

        state = {
            "env": env,
            "rf_slots": self._rf_slots(rf_assign),
            "locs": skeleton.locate(env),
            "co_succ": self._init_co(env),
            "co_orders": {},
            "locations": locations,
            "writes_by_loc": writes_by_loc,
            "requirements": requirements,
        }
        self._extend_location(state, 0, forbidden)

    def _extend_location(self, state, loc_idx, forbidden):
        locations = state["locations"]
        if loc_idx == len(locations):
            self._leaf(state, forbidden)
            return
        location = locations[loc_idx]
        members = state["writes_by_loc"][location]
        order = [("init", location)]
        state["co_orders"][location] = order
        self._extend_order(state, loc_idx, location, members,
                           [False] * len(members), order, forbidden)
        del state["co_orders"][location]

    def _extend_order(self, state, loc_idx, location, members, used, order,
                      forbidden):
        if len(order) == len(members) + 1:
            self._extend_location(state, loc_idx + 1, forbidden)
            return
        skeleton = self.skeleton
        position = skeleton.position
        co_succ = state["co_succ"]
        requirements = state["requirements"]
        prune_here = (self.compiled.prune_checks
                      and len(members) >= self.MIN_WRITES_FOR_CO_PRUNE)
        for i, write_key in enumerate(members):
            if used[i]:
                continue
            source = requirements.get(write_key)
            if source is not None and (source == order[0]
                                       or source in members):
                # RMW atomicity: the write must land immediately after
                # the write its read read from (same filter as
                # _atomicity_ok, applied during construction).
                if order[-1] != source:
                    continue
            used[i] = True
            order.append(write_key)
            write_bit = 1 << position[write_key]
            touched = []
            for previous in order[1:-1]:  # init pairs are pre-seeded
                slot = position[previous]
                if not co_succ[slot] & write_bit:
                    co_succ[slot] |= write_bit
                    touched.append(slot)
            child_forbidden = forbidden
            if prune_here and not child_forbidden and touched:
                view = _SkeletonView(skeleton, state["locs"],
                                     state["rf_slots"], co_succ,
                                     self.fixed_memo)
                if not self.compiled.prune_ok(view):
                    child_forbidden = True
            if not (child_forbidden and not self.counting):
                self._extend_order(state, loc_idx, location, members, used,
                                   order, child_forbidden)
            for slot in touched:
                co_succ[slot] &= ~write_bit
            order.pop()
            used[i] = False

    # -- leaves -----------------------------------------------------------

    def _leaf(self, state, forbidden):
        if self.counting:
            if self.count >= self.cap:
                self.capped = True
                raise _Capped()
            self.count += 1
        if forbidden:
            return
        view = _SkeletonView(self.skeleton, state["locs"],
                             state["rf_slots"], state["co_succ"],
                             self.fixed_memo)
        if not self.compiled.allows_view(view):
            return
        env = state["env"]
        combo = self.combo
        self.states.add(_final_state(
            combo, env, state["co_orders"],
            lambda key: (combo.test.initial_value(key[1])
                         if key[0] == "init"
                         else resolve(combo.sym_events[key].value_term,
                                      env))))
