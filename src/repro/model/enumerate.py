"""Candidate-execution enumeration (Sec. 5.1.2 of the paper).

Pipeline: per-thread symbolic paths (:mod:`repro.model.paths`) →
cartesian combination of paths → read-from solving (each read picks a
same-address write whose value is consistent with the path constraints)
→ coherence-order enumeration (all per-location total orders respecting
RMW atomicity) → concrete :class:`~repro.model.execution.CandidateExecution`
objects, each with its final state.
"""

import itertools

from ..errors import EnumerationError
from ..litmus.condition import FinalState
from .events import Event, init_write
from .execution import CandidateExecution
from .paths import DEFAULT_FUEL, enumerate_thread_paths
from .relation import Relation
from .symbolic import resolve


class ExecutionEnumeration(list):
    """The enumerated candidate executions plus completeness metadata.

    Behaves exactly like the plain list it used to be, with one extra
    attribute: ``truncated`` is True when the enumeration is known to be
    *incomplete* — the ``max_executions`` cap was hit while more
    executions remained, or a thread path was cut short by fuel
    (``on_fuel="truncate"``).  A truncated enumeration
    under-approximates the allowed set, so consumers deriving "the model
    forbids this state" from it (soundness checking) must refuse it.
    """

    truncated = False


def enumerate_executions(test, fuel=DEFAULT_FUEL, on_fuel="error",
                         max_executions=None, on_limit="error"):
    """Enumerate the candidate executions of ``test``.

    ``fuel`` bounds loop unrolling per thread; ``on_fuel`` selects what to
    do when it runs out ("error", "discard" or "truncate").
    ``max_executions`` caps the total (None = unbounded); ``on_limit``
    selects what to do when the cap cuts the enumeration short:
    ``"error"`` (default) raises :class:`~repro.errors.EnumerationError`,
    since a silently truncated enumeration under-approximates the
    allowed set and turns soundness checking into false violations;
    ``"truncate"`` returns the partial enumeration with its
    ``truncated`` flag set.  A cap that the full enumeration fits inside
    is not a truncation.
    """
    if on_limit not in ("error", "truncate"):
        raise ValueError("on_limit must be 'error' or 'truncate', got %r"
                         % (on_limit,))
    address_map = test.address_map()
    var_counter = itertools.count()
    per_thread = [
        enumerate_thread_paths(program, address_map, test.reg_init,
                               var_counter, fuel, on_fuel)
        for program in test.threads
    ]
    if any(not paths for paths in per_thread):
        raise EnumerationError("a thread of %s has no feasible path" % test.name)

    executions = ExecutionEnumeration()
    capped = False
    for combo in itertools.product(*per_thread):
        for execution in _solve_combo(test, combo, address_map):
            # Only stop once an execution *beyond* the cap shows up, so a
            # cap equal to the total count is a complete enumeration.
            if max_executions is not None and len(executions) >= max_executions:
                capped = True
                break
            executions.append(execution)
        if capped:
            break
    if capped and on_limit == "error":
        raise EnumerationError(
            "%s has more than max_executions=%d candidate executions; the "
            "allowed set would be under-approximated (raise the cap or pass "
            "on_limit='truncate' to accept a partial enumeration)"
            % (test.name, max_executions))
    executions.truncated = capped or any(
        path.truncated for paths in per_thread for path in paths)
    return executions


def allowed_final_states(executions, model=None):
    """The distinct final states of ``executions``, optionally filtered by
    an axiomatic model's ``allows`` predicate."""
    outcomes = set()
    for execution in executions:
        if model is None or model.allows(execution):
            outcomes.add(execution.final_state)
    return outcomes


# ---------------------------------------------------------------------------
# Solving one combination of per-thread paths.
# ---------------------------------------------------------------------------

class _Combo:
    """Bookkeeping for one combination of thread paths."""

    def __init__(self, test, paths, address_map):
        self.test = test
        self.paths = paths
        self.address_map = address_map
        self.reverse_address = {addr: name for name, addr in address_map.items()}
        # Symbolic events keyed by (tid, local index).
        self.reads = []
        self.writes = []  # (key, sym_event) for store/rmw writes
        self.sym_events = {}
        for path in paths:
            for sym in path.events:
                key = (path.tid, sym.index)
                self.sym_events[key] = sym
                if sym.kind == "R":
                    self.reads.append(key)
                elif sym.kind == "W":
                    self.writes.append(key)
        self.constraints = [c for path in paths for c in path.constraints]

    def location_of(self, address):
        name = self.reverse_address.get(address)
        if name is not None:
            return name
        raise EnumerationError("access to unmapped address %#x" % address)


def _solve_combo(test, paths, address_map):
    combo = _Combo(test, paths, address_map)
    yield from _solve_rf(combo, env={}, rf_assign={},
                         remaining=list(combo.reads), deferred={},
                         pending_addr=[])


def _constraints_ok(combo, env):
    """False if a constraint is already violated; True when all are decided
    true or still open."""
    for constraint in combo.constraints:
        if constraint.status(env) is False:
            return False
    return True


def _resolved_addr(combo, key, env):
    sym = combo.sym_events[key]
    return resolve(sym.addr_term, env)


def _candidate_writes(combo, read_key, read_addr, env):
    """The candidate rf sources of a read at ``read_addr``.

    Each candidate is ``(write_key, value, addr_pending)``.  Writes with
    a resolved address join only if it matches; writes whose address is
    still symbolic (the target of an address dependency) join
    *provisionally* with ``addr_pending=True`` — choosing one defers an
    address-equality check until more reads are bound.  A candidate's
    ``value`` may likewise be ``None`` (a data-dependent store whose
    source read is unbound); choosing it defers the read's binding.
    Keeping such writes in the candidate set is what makes the
    enumeration complete regardless of the order reads are solved in —
    dropping them silently under-approximated the allowed set for the
    ``lb+addr``/``lb+data`` double-dependency families.

    Returns (candidates, fully_resolved); the flag steers the solver
    toward reads whose branches prune immediately.
    """
    read_sym = combo.sym_events[read_key]
    candidates, fully_resolved = [], True
    for write_key in combo.writes:
        write_sym = combo.sym_events[write_key]
        if (write_key[0] == read_key[0]
                and write_sym.rmw_group is not None
                and write_sym.rmw_group == read_sym.rmw_group):
            continue  # an RMW cannot read its own write
        write_addr = resolve(write_sym.addr_term, env)
        if write_addr is not None and write_addr != read_addr:
            continue
        value = resolve(write_sym.value_term, env)
        addr_pending = write_addr is None
        if addr_pending or value is None:
            fully_resolved = False
        candidates.append((write_key, value, addr_pending))
    location = combo.location_of(read_addr)
    candidates.append(
        (("init", location), combo.test.initial_value(location), False))
    return candidates, fully_resolved


def _propagate(combo, env, deferred, pending_addr):
    """Settle deferred bindings as far as the environment allows.

    ``deferred`` maps a read key to the write it provisionally reads
    from while that write's value is still symbolic; ``pending_addr``
    lists ``(read_key, write_key, read_addr)`` address-equality checks
    for rf choices made before the write's address resolved.  Each new
    binding can unlock further ones, so iterate to a fixpoint.  Returns
    False when a pending address check resolves to a *mismatch* — the
    branch is contradictory and must be pruned.
    """
    progress = True
    while progress:
        progress = False
        for read_key, write_key in list(deferred.items()):
            value = resolve(combo.sym_events[write_key].value_term, env)
            if value is not None:
                env[combo.sym_events[read_key].var] = value
                del deferred[read_key]
                progress = True
        for check in list(pending_addr):
            _, write_key, read_addr = check
            addr = resolve(combo.sym_events[write_key].addr_term, env)
            if addr is not None:
                if addr != read_addr:
                    return False
                pending_addr.remove(check)
                progress = True
    return True


def _solve_rf(combo, env, rf_assign, remaining, deferred, pending_addr):
    """Depth-first assignment of read-from edges."""
    if not _constraints_ok(combo, env):
        return
    if not remaining:
        if deferred:
            # Mutually dependent value bindings with no resolution order
            # (each read provisionally sourced from a store whose value
            # needs the other read): a dp|rf cycle.  No operational
            # execution realises such thin-air values, and no-thin-air
            # forbids the shape — discard the branch.
            return
        if pending_addr:
            raise EnumerationError(
                "address checks unresolved with all reads bound")
        if any(c.status(env) is not True for c in combo.constraints):
            raise EnumerationError("constraints undecided with all reads bound")
        yield from _enumerate_co(combo, env, rf_assign)
        return

    # Candidate sets are complete for any pick (provisional candidates
    # included), so the order is a pruning heuristic only: prefer reads
    # whose candidates are fully resolved — their branches bind a
    # concrete value immediately and contradictions surface early.
    best_index, best = None, None
    for index, key in enumerate(remaining):
        addr = _resolved_addr(combo, key, env)
        if addr is None:
            continue
        candidates, fully_resolved = _candidate_writes(combo, key, addr, env)
        rank = (not fully_resolved, len(candidates))
        if best is None or rank < best[0]:
            best_index, best = index, (rank, key, candidates)
        if fully_resolved:
            break
    if best is None:
        if deferred:
            # Every remaining read waits on a deferred value (an address
            # dependency chained behind a thin-air value cycle); no
            # realisable execution down this branch.
            return
        raise EnumerationError(
            "no read with a resolvable address; cyclic address dependency?")

    _, read_key, candidates = best
    rest = remaining[:best_index] + remaining[best_index + 1:]
    read_sym = combo.sym_events[read_key]
    for write_key, value, addr_pending in candidates:
        new_env = dict(env)
        new_deferred = dict(deferred)
        new_pending = list(pending_addr)
        if value is not None:
            new_env[read_sym.var] = value
        else:
            new_deferred[read_key] = write_key
        if addr_pending:
            new_pending.append((read_key, write_key,
                                _resolved_addr(combo, read_key, env)))
        if not _propagate(combo, new_env, new_deferred, new_pending):
            continue
        new_rf = dict(rf_assign)
        new_rf[read_key] = write_key
        yield from _solve_rf(combo, new_env, new_rf, rest, new_deferred,
                             new_pending)


# ---------------------------------------------------------------------------
# Coherence enumeration and execution construction.
# ---------------------------------------------------------------------------

def _enumerate_co(combo, env, rf_assign):
    """Enumerate coherence orders (init first) respecting RMW atomicity."""
    writes_by_loc = {}
    for write_key in combo.writes:
        sym = combo.sym_events[write_key]
        address = resolve(sym.addr_term, env)
        location = combo.location_of(address)
        writes_by_loc.setdefault(location, []).append(write_key)
    for location in combo.test.locations():
        writes_by_loc.setdefault(location, [])

    # RMW atomicity: the write of an RMW must immediately follow the write
    # its read read from (the paper's Sec. 5 model inherits this from the
    # enumeration, like herd does).
    atomic_pairs = _atomicity_requirements(combo, rf_assign)

    locations = sorted(writes_by_loc)
    per_location_orders = []
    for location in locations:
        orders = []
        for permutation in itertools.permutations(writes_by_loc[location]):
            order = [("init", location)] + list(permutation)
            if _atomicity_ok(order, atomic_pairs):
                orders.append(order)
        per_location_orders.append(orders)

    for chosen in itertools.product(*per_location_orders):
        co_orders = dict(zip(locations, chosen))
        yield _build_execution(combo, env, rf_assign, co_orders)


def _atomicity_requirements(combo, rf_assign):
    """Map rmw-write-key -> the write key its read read from."""
    requirements = {}
    for read_key, source in rf_assign.items():
        read_sym = combo.sym_events[read_key]
        if read_sym.rmw_group is None:
            continue
        write_key = _rmw_write_of(combo, read_key)
        if write_key is not None:
            requirements[write_key] = source
    return requirements


def _rmw_write_of(combo, read_key):
    tid, _ = read_key
    read_sym = combo.sym_events[read_key]
    for write_key in combo.writes:
        if write_key[0] != tid:
            continue
        sym = combo.sym_events[write_key]
        if sym.rmw_group == read_sym.rmw_group:
            return write_key
    return None


def _atomicity_ok(order, requirements):
    positions = {key: index for index, key in enumerate(order)}
    for write_key, source_key in requirements.items():
        if write_key not in positions:
            continue
        source_position = positions.get(source_key)
        if source_position is None:
            continue  # source is a write to another location (impossible)
        if positions[write_key] != source_position + 1:
            return False
    return True


def _build_execution(combo, env, rf_assign, co_orders):
    test = combo.test
    events = {}
    eid = itertools.count()

    for location in sorted(co_orders):
        events[("init", location)] = init_write(
            next(eid), location, test.initial_value(location))

    for path in combo.paths:
        for sym in path.events:
            key = (path.tid, sym.index)
            if sym.kind == "F":
                events[key] = Event(eid=next(eid), tid=path.tid, kind="F",
                                    po_index=sym.index, scope=sym.scope,
                                    label=sym.label)
                continue
            address = resolve(sym.addr_term, env)
            location = combo.location_of(address)
            value = resolve(sym.value_term, env)
            events[key] = Event(eid=next(eid), tid=path.tid, kind=sym.kind,
                                po_index=sym.index, loc=location, value=value,
                                cop=sym.cop, volatile=sym.volatile,
                                rmw_group=(None if sym.rmw_group is None
                                           else path.tid * 1000 + sym.rmw_group),
                                label=sym.label)

    po_pairs = []
    for path in combo.paths:
        ordered = [events[(path.tid, sym.index)] for sym in path.events]
        po_pairs.extend((ordered[i], ordered[j])
                        for i in range(len(ordered))
                        for j in range(i + 1, len(ordered)))

    rf_pairs = [(events[w_key], events[r_key]) for r_key, w_key in rf_assign.items()]
    co_pairs = []
    for order in co_orders.values():
        concrete = [events[key] for key in order]
        co_pairs.extend((concrete[i], concrete[j])
                        for i in range(len(concrete))
                        for j in range(i + 1, len(concrete)))

    addr_pairs, data_pairs, ctrl_pairs = [], [], []
    for path in combo.paths:
        for sym in path.events:
            target = events[(path.tid, sym.index)]
            for source_index in sym.addr_sources:
                addr_pairs.append((events[(path.tid, source_index)], target))
            for source_index in sym.data_sources:
                data_pairs.append((events[(path.tid, source_index)], target))
            for source_index in sym.ctrl_sources:
                ctrl_pairs.append((events[(path.tid, source_index)], target))

    rmw_pairs = []
    for path in combo.paths:
        groups = {}
        for sym in path.events:
            if sym.rmw_group is not None:
                groups.setdefault(sym.rmw_group, []).append(events[(path.tid, sym.index)])
        for group in groups.values():
            read = [e for e in group if e.kind == "R"]
            write = [e for e in group if e.kind == "W"]
            if read and write:
                rmw_pairs.append((read[0], write[0]))

    final_state = _final_state(combo, env, co_orders, events)

    tree = test.scope_tree
    names = [program.name for program in test.threads]

    def same_cta(tid_a, tid_b):
        return tree.same_cta(names[tid_a], names[tid_b])

    return CandidateExecution(
        events=list(events.values()),
        po=Relation(po_pairs), rf=Relation(rf_pairs), co=Relation(co_pairs),
        addr=Relation(addr_pairs), data=Relation(data_pairs),
        ctrl=Relation(ctrl_pairs), rmw=Relation(rmw_pairs),
        same_cta=same_cta, final_state=final_state, test_name=test.name)


def _final_state(combo, env, co_orders, events):
    regs = {}
    paths_by_tid = {path.tid: path for path in combo.paths}
    for tid, reg in combo.test.observed_registers():
        path = paths_by_tid.get(tid)
        term = path.final_regs.get(reg) if path is not None else None
        if term is None:
            regs[(tid, reg)] = 0
            continue
        value = resolve(term, env)
        if isinstance(value, bool):
            value = int(value)
        if value is None:
            raise EnumerationError("final register %d:%s unresolved" % (tid, reg))
        regs[(tid, reg)] = value

    memory = {}
    for location, order in co_orders.items():
        last_key = order[-1]
        memory[location] = events[last_key].value
    return FinalState.make(regs, memory)
