"""Candidate-execution enumeration (Sec. 5.1.2 of the paper).

Pipeline: per-thread symbolic paths (:mod:`repro.model.paths`) →
cartesian combination of paths → read-from solving (each read picks a
same-address write whose value is consistent with the path constraints)
→ coherence-order enumeration (all per-location total orders respecting
RMW atomicity) → concrete :class:`~repro.model.execution.CandidateExecution`
objects, each with its final state.
"""

import itertools

from ..errors import EnumerationError
from ..litmus.condition import FinalState
from .events import Event, init_write
from .execution import CandidateExecution
from .paths import DEFAULT_FUEL, enumerate_thread_paths
from .relation import Relation
from .symbolic import resolve


def enumerate_executions(test, fuel=DEFAULT_FUEL, on_fuel="error",
                         max_executions=None):
    """Enumerate the candidate executions of ``test``.

    ``fuel`` bounds loop unrolling per thread; ``on_fuel`` selects what to
    do when it runs out ("error", "discard" or "truncate").
    ``max_executions`` caps the total (None = unbounded).
    """
    address_map = test.address_map()
    var_counter = itertools.count()
    per_thread = [
        enumerate_thread_paths(program, address_map, test.reg_init,
                               var_counter, fuel, on_fuel)
        for program in test.threads
    ]
    if any(not paths for paths in per_thread):
        raise EnumerationError("a thread of %s has no feasible path" % test.name)

    executions = []
    for combo in itertools.product(*per_thread):
        for execution in _solve_combo(test, combo, address_map):
            executions.append(execution)
            if max_executions is not None and len(executions) >= max_executions:
                return executions
    return executions


def allowed_final_states(executions, model=None):
    """The distinct final states of ``executions``, optionally filtered by
    an axiomatic model's ``allows`` predicate."""
    outcomes = set()
    for execution in executions:
        if model is None or model.allows(execution):
            outcomes.add(execution.final_state)
    return outcomes


# ---------------------------------------------------------------------------
# Solving one combination of per-thread paths.
# ---------------------------------------------------------------------------

class _Combo:
    """Bookkeeping for one combination of thread paths."""

    def __init__(self, test, paths, address_map):
        self.test = test
        self.paths = paths
        self.address_map = address_map
        self.reverse_address = {addr: name for name, addr in address_map.items()}
        # Symbolic events keyed by (tid, local index).
        self.reads = []
        self.writes = []  # (key, sym_event) for store/rmw writes
        self.sym_events = {}
        for path in paths:
            for sym in path.events:
                key = (path.tid, sym.index)
                self.sym_events[key] = sym
                if sym.kind == "R":
                    self.reads.append(key)
                elif sym.kind == "W":
                    self.writes.append(key)
        self.constraints = [c for path in paths for c in path.constraints]

    def location_of(self, address):
        name = self.reverse_address.get(address)
        if name is not None:
            return name
        raise EnumerationError("access to unmapped address %#x" % address)


def _solve_combo(test, paths, address_map):
    combo = _Combo(test, paths, address_map)
    yield from _solve_rf(combo, env={}, rf_assign={}, remaining=list(combo.reads))


def _constraints_ok(combo, env):
    """False if a constraint is already violated; True when all are decided
    true or still open."""
    for constraint in combo.constraints:
        if constraint.status(env) is False:
            return False
    return True


def _resolved_addr(combo, key, env):
    sym = combo.sym_events[key]
    return resolve(sym.addr_term, env)


def _candidate_writes(combo, read_key, read_addr, env):
    """Same-address writes with resolved values, plus the init write.

    Returns (resolved, has_unresolved): the second flag reports that some
    same-address write's value could not be resolved yet (used to order
    read picks for completeness).
    """
    read_sym = combo.sym_events[read_key]
    resolved, has_unresolved = [], False
    for write_key in combo.writes:
        write_sym = combo.sym_events[write_key]
        if (write_key[0] == read_key[0]
                and write_sym.rmw_group is not None
                and write_sym.rmw_group == read_sym.rmw_group):
            continue  # an RMW cannot read its own write
        write_addr = resolve(write_sym.addr_term, env)
        if write_addr is None:
            has_unresolved = True
            continue
        if write_addr != read_addr:
            continue
        value = resolve(write_sym.value_term, env)
        if value is None:
            has_unresolved = True
        else:
            resolved.append((write_key, value))
    location = combo.location_of(read_addr)
    resolved.append((("init", location), combo.test.initial_value(location)))
    return resolved, has_unresolved


def _solve_rf(combo, env, rf_assign, remaining):
    """Depth-first assignment of read-from edges."""
    if not _constraints_ok(combo, env):
        return
    if not remaining:
        if any(c.status(env) is not True for c in combo.constraints):
            raise EnumerationError("constraints undecided with all reads bound")
        yield from _enumerate_co(combo, env, rf_assign)
        return

    # Prefer reads whose candidate set is fully resolved, for completeness.
    best_index, best = None, None
    for index, key in enumerate(remaining):
        addr = _resolved_addr(combo, key, env)
        if addr is None:
            continue
        candidates, has_unresolved = _candidate_writes(combo, key, addr, env)
        rank = (has_unresolved, len(candidates))
        if best is None or rank < best[0]:
            best_index, best = index, (rank, key, candidates)
        if not has_unresolved:
            break
    if best is None:
        raise EnumerationError(
            "no read with a resolvable address; cyclic address dependency?")

    _, read_key, candidates = best
    rest = remaining[:best_index] + remaining[best_index + 1:]
    read_sym = combo.sym_events[read_key]
    for write_key, value in candidates:
        new_env = dict(env)
        new_env[read_sym.var] = value
        new_rf = dict(rf_assign)
        new_rf[read_key] = write_key
        yield from _solve_rf(combo, new_env, new_rf, rest)


# ---------------------------------------------------------------------------
# Coherence enumeration and execution construction.
# ---------------------------------------------------------------------------

def _enumerate_co(combo, env, rf_assign):
    """Enumerate coherence orders (init first) respecting RMW atomicity."""
    writes_by_loc = {}
    for write_key in combo.writes:
        sym = combo.sym_events[write_key]
        address = resolve(sym.addr_term, env)
        location = combo.location_of(address)
        writes_by_loc.setdefault(location, []).append(write_key)
    for location in combo.test.locations():
        writes_by_loc.setdefault(location, [])

    # RMW atomicity: the write of an RMW must immediately follow the write
    # its read read from (the paper's Sec. 5 model inherits this from the
    # enumeration, like herd does).
    atomic_pairs = _atomicity_requirements(combo, rf_assign)

    locations = sorted(writes_by_loc)
    per_location_orders = []
    for location in locations:
        orders = []
        for permutation in itertools.permutations(writes_by_loc[location]):
            order = [("init", location)] + list(permutation)
            if _atomicity_ok(order, atomic_pairs):
                orders.append(order)
        per_location_orders.append(orders)

    for chosen in itertools.product(*per_location_orders):
        co_orders = dict(zip(locations, chosen))
        yield _build_execution(combo, env, rf_assign, co_orders)


def _atomicity_requirements(combo, rf_assign):
    """Map rmw-write-key -> the write key its read read from."""
    requirements = {}
    for read_key, source in rf_assign.items():
        read_sym = combo.sym_events[read_key]
        if read_sym.rmw_group is None:
            continue
        write_key = _rmw_write_of(combo, read_key)
        if write_key is not None:
            requirements[write_key] = source
    return requirements


def _rmw_write_of(combo, read_key):
    tid, _ = read_key
    read_sym = combo.sym_events[read_key]
    for write_key in combo.writes:
        if write_key[0] != tid:
            continue
        sym = combo.sym_events[write_key]
        if sym.rmw_group == read_sym.rmw_group:
            return write_key
    return None


def _atomicity_ok(order, requirements):
    positions = {key: index for index, key in enumerate(order)}
    for write_key, source_key in requirements.items():
        if write_key not in positions:
            continue
        source_position = positions.get(source_key)
        if source_position is None:
            continue  # source is a write to another location (impossible)
        if positions[write_key] != source_position + 1:
            return False
    return True


def _build_execution(combo, env, rf_assign, co_orders):
    test = combo.test
    events = {}
    eid = itertools.count()

    for location in sorted(co_orders):
        events[("init", location)] = init_write(
            next(eid), location, test.initial_value(location))

    for path in combo.paths:
        for sym in path.events:
            key = (path.tid, sym.index)
            if sym.kind == "F":
                events[key] = Event(eid=next(eid), tid=path.tid, kind="F",
                                    po_index=sym.index, scope=sym.scope,
                                    label=sym.label)
                continue
            address = resolve(sym.addr_term, env)
            location = combo.location_of(address)
            value = resolve(sym.value_term, env)
            events[key] = Event(eid=next(eid), tid=path.tid, kind=sym.kind,
                                po_index=sym.index, loc=location, value=value,
                                cop=sym.cop, volatile=sym.volatile,
                                rmw_group=(None if sym.rmw_group is None
                                           else path.tid * 1000 + sym.rmw_group),
                                label=sym.label)

    po_pairs = []
    for path in combo.paths:
        ordered = [events[(path.tid, sym.index)] for sym in path.events]
        po_pairs.extend((ordered[i], ordered[j])
                        for i in range(len(ordered))
                        for j in range(i + 1, len(ordered)))

    rf_pairs = [(events[w_key], events[r_key]) for r_key, w_key in rf_assign.items()]
    co_pairs = []
    for order in co_orders.values():
        concrete = [events[key] for key in order]
        co_pairs.extend((concrete[i], concrete[j])
                        for i in range(len(concrete))
                        for j in range(i + 1, len(concrete)))

    addr_pairs, data_pairs, ctrl_pairs = [], [], []
    for path in combo.paths:
        for sym in path.events:
            target = events[(path.tid, sym.index)]
            for source_index in sym.addr_sources:
                addr_pairs.append((events[(path.tid, source_index)], target))
            for source_index in sym.data_sources:
                data_pairs.append((events[(path.tid, source_index)], target))
            for source_index in sym.ctrl_sources:
                ctrl_pairs.append((events[(path.tid, source_index)], target))

    rmw_pairs = []
    for path in combo.paths:
        groups = {}
        for sym in path.events:
            if sym.rmw_group is not None:
                groups.setdefault(sym.rmw_group, []).append(events[(path.tid, sym.index)])
        for group in groups.values():
            read = [e for e in group if e.kind == "R"]
            write = [e for e in group if e.kind == "W"]
            if read and write:
                rmw_pairs.append((read[0], write[0]))

    final_state = _final_state(combo, env, co_orders, events)

    tree = test.scope_tree
    names = [program.name for program in test.threads]

    def same_cta(tid_a, tid_b):
        return tree.same_cta(names[tid_a], names[tid_b])

    return CandidateExecution(
        events=list(events.values()),
        po=Relation(po_pairs), rf=Relation(rf_pairs), co=Relation(co_pairs),
        addr=Relation(addr_pairs), data=Relation(data_pairs),
        ctrl=Relation(ctrl_pairs), rmw=Relation(rmw_pairs),
        same_cta=same_cta, final_state=final_state, test_name=test.name)


def _final_state(combo, env, co_orders, events):
    regs = {}
    paths_by_tid = {path.tid: path for path in combo.paths}
    for tid, reg in combo.test.observed_registers():
        path = paths_by_tid.get(tid)
        term = path.final_regs.get(reg) if path is not None else None
        if term is None:
            regs[(tid, reg)] = 0
            continue
        value = resolve(term, env)
        if isinstance(value, bool):
            value = int(value)
        if value is None:
            raise EnumerationError("final register %d:%s unresolved" % (tid, reg))
        regs[(tid, reg)] = value

    memory = {}
    for location, order in co_orders.items():
        last_key = order[-1]
        memory[location] = events[last_key].value
    return FinalState.make(regs, memory)
