"""Memory events of candidate executions (Sec. 5.1.1 of the paper).

Loads give rise to read events, stores to write events, ``membar`` to
fence events.  Atomic read-modify-writes give rise to a read *and*
(when they succeed) a write, linked by an ``rmw`` pair.  The initial
value of each location is modelled as an *init write* on the virtual
thread ``tid = -1``, first in coherence order — the paper's convention
that "the initial state for a given location hits the memory before any
update" (Sec. 5.2.1).
"""

from dataclasses import dataclass, field

READ = "R"
WRITE = "W"
FENCE = "F"


@dataclass(frozen=True)
class Event:
    """One memory event.

    ``po_index`` orders events within their thread; ``rmw_group`` links
    the read and write halves of one atomic operation; ``cop`` is the
    cache operator string (``"ca"``/``"cg"``) or ``None``; ``scope`` is
    set for fences only.
    """

    eid: int
    tid: int
    kind: str
    po_index: int = 0
    loc: str = None
    value: int = None
    cop: str = None
    volatile: bool = False
    scope: str = None
    rmw_group: int = None
    label: str = field(default="", compare=False)

    def __post_init__(self):
        if self.kind not in (READ, WRITE, FENCE):
            raise ValueError("bad event kind %r" % self.kind)

    @property
    def is_read(self):
        return self.kind == READ

    @property
    def is_write(self):
        return self.kind == WRITE

    @property
    def is_fence(self):
        return self.kind == FENCE

    @property
    def is_init(self):
        return self.tid == -1

    @property
    def is_access(self):
        return self.kind in (READ, WRITE)

    def pretty(self):
        """Compact rendering in the style of Fig. 14 (``a: W.cg x=1``)."""
        name = chr(ord("a") + self.eid) if self.eid < 26 else "e%d" % self.eid
        if self.is_fence:
            return "%s: F.membar.%s (T%d)" % (name, self.scope, self.tid)
        cop = ".%s" % self.cop if self.cop else (".vol" if self.volatile else "")
        who = "init" if self.is_init else "T%d" % self.tid
        return "%s: %s%s %s=%s (%s)" % (name, self.kind, cop, self.loc, self.value, who)

    def __str__(self):
        return self.pretty()


def init_write(eid, loc, value):
    """Create the init write event for ``loc``."""
    return Event(eid=eid, tid=-1, kind=WRITE, po_index=-1, loc=loc, value=value,
                 label="init")


def reads(events):
    return [e for e in events if e.is_read]


def writes(events):
    return [e for e in events if e.is_write]


def fences(events):
    return [e for e in events if e.is_fence]


def accesses(events):
    return [e for e in events if e.is_access]


def by_location(events):
    """Group access events by location name."""
    groups = {}
    for event in events:
        if event.is_access:
            groups.setdefault(event.loc, []).append(event)
    return groups
