"""Per-thread symbolic execution: enumerate control-flow paths.

Given one thread of a litmus test, enumerate every control-flow path it
can take (forking at predicated instructions, guarded branches and
compare-and-swaps), recording for each path:

* the sequence of symbolic memory events (program order),
* the path constraints that must hold for the path to be taken,
* address/data/control dependency sources for each event, and
* the final symbolic value of every register.

This is the front half of candidate-execution enumeration (Sec. 5.1.2 of
the paper: "unwinding the body of each thread").  The back half — choosing
read-from and coherence edges — lives in :mod:`repro.model.enumerate`.
"""

from dataclasses import dataclass, field, replace

from ..errors import EnumerationError
from ..ptx.instructions import (Add, And, AtomAdd, AtomCas, AtomExch,
                                AtomInc, Bra, Cvt, Label, Ld, Membar, Mov,
                                Setp, St, Xor)
from ..ptx.operands import Addr, Imm, Loc, Reg
from .symbolic import (Constraint, SymCmp, SymConst, SymOp, SymVar, resolve)

#: Default bound on executed instructions per thread (loop unrolling).
DEFAULT_FUEL = 128


@dataclass(frozen=True)
class SymEvent:
    """A symbolic memory event produced by path execution.

    ``index`` is the event's position in its thread's program order.
    ``addr_term``/``value_term`` are symbolic terms; for reads the value
    is always a fresh :class:`SymVar`.  The ``*_sources`` sets hold the
    in-thread indices of the read events this event depends on.
    """

    index: int
    kind: str  # "R" | "W" | "F"
    addr_term: object = None
    value_term: object = None
    cop: str = None
    volatile: bool = False
    scope: str = None
    rmw_group: int = None
    addr_sources: frozenset = frozenset()
    data_sources: frozenset = frozenset()
    ctrl_sources: frozenset = frozenset()
    label: str = ""

    @property
    def var(self):
        """The variable id of a read's value (``None`` for writes/fences)."""
        if self.kind == "R" and isinstance(self.value_term, SymVar):
            return self.value_term.vid
        return None


@dataclass(frozen=True)
class ThreadPath:
    """One complete control-flow path of one thread."""

    tid: int
    events: tuple
    constraints: tuple
    final_regs: dict
    truncated: bool = False

    def reads(self):
        return [event for event in self.events if event.kind == "R"]

    def writes(self):
        return [event for event in self.events if event.kind == "W"]


@dataclass
class _State:
    """Mutable DFS state for one partial path."""

    pc: int = 0
    regs: dict = field(default_factory=dict)  # name -> (term, taints)
    ctrl_taints: frozenset = frozenset()
    events: list = field(default_factory=list)
    constraints: list = field(default_factory=list)
    fuel: int = DEFAULT_FUEL
    rmw_counter: int = 0

    def fork(self):
        twin = _State(pc=self.pc, regs=dict(self.regs),
                      ctrl_taints=self.ctrl_taints,
                      events=list(self.events),
                      constraints=list(self.constraints), fuel=self.fuel,
                      rmw_counter=self.rmw_counter)
        return twin


class _PathEnumerator:
    """Depth-first enumeration of a thread's paths."""

    def __init__(self, program, address_map, reg_init, var_counter, fuel,
                 on_fuel="error"):
        self.program = program
        self.address_map = address_map
        self.reg_init = reg_init
        self.var_counter = var_counter
        self.fuel = fuel
        if on_fuel not in ("error", "discard", "truncate"):
            raise ValueError("on_fuel must be error/discard/truncate")
        self.on_fuel = on_fuel

    # -- operand evaluation -------------------------------------------------

    def _initial_regs(self):
        regs = {}
        for (tid, name), binding in self.reg_init.items():
            if tid != self.program.tid:
                continue
            if isinstance(binding, Loc):
                if binding.name not in self.address_map:
                    raise EnumerationError("reg_init binds unknown location %r"
                                           % binding.name)
                regs[name] = (SymConst(self.address_map[binding.name]), frozenset())
            else:
                regs[name] = (SymConst(binding.value), frozenset())
        return regs

    def _value_of(self, state, operand):
        """Return ``(term, taints)`` for a Reg/Imm operand."""
        if isinstance(operand, Imm):
            return SymConst(operand.value), frozenset()
        if isinstance(operand, Reg):
            return state.regs.get(operand.name, (SymConst(0), frozenset()))
        raise EnumerationError("unsupported value operand %r" % (operand,))

    def _address_of(self, state, addr):
        """Return ``(term, taints)`` for an address operand."""
        if isinstance(addr.base, Loc):
            if addr.base.name not in self.address_map:
                raise EnumerationError("unknown location %r" % addr.base.name)
            return SymConst(self.address_map[addr.base.name] + addr.offset), frozenset()
        term, taints = self._value_of(state, addr.base)
        if addr.offset:
            term = SymOp("add", (term, SymConst(addr.offset)))
        return term, taints

    def _fresh_var(self):
        vid = next(self.var_counter)
        return SymVar(vid)

    # -- main loop ------------------------------------------------------------

    def run(self):
        paths = []
        stack = [_State(regs=self._initial_regs(), fuel=self.fuel)]
        instructions = self.program.instructions
        labels = self.program.labels
        while stack:
            state = stack.pop()
            finished = False
            while not finished:
                if state.pc >= len(instructions):
                    paths.append(self._finish(state, truncated=False))
                    finished = True
                    break
                if state.fuel <= 0:
                    if self.on_fuel == "error":
                        raise EnumerationError(
                            "thread %s exhausted fuel (likely a spin loop); "
                            "use on_fuel='discard' or raise the bound"
                            % self.program.name)
                    if self.on_fuel == "truncate":
                        paths.append(self._finish(state, truncated=True))
                    finished = True
                    break
                instruction = instructions[state.pc]
                state.fuel -= 1
                outcome = self._step(state, instruction, labels, stack)
                if outcome == "pruned":
                    finished = True
        return paths

    def _finish(self, state, truncated):
        final_regs = {name: term for name, (term, _) in state.regs.items()}
        return ThreadPath(tid=self.program.tid, events=tuple(state.events),
                          constraints=tuple(state.constraints),
                          final_regs=final_regs, truncated=truncated)

    # -- single instruction --------------------------------------------------

    def _step(self, state, instruction, labels, stack):
        """Execute one instruction; may push forked states onto ``stack``.

        Returns "ok" normally, "pruned" when the current state died (its
        successors, if any, were pushed on the stack).
        """
        if isinstance(instruction, Label):
            state.pc += 1
            return "ok"

        guard_taints = frozenset()
        if instruction.guard is not None:
            decision = self._guard_fork(state, instruction, stack)
            if decision == "skip":
                state.pc += 1
                return "ok"
            if decision == "forked":
                return "pruned"
            guard_taints = self._predicate_taints(state, instruction.guard.reg)

        if isinstance(instruction, Bra):
            state.pc = labels[instruction.target]
            return "ok"

        handler = self._HANDLERS[type(instruction)]
        handler(self, state, instruction, guard_taints, stack)
        return "ok" if state is not None else "pruned"

    def _predicate_term(self, state, reg_name):
        term, _ = state.regs.get(reg_name, (SymConst(0), frozenset()))
        if isinstance(term, SymCmp):
            return term
        return SymCmp("ne", term, SymConst(0))

    def _predicate_taints(self, state, reg_name):
        _, taints = state.regs.get(reg_name, (SymConst(0), frozenset()))
        return taints

    def _guard_fork(self, state, instruction, stack):
        """Resolve or fork on a predication guard.

        Returns "execute" (this state runs the instruction), "skip" (this
        state skips it), or "forked" (both outcomes pushed onto stack).
        """
        guard = instruction.guard
        term = self._predicate_term(state, guard.reg)
        wanted = not guard.negated
        known = resolve(term, {})
        if known is not None:
            return "execute" if known == wanted else "skip"
        # Unknown predicate: fork into execute / skip paths, each recording
        # its constraint.  Control taints flow to the executed instruction.
        execute_state = state.fork()
        execute_state.constraints.append(Constraint(term, wanted))
        skip_state = state.fork()
        skip_state.constraints.append(Constraint(term, not wanted))
        skip_state.pc += 1
        # Replay this instruction in the execute fork without re-forking:
        # mark the guard as settled by rewriting the instruction.
        settled = replace(instruction, guard=None)
        taints = self._predicate_taints(state, guard.reg)
        if isinstance(settled, Bra):
            execute_state.ctrl_taints = execute_state.ctrl_taints | taints
            execute_state.pc = self.program.labels[settled.target]
        else:
            handler = self._HANDLERS[type(settled)]
            handler(self, execute_state, settled, taints, stack)
        stack.append(execute_state)
        stack.append(skip_state)
        return "forked"

    # -- instruction handlers ---------------------------------------------

    def _emit(self, state, **kwargs):
        kwargs.setdefault("ctrl_sources", frozenset())
        kwargs = dict(kwargs)
        kwargs["ctrl_sources"] = frozenset(kwargs["ctrl_sources"]) | state.ctrl_taints
        event = SymEvent(index=len(state.events), **kwargs)
        state.events.append(event)
        return event

    def _do_ld(self, state, instruction, guard_taints, stack):
        addr_term, addr_taints = self._address_of(state, instruction.addr)
        var = self._fresh_var()
        event = self._emit(
            state, kind="R", addr_term=addr_term, value_term=var,
            cop=None if instruction.volatile else instruction.effective_cop.value,
            volatile=instruction.volatile,
            addr_sources=addr_taints, ctrl_sources=guard_taints,
            label=str(instruction))
        state.regs[instruction.dst.name] = (var, frozenset({event.index}))
        state.pc += 1

    def _do_st(self, state, instruction, guard_taints, stack):
        addr_term, addr_taints = self._address_of(state, instruction.addr)
        value_term, value_taints = self._value_of(state, instruction.src)
        self._emit(
            state, kind="W", addr_term=addr_term, value_term=value_term,
            cop=None if instruction.volatile else instruction.effective_cop.value,
            volatile=instruction.volatile,
            addr_sources=addr_taints, data_sources=value_taints,
            ctrl_sources=guard_taints, label=str(instruction))
        state.pc += 1

    def _do_membar(self, state, instruction, guard_taints, stack):
        self._emit(state, kind="F", scope=instruction.scope.value,
                   ctrl_sources=guard_taints, label=str(instruction))
        state.pc += 1

    def _do_atom_cas(self, state, instruction, guard_taints, stack):
        addr_term, addr_taints = self._address_of(state, instruction.addr)
        cmp_term, cmp_taints = self._value_of(state, instruction.cmp)
        new_term, new_taints = self._value_of(state, instruction.new)
        var = self._fresh_var()
        group = state.rmw_counter
        state.rmw_counter += 1
        read = self._emit(
            state, kind="R", addr_term=addr_term, value_term=var,
            rmw_group=group, addr_sources=addr_taints,
            ctrl_sources=guard_taints, label=str(instruction))
        state.regs[instruction.dst.name] = (var, frozenset({read.index}))
        condition = SymCmp("eq", var, cmp_term)
        known = resolve(condition, {})
        success = state if known is not False else (state.fork() if known is None else None)
        failure = state.fork() if known is None else (state if known is False else None)
        if success is not None:
            if known is None:
                success.constraints.append(Constraint(condition, True))
            write_ctrl = guard_taints | cmp_taints | frozenset({read.index})
            success.events.append(SymEvent(
                index=len(success.events), kind="W", addr_term=addr_term,
                value_term=new_term, rmw_group=group,
                addr_sources=addr_taints, data_sources=new_taints,
                ctrl_sources=write_ctrl | success.ctrl_taints,
                label=str(instruction)))
            success.pc += 1
        if failure is not None:
            if known is None:
                failure.constraints.append(Constraint(condition, False))
            failure.pc += 1
        if known is None:
            stack.append(failure)
            # `state` (success branch) continues in the caller's loop.

    def _do_atom_exch(self, state, instruction, guard_taints, stack):
        addr_term, addr_taints = self._address_of(state, instruction.addr)
        new_term, new_taints = self._value_of(state, instruction.src)
        var = self._fresh_var()
        group = state.rmw_counter
        state.rmw_counter += 1
        read = self._emit(
            state, kind="R", addr_term=addr_term, value_term=var,
            rmw_group=group, addr_sources=addr_taints,
            ctrl_sources=guard_taints, label=str(instruction))
        state.regs[instruction.dst.name] = (var, frozenset({read.index}))
        self._emit(
            state, kind="W", addr_term=addr_term, value_term=new_term,
            rmw_group=group, addr_sources=addr_taints,
            data_sources=new_taints, ctrl_sources=guard_taints,
            label=str(instruction))
        state.pc += 1

    def _do_atom_inc(self, state, instruction, guard_taints, stack):
        self._do_fetch_op(state, instruction, guard_taints, SymConst(1))

    def _do_atom_add(self, state, instruction, guard_taints, stack):
        term, taints = self._value_of(state, instruction.src)
        self._do_fetch_op(state, instruction, guard_taints, term, taints)

    def _do_fetch_op(self, state, instruction, guard_taints, operand_term,
                     operand_taints=frozenset()):
        addr_term, addr_taints = self._address_of(state, instruction.addr)
        var = self._fresh_var()
        group = state.rmw_counter
        state.rmw_counter += 1
        read = self._emit(
            state, kind="R", addr_term=addr_term, value_term=var,
            rmw_group=group, addr_sources=addr_taints,
            ctrl_sources=guard_taints, label=str(instruction))
        state.regs[instruction.dst.name] = (var, frozenset({read.index}))
        self._emit(
            state, kind="W", addr_term=addr_term,
            value_term=SymOp("add", (var, operand_term)), rmw_group=group,
            addr_sources=addr_taints,
            data_sources=operand_taints | frozenset({read.index}),
            ctrl_sources=guard_taints, label=str(instruction))
        state.pc += 1

    def _do_mov(self, state, instruction, guard_taints, stack):
        if isinstance(instruction.src, Loc):
            if instruction.src.name not in self.address_map:
                raise EnumerationError("unknown location %r" % instruction.src.name)
            state.regs[instruction.dst.name] = (
                SymConst(self.address_map[instruction.src.name]), frozenset())
        else:
            state.regs[instruction.dst.name] = self._value_of(state, instruction.src)
        state.pc += 1

    def _do_alu(self, state, instruction, guard_taints, stack):
        a_term, a_taints = self._value_of(state, instruction.a)
        b_term, b_taints = self._value_of(state, instruction.b)
        term = SymOp(instruction.opcode, (a_term, b_term))
        known = resolve(term, {})
        if known is not None:
            term = SymConst(known)
        state.regs[instruction.dst.name] = (term, a_taints | b_taints)
        state.pc += 1

    def _do_cvt(self, state, instruction, guard_taints, stack):
        term, taints = self._value_of(state, instruction.src)
        state.regs[instruction.dst.name] = (term, taints)
        state.pc += 1

    def _do_setp(self, state, instruction, guard_taints, stack):
        a_term, a_taints = self._value_of(state, instruction.a)
        b_term, b_taints = self._value_of(state, instruction.b)
        state.regs[instruction.dst.name] = (
            SymCmp(instruction.cmp, a_term, b_term), a_taints | b_taints)
        state.pc += 1

    _HANDLERS = {
        Ld: _do_ld,
        St: _do_st,
        Membar: _do_membar,
        AtomCas: _do_atom_cas,
        AtomExch: _do_atom_exch,
        AtomInc: _do_atom_inc,
        AtomAdd: _do_atom_add,
        Mov: _do_mov,
        Add: _do_alu,
        And: _do_alu,
        Xor: _do_alu,
        Cvt: _do_cvt,
        Setp: _do_setp,
    }


def enumerate_thread_paths(program, address_map, reg_init, var_counter,
                           fuel=DEFAULT_FUEL, on_fuel="error"):
    """Enumerate all control-flow paths of ``program``.

    ``var_counter`` is a shared iterator of fresh variable ids (so that
    variables are unique across threads).  Returns a list of
    :class:`ThreadPath`.
    """
    enumerator = _PathEnumerator(program, address_map, reg_init, var_counter,
                                 fuel, on_fuel)
    return enumerator.run()
