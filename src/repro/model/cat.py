"""An interpreter for the ``.cat`` modelling language (Sec. 5.2.2).

The paper expresses its PTX model in the ``.cat`` format of Alglave et
al.'s *herd* tool: a small language for declaring derived relations and
acyclicity/emptiness checks over candidate executions.  This module
implements the fragment the paper uses, plus the closure and sequencing
operators needed for the comparison models (SC, TSO, plain RMO):

* ``let name = expr`` and single-parameter functions
  ``let name(param) = expr`` (Fig. 15 line 7: ``rmo(fence)``);
* union ``|``, intersection ``&``, difference ``\\``, sequence ``;``;
* postfix ``+`` (transitive closure), ``?`` (reflexive closure),
  ``^-1`` (inverse);
* endpoint filters ``WW(r)``, ``WR(r)``, ``RW(r)``, ``RR(r)`` (and the
  ``M`` wildcards);
* checks ``acyclic``/``irreflexive``/``empty`` with ``as name``;
* ``(* ... *)`` and ``//`` comments.

Primitive relation names (``rf``, ``co``, ``fr``, ``po``, ``po-loc``,
``addr``, ``data``, ``ctrl``, ``membar.cta`` …, ``cta``, ``gl``, ``sys``,
``rmw`` …) resolve through
:meth:`repro.model.execution.CandidateExecution.relation`.
"""

import re
from dataclasses import dataclass

from ..errors import CatEvalError, CatSyntaxError
from .relation import Relation

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_SPEC = [
    ("COMMENT", r"\(\*.*?\*\)"),
    ("LINECOMMENT", r"//[^\n]*"),
    ("INVERSE", r"\^-1"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_.\-]*"),
    ("ZERO", r"0"),
    ("EQUALS", r"="),
    ("LPAR", r"\("),
    ("RPAR", r"\)"),
    ("UNION", r"\|"),
    ("INTER", r"&"),
    ("DIFF", r"\\"),
    ("SEQ", r";"),
    ("PLUS", r"\+"),
    ("STAR", r"\*"),
    ("OPT", r"\?"),
    ("WS", r"[ \t\r\n]+"),
]
_TOKEN_RE = re.compile("|".join("(?P<%s>%s)" % (name, pattern)
                                for name, pattern in _TOKEN_SPEC), re.DOTALL)

_KEYWORDS = {"let", "acyclic", "irreflexive", "empty", "as", "and", "show",
             "unshow", "include", "rec"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(text):
    tokens, position = [], 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise CatSyntaxError("cannot tokenize .cat text at %r"
                                 % text[position:position + 20])
        position = match.end()
        kind = match.lastgroup
        if kind in ("WS", "COMMENT", "LINECOMMENT"):
            continue
        value = match.group()
        if kind == "NAME" and value in _KEYWORDS:
            kind = value.upper()
        tokens.append(_Token(kind, value, match.start()))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Name:
    name: str


@dataclass(frozen=True)
class Empty:
    pass


@dataclass(frozen=True)
class Binary:
    op: str  # "|", "&", "\\", ";"
    left: object
    right: object


@dataclass(frozen=True)
class Postfix:
    op: str  # "+", "*", "?", "^-1"
    body: object


@dataclass(frozen=True)
class Call:
    function: str
    argument: object


@dataclass(frozen=True)
class Let:
    name: str
    parameter: str  # None for plain bindings
    body: object


@dataclass(frozen=True)
class Check:
    kind: str  # "acyclic" | "irreflexive" | "empty"
    body: object
    name: str


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return _Token("EOF", "", -1)

    def take(self, kind=None):
        token = self.peek()
        if kind is not None and token.kind != kind:
            raise CatSyntaxError("expected %s, got %r" % (kind, token.text))
        self.position += 1
        return token

    def parse_model(self):
        statements = []
        while self.peek().kind != "EOF":
            token = self.peek()
            if token.kind == "LET":
                statements.extend(self.parse_let())
            elif token.kind in ("ACYCLIC", "IRREFLEXIVE", "EMPTY"):
                statements.append(self.parse_check())
            elif token.kind in ("SHOW", "UNSHOW", "INCLUDE"):
                self.take()
                self.take()  # argument; purely cosmetic in herd
            else:
                raise CatSyntaxError("unexpected token %r" % token.text)
        return statements

    def parse_let(self):
        self.take("LET")
        if self.peek().kind == "REC":
            raise CatSyntaxError("recursive let is not supported")
        bindings = [self.parse_binding()]
        while self.peek().kind == "AND":
            self.take()
            bindings.append(self.parse_binding())
        return bindings

    def parse_binding(self):
        name = self.take("NAME").text
        parameter = None
        if self.peek().kind == "LPAR":
            self.take()
            parameter = self.take("NAME").text
            self.take("RPAR")
        self.take("EQUALS")
        body = self.parse_expr()
        return Let(name, parameter, body)

    def parse_check(self):
        kind = self.take().kind.lower()
        body = self.parse_expr()
        name = None
        if self.peek().kind == "AS":
            self.take()
            name = self.take("NAME").text
        return Check(kind, body, name or ("%s-check-%d" % (kind, self.position)))

    # Precedence: | lowest, then ;, then &, then \, then postfix, then atoms.

    def parse_expr(self):
        left = self.parse_seq()
        while self.peek().kind == "UNION":
            self.take()
            left = Binary("|", left, self.parse_seq())
        return left

    def parse_seq(self):
        left = self.parse_inter()
        while self.peek().kind == "SEQ":
            self.take()
            left = Binary(";", left, self.parse_inter())
        return left

    def parse_inter(self):
        left = self.parse_diff()
        while self.peek().kind == "INTER":
            self.take()
            left = Binary("&", left, self.parse_diff())
        return left

    def parse_diff(self):
        left = self.parse_postfix()
        while self.peek().kind == "DIFF":
            self.take()
            left = Binary("\\", left, self.parse_postfix())
        return left

    def parse_postfix(self):
        body = self.parse_atom()
        while self.peek().kind in ("PLUS", "STAR", "OPT", "INVERSE"):
            token = self.take()
            op = {"PLUS": "+", "STAR": "*", "OPT": "?", "INVERSE": "^-1"}[token.kind]
            body = Postfix(op, body)
        return body

    def parse_atom(self):
        token = self.peek()
        if token.kind == "LPAR":
            self.take()
            inner = self.parse_expr()
            self.take("RPAR")
            return inner
        if token.kind == "ZERO":
            self.take()
            return Empty()
        if token.kind == "NAME":
            self.take()
            if self.peek().kind == "LPAR":
                self.take()
                argument = self.parse_expr()
                self.take("RPAR")
                return Call(token.text, argument)
            return Name(token.text)
        raise CatSyntaxError("unexpected token %r in expression" % token.text)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

_FILTER_KINDS = {"W": lambda e: e.is_write, "R": lambda e: e.is_read,
                 "M": lambda e: e.is_access, "F": lambda e: e.is_fence}

_FILTERS = {a + b: (  # WW, WR, RW, RR, WM, MW, RM, MR, MM, ...
    _FILTER_KINDS[a], _FILTER_KINDS[b])
    for a in _FILTER_KINDS for b in _FILTER_KINDS}


@dataclass(frozen=True)
class _Closure:
    """A user-defined single-parameter relation function."""

    parameter: str
    body: object
    env: dict


class _Evaluator:
    def __init__(self, execution, env):
        self.execution = execution
        self.env = env

    def eval(self, node, local=None):
        local = local or {}
        if isinstance(node, Empty):
            return Relation.empty()
        if isinstance(node, Name):
            return self.lookup(node.name, local)
        if isinstance(node, Binary):
            left = self.eval(node.left, local)
            right = self.eval(node.right, local)
            if node.op == "|":
                return left | right
            if node.op == "&":
                return left & right
            if node.op == "\\":
                return left - right
            if node.op == ";":
                return left >> right
            raise CatEvalError("unknown operator %r" % node.op)
        if isinstance(node, Postfix):
            body = self.eval(node.body, local)
            if node.op == "+":
                return body.transitive_closure()
            if node.op == "*":
                return body.transitive_closure().reflexive_closure(
                    self.execution.events)
            if node.op == "?":
                return body.reflexive_closure(self.execution.events)
            if node.op == "^-1":
                return ~body
            raise CatEvalError("unknown postfix %r" % node.op)
        if isinstance(node, Call):
            return self.call(node.function, node.argument, local)
        raise CatEvalError("cannot evaluate %r" % (node,))

    def lookup(self, name, local):
        if name in local:
            value = local[name]
        elif name in self.env:
            value = self.env[name]
        else:
            return self.execution.relation(name)
        if isinstance(value, _Closure):
            raise CatEvalError("relation function %r used without argument" % name)
        return value

    def call(self, function, argument_node, local):
        if function in _FILTERS:
            domain_pred, range_pred = _FILTERS[function]
            return self.eval(argument_node, local).restrict(domain_pred, range_pred)
        target = local.get(function, self.env.get(function))
        if isinstance(target, _Closure):
            argument = self.eval(argument_node, local)
            inner = dict(target.env)
            inner[target.parameter] = argument
            return self.eval(target.body, inner)
        raise CatEvalError("unknown function %r" % function)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one model check on one execution."""

    name: str
    kind: str
    passed: bool
    cycle: tuple  # offending cycle/pairs when failed (possibly empty)

    def __str__(self):
        status = "PASS" if self.passed else "FAIL"
        return "%s %s (%s)" % (status, self.name, self.kind)


class CatModel:
    """A compiled ``.cat`` model.

    ``allows(execution)`` is the paper's partition: an execution is
    allowed iff every check passes (Sec. 5.2).
    """

    def __init__(self, text, name=""):
        self.text = text
        self.name = name
        self.statements = _Parser(tokenize(text)).parse_model()
        self.check_names = [s.name for s in self.statements if isinstance(s, Check)]

    def evaluate(self, execution):
        """Run all checks; returns a list of :class:`CheckResult`."""
        env = {}
        evaluator = _Evaluator(execution, env)
        results = []
        for statement in self.statements:
            if isinstance(statement, Let):
                if statement.parameter is None:
                    env[statement.name] = evaluator.eval(statement.body)
                else:
                    env[statement.name] = _Closure(statement.parameter,
                                                   statement.body, dict(env))
            else:
                relation = evaluator.eval(statement.body)
                results.append(self._run_check(statement, relation))
        return results

    @staticmethod
    def _run_check(check, relation):
        if check.kind == "acyclic":
            cycle = relation.find_cycle()
            return CheckResult(check.name, check.kind, cycle is None,
                               tuple(cycle or ()))
        if check.kind == "irreflexive":
            loops = [a for a, b in relation if a is b]
            return CheckResult(check.name, check.kind, not loops, tuple(loops))
        if check.kind == "empty":
            pairs = tuple(relation)
            return CheckResult(check.name, check.kind, not pairs, pairs[:4])
        raise CatEvalError("unknown check kind %r" % check.kind)

    def allows(self, execution):
        return all(result.passed for result in self.evaluate(execution))

    def failed_checks(self, execution):
        return [result for result in self.evaluate(execution) if not result.passed]

    def relations(self, execution):
        """Evaluate every ``let`` binding (for inspection/debugging)."""
        env = {}
        evaluator = _Evaluator(execution, env)
        out = {}
        for statement in self.statements:
            if isinstance(statement, Let):
                if statement.parameter is None:
                    env[statement.name] = evaluator.eval(statement.body)
                    out[statement.name] = env[statement.name]
                else:
                    env[statement.name] = _Closure(statement.parameter,
                                                   statement.body, dict(env))
        return out

    def __repr__(self):
        return "CatModel(%s, %d checks)" % (self.name or "<anonymous>",
                                            len(self.check_names))
