"""An interpreter for the ``.cat`` modelling language (Sec. 5.2.2).

The paper expresses its PTX model in the ``.cat`` format of Alglave et
al.'s *herd* tool: a small language for declaring derived relations and
acyclicity/emptiness checks over candidate executions.  This module
implements the fragment the paper uses, plus the closure and sequencing
operators needed for the comparison models (SC, TSO, plain RMO):

* ``let name = expr`` and single-parameter functions
  ``let name(param) = expr`` (Fig. 15 line 7: ``rmo(fence)``);
* union ``|``, intersection ``&``, difference ``\\``, sequence ``;``;
* postfix ``+`` (transitive closure), ``?`` (reflexive closure),
  ``^-1`` (inverse);
* endpoint filters ``WW(r)``, ``WR(r)``, ``RW(r)``, ``RR(r)`` (and the
  ``M`` wildcards);
* checks ``acyclic``/``irreflexive``/``empty`` with ``as name``;
* ``(* ... *)`` and ``//`` comments.

Primitive relation names (``rf``, ``co``, ``fr``, ``po``, ``po-loc``,
``addr``, ``data``, ``ctrl``, ``membar.cta`` …, ``cta``, ``gl``, ``sys``,
``rmw`` …) resolve through
:meth:`repro.model.execution.CandidateExecution.relation`.
"""

import re
from dataclasses import dataclass

from ..errors import CatEvalError, CatSyntaxError
from .relation import Relation

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_SPEC = [
    ("COMMENT", r"\(\*.*?\*\)"),
    ("LINECOMMENT", r"//[^\n]*"),
    ("INVERSE", r"\^-1"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_.\-]*"),
    ("ZERO", r"0"),
    ("EQUALS", r"="),
    ("LPAR", r"\("),
    ("RPAR", r"\)"),
    ("UNION", r"\|"),
    ("INTER", r"&"),
    ("DIFF", r"\\"),
    ("SEQ", r";"),
    ("PLUS", r"\+"),
    ("STAR", r"\*"),
    ("OPT", r"\?"),
    ("WS", r"[ \t\r\n]+"),
]
_TOKEN_RE = re.compile("|".join("(?P<%s>%s)" % (name, pattern)
                                for name, pattern in _TOKEN_SPEC), re.DOTALL)

_KEYWORDS = {"let", "acyclic", "irreflexive", "empty", "as", "and", "show",
             "unshow", "include", "rec"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(text):
    tokens, position = [], 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise CatSyntaxError("cannot tokenize .cat text at %r"
                                 % text[position:position + 20])
        position = match.end()
        kind = match.lastgroup
        if kind in ("WS", "COMMENT", "LINECOMMENT"):
            continue
        value = match.group()
        if kind == "NAME" and value in _KEYWORDS:
            kind = value.upper()
        tokens.append(_Token(kind, value, match.start()))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Name:
    name: str


@dataclass(frozen=True)
class Empty:
    pass


@dataclass(frozen=True)
class Binary:
    op: str  # "|", "&", "\\", ";"
    left: object
    right: object


@dataclass(frozen=True)
class Postfix:
    op: str  # "+", "*", "?", "^-1"
    body: object


@dataclass(frozen=True)
class Call:
    function: str
    argument: object


@dataclass(frozen=True)
class Let:
    name: str
    parameter: str  # None for plain bindings
    body: object


@dataclass(frozen=True)
class Check:
    kind: str  # "acyclic" | "irreflexive" | "empty"
    body: object
    name: str


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return _Token("EOF", "", -1)

    def take(self, kind=None):
        token = self.peek()
        if kind is not None and token.kind != kind:
            raise CatSyntaxError("expected %s, got %r" % (kind, token.text))
        self.position += 1
        return token

    def parse_model(self):
        statements = []
        while self.peek().kind != "EOF":
            token = self.peek()
            if token.kind == "LET":
                statements.extend(self.parse_let())
            elif token.kind in ("ACYCLIC", "IRREFLEXIVE", "EMPTY"):
                statements.append(self.parse_check())
            elif token.kind in ("SHOW", "UNSHOW", "INCLUDE"):
                self.take()
                self.take()  # argument; purely cosmetic in herd
            else:
                raise CatSyntaxError("unexpected token %r" % token.text)
        return statements

    def parse_let(self):
        self.take("LET")
        if self.peek().kind == "REC":
            raise CatSyntaxError("recursive let is not supported")
        bindings = [self.parse_binding()]
        while self.peek().kind == "AND":
            self.take()
            bindings.append(self.parse_binding())
        return bindings

    def parse_binding(self):
        name = self.take("NAME").text
        parameter = None
        if self.peek().kind == "LPAR":
            self.take()
            parameter = self.take("NAME").text
            self.take("RPAR")
        self.take("EQUALS")
        body = self.parse_expr()
        return Let(name, parameter, body)

    def parse_check(self):
        kind = self.take().kind.lower()
        body = self.parse_expr()
        name = None
        if self.peek().kind == "AS":
            self.take()
            name = self.take("NAME").text
        return Check(kind, body, name or ("%s-check-%d" % (kind, self.position)))

    # Precedence: | lowest, then ;, then &, then \, then postfix, then atoms.

    def parse_expr(self):
        left = self.parse_seq()
        while self.peek().kind == "UNION":
            self.take()
            left = Binary("|", left, self.parse_seq())
        return left

    def parse_seq(self):
        left = self.parse_inter()
        while self.peek().kind == "SEQ":
            self.take()
            left = Binary(";", left, self.parse_inter())
        return left

    def parse_inter(self):
        left = self.parse_diff()
        while self.peek().kind == "INTER":
            self.take()
            left = Binary("&", left, self.parse_diff())
        return left

    def parse_diff(self):
        left = self.parse_postfix()
        while self.peek().kind == "DIFF":
            self.take()
            left = Binary("\\", left, self.parse_postfix())
        return left

    def parse_postfix(self):
        body = self.parse_atom()
        while self.peek().kind in ("PLUS", "STAR", "OPT", "INVERSE"):
            token = self.take()
            op = {"PLUS": "+", "STAR": "*", "OPT": "?", "INVERSE": "^-1"}[token.kind]
            body = Postfix(op, body)
        return body

    def parse_atom(self):
        token = self.peek()
        if token.kind == "LPAR":
            self.take()
            inner = self.parse_expr()
            self.take("RPAR")
            return inner
        if token.kind == "ZERO":
            self.take()
            return Empty()
        if token.kind == "NAME":
            self.take()
            if self.peek().kind == "LPAR":
                self.take()
                argument = self.parse_expr()
                self.take("RPAR")
                return Call(token.text, argument)
            return Name(token.text)
        raise CatSyntaxError("unexpected token %r in expression" % token.text)


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

_FILTER_KINDS = {"W": lambda e: e.is_write, "R": lambda e: e.is_read,
                 "M": lambda e: e.is_access, "F": lambda e: e.is_fence}

_FILTERS = {a + b: (  # WW, WR, RW, RR, WM, MW, RM, MR, MM, ...
    _FILTER_KINDS[a], _FILTER_KINDS[b])
    for a in _FILTER_KINDS for b in _FILTER_KINDS}


@dataclass(frozen=True)
class _Closure:
    """A user-defined single-parameter relation function."""

    parameter: str
    body: object
    env: dict


class _Evaluator:
    def __init__(self, execution, env):
        self.execution = execution
        self.env = env

    def eval(self, node, local=None):
        local = local or {}
        if isinstance(node, Empty):
            return Relation.empty()
        if isinstance(node, Name):
            return self.lookup(node.name, local)
        if isinstance(node, Binary):
            left = self.eval(node.left, local)
            right = self.eval(node.right, local)
            if node.op == "|":
                return left | right
            if node.op == "&":
                return left & right
            if node.op == "\\":
                return left - right
            if node.op == ";":
                return left >> right
            raise CatEvalError("unknown operator %r" % node.op)
        if isinstance(node, Postfix):
            body = self.eval(node.body, local)
            if node.op == "+":
                return body.transitive_closure()
            if node.op == "*":
                return body.transitive_closure().reflexive_closure(
                    self.execution.events)
            if node.op == "?":
                return body.reflexive_closure(self.execution.events)
            if node.op == "^-1":
                return ~body
            raise CatEvalError("unknown postfix %r" % node.op)
        if isinstance(node, Call):
            return self.call(node.function, node.argument, local)
        raise CatEvalError("cannot evaluate %r" % (node,))

    def lookup(self, name, local):
        if name in local:
            value = local[name]
        elif name in self.env:
            value = self.env[name]
        else:
            return self.execution.relation(name)
        if isinstance(value, _Closure):
            raise CatEvalError("relation function %r used without argument" % name)
        return value

    def call(self, function, argument_node, local):
        if function in _FILTERS:
            domain_pred, range_pred = _FILTERS[function]
            return self.eval(argument_node, local).restrict(domain_pred, range_pred)
        target = local.get(function, self.env.get(function))
        if isinstance(target, _Closure):
            argument = self.eval(argument_node, local)
            inner = dict(target.env)
            inner[target.parameter] = argument
            return self.eval(target.body, inner)
        raise CatEvalError("unknown function %r" % function)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one model check on one execution."""

    name: str
    kind: str
    passed: bool
    cycle: tuple  # offending cycle/pairs when failed (possibly empty)

    def __str__(self):
        status = "PASS" if self.passed else "FAIL"
        return "%s %s (%s)" % (status, self.name, self.kind)


class CatModel:
    """A parsed ``.cat`` model (the reference interpreter).

    ``allows(execution)`` is the paper's partition: an execution is
    allowed iff every check passes (Sec. 5.2).  The fast engine compiles
    this once through :func:`compile_model` instead of re-walking the
    let-bindings per execution.
    """

    def __init__(self, text, name=""):
        self.text = text
        self.name = name
        self.statements = _Parser(tokenize(text)).parse_model()
        self.check_names = [s.name for s in self.statements if isinstance(s, Check)]

    def evaluate(self, execution):
        """Run all checks; returns a list of :class:`CheckResult`."""
        env = {}
        evaluator = _Evaluator(execution, env)
        results = []
        for statement in self.statements:
            if isinstance(statement, Let):
                if statement.parameter is None:
                    env[statement.name] = evaluator.eval(statement.body)
                else:
                    env[statement.name] = _Closure(statement.parameter,
                                                   statement.body, dict(env))
            else:
                relation = evaluator.eval(statement.body)
                results.append(self._run_check(statement, relation))
        return results

    @staticmethod
    def _run_check(check, relation):
        if check.kind == "acyclic":
            cycle = relation.find_cycle()
            return CheckResult(check.name, check.kind, cycle is None,
                               tuple(cycle or ()))
        if check.kind == "irreflexive":
            loops = [a for a, b in relation if a is b]
            return CheckResult(check.name, check.kind, not loops, tuple(loops))
        if check.kind == "empty":
            pairs = tuple(relation)
            return CheckResult(check.name, check.kind, not pairs, pairs[:4])
        raise CatEvalError("unknown check kind %r" % check.kind)

    def allows(self, execution):
        return all(result.passed for result in self.evaluate(execution))

    def failed_checks(self, execution):
        return [result for result in self.evaluate(execution) if not result.passed]

    def relations(self, execution):
        """Evaluate every ``let`` binding (for inspection/debugging)."""
        env = {}
        evaluator = _Evaluator(execution, env)
        out = {}
        for statement in self.statements:
            if isinstance(statement, Let):
                if statement.parameter is None:
                    env[statement.name] = evaluator.eval(statement.body)
                    out[statement.name] = env[statement.name]
                else:
                    env[statement.name] = _Closure(statement.parameter,
                                                   statement.body, dict(env))
        return out

    def __repr__(self):
        return "CatModel(%s, %d checks)" % (self.name or "<anonymous>",
                                            len(self.check_names))


# ---------------------------------------------------------------------------
# Compile-once fast path: inlined checks over indexed relations.
#
# The reference interpreter above re-evaluates every let-binding for every
# candidate execution.  ``compile_model`` performs, once per model:
#
# * let-binding resolution — every check body is rewritten into a closed
#   expression over primitive relation names only (single-parameter
#   relation functions are beta-reduced at compile time);
# * constant folding — ``0``-absorbing operators collapse;
# * cost ordering — checks are sorted cheapest-first so ``allows`` fails
#   fast on the common forbidden executions;
# * monotonicity analysis — checks whose bodies can only *grow* as the
#   communication relations (rf/co/fr) grow are marked ``prune_safe``:
#   once such a check fails on a partial rf/co assignment, every
#   completion fails it too, so the enumerator may cut the branch
#   (:func:`repro.model.enumerate.enumerate_allowed`).
#
# Evaluation then runs over :class:`~repro.model.relation.IndexedRelation`
# bitmasks instead of pair sets, with structural memoisation so shared
# subterms (e.g. an inlined ``com``) are computed once per execution.
# ---------------------------------------------------------------------------

#: Primitive relations that never change while rf choices and coherence
#: prefixes are extended: fixed by the test's paths alone.  Everything
#: else (rf/co/fr and their derivatives, plus the address-resolution
#: dependent ``loc``/``po-loc``) grows monotonically during enumeration.
_FIXED_PRIMITIVES = frozenset([
    "po", "addr", "data", "ctrl", "dp", "rmw",
    "membar.cta", "membar.gl", "membar.sys",
    "cta", "gl", "sys", "int", "ext", "id", "0",
])

#: Endpoint-filter functions resolved to (domain letter, range letter).
_INDEXED_FILTERS = {name: (name[0], name[1]) for name in _FILTERS}


@dataclass(frozen=True)
class _CompiledFunction:
    """A single-parameter relation function awaiting beta-reduction."""

    parameter: str
    body: object
    env: dict  # snapshot of the defining environment (name -> inlined AST)


def _inline(node, local, live):
    """Rewrite ``node`` with every let-bound name replaced by its
    (already inlined) definition; beta-reduce function calls.

    Lookup mirrors the reference ``_Evaluator.lookup`` exactly: the
    function-local scope (definition-time snapshot plus parameter)
    first, then the *live* top-level environment as of the statement
    being compiled — so a name bound after a function's definition
    still resolves to its binding, not to a primitive.
    """
    if isinstance(node, (Empty,)):
        return node
    if isinstance(node, Name):
        value = local.get(node.name)
        if value is None:
            value = live.get(node.name)
        if value is None:
            return node  # a primitive relation, resolved per execution
        if isinstance(value, _CompiledFunction):
            raise CatEvalError("relation function %r used without argument"
                               % node.name)
        return value
    if isinstance(node, Binary):
        return Binary(node.op, _inline(node.left, local, live),
                      _inline(node.right, local, live))
    if isinstance(node, Postfix):
        return Postfix(node.op, _inline(node.body, local, live))
    if isinstance(node, Call):
        if node.function in _FILTERS:
            return Call(node.function, _inline(node.argument, local, live))
        target = local.get(node.function)
        if target is None:
            target = live.get(node.function)
        if isinstance(target, _CompiledFunction):
            inner = dict(target.env)
            inner[target.parameter] = _inline(node.argument, local, live)
            return _inline(target.body, inner, live)
        raise CatEvalError("unknown function %r" % node.function)
    raise CatEvalError("cannot inline %r" % (node,))


def _fold(node):
    """Constant-fold ``0``-absorbing operators after inlining."""
    if isinstance(node, Binary):
        left, right = _fold(node.left), _fold(node.right)
        left_empty = isinstance(left, Empty)
        right_empty = isinstance(right, Empty)
        if node.op == "|":
            if left_empty:
                return right
            if right_empty:
                return left
        elif node.op == "&":
            if left_empty or right_empty:
                return Empty()
        elif node.op == "\\":
            if left_empty:
                return Empty()
            if right_empty:
                return left
        elif node.op == ";":
            if left_empty or right_empty:
                return Empty()
        return Binary(node.op, left, right)
    if isinstance(node, Postfix):
        body = _fold(node.body)
        if isinstance(body, Empty) and node.op in ("+", "^-1"):
            return Empty()
        return Postfix(node.op, body)
    if isinstance(node, Call):
        argument = _fold(node.argument)
        if isinstance(argument, Empty):
            return Empty()
        return Call(node.function, argument)
    return node


def _cost(node):
    """Static cost estimate used to order checks cheapest-first."""
    if isinstance(node, (Name, Empty)):
        return 1
    if isinstance(node, Binary):
        return _cost(node.left) + _cost(node.right) + (3 if node.op == ";"
                                                       else 1)
    if isinstance(node, Postfix):
        return _cost(node.body) + (6 if node.op in ("+", "*") else 1)
    if isinstance(node, Call):
        return _cost(node.argument) + 1
    return 1


def _is_fixed(node):
    """True when the expression never changes during enumeration."""
    if isinstance(node, Empty):
        return True
    if isinstance(node, Name):
        return node.name in _FIXED_PRIMITIVES
    if isinstance(node, Binary):
        return _is_fixed(node.left) and _is_fixed(node.right)
    if isinstance(node, Postfix):
        return _is_fixed(node.body)
    if isinstance(node, Call):
        return _is_fixed(node.argument)
    return False


def _is_monotone(node):
    """True when the expression can only grow as rf/co/fr grow.

    Union, intersection, composition, closures, inverse and endpoint
    filters are all monotone in their operands; difference is monotone
    only when its right operand is fixed (a growing subtrahend could
    *remove* pairs later, invalidating an early failure).
    """
    if isinstance(node, (Name, Empty)):
        return True
    if isinstance(node, Binary):
        if node.op == "\\":
            return _is_monotone(node.left) and _is_fixed(node.right)
        return _is_monotone(node.left) and _is_monotone(node.right)
    if isinstance(node, Postfix):
        return _is_monotone(node.body)
    if isinstance(node, Call):
        return _is_monotone(node.argument)
    return False


class _Expr:
    """One interned node of a compiled check expression.

    The compile pass hash-conses the inlined ASTs into a DAG of these:
    structurally identical subterms (e.g. ``com`` inlined into three
    checks) share a node and therefore a ``slot`` in the evaluation
    memos — so each distinct subterm is computed at most once per view,
    with plain list indexing instead of structural hashing on the hot
    path.  ``fixed`` marks subterms built only from relations that never
    change during enumeration; their results are cached per *skeleton*
    (across every partial assignment of one path combination) rather
    than per view.
    """

    __slots__ = ("op", "a", "b", "slot", "fixed")

    def __init__(self, op, a=None, b=None, slot=0, fixed=False):
        self.op = op      # "name"|"empty"|"|"|"&"|"\\"|";"|"+"|"*"|"?"|"inv"|"filter"
        self.a = a        # operand / primitive name / (domain, range) letters
        self.b = b
        self.slot = slot
        self.fixed = fixed

    def __getstate__(self):
        return (self.op, self.a, self.b, self.slot, self.fixed)

    def __setstate__(self, state):
        self.op, self.a, self.b, self.slot, self.fixed = state


class _Interner:
    """Hash-consing table turning inlined ASTs into shared ``_Expr`` DAGs."""

    def __init__(self):
        self.table = {}
        self.exprs = []

    def intern(self, op, a=None, b=None, fixed=False):
        key = (op,
               a if isinstance(a, (str, tuple, type(None))) else id(a),
               b if isinstance(b, (str, type(None))) else id(b))
        expr = self.table.get(key)
        if expr is None:
            expr = _Expr(op, a, b, slot=len(self.exprs), fixed=fixed)
            self.table[key] = expr
            self.exprs.append(expr)
        return expr

    def compile(self, node):
        """Lower an inlined/folded AST node into the shared DAG."""
        if isinstance(node, Empty):
            return self.intern("empty", fixed=True)
        if isinstance(node, Name):
            return self.intern("name", node.name,
                               fixed=node.name in _FIXED_PRIMITIVES)
        if isinstance(node, Binary):
            left = self.compile(node.left)
            right = self.compile(node.right)
            return self.intern(node.op, left, right,
                               fixed=left.fixed and right.fixed)
        if isinstance(node, Postfix):
            body = self.compile(node.body)
            op = "inv" if node.op == "^-1" else node.op
            return self.intern(op, body, fixed=body.fixed)
        if isinstance(node, Call):
            body = self.compile(node.argument)
            letters = _INDEXED_FILTERS[node.function]
            return self.intern("filter", letters, body, fixed=body.fixed)
        raise CatEvalError("cannot compile %r" % (node,))


class CompiledCheck:
    """One model check with its lowered body and compile-time metadata."""

    __slots__ = ("name", "kind", "expr", "cost", "prune_safe")

    def __init__(self, name, kind, expr, cost, prune_safe):
        self.name = name
        self.kind = kind            # "acyclic" | "irreflexive" | "empty"
        self.expr = expr            # interned _Expr DAG root
        self.cost = cost            # static cost estimate (ordering key)
        self.prune_safe = prune_safe  # may reject partial rf/co assignments

    def __getstate__(self):
        return (self.name, self.kind, self.expr, self.cost, self.prune_safe)

    def __setstate__(self, state):
        self.name, self.kind, self.expr, self.cost, self.prune_safe = state


def _eval_expr(expr, view, memo):
    """Evaluate an interned expression against indexed base relations.

    ``memo`` is a per-evaluation slot list; fixed subterms short-circuit
    through ``view.fixed_memo`` (shared across evaluations of one
    skeleton/execution).
    """
    if expr.fixed:
        cache = view.fixed_memo
    else:
        cache = memo
    result = cache[expr.slot]
    if result is not None:
        return result
    op = expr.op
    if op == "name":
        result = view.relation(expr.a)
    elif op == "empty":
        result = view.empty()
    elif op == "|":
        result = _eval_expr(expr.a, view, memo) | _eval_expr(expr.b, view,
                                                             memo)
    elif op == "&":
        result = _eval_expr(expr.a, view, memo) & _eval_expr(expr.b, view,
                                                             memo)
    elif op == "\\":
        result = _eval_expr(expr.a, view, memo) - _eval_expr(expr.b, view,
                                                             memo)
    elif op == ";":
        result = _eval_expr(expr.a, view, memo) >> _eval_expr(expr.b, view,
                                                              memo)
    elif op == "+":
        result = _eval_expr(expr.a, view, memo).transitive_closure()
    elif op == "*":
        result = _eval_expr(expr.a, view,
                            memo).transitive_closure().reflexive_closure()
    elif op == "?":
        result = _eval_expr(expr.a, view, memo).reflexive_closure()
    elif op == "inv":
        result = ~_eval_expr(expr.a, view, memo)
    elif op == "filter":
        domain_letter, range_letter = expr.a
        result = _eval_expr(expr.b, view, memo).restrict_masks(
            view.kind_mask(domain_letter), view.kind_mask(range_letter))
    else:
        raise CatEvalError("unknown compiled op %r" % (op,))
    cache[expr.slot] = result
    return result


def _check_passes(check, view, memo):
    relation = _eval_expr(check.expr, view, memo)
    if check.kind == "acyclic":
        return relation.is_acyclic()
    if check.kind == "irreflexive":
        return relation.is_irreflexive()
    if check.kind == "empty":
        return relation.is_empty()
    raise CatEvalError("unknown check kind %r" % check.kind)


class IndexedExecution:
    """Adapter exposing a :class:`CandidateExecution`'s relations as
    :class:`~repro.model.relation.IndexedRelation` bitmasks."""

    def __init__(self, execution, slots=0):
        from .relation import EventIndex

        self.execution = execution
        self.index = EventIndex(execution.events)
        self._relations = {}
        self._kind_masks = {}
        self.fixed_memo = [None] * slots

    def empty(self):
        from .relation import IndexedRelation

        return IndexedRelation.empty(self.index)

    def kind_mask(self, letter):
        mask = self._kind_masks.get(letter)
        if mask is None:
            predicate = _FILTER_KINDS[letter]
            mask = 0
            for i, event in enumerate(self.index.events):
                if predicate(event):
                    mask |= 1 << i
            self._kind_masks[letter] = mask
        return mask

    def relation(self, name):
        relation = self._relations.get(name)
        if relation is None:
            from .relation import IndexedRelation

            relation = IndexedRelation.from_relation(
                self.index, self.execution.relation(name))
            self._relations[name] = relation
        return relation


class CompiledCatModel:
    """A model compiled once: closed check expressions, cheapest first.

    ``allows(execution)`` is bit-identical to the reference
    :meth:`CatModel.allows` partition; ``allows_view`` evaluates against
    any indexed relation provider (the enumerator's partial-execution
    skeletons included).  Instances hold only plain data (no closures),
    so they pickle into process-pool workers.
    """

    def __init__(self, cat):
        self.name = cat.name
        env = {}
        interner = _Interner()
        checks = []
        for statement in cat.statements:
            if isinstance(statement, Let):
                if statement.parameter is None:
                    env[statement.name] = _fold(
                        _inline(statement.body, {}, env))
                else:
                    env[statement.name] = _CompiledFunction(
                        statement.parameter, statement.body, dict(env))
            else:
                body = _fold(_inline(statement.body, {}, env))
                checks.append(CompiledCheck(
                    name=statement.name, kind=statement.kind,
                    expr=interner.compile(body), cost=_cost(body),
                    prune_safe=_is_monotone(body)))
        #: Slot count of the shared expression DAG — the size of the
        #: evaluation memos (one entry per distinct subterm).
        self.slots = len(interner.exprs)
        # Stable sort: equal-cost checks keep their source order, so the
        # evaluation order is deterministic across runs and processes.
        self.checks = tuple(sorted(checks, key=lambda check: check.cost))
        self.prune_checks = tuple(check for check in self.checks
                                  if check.prune_safe)

    def new_fixed_memo(self):
        """Fresh per-skeleton cache for enumeration-invariant subterms."""
        return [None] * self.slots

    def _fit(self, view):
        """Views carry their own fixed-subterm cache; size it for this
        model's slot count if the caller did not (e.g. a bare
        :class:`IndexedExecution`)."""
        if len(view.fixed_memo) < self.slots:
            view.fixed_memo = [None] * self.slots
        return view

    def allows_view(self, view):
        """Do all checks pass against ``view``'s (complete) relations?"""
        view = self._fit(view)
        memo = [None] * self.slots
        return all(_check_passes(check, view, memo)
                   for check in self.checks)

    def prune_ok(self, view):
        """Can some completion of ``view``'s *partial* relations still be
        allowed?  False only when a monotone check already fails."""
        view = self._fit(view)
        memo = [None] * self.slots
        return all(_check_passes(check, view, memo)
                   for check in self.prune_checks)

    def allows(self, execution):
        """Fast-engine verdict for a complete candidate execution."""
        return self.allows_view(IndexedExecution(execution, self.slots))

    def __repr__(self):
        return "CompiledCatModel(%s, %d checks, %d prune-safe)" % (
            self.name or "<anonymous>", len(self.checks),
            len(self.prune_checks))


def compile_model(model):
    """Compile a model for the fast engine (memoised per CatModel).

    Accepts a :class:`CatModel`, an object with a ``.cat`` attribute
    (:class:`~repro.model.models.AxiomaticModel`), an already compiled
    model (returned as is), or raw ``.cat`` text.
    """
    if isinstance(model, CompiledCatModel):
        return model
    cat = getattr(model, "cat", model)
    if isinstance(cat, str):
        cat = CatModel(cat)
    compiled = getattr(cat, "_compiled", None)
    if compiled is None:
        compiled = CompiledCatModel(cat)
        cat._compiled = compiled
    return compiled
