"""Axiomatic framework: events, relations, executions, cat models."""

from .cat import CompiledCatModel, IndexedExecution, compile_model
from .dot import to_dot, weak_witness_dot
from .enumerate import (AllowedStates, allowed_final_states,
                        enumerate_allowed, enumerate_executions)
from .events import Event, FENCE, READ, WRITE
from .execution import CandidateExecution
from .models import (DEFAULT_MODEL_ENGINE, MODEL_ENGINES,
                     resolve_model_engine)
from .relation import EventIndex, IndexedRelation, Relation

__all__ = [
    "CompiledCatModel", "IndexedExecution", "compile_model",
    "to_dot", "weak_witness_dot",
    "AllowedStates", "allowed_final_states",
    "enumerate_allowed", "enumerate_executions",
    "Event", "FENCE", "READ", "WRITE",
    "CandidateExecution",
    "DEFAULT_MODEL_ENGINE", "MODEL_ENGINES", "resolve_model_engine",
    "EventIndex", "IndexedRelation", "Relation",
]
