"""Axiomatic framework: events, relations, executions, cat models."""

from .dot import to_dot, weak_witness_dot
from .enumerate import allowed_final_states, enumerate_executions
from .events import Event, FENCE, READ, WRITE
from .execution import CandidateExecution
from .relation import Relation

__all__ = [
    "to_dot", "weak_witness_dot",
    "allowed_final_states", "enumerate_executions",
    "Event", "FENCE", "READ", "WRITE",
    "CandidateExecution", "Relation",
]
