"""Candidate executions: events plus the relations of Sec. 5.1.1.

A candidate execution fixes, for one control-flow unwinding of a litmus
test, the program order ``po``, the communication relations ``rf`` and
``co``, the dependency relations ``addr``/``data``/``ctrl``, the fence
relations ``membar.{cta,gl,sys}`` and the scope relations
``cta``/``gl``/``sys``.  Axiomatic models (Sec. 5.2) then partition
candidate executions into allowed and forbidden.
"""

from ..errors import CatEvalError
from .events import FENCE, READ, WRITE
from .relation import Relation


class CandidateExecution:
    """One candidate execution of a litmus test.

    ``rf`` pairs run write → read; ``co`` is the per-location total
    coherence order (init writes first); ``final_state`` is the
    :class:`~repro.litmus.condition.FinalState` this execution produces.
    """

    def __init__(self, events, po, rf, co, addr, data, ctrl, rmw,
                 same_cta, final_state, test_name=""):
        self.events = tuple(events)
        self.po = po
        self.rf = rf
        self.co = co
        self.addr = addr
        self.data = data
        self.ctrl = ctrl
        self.rmw = rmw
        self._same_cta = same_cta  # callable: (tid, tid) -> bool
        self.final_state = final_state
        self.test_name = test_name
        self._cache = {}

    # -- event sets ---------------------------------------------------------

    @property
    def reads(self):
        return [e for e in self.events if e.kind == READ]

    @property
    def writes(self):
        return [e for e in self.events if e.kind == WRITE]

    @property
    def fences(self):
        return [e for e in self.events if e.kind == FENCE]

    @property
    def accesses(self):
        return [e for e in self.events if e.is_access]

    def event_set(self, name):
        """Resolve a cat set name (R, W, M, F) to a set of events."""
        sets = {
            "R": set(self.reads),
            "W": set(self.writes),
            "M": set(self.accesses),
            "F": set(self.fences),
        }
        try:
            return sets[name]
        except KeyError:
            raise CatEvalError("unknown event set %r" % name)

    # -- derived relations ----------------------------------------------------

    def _cached(self, name, build):
        if name not in self._cache:
            self._cache[name] = build()
        return self._cache[name]

    def relation(self, name):
        """Resolve a primitive relation by its .cat name."""
        builders = {
            "po": lambda: self.po,
            "po-loc": self._po_loc,
            "rf": lambda: self.rf,
            "rfe": lambda: self._external(self.rf),
            "rfi": lambda: self._internal(self.rf),
            "co": lambda: self.co,
            "ws": lambda: self.co,
            "coe": lambda: self._external(self.co),
            "coi": lambda: self._internal(self.co),
            "fr": self._fr,
            "fre": lambda: self._external(self._fr()),
            "fri": lambda: self._internal(self._fr()),
            "com": lambda: self.rf | self.co | self._fr(),
            "addr": lambda: self.addr,
            "data": lambda: self.data,
            "ctrl": lambda: self.ctrl,
            "dp": lambda: self.addr | self.data | self.ctrl,
            "rmw": lambda: self.rmw,
            "membar.cta": lambda: self._fence_relation("cta"),
            "membar.gl": lambda: self._fence_relation("gl"),
            "membar.sys": lambda: self._fence_relation("sys"),
            "cta": lambda: self._scope_relation("cta"),
            "gl": lambda: self._scope_relation("gl"),
            "sys": lambda: self._scope_relation("sys"),
            "loc": self._same_loc,
            "int": lambda: self._internal(self._all_pairs()),
            "ext": lambda: self._external(self._all_pairs()),
            "id": lambda: Relation((e, e) for e in self.events),
            "0": Relation.empty,
        }
        if name not in builders:
            raise CatEvalError("unknown primitive relation %r" % name)
        return self._cached(name, builders[name])

    def _fr(self):
        def build():
            return (~self.rf >> self.co).filter(lambda a, b: a is not b)
        return self._cached("_fr", build)

    def _po_loc(self):
        return self.po.filter(
            lambda a, b: a.is_access and b.is_access and a.loc == b.loc)

    def _same_loc(self):
        return Relation(
            (a, b)
            for a in self.accesses for b in self.accesses
            if a is not b and a.loc == b.loc)

    def _all_pairs(self):
        return Relation((a, b) for a in self.events for b in self.events
                        if a is not b)

    @staticmethod
    def _internal(relation):
        return relation.filter(lambda a, b: a.tid == b.tid)

    @staticmethod
    def _external(relation):
        return relation.filter(lambda a, b: a.tid != b.tid)

    def _fence_relation(self, scope):
        """Pairs of accesses separated in po by a fence of exactly ``scope``."""
        fences = [f for f in self.fences if f.scope == scope]
        pairs = set()
        for fence in fences:
            before = [a for a in self.po.predecessors(fence) if a.is_access]
            after = [b for b in self.po.successors(fence) if b.is_access]
            pairs.update((a, b) for a in before for b in after)
        return Relation(pairs)

    def _scope_relation(self, scope):
        """Pairs of events whose threads share the given scope level.

        Init writes belong to every scope.  ``sys`` is the universal
        relation (Sec. 5.1.1).
        """
        def related(a, b):
            if a is b:
                return False
            if scope == "sys":
                return True
            if a.tid == -1 or b.tid == -1 or a.tid == b.tid:
                return True
            if scope == "gl":
                return True  # single-GPU tests: all threads share the grid
            return self._same_cta(a.tid, b.tid)

        return Relation((a, b) for a in self.events for b in self.events
                        if related(a, b))

    # -- reporting --------------------------------------------------------------

    def pretty(self):
        """Readable dump in the spirit of Fig. 14."""
        lines = ["execution of %s:" % (self.test_name or "<test>")]
        for event in sorted(self.events, key=lambda e: (e.tid, e.po_index)):
            lines.append("  " + event.pretty())
        for title, rel in (("rf", self.rf), ("co", self.co)):
            for a, b in sorted(rel, key=lambda p: (p[0].eid, p[1].eid)):
                lines.append("  %s: %s -> %s" % (title, a.pretty(), b.pretty()))
        lines.append("  final: %s" % self.final_state)
        return "\n".join(lines)

    def __repr__(self):
        return "CandidateExecution(%s, %d events, final=%s)" % (
            self.test_name, len(self.events), self.final_state)
