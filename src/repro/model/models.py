"""The paper's PTX model and comparison models, in ``.cat`` text.

``PTX_CAT`` is the concatenation of the paper's Fig. 15 (SPARC RMO core:
SC-per-location with load-load hazard, no-thin-air, the parametric
``rmo(fence)`` relation) and Fig. 16 (the per-scope instantiation:
``rmo-cta``/``rmo-gl``/``rmo-sys`` acyclicity).  The comparison models —
SC, x86-TSO and plain (unscoped) RMO — support the benchmark that places
the PTX model in the weak-to-strong spectrum.
"""

from .cat import CatModel, compile_model
from .enumerate import (allowed_final_states, enumerate_allowed,
                        enumerate_executions)

#: The two model-checking engines.  ``reference`` interprets the .cat
#: text over pair-set relations for every materialised candidate
#: execution; ``fast`` compiles the model once
#: (:func:`~repro.model.cat.compile_model`) and runs a pruned,
#: consistency-aware enumeration over indexed relations
#: (:func:`~repro.model.enumerate.enumerate_allowed`).  Identical
#: allowed sets, truncation flags and error behaviour by
#: property-tested contract (``tests/test_model_compile.py``).
MODEL_ENGINES = ("reference", "fast")

#: Engine used when nothing picks one explicitly (overridable per call
#: via ``engine=`` / per spec via ``RunSpec.model_engine`` /
#: ``--model-engine`` or globally via ``REPRO_MODEL_ENGINE``).
DEFAULT_MODEL_ENGINE = "fast"


def resolve_model_engine(engine):
    """Normalise a model-engine choice: ``None`` means the environment's
    ``REPRO_MODEL_ENGINE`` (default ``fast``); anything else must name
    one of :data:`MODEL_ENGINES`."""
    from .._util import resolve_choice
    return resolve_choice(engine, "REPRO_MODEL_ENGINE", MODEL_ENGINES,
                          DEFAULT_MODEL_ENGINE, "model engine")

#: Fig. 15 — the RMO core.
RMO_CORE_CAT = r"""
(* Fig. 15: RMO .cat core *)
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
"""

#: Fig. 16 — RMO per scope.
RMO_PER_SCOPE_CAT = r"""
(* Fig. 16: RMO per scope *)
let sys-fence = membar.sys
let gl-fence = membar.gl | sys-fence
let cta-fence = membar.cta | gl-fence
let rmo-cta = rmo(cta-fence) & cta
let rmo-gl = rmo(gl-fence) & gl
let rmo-sys = rmo(sys-fence) & sys
acyclic rmo-cta as cta-constraint
acyclic rmo-gl as gl-constraint
acyclic rmo-sys as sys-constraint
"""

#: The paper's full PTX model (Sec. 5.3: "the concatenation of Fig. 15 and
#: Fig. 16"), plus the standard atomicity axiom for RMWs (enforced
#: structurally by our enumeration; stated here for completeness).
PTX_CAT = RMO_CORE_CAT + RMO_PER_SCOPE_CAT + r"""
empty rmw & (fre; coe) as atomicity
"""

#: Sequential consistency (Lamport): one total order embedding po and com.
SC_CAT = r"""
let com = rf | co | fr
acyclic (po | com) as sc
"""

#: x86-TSO in the herding-cats style: program order is preserved except
#: write-to-read; reads are not reordered; store buffering is the only
#: relaxation.  (No x86 fences appear in PTX tests, so membar relations
#: stand in for mfence.)
TSO_CAT = r"""
let com = rf | co | fr
acyclic (po-loc | com) as sc-per-loc
let ppo = po \ WR(po)
let fence = membar.cta | membar.gl | membar.sys
acyclic (ppo | fence | rfe | co | fr) as tso
"""

#: Plain SPARC RMO (no scopes): every fence orders globally.  This is what
#: Fig. 15 alone gives a CPU; comparing it against PTX_CAT isolates the
#: contribution of scoped fences.
RMO_CAT = RMO_CORE_CAT + r"""
let fence = membar.cta | membar.gl | membar.sys
acyclic rmo(fence) as rmo-constraint
"""

#: SC-per-location *without* the load-load-hazard exemption: this is the
#: check nearly all CPUs pass but Nvidia Fermi/Kepler fail (coRR, Fig. 1).
COHERENCE_CAT = r"""
let com = rf | co | fr
acyclic (po-loc | com) as sc-per-loc
"""


class AxiomaticModel:
    """A named axiomatic model bound to the execution enumerator.

    Wraps a :class:`~repro.model.cat.CatModel` with test-level queries:
    which final states does the model allow for a litmus test, and does it
    allow a given test's weak outcome?
    """

    def __init__(self, name, cat_text):
        self.name = name
        self.cat = CatModel(cat_text, name=name)

    def allows(self, execution):
        return self.cat.allows(execution)

    def failed_checks(self, execution):
        return self.cat.failed_checks(execution)

    def compiled(self):
        """The fast-engine compilation of this model (memoised)."""
        return compile_model(self.cat)

    def allowed_outcomes(self, test, fuel=128, on_fuel="error",
                         max_executions=None, on_limit="error",
                         engine=None):
        """The set of final states allowed for ``test``.

        With ``on_limit="error"`` (the default, mirroring ``on_fuel``) a
        ``max_executions`` cap that cuts the enumeration short raises
        instead of silently under-approximating the allowed set.

        ``engine`` picks the checking engine (``None`` resolves through
        :func:`resolve_model_engine`: ``REPRO_MODEL_ENGINE``, default
        ``"fast"``).  ``"fast"`` compiles the model once and prunes the
        enumeration with its monotone checks; ``"reference"``
        materialises every candidate execution and interprets the .cat
        text against it.  Identical results either way.
        """
        if resolve_model_engine(engine) == "fast":
            return enumerate_allowed(test, self.compiled(), fuel=fuel,
                                     on_fuel=on_fuel,
                                     max_executions=max_executions,
                                     on_limit=on_limit)
        executions = enumerate_executions(test, fuel=fuel, on_fuel=on_fuel,
                                          max_executions=max_executions,
                                          on_limit=on_limit)
        return allowed_final_states(executions, model=self)

    def allows_condition(self, test, fuel=128, on_fuel="error", engine=None):
        """Does any allowed execution satisfy the test's final condition?

        For ``exists`` conditions this is the paper's allowed/forbidden
        verdict for the weak behaviour the test characterises.
        """
        if resolve_model_engine(engine) == "fast":
            return any(test.condition.holds(state)
                       for state in self.allowed_outcomes(
                           test, fuel=fuel, on_fuel=on_fuel, engine="fast"))
        executions = enumerate_executions(test, fuel=fuel, on_fuel=on_fuel)
        for execution in executions:
            if test.condition.holds(execution.final_state) and self.allows(execution):
                return True
        return False

    def witnesses(self, test, fuel=128, on_fuel="error"):
        """Allowed executions satisfying the final condition."""
        executions = enumerate_executions(test, fuel=fuel, on_fuel=on_fuel)
        return [execution for execution in executions
                if test.condition.holds(execution.final_state)
                and self.allows(execution)]

    def __repr__(self):
        return "AxiomaticModel(%s)" % self.name


def ptx_model():
    """The paper's model of Nvidia GPU hardware (Sec. 5.3)."""
    return AxiomaticModel("ptx", PTX_CAT)


def sc_model():
    return AxiomaticModel("sc", SC_CAT)


def tso_model():
    return AxiomaticModel("tso", TSO_CAT)


def rmo_model():
    """Unscoped SPARC RMO (Fig. 15 with a single global fence level)."""
    return AxiomaticModel("rmo", RMO_CAT)


def coherence_model():
    """SC-per-location only (the coRR discriminator)."""
    return AxiomaticModel("coherence", COHERENCE_CAT)


#: Registry used by benchmarks and the CLI.
MODELS = {
    "ptx": ptx_model,
    "sc": sc_model,
    "tso": tso_model,
    "rmo": rmo_model,
    "coherence": coherence_model,
}


def load_model(name):
    try:
        return MODELS[name]()
    except KeyError:
        raise KeyError("unknown model %r; known: %s"
                       % (name, ", ".join(sorted(MODELS))))
