"""The operational GPU model of Sorensen et al., and why it is unsound.

Sec. 6 of the paper discusses an earlier *operational* model of Nvidia
hardware (Sorensen 2013; Sorensen, Gopalakrishnan, Grover ICS'13) built
from documentation and vendor communication.  Its flaw: it treats
``membar`` fences as ordering regardless of scope, so it **forbids** the
inter-CTA ``lb+membar.ctas`` test — which the paper observed 586 times
per 100k on the GTX Titan and 19 times on the GTX 660.

We reproduce the model as a *scope-blind* variant of our operational
machine: identical relaxations, but every fence is a full barrier.  Its
axiomatic shadow is the unscoped RMO model
(:data:`repro.model.models.RMO_CAT`), which we use for the exhaustive
allowed/forbidden verdict; the operational machine provides sampled
reachability.
"""

import random

from ..sim.machine import GpuMachine
from .models import rmo_model


class SorensenOperationalModel:
    """Scope-blind operational model bound to a chip's relaxation set."""

    def __init__(self, chip):
        self.chip = chip
        self._axiomatic = rmo_model()

    def machine(self, test, intensity=1.0):
        return GpuMachine(test, self.chip, intensity=intensity,
                          scope_blind=True)

    def sample_outcomes(self, test, runs=2000, seed=0, intensity=1.0):
        """Reachable final states under the scope-blind machine."""
        machine = self.machine(test, intensity=intensity)
        rng = random.Random(seed)
        outcomes = set()
        for _ in range(runs):
            outcomes.add(machine.run_once(rng))
        return outcomes

    def observes_condition(self, test, runs=2000, seed=0, intensity=1.0):
        """Sampled: does the scope-blind machine ever witness the final
        condition?"""
        machine = self.machine(test, intensity=intensity)
        rng = random.Random(seed)
        for _ in range(runs):
            if test.condition.holds(machine.run_once(rng)):
                return True
        return False

    def allows_condition(self, test):
        """The model's verdict, decided exhaustively via its axiomatic
        shadow (fences order at every scope = unscoped RMO)."""
        return self._axiomatic.allows_condition(test)


def unsoundness_witness(chip, runs=4000, seed=0):
    """Reproduce the paper's Sec. 6 refutation on a given chip profile.

    Returns ``(model_forbids, hardware_observes)`` for the inter-CTA
    ``lb+membar.ctas`` test: the model is unsound when the first is True
    and the second is True (the paper's 586/100k on Titan).
    """
    from ..litmus import library

    test = library.build("lb+membar.ctas")
    model = SorensenOperationalModel(chip)
    forbids = not model.allows_condition(test)
    machine = GpuMachine(test, chip)  # the real (scope-aware) machine
    rng = random.Random(seed)
    observed = 0
    for _ in range(runs):
        if test.condition.holds(machine.run_once(rng)):
            observed += 1
    return forbids, observed
