"""Relational algebra over memory events.

The axiomatic framework (Sec. 5.1) and the ``.cat`` language (Sec. 5.2.2)
manipulate binary relations over events: unions, intersections,
compositions, closures and acyclicity checks.  Two representations
implement that algebra:

* :class:`Relation` — an immutable set of ordered event pairs.  The
  reference implementation: every operator is a direct transcription of
  its set-theoretic definition.
* :class:`IndexedRelation` — the fast-engine twin.  Events are numbered
  once per execution by an :class:`EventIndex`; a relation is then a
  per-source successor bitmask (one ``int`` per event), so unions are
  per-row ``|``, composition ORs successor rows, and closure/acyclicity
  walk bit-sets instead of hashing pairs.  Property-tested equivalent to
  :class:`Relation` (``tests/test_model_compile.py``).
"""


class EventIndex:
    """Dense numbering of one execution's events.

    Built once per execution (or per enumeration skeleton) and shared by
    every :class:`IndexedRelation` over it; position ``i`` corresponds to
    bit ``1 << i`` in successor masks.
    """

    __slots__ = ("events", "_position")

    def __init__(self, events):
        self.events = tuple(events)
        self._position = {event: i for i, event in enumerate(self.events)}

    def __len__(self):
        return len(self.events)

    def position(self, event):
        return self._position[event]

    @property
    def full_mask(self):
        """Bitmask with one bit set per event (the full carrier set)."""
        return (1 << len(self.events)) - 1

    def mask_of(self, events):
        """Bitmask of a subset of this index's events."""
        mask = 0
        for event in events:
            mask |= 1 << self._position[event]
        return mask


def _bits(mask):
    """Yield the set bit positions of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class IndexedRelation:
    """A binary relation as per-source successor bitmasks.

    ``succ[i]`` holds one bit per successor of event ``i`` (positions
    per the shared :class:`EventIndex`).  Immutable; operators mirror
    :class:`Relation` (``|`` union, ``&`` intersection, ``-`` difference,
    ``>>`` composition, ``~`` inverse).
    """

    __slots__ = ("index", "succ")

    def __init__(self, index, succ=None):
        self.index = index
        if succ is None:
            succ = (0,) * len(index)
        self.succ = tuple(succ)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_pairs(cls, index, pairs):
        succ = [0] * len(index)
        position = index.position
        for a, b in pairs:
            succ[position(a)] |= 1 << position(b)
        return cls(index, succ)

    @classmethod
    def from_relation(cls, index, relation):
        """Convert a pair-set :class:`Relation` over ``index``'s events."""
        return cls.from_pairs(index, relation)

    @classmethod
    def empty(cls, index):
        return cls(index)

    def to_relation(self):
        """Convert back to the pair-set representation."""
        return Relation(self.pairs())

    # -- basic protocol ----------------------------------------------------

    def pairs(self):
        events = self.index.events
        for i, row in enumerate(self.succ):
            for j in _bits(row):
                yield (events[i], events[j])

    def __iter__(self):
        return self.pairs()

    def __len__(self):
        # bin().count works on every supported Python (int.bit_count is 3.10+).
        return sum(bin(row).count("1") for row in self.succ)

    def __bool__(self):
        return any(self.succ)

    def __contains__(self, pair):
        a, b = pair
        return bool(self.succ[self.index.position(a)]
                    & (1 << self.index.position(b)))

    def __eq__(self, other):
        return (isinstance(other, IndexedRelation)
                and self.index.events == other.index.events
                and self.succ == other.succ)

    def __hash__(self):
        return hash((self.index.events, self.succ))

    def __repr__(self):
        return "IndexedRelation(%d pairs over %d events)" % (
            len(self), len(self.index))

    # -- algebra -------------------------------------------------------------

    def __or__(self, other):
        return IndexedRelation(self.index, (a | b for a, b in
                                            zip(self.succ, other.succ)))

    def __and__(self, other):
        return IndexedRelation(self.index, (a & b for a, b in
                                            zip(self.succ, other.succ)))

    def __sub__(self, other):
        return IndexedRelation(self.index, (a & ~b for a, b in
                                            zip(self.succ, other.succ)))

    def __rshift__(self, other):
        """Sequential composition: OR the successor rows of my successors."""
        rows = other.succ
        out = []
        for row in self.succ:
            acc = 0
            for j in _bits(row):
                acc |= rows[j]
            out.append(acc)
        return IndexedRelation(self.index, out)

    def __invert__(self):
        n = len(self.index)
        out = [0] * n
        for i, row in enumerate(self.succ):
            bit = 1 << i
            for j in _bits(row):
                out[j] |= bit
        return IndexedRelation(self.index, out)

    def restrict_masks(self, domain_mask, range_mask):
        """Keep pairs whose endpoints lie in the given bitmask sets (the
        indexed form of :meth:`Relation.restrict`)."""
        return IndexedRelation(
            self.index,
            ((row & range_mask) if (domain_mask >> i) & 1 else 0
             for i, row in enumerate(self.succ)))

    def transitive_closure(self):
        """``r+`` by iterated row expansion (tiny universes: n <= ~32)."""
        succ = list(self.succ)
        n = len(succ)
        changed = True
        while changed:
            changed = False
            for i in range(n):
                row = succ[i]
                acc = row
                for j in _bits(row):
                    acc |= succ[j]
                if acc != row:
                    succ[i] = acc
                    changed = True
        return IndexedRelation(self.index, succ)

    def reflexive_closure(self):
        """``r?`` over the index's full carrier set."""
        return IndexedRelation(self.index,
                               (row | (1 << i)
                                for i, row in enumerate(self.succ)))

    # -- queries -------------------------------------------------------------

    def is_empty(self):
        return not any(self.succ)

    def is_irreflexive(self):
        return all(not (row >> i) & 1 for i, row in enumerate(self.succ))

    def is_acyclic(self):
        """True when the relation contains no cycle (including self-loops).

        Iterative elimination of sink nodes (Kahn on the transposed
        graph): the relation is acyclic iff every node can be retired.
        """
        succ = self.succ
        n = len(succ)
        alive = self.index.full_mask
        changed = True
        while alive and changed:
            changed = False
            for i in _bits(alive):
                if not (succ[i] & alive):
                    alive ^= 1 << i
                    changed = True
        return not alive

    def find_cycle(self):
        """Return one cycle as a list of events, or ``None`` if acyclic.

        Same contract as :meth:`Relation.find_cycle`: the result is a
        closed walk (each event related to the next, last wrapping to
        first); the specific cycle may differ between representations.
        """
        succ = self.succ
        events = self.index.events
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {}
        parent = {}
        for root in range(len(succ)):
            if not succ[root] or colour.get(root, WHITE) != WHITE:
                continue
            stack = [(root, _bits(succ[root]))]
            colour[root] = GREY
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for nxt in iterator:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        cycle = [nxt, node]
                        walk = node
                        while walk != nxt:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return [events[i] for i in cycle[:-1]]
                    if state == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, _bits(succ[nxt])))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None


class Relation:
    """An immutable binary relation over :class:`~repro.model.events.Event`.

    Operators follow ``.cat`` notation where Python allows: ``|`` union,
    ``&`` intersection, ``-`` difference, ``>>`` sequential composition
    (``;`` in cat), ``~r`` inverse (``r^-1``).
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs=()):
        self._pairs = frozenset(pairs)

    # -- basic protocol ----------------------------------------------------

    @property
    def pairs(self):
        return self._pairs

    def __iter__(self):
        return iter(self._pairs)

    def __len__(self):
        return len(self._pairs)

    def __bool__(self):
        return bool(self._pairs)

    def __contains__(self, pair):
        return pair in self._pairs

    def __eq__(self, other):
        return isinstance(other, Relation) and self._pairs == other._pairs

    def __hash__(self):
        return hash(self._pairs)

    def __repr__(self):
        return "Relation(%d pairs)" % len(self._pairs)

    # -- algebra -------------------------------------------------------------

    def __or__(self, other):
        return Relation(self._pairs | other._pairs)

    def __and__(self, other):
        return Relation(self._pairs & other._pairs)

    def __sub__(self, other):
        return Relation(self._pairs - other._pairs)

    def __rshift__(self, other):
        """Sequential composition: ``{(a, c) | (a, b) in self, (b, c) in other}``."""
        by_source = {}
        for b, c in other._pairs:
            by_source.setdefault(b, []).append(c)
        return Relation((a, c)
                        for a, b in self._pairs
                        for c in by_source.get(b, ()))

    def __invert__(self):
        return Relation((b, a) for a, b in self._pairs)

    def filter(self, predicate):
        """Keep pairs satisfying ``predicate(a, b)``."""
        return Relation(pair for pair in self._pairs if predicate(*pair))

    def restrict(self, domain_pred=None, range_pred=None):
        """Keep pairs whose endpoints satisfy per-side predicates."""
        def keep(a, b):
            if domain_pred is not None and not domain_pred(a):
                return False
            if range_pred is not None and not range_pred(b):
                return False
            return True
        return self.filter(keep)

    def transitive_closure(self):
        """``r+``: the least transitive relation containing ``r``."""
        successors = {}
        for a, b in self._pairs:
            successors.setdefault(a, set()).add(b)
        closure = set(self._pairs)
        for start in list(successors):
            seen = set()
            stack = list(successors.get(start, ()))
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(successors.get(node, ()))
            closure.update((start, node) for node in seen)
        return Relation(closure)

    def reflexive_closure(self, events):
        """``r?`` over the given carrier set of events."""
        return Relation(set(self._pairs) | {(e, e) for e in events})

    # -- queries -------------------------------------------------------------

    def events(self):
        """All events appearing in the relation."""
        found = set()
        for a, b in self._pairs:
            found.add(a)
            found.add(b)
        return found

    def successors(self, event):
        return {b for a, b in self._pairs if a == event}

    def predecessors(self, event):
        return {a for a, b in self._pairs if b == event}

    def is_acyclic(self):
        """True when the relation contains no cycle (including self-loops)."""
        return self.find_cycle() is None

    def is_irreflexive(self):
        return all(a != b for a, b in self._pairs)

    def is_empty(self):
        return not self._pairs

    def find_cycle(self):
        """Return one cycle as a list of events, or ``None`` if acyclic.

        Cycles witness forbidden executions; the harness uses them to
        explain *why* a model rejects an execution (cf. Fig. 14's cycle in
        ``rmo-cta``).
        """
        successors = {}
        for a, b in self._pairs:
            successors.setdefault(a, []).append(b)
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {}
        parent = {}

        for root in successors:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack = [(root, iter(successors.get(root, ())))]
            colour[root] = GREY
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for nxt in iterator:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [nxt, node]
                        walk = node
                        while walk != nxt:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle[:-1]
                    if state == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(successors.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def empty():
        return Relation()

    @staticmethod
    def from_order(sequence):
        """Total order relation from a sequence (all ascending pairs)."""
        items = list(sequence)
        return Relation((items[i], items[j])
                        for i in range(len(items))
                        for j in range(i + 1, len(items)))

    @staticmethod
    def cross(domain, codomain):
        """Cartesian product of two event collections."""
        codomain = list(codomain)
        return Relation((a, b) for a in domain for b in codomain if a is not b)
