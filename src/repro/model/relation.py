"""Relational algebra over memory events.

The axiomatic framework (Sec. 5.1) and the ``.cat`` language (Sec. 5.2.2)
manipulate binary relations over events: unions, intersections,
compositions, closures and acyclicity checks.  :class:`Relation` is an
immutable set of ordered event pairs supporting exactly that algebra.
"""


class Relation:
    """An immutable binary relation over :class:`~repro.model.events.Event`.

    Operators follow ``.cat`` notation where Python allows: ``|`` union,
    ``&`` intersection, ``-`` difference, ``>>`` sequential composition
    (``;`` in cat), ``~r`` inverse (``r^-1``).
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs=()):
        self._pairs = frozenset(pairs)

    # -- basic protocol ----------------------------------------------------

    @property
    def pairs(self):
        return self._pairs

    def __iter__(self):
        return iter(self._pairs)

    def __len__(self):
        return len(self._pairs)

    def __bool__(self):
        return bool(self._pairs)

    def __contains__(self, pair):
        return pair in self._pairs

    def __eq__(self, other):
        return isinstance(other, Relation) and self._pairs == other._pairs

    def __hash__(self):
        return hash(self._pairs)

    def __repr__(self):
        return "Relation(%d pairs)" % len(self._pairs)

    # -- algebra -------------------------------------------------------------

    def __or__(self, other):
        return Relation(self._pairs | other._pairs)

    def __and__(self, other):
        return Relation(self._pairs & other._pairs)

    def __sub__(self, other):
        return Relation(self._pairs - other._pairs)

    def __rshift__(self, other):
        """Sequential composition: ``{(a, c) | (a, b) in self, (b, c) in other}``."""
        by_source = {}
        for b, c in other._pairs:
            by_source.setdefault(b, []).append(c)
        return Relation((a, c)
                        for a, b in self._pairs
                        for c in by_source.get(b, ()))

    def __invert__(self):
        return Relation((b, a) for a, b in self._pairs)

    def filter(self, predicate):
        """Keep pairs satisfying ``predicate(a, b)``."""
        return Relation(pair for pair in self._pairs if predicate(*pair))

    def restrict(self, domain_pred=None, range_pred=None):
        """Keep pairs whose endpoints satisfy per-side predicates."""
        def keep(a, b):
            if domain_pred is not None and not domain_pred(a):
                return False
            if range_pred is not None and not range_pred(b):
                return False
            return True
        return self.filter(keep)

    def transitive_closure(self):
        """``r+``: the least transitive relation containing ``r``."""
        successors = {}
        for a, b in self._pairs:
            successors.setdefault(a, set()).add(b)
        closure = set(self._pairs)
        for start in list(successors):
            seen = set()
            stack = list(successors.get(start, ()))
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(successors.get(node, ()))
            closure.update((start, node) for node in seen)
        return Relation(closure)

    def reflexive_closure(self, events):
        """``r?`` over the given carrier set of events."""
        return Relation(set(self._pairs) | {(e, e) for e in events})

    # -- queries -------------------------------------------------------------

    def events(self):
        """All events appearing in the relation."""
        found = set()
        for a, b in self._pairs:
            found.add(a)
            found.add(b)
        return found

    def successors(self, event):
        return {b for a, b in self._pairs if a == event}

    def predecessors(self, event):
        return {a for a, b in self._pairs if b == event}

    def is_acyclic(self):
        """True when the relation contains no cycle (including self-loops)."""
        return self.find_cycle() is None

    def is_irreflexive(self):
        return all(a != b for a, b in self._pairs)

    def is_empty(self):
        return not self._pairs

    def find_cycle(self):
        """Return one cycle as a list of events, or ``None`` if acyclic.

        Cycles witness forbidden executions; the harness uses them to
        explain *why* a model rejects an execution (cf. Fig. 14's cycle in
        ``rmo-cta``).
        """
        successors = {}
        for a, b in self._pairs:
            successors.setdefault(a, []).append(b)
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {}
        parent = {}

        for root in successors:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack = [(root, iter(successors.get(root, ())))]
            colour[root] = GREY
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for nxt in iterator:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [nxt, node]
                        walk = node
                        while walk != nxt:
                            walk = parent[walk]
                            cycle.append(walk)
                        cycle.reverse()
                        return cycle[:-1]
                    if state == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(successors.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def empty():
        return Relation()

    @staticmethod
    def from_order(sequence):
        """Total order relation from a sequence (all ascending pairs)."""
        items = list(sequence)
        return Relation((items[i], items[j])
                        for i in range(len(items))
                        for j in range(i + 1, len(items)))

    @staticmethod
    def cross(domain, codomain):
        """Cartesian product of two event collections."""
        codomain = list(codomain)
        return Relation((a, b) for a in domain for b in codomain if a is not b)
