"""Graphviz (DOT) export of candidate executions, in the style of Fig. 14.

``herd`` renders execution graphs with events as nodes and po/rf/co/fr
edges; this module produces equivalent DOT text for any
:class:`~repro.model.execution.CandidateExecution`::

    from repro.model.dot import to_dot
    print(to_dot(execution))          # pipe into `dot -Tpdf`
"""

_EDGE_STYLES = {
    "po": ("black", "solid"),
    "rf": ("red", "solid"),
    "co": ("blue", "solid"),
    "fr": ("darkorange", "dashed"),
    "addr": ("forestgreen", "dotted"),
    "data": ("forestgreen", "dotted"),
    "ctrl": ("forestgreen", "dotted"),
}


def _node_id(event):
    return "e%d" % event.eid


def _node_label(event):
    if event.is_fence:
        return "membar.%s" % event.scope
    cop = ".%s" % event.cop if event.cop else (".vol" if event.volatile else "")
    return "%s%s %s=%s" % (event.kind, cop, event.loc, event.value)


def _po_immediate(execution):
    """Transitive reduction of po (draw only adjacent pairs)."""
    pairs = []
    by_thread = {}
    for event in execution.events:
        if event.tid >= 0:
            by_thread.setdefault(event.tid, []).append(event)
    for events in by_thread.values():
        events.sort(key=lambda e: e.po_index)
        pairs.extend(zip(events, events[1:]))
    return pairs


def to_dot(execution, title=None, show_dependencies=True):
    """Render an execution as DOT text."""
    lines = ["digraph execution {",
             '  label="%s";' % (title or execution.test_name),
             "  node [shape=box, fontname=monospace];"]

    clusters = {}
    for event in execution.events:
        clusters.setdefault(event.tid, []).append(event)
    for tid in sorted(clusters):
        name = "init" if tid == -1 else "T%d" % tid
        lines.append("  subgraph cluster_%s {" % name.lower())
        lines.append('    label="%s"; style=dashed;' % name)
        for event in sorted(clusters[tid], key=lambda e: e.po_index):
            lines.append('    %s [label="%s"];'
                         % (_node_id(event), _node_label(event)))
        lines.append("  }")

    def edges(pairs, kind):
        colour, style = _EDGE_STYLES[kind]
        for a, b in pairs:
            lines.append('  %s -> %s [label="%s", color=%s, style=%s];'
                         % (_node_id(a), _node_id(b), kind, colour, style))

    edges(_po_immediate(execution), "po")
    edges(sorted(execution.rf, key=lambda p: p[0].eid), "rf")
    # Coherence: immediate successors only, to keep the graph readable.
    co_pairs = [(a, b) for a, b in execution.co
                if not any((a, c) in execution.co and (c, b) in execution.co
                           for c in execution.writes)]
    edges(co_pairs, "co")
    edges(sorted(execution.relation("fr"), key=lambda p: p[0].eid), "fr")
    if show_dependencies:
        for kind in ("addr", "data", "ctrl"):
            edges(sorted(execution.relation(kind), key=lambda p: p[0].eid),
                  kind)
    lines.append("}")
    return "\n".join(lines)


def weak_witness_dot(test, model=None):
    """DOT for the first weak candidate of ``test`` (model-annotated)."""
    from .enumerate import enumerate_executions

    for execution in enumerate_executions(test):
        if test.condition.holds(execution.final_state):
            verdict = ""
            if model is not None:
                verdict = (" [allowed by %s]" if model.allows(execution)
                           else " [forbidden by %s]") % model.name
            return to_dot(execution, title=test.name + verdict)
    raise ValueError("no weak candidate for %s" % test.name)
