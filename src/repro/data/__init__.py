"""Published data from the paper, for paper-vs-measured comparisons."""

from . import paper

__all__ = ["paper"]
