"""The paper's published observation counts, verbatim.

Every figure's obs/100k table and Table 6 are transcribed here so the
benchmarks can print paper-vs-measured comparisons (EXPERIMENTS.md).
``None`` marks the paper's "n/a" cells (tests invalidated by AMD
compiler issues, Sec. 3.2.1/3.2.3).
"""

#: Chip column order used by the figures.
FIGURE_CHIPS = ["GTX5", "TesC", "GTX6", "Titan", "GTX7", "HD6570", "HD7970"]
NVIDIA_CHIPS = ["GTX5", "TesC", "GTX6", "Titan", "GTX7"]

#: Fig. 1 — coRR, intra-CTA, obs/100k.
FIG1_CORR = {"GTX5": 11642, "TesC": 8879, "GTX6": 9599, "Titan": 9787,
             "GTX7": 0, "HD6570": 0, "HD7970": 0}

#: Fig. 3 — mp-L1 fence sweep (Nvidia only), rows keyed by fence.
FIG3_MP_L1 = {
    "no-op": {"GTX5": 4979, "TesC": 10581, "GTX6": 3635, "Titan": 6011, "GTX7": 3},
    "membar.cta": {"GTX5": 0, "TesC": 308, "GTX6": 14, "Titan": 1696, "GTX7": 0},
    "membar.gl": {"GTX5": 0, "TesC": 187, "GTX6": 0, "Titan": 0, "GTX7": 0},
    "membar.sys": {"GTX5": 0, "TesC": 162, "GTX6": 0, "Titan": 0, "GTX7": 0},
}

#: Fig. 4 — coRR-L2-L1 fence sweep (Nvidia only).
FIG4_CORR_L2_L1 = {
    "no-op": {"GTX5": 2556, "TesC": 2982, "GTX6": 2, "Titan": 141, "GTX7": 0},
    "membar.cta": {"GTX5": 1934, "TesC": 2180, "GTX6": 0, "Titan": 0, "GTX7": 0},
    "membar.gl": {"GTX5": 0, "TesC": 1496, "GTX6": 0, "Titan": 0, "GTX7": 0},
    "membar.sys": {"GTX5": 0, "TesC": 1428, "GTX6": 0, "Titan": 0, "GTX7": 0},
}

#: Fig. 5 — mp-volatile, intra-CTA shared memory (Nvidia only).
FIG5_MP_VOLATILE = {"GTX5": 6301, "TesC": 4977, "GTX6": 2753, "Titan": 2188,
                    "GTX7": 0}

#: Fig. 7 — dlb-mp (deque message passing), inter-CTA.
FIG7_DLB_MP = {"GTX5": 0, "TesC": 4, "GTX6": 36, "Titan": 65, "GTX7": 0,
               "HD6570": 0, "HD7970": 0}

#: Fig. 8 — dlb-lb (deque load buffering); HD6570 n/a: the TeraScale 2
#: OpenCL compiler reorders the load and the CAS (a miscompilation).
FIG8_DLB_LB = {"GTX5": 0, "TesC": 750, "GTX6": 399, "Titan": 2292, "GTX7": 0,
               "HD6570": None, "HD7970": 13591}

#: Fig. 9 — cas-sl (CUDA-by-Example spin lock).
FIG9_CAS_SL = {"GTX5": 0, "TesC": 47, "GTX6": 43, "Titan": 512, "GTX7": 0,
               "HD6570": 508, "HD7970": 748}

#: Fig. 11 — sl-future (He-Yu spin lock); AMD n/a: automatic fence
#: placement by the OpenCL compiler could not be avoided (Sec. 3.2).
FIG11_SL_FUTURE = {"GTX5": 0, "TesC": 99, "GTX6": 41, "Titan": 58, "GTX7": 0,
                   "HD6570": None, "HD7970": None}

#: AMD OpenCL classic-mp observations quoted in Sec. 3.1.2 (no fences /
#: with global fences).  On GCN 1.0 the fence between loads is removed by
#: the compiler, so the weak behaviour persists.
SEC312_AMD_MP = {
    "HD6570": {"no-fence": 9327, "fenced": 0},
    "HD7970": {"no-fence": 2956, "fenced": 2956},
}

#: Sec. 6 — lb+membar.ctas: forbidden by the operational model of
#: Sorensen et al. but observed on hardware.
SEC6_LB_MEMBAR_CTAS = {"Titan": 586, "GTX6": 19}

#: Table 6 lives in repro.harness.incantations.TABLE6 (it doubles as the
#: efficacy calibration); re-exported here for the benchmarks.
from ..harness.incantations import TABLE6  # noqa: E402,F401

#: Table 4 — compilers and drivers used (Nvidia CUDA SDK / AMD APP SDK).
TABLE4_TOOLCHAINS = {
    "GTX5": {"sdk": "5.5", "driver": "331.20", "options": "sm_21"},
    "TesC": {"sdk": "5.5", "driver": "334.16", "options": "sm_20"},
    "GTX6": {"sdk": "5.0", "driver": "331.67", "options": "sm_30"},
    "Titan": {"sdk": "6.0", "driver": "331.62", "options": "sm_35"},
    "GTX7": {"sdk": "6.0", "driver": "331.62", "options": "sm_50"},
    "HD6570": {"sdk": "2.9", "driver": "14.4", "options": "default"},
    "HD7970": {"sdk": "2.9", "driver": "14.4", "options": "default"},
}

#: Sec. 5.4 — the model validation corpus size.
SEC54_TEST_COUNT = 10930

#: Map of figure id -> (library test configurations, paper data) used by
#: the benchmark index.
FIGURE_INDEX = {
    "fig1": ("coRR", FIG1_CORR),
    "fig3": ("mp-L1", FIG3_MP_L1),
    "fig4": ("coRR-L2-L1", FIG4_CORR_L2_L1),
    "fig5": ("mp-volatile", FIG5_MP_VOLATILE),
    "fig7": ("dlb-mp", FIG7_DLB_MP),
    "fig8": ("dlb-lb", FIG8_DLB_LB),
    "fig9": ("cas-sl", FIG9_CAS_SL),
    "fig11": ("sl-future", FIG11_SL_FUTURE),
}
