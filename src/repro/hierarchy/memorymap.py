"""Memory maps: which memory region each litmus location lives in.

Fig. 12 line 11 of the paper: ``x: shared, y: global``.  Locations default
to global memory when unmapped.
"""

from dataclasses import dataclass, field

from ..errors import LitmusSyntaxError
from ..ptx.types import MemorySpace


@dataclass(frozen=True)
class MemoryMap:
    """An immutable mapping from location names to memory spaces."""

    spaces: dict = field(default_factory=dict)

    def __post_init__(self):
        clean = {}
        for name, space in self.spaces.items():
            if isinstance(space, str):
                try:
                    space = MemorySpace(space)
                except ValueError:
                    raise LitmusSyntaxError("unknown memory space %r for %r" % (space, name))
            clean[name] = space
        object.__setattr__(self, "spaces", clean)

    @staticmethod
    def parse(text):
        """Parse ``"x: shared, y: global"`` into a :class:`MemoryMap`."""
        spaces = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" not in part:
                raise LitmusSyntaxError("malformed memory map entry %r" % part)
            name, space = (piece.strip() for piece in part.split(":", 1))
            spaces[name] = space
        return MemoryMap(spaces)

    def space_of(self, name):
        """The memory space of ``name`` (global when unmapped)."""
        return self.spaces.get(name, MemorySpace.GLOBAL)

    def all_global(self):
        return all(space is MemorySpace.GLOBAL for space in self.spaces.values())

    def __str__(self):
        return ", ".join("%s: %s" % (name, space)
                         for name, space in sorted(self.spaces.items()))
