"""Scope trees: thread placement in the GPU execution hierarchy.

A litmus test specifies where its threads sit in the grid/CTA/warp
hierarchy (Sec. 2.1, Fig. 12 line 10), e.g.::

    ScopeTree(grid (cta (warp T0) (warp T1)))          # intra-CTA
    ScopeTree(grid (cta (warp T0)) (cta (warp T1)))    # inter-CTA

The tree drives both the axiomatic model's scope relations (``cta``,
``gl``, ``sys``) and the simulator's assignment of threads to SMs.
"""

import re
from dataclasses import dataclass, field

from ..errors import ScopeTreeError


@dataclass(frozen=True)
class Placement:
    """Position of one thread: indices of its CTA and warp (within CTA)."""

    cta: int
    warp: int


@dataclass(frozen=True)
class ScopeTree:
    """An immutable scope tree over named threads.

    ``ctas`` is a tuple of CTAs; each CTA is a tuple of warps; each warp is
    a tuple of thread names.  Each thread name must appear exactly once.
    """

    ctas: tuple
    _placements: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        ctas = tuple(tuple(tuple(warp) for warp in cta) for cta in self.ctas)
        object.__setattr__(self, "ctas", ctas)
        placements = {}
        for cta_index, cta in enumerate(ctas):
            if not cta:
                raise ScopeTreeError("empty CTA in scope tree")
            for warp_index, warp in enumerate(cta):
                if not warp:
                    raise ScopeTreeError("empty warp in scope tree")
                for name in warp:
                    if name in placements:
                        raise ScopeTreeError("thread %r placed twice" % name)
                    placements[name] = Placement(cta_index, warp_index)
        if not placements:
            raise ScopeTreeError("scope tree has no threads")
        object.__setattr__(self, "_placements", placements)

    # -- construction helpers -------------------------------------------

    @staticmethod
    def intra_warp(names):
        """All threads in one warp of one CTA."""
        return ScopeTree(((tuple(names),),))

    @staticmethod
    def intra_cta(names):
        """All threads in the same CTA but different warps (the paper's
        ``intra-CTA`` configuration, Sec. 2.1)."""
        return ScopeTree((tuple((name,) for name in names),))

    @staticmethod
    def inter_cta(names):
        """Each thread in its own CTA (the paper's ``inter-CTA``)."""
        return ScopeTree(tuple((((name,),)) for name in names))

    @staticmethod
    def for_threads(names, config):
        """Build a tree for ``names`` from a config string:
        ``"intra-warp"``, ``"intra-cta"`` or ``"inter-cta"``."""
        builders = {
            "intra-warp": ScopeTree.intra_warp,
            "intra-cta": ScopeTree.intra_cta,
            "inter-cta": ScopeTree.inter_cta,
        }
        if config not in builders:
            raise ScopeTreeError("unknown scope configuration %r" % config)
        return builders[config](names)

    # -- parsing ----------------------------------------------------------

    @staticmethod
    def parse(text):
        """Parse the Fig. 12 syntax: ``(grid (cta (warp T0) (warp T1)))``.

        The leading ``ScopeTree`` keyword and outer parentheses are both
        optional; ``block``/``work-group`` are accepted for ``cta`` and
        ``wavefront`` for ``warp``.
        """
        tokens = re.findall(r"\(|\)|[^\s()]+", text)
        if tokens and tokens[0] == "ScopeTree":
            tokens = tokens[1:]
        tree, rest = _parse_node(tokens)
        if rest:
            raise ScopeTreeError("trailing tokens in scope tree: %r" % rest)
        return tree

    # -- queries ----------------------------------------------------------

    @property
    def threads(self):
        """Thread names in placement order (CTA-major, then warp)."""
        return [name for cta in self.ctas for warp in cta for name in warp]

    def placement(self, name):
        try:
            return self._placements[name]
        except KeyError:
            raise ScopeTreeError("unknown thread %r" % name)

    def same_warp(self, a, b):
        pa, pb = self.placement(a), self.placement(b)
        return pa.cta == pb.cta and pa.warp == pb.warp

    def same_cta(self, a, b):
        return self.placement(a).cta == self.placement(b).cta

    def same_grid(self, a, b):
        self.placement(a), self.placement(b)  # validate both names
        return True

    @property
    def n_ctas(self):
        return len(self.ctas)

    def classify(self):
        """Describe the configuration: ``intra-warp``, ``intra-cta``,
        ``inter-cta`` or ``mixed``."""
        names = self.threads
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1:]]
        if not pairs:
            return "single"
        if all(self.same_warp(a, b) for a, b in pairs):
            return "intra-warp"
        if all(self.same_cta(a, b) for a, b in pairs):
            return "intra-cta"
        if all(not self.same_cta(a, b) for a, b in pairs):
            return "inter-cta"
        return "mixed"

    def __str__(self):
        ctas = " ".join(
            "(cta %s)" % " ".join("(warp %s)" % " ".join(warp) for warp in cta)
            for cta in self.ctas)
        return "(grid %s)" % ctas


_CTA_WORDS = {"cta", "block", "work-group", "workgroup"}
_WARP_WORDS = {"warp", "wavefront"}


def _parse_node(tokens):
    if not tokens:
        raise ScopeTreeError("unexpected end of scope tree")
    if tokens[0] != "(":
        raise ScopeTreeError("expected '(' in scope tree, got %r" % tokens[0])
    if len(tokens) < 2:
        raise ScopeTreeError("truncated scope tree")
    keyword, rest = tokens[1], tokens[2:]
    if keyword == "grid" or keyword == "ndrange":
        ctas = []
        while rest and rest[0] == "(":
            cta, rest = _parse_cta(rest)
            ctas.append(cta)
        rest = _expect_close(rest)
        return ScopeTree(tuple(ctas)), rest
    if keyword in _CTA_WORDS:
        # A bare CTA node: wrap in a single grid.
        cta, rest = _parse_cta(tokens)
        return ScopeTree((cta,)), rest
    raise ScopeTreeError("expected grid/cta node, got %r" % keyword)


def _parse_cta(tokens):
    keyword, rest = tokens[1], tokens[2:]
    if keyword not in _CTA_WORDS:
        raise ScopeTreeError("expected cta node, got %r" % keyword)
    warps = []
    while rest and rest[0] == "(":
        warp, rest = _parse_warp(rest)
        warps.append(warp)
    rest = _expect_close(rest)
    return tuple(warps), rest


def _parse_warp(tokens):
    keyword, rest = tokens[1], tokens[2:]
    if keyword not in _WARP_WORDS:
        raise ScopeTreeError("expected warp node, got %r" % keyword)
    names = []
    while rest and rest[0] not in ("(", ")"):
        names.append(rest[0])
        rest = rest[1:]
    rest = _expect_close(rest)
    return tuple(names), rest


def _expect_close(tokens):
    if not tokens or tokens[0] != ")":
        raise ScopeTreeError("expected ')' in scope tree")
    return tokens[1:]
