"""GPU execution and memory hierarchy: scope trees and memory maps."""

from .memorymap import MemoryMap
from .scopetree import Placement, ScopeTree

__all__ = ["MemoryMap", "Placement", "ScopeTree"]
