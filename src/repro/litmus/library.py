"""The litmus tests of the paper, as programmatic builders.

Every figure's test is reproduced here with its exact instruction
sequence, placement, memory map, initial values and final condition:

========  ======================================  =======================
Paper     Test                                    Builder
========  ======================================  =======================
Fig. 1    coRR                                    :func:`corr`
Fig. 3    mp-L1 (fence in {none,cta,gl,sys})      :func:`mp_l1`
Fig. 4    coRR-L2-L1 (fence sweep)                :func:`corr_l2_l1`
Fig. 5    mp-volatile                             :func:`mp_volatile`
Fig. 7    dlb-mp (deque message passing)          :func:`dlb_mp`
Fig. 8    dlb-lb (deque load buffering)           :func:`dlb_lb`
Fig. 9    cas-sl (CUDA-by-Example spin lock)      :func:`cas_sl`
Fig. 11   sl-future (He-Yu spin lock)             :func:`sl_future`
Fig. 12   sb (store buffering, mixed regions)     :func:`sb`
Fig. 14   mp (message passing)                    :func:`mp`
Sec. 6    lb / lb+membar.ctas                     :func:`lb`
========  ======================================  =======================

Builders take keyword options (fence scope, placement, fixes applied) and
return :class:`~repro.litmus.test.LitmusTest` instances.  The
``PAPER_TESTS`` registry maps canonical names to zero-argument thunks for
the exact configurations whose observation counts the paper reports.
"""

from ..hierarchy import MemoryMap, ScopeTree
from ..ptx.instructions import (Add, AtomCas, AtomExch, Guard, Ld, Membar,
                                Mov, Setp, St)
from ..ptx.operands import Addr, Imm, Loc, Reg
from ..ptx.program import ThreadProgram
from ..ptx.types import CacheOp, Scope
from .condition import And, Condition, RegEq
from .test import LitmusTest


def _thread(tid, instructions):
    return ThreadProgram(tid=tid, instructions=tuple(instructions))


def _exists(*atoms):
    expr = atoms[0]
    for atom in atoms[1:]:
        expr = And(expr, atom)
    return Condition("exists", expr)


def _scope_tree(placement, names):
    return ScopeTree.for_threads(names, placement)


def _fence_name(fence):
    return "no-op" if fence is None else "membar.%s" % fence.value


def _maybe_fence(instructions, fence, guard=None):
    if fence is not None:
        instructions.append(Membar(fence, guard=guard))


# ---------------------------------------------------------------------------
# Fig. 1 — coRR: coherence of read-read pairs.
# ---------------------------------------------------------------------------

def corr(placement="intra-cta", cop=CacheOp.CG):
    """Fig. 1: read-read coherence violation test.

    T0 stores 1 to ``x``; T1 loads ``x`` twice.  The weak outcome has the
    first load seeing the new value and the second the stale one
    (``r1=1 /\\ r2=0``) — allowed by SPARC RMO, observed on Fermi/Kepler.
    """
    t0 = _thread(0, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
    t1 = _thread(1, [
        Ld(Reg("r1"), Addr(Loc("x")), cop=cop),
        Ld(Reg("r2"), Addr(Loc("x")), cop=cop),
    ])
    return LitmusTest(
        name="coRR", threads=(t0, t1),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        condition=_exists(RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
        description="PTX test for coherent reads (Fig. 1)", idiom="coRR")


# ---------------------------------------------------------------------------
# Fig. 3 — mp-L1: message passing with loads targeting the L1.
# ---------------------------------------------------------------------------

def mp_l1(fence=None, placement="inter-cta"):
    """Fig. 3: mp with ``.ca`` (L1) loads and ``.cg`` stores, inter-CTA.

    The stores bear ``.cg`` because PTX has no L1-targeting store
    operator.  On the Tesla C2075 the weak outcome survives every fence.
    """
    t0_body = [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)]
    _maybe_fence(t0_body, fence)
    t0_body.append(St(Addr(Loc("y")), Imm(1), cop=CacheOp.CG))
    t1_body = [Ld(Reg("r1"), Addr(Loc("y")), cop=CacheOp.CA)]
    _maybe_fence(t1_body, fence)
    t1_body.append(Ld(Reg("r2"), Addr(Loc("x")), cop=CacheOp.CA))
    suffix = "" if fence is None else "+%ss" % _fence_name(fence)
    return LitmusTest(
        name="mp-L1" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        condition=_exists(RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
        description="PTX mp with L1 cache operators (Fig. 3), fence=%s"
                    % _fence_name(fence),
        idiom="mp")


# ---------------------------------------------------------------------------
# Fig. 4 — coRR-L2-L1: coRR mixing cache operators.
# ---------------------------------------------------------------------------

def corr_l2_l1(fence=None, placement="intra-cta"):
    """Fig. 4: read ``x`` from L2 (``.cg``) then from L1 (``.ca``).

    Tests whether an L2 load evicts the matching stale L1 line as the PTX
    manual suggests; on Fermi no fence makes the second load reliable.
    """
    t0 = _thread(0, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
    t1_body = [Ld(Reg("r1"), Addr(Loc("x")), cop=CacheOp.CG)]
    _maybe_fence(t1_body, fence)
    t1_body.append(Ld(Reg("r2"), Addr(Loc("x")), cop=CacheOp.CA))
    suffix = "" if fence is None else "+%s" % _fence_name(fence)
    return LitmusTest(
        name="coRR-L2-L1" + suffix, threads=(t0, _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        condition=_exists(RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
        description="PTX coRR mixing cache operators (Fig. 4), fence=%s"
                    % _fence_name(fence),
        idiom="coRR")


# ---------------------------------------------------------------------------
# Fig. 5 — mp-volatile: volatile accesses in shared memory.
# ---------------------------------------------------------------------------

def mp_volatile(placement="intra-cta"):
    """Fig. 5: mp where every access is ``.volatile`` and the locations
    are in shared memory.  Contrary to the PTX manual, ``.volatile`` does
    not restore SC on Fermi/Kepler."""
    t0 = _thread(0, [
        St(Addr(Loc("x")), Imm(1), volatile=True),
        St(Addr(Loc("y")), Imm(1), volatile=True),
    ])
    t1 = _thread(1, [
        Ld(Reg("r1"), Addr(Loc("y")), volatile=True),
        Ld(Reg("r2"), Addr(Loc("x")), volatile=True),
    ])
    return LitmusTest(
        name="mp-volatile", threads=(t0, t1),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        memory_map=MemoryMap({"x": "shared", "y": "shared"}),
        condition=_exists(RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
        description="PTX mp with volatiles (Fig. 5)", idiom="mp")


# ---------------------------------------------------------------------------
# Fig. 7 — dlb-mp: the Cederman-Tsigas deque loses a pushed task.
# ---------------------------------------------------------------------------

def dlb_mp(fences=False, placement="inter-cta"):
    """Fig. 7: mp distilled from the work-stealing deque (Fig. 6).

    ``d`` models the ``tasks`` array slot and ``t`` the volatile ``tail``
    index.  T0 pushes (write task, increment tail); T1 steals (read tail,
    conditionally read task).  Weak outcome: the steal sees the new tail
    but a stale task (``r0=1 /\\ r1=0``).  ``fences=True`` adds the
    ``membar.gl`` fences marked ``(+)`` in the paper.
    """
    t0_body = [St(Addr(Loc("d")), Imm(1), cop=CacheOp.CG)]
    if fences:
        t0_body.append(Membar(Scope.GL))
    t0_body.extend([
        Ld(Reg("r2"), Addr(Loc("t")), volatile=True),
        Add(Reg("r2"), Reg("r2"), Imm(1)),
        St(Addr(Loc("t")), Reg("r2"), volatile=True),
    ])
    guard = Guard("p4", negated=True)
    t1_body = [
        Ld(Reg("r0"), Addr(Loc("t")), volatile=True),
        Setp("eq", Reg("p4"), Reg("r0"), Imm(0)),
    ]
    if fences:
        t1_body.append(Membar(Scope.GL, guard=guard))
    t1_body.append(Ld(Reg("r1"), Addr(Loc("d")), cop=CacheOp.CG, guard=guard))
    suffix = "+membar.gls" if fences else ""
    return LitmusTest(
        name="dlb-mp" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        condition=_exists(RegEq(1, "r0", 1), RegEq(1, "r1", 0)),
        description="PTX mp from load-balancing (Fig. 7), fences=%s" % fences,
        idiom="mp")


# ---------------------------------------------------------------------------
# Fig. 8 — dlb-lb: the deque steal reads a later pop's push.
# ---------------------------------------------------------------------------

def dlb_lb(fences=False, placement="inter-cta"):
    """Fig. 8: load buffering distilled from the work-stealing deque.

    T0 pops (CAS on ``h``) then pushes a new task (store to ``t``); T1
    steals: reads the task then CASes ``h``.  Weak outcome: T1's steal
    reads the *later* push and T0's CAS reads T1's CAS
    (``0:r0=1 /\\ 1:r1=1``), so the deque loses a task.
    """
    t0_body = [AtomCas(Reg("r0"), Addr(Loc("h")), Imm(0), Imm(1))]
    if fences:
        t0_body.append(Membar(Scope.GL))
    t0_body.extend([
        Mov(Reg("r2"), Imm(1)),
        St(Addr(Loc("t")), Reg("r2"), cop=CacheOp.CG),
    ])
    t1_body = [Ld(Reg("r1"), Addr(Loc("t")), cop=CacheOp.CG)]
    if fences:
        t1_body.append(Membar(Scope.GL))
    t1_body.append(AtomCas(Reg("r3"), Addr(Loc("h")), Imm(0), Imm(1)))
    suffix = "+membar.gls" if fences else ""
    return LitmusTest(
        name="dlb-lb" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        condition=_exists(RegEq(0, "r0", 1), RegEq(1, "r1", 1)),
        description="PTX lb from load-balancing (Fig. 8), fences=%s" % fences,
        idiom="lb")


# ---------------------------------------------------------------------------
# Fig. 9 — cas-sl: the CUDA-by-Example spin lock reads stale values.
# ---------------------------------------------------------------------------

def cas_sl(fences=False, placement="inter-cta"):
    """Fig. 9: spin lock using compare-and-swap (CUDA by Example, Fig. 2).

    ``m`` is the mutex (initially locked, ``m=1``); ``x`` is critical-
    section data.  T0 writes ``x`` and releases with ``atom.exch``; T1
    acquires with ``atom.cas`` and, if acquired, loads ``x``.  Weak
    outcome: lock acquired yet a stale ``x`` read
    (``1:r1=0 /\\ 1:r3=0``).
    """
    t0_body = [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)]
    if fences:
        t0_body.append(Membar(Scope.GL))
    t0_body.append(AtomExch(Reg("r0"), Addr(Loc("m")), Imm(0)))
    guard = Guard("p2")
    t1_body = [
        AtomCas(Reg("r1"), Addr(Loc("m")), Imm(0), Imm(1)),
        Setp("eq", Reg("p2"), Reg("r1"), Imm(0)),
    ]
    if fences:
        t1_body.append(Membar(Scope.GL, guard=guard))
    t1_body.append(Ld(Reg("r3"), Addr(Loc("x")), cop=CacheOp.CG, guard=guard))
    suffix = "+membar.gls" if fences else ""
    return LitmusTest(
        name="cas-sl" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        init_mem={"x": 0, "m": 1},
        condition=_exists(RegEq(1, "r1", 0), RegEq(1, "r3", 0)),
        description="PTX compare-and-swap spin lock (Fig. 9), fences=%s" % fences,
        idiom="mp")


def exch_sl(fences=False, placement="inter-cta"):
    """The Stuart-Owens variant of cas-sl (Table 2 row ``exch-sl``): the
    release uses an unconditional atomic exchange on both sides and the
    acquire is an exchange rather than a CAS."""
    t0_body = [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)]
    if fences:
        t0_body.append(Membar(Scope.GL))
    t0_body.append(AtomExch(Reg("r0"), Addr(Loc("m")), Imm(0)))
    guard = Guard("p2")
    t1_body = [
        AtomExch(Reg("r1"), Addr(Loc("m")), Imm(1)),
        Setp("eq", Reg("p2"), Reg("r1"), Imm(0)),
    ]
    if fences:
        t1_body.append(Membar(Scope.GL, guard=guard))
    t1_body.append(Ld(Reg("r3"), Addr(Loc("x")), cop=CacheOp.CG, guard=guard))
    suffix = "+membar.gls" if fences else ""
    return LitmusTest(
        name="exch-sl" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        init_mem={"x": 0, "m": 1},
        condition=_exists(RegEq(1, "r1", 0), RegEq(1, "r3", 0)),
        description="Stuart-Owens exchange spin lock (Table 2), fences=%s" % fences,
        idiom="mp")


# ---------------------------------------------------------------------------
# Fig. 11 — sl-future: the He-Yu lock reads values from the future.
# ---------------------------------------------------------------------------

def sl_future(fixed=False, placement="inter-cta"):
    """Fig. 11: spin-lock future-value test distilled from He-Yu (Fig. 10).

    T0 is inside a critical section: it reads ``x`` then releases ``m``.
    T1 acquires ``m`` and, if successful, writes ``x`` in the next
    critical section.  Weak outcome: T0's read sees T1's *future* write
    (``0:r0=1 /\\ 1:r2=0``), violating isolation.

    ``fixed=False`` reproduces the original code: a plain store release
    followed by a trailing ``membar.gl`` (which cannot help).
    ``fixed=True`` applies the paper's fix: fence before release, release
    via ``atom.exch``, and a fence after the acquire.
    """
    t0_body = [Ld(Reg("r0"), Addr(Loc("x")), cop=CacheOp.CG)]
    if fixed:
        t0_body.append(Membar(Scope.GL))
        t0_body.append(AtomExch(Reg("r1"), Addr(Loc("m")), Imm(0)))
    else:
        t0_body.append(St(Addr(Loc("m")), Imm(0), cop=CacheOp.CG))
        t0_body.append(Membar(Scope.GL))
    guard = Guard("p")
    t1_body = [
        AtomCas(Reg("r2"), Addr(Loc("m")), Imm(0), Imm(1)),
        Setp("eq", Reg("p"), Reg("r2"), Imm(0)),
        Mov(Reg("r3"), Imm(1), guard=guard),
    ]
    if fixed:
        t1_body.append(Membar(Scope.GL, guard=guard))
    t1_body.append(St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG, guard=guard))
    suffix = "+fixed" if fixed else ""
    return LitmusTest(
        name="sl-future" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        init_mem={"x": 0, "m": 1},
        condition=_exists(RegEq(0, "r0", 1), RegEq(1, "r2", 0)),
        description="PTX spin lock future value test (Fig. 11), fixed=%s" % fixed,
        idiom="mp")


# ---------------------------------------------------------------------------
# Classic idioms: sb, mp, lb (Figs. 12, 14; Table 6; Sec. 6).
# ---------------------------------------------------------------------------

def sb(placement="inter-cta", memory_map=None, fence=None):
    """Fig. 12: store buffering.  Each thread stores to one location and
    loads the other; the weak outcome has both loads seeing the initial
    state (``0:r2=0 /\\ 1:r2=0``)."""
    def side(tid, mine, other):
        body = [
            Mov(Reg("r0"), Imm(1)),
            St(Addr(Loc(mine)), Reg("r0"), cop=CacheOp.CG),
        ]
        _maybe_fence(body, fence)
        body.append(Ld(Reg("r2"), Addr(Loc(other)), cop=CacheOp.CG))
        return _thread(tid, body)

    suffix = "" if fence is None else "+%ss" % _fence_name(fence)
    return LitmusTest(
        name="sb" + suffix, threads=(side(0, "x", "y"), side(1, "y", "x")),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        memory_map=memory_map or MemoryMap(),
        condition=_exists(RegEq(0, "r2", 0), RegEq(1, "r2", 0)),
        description="Store buffering (Fig. 12)", idiom="sb")


def sb_fig12():
    """The exact Fig. 12 configuration: intra-CTA, ``x`` shared and ``y``
    global, registers bound through ``.b64`` address registers."""
    test = sb(placement="intra-cta",
              memory_map=MemoryMap({"x": "shared", "y": "global"}))
    return LitmusTest(
        name="SB", threads=test.threads, scope_tree=test.scope_tree,
        memory_map=test.memory_map, condition=test.condition,
        description="GPU PTX litmus test sb (Fig. 12)", idiom="sb")


def mp(fence0=None, fence1=None, placement="inter-cta", cop=CacheOp.CG,
       memory_map=None):
    """Message passing (Figs. 3 and 14).  T0 writes data then flag; T1
    reads flag then data.  Weak outcome: flag seen, stale data
    (``1:r1=1 /\\ 1:r2=0``).  ``fence0``/``fence1`` insert ``membar``
    fences on the writer/reader sides."""
    t0_body = [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)]
    _maybe_fence(t0_body, fence0)
    t0_body.append(St(Addr(Loc("y")), Imm(1), cop=CacheOp.CG))
    t1_body = [Ld(Reg("r1"), Addr(Loc("y")), cop=cop)]
    _maybe_fence(t1_body, fence1)
    t1_body.append(Ld(Reg("r2"), Addr(Loc("x")), cop=cop))
    if fence0 is None and fence1 is None:
        suffix = ""
    elif fence0 == fence1:
        suffix = "+%ss" % _fence_name(fence0)
    else:
        suffix = "+%s+%s" % (_fence_name(fence0), _fence_name(fence1))
    return LitmusTest(
        name="mp" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        memory_map=memory_map or MemoryMap(),
        condition=_exists(RegEq(1, "r1", 1), RegEq(1, "r2", 0)),
        description="Message passing, fences=(%s, %s)"
                    % (_fence_name(fence0), _fence_name(fence1)),
        idiom="mp")


def mp_fig14():
    """The Fig. 14 execution example: intra-CTA mp with a ``membar.cta``
    between the writes and a ``membar.gl`` between the reads."""
    test = mp(fence0=Scope.CTA, fence1=Scope.GL, placement="intra-cta")
    return LitmusTest(
        name="mp-fig14", threads=test.threads, scope_tree=test.scope_tree,
        condition=test.condition,
        description="mp execution of Fig. 14 (membar.cta / membar.gl)",
        idiom="mp")


def lb(fence=None, placement="inter-cta"):
    """Load buffering: each thread loads one location then stores to the
    other; weak outcome has both loads seeing the other's store
    (``0:r1=1 /\\ 1:r2=1``).  ``lb(fence=Scope.CTA)`` is the
    ``lb+membar.ctas`` test of Sec. 6, observed on GTX Titan and GTX 660
    but forbidden by the operational model of Sorensen et al."""
    t0_body = [Ld(Reg("r1"), Addr(Loc("x")), cop=CacheOp.CG)]
    _maybe_fence(t0_body, fence)
    t0_body.append(St(Addr(Loc("y")), Imm(1), cop=CacheOp.CG))
    t1_body = [Ld(Reg("r2"), Addr(Loc("y")), cop=CacheOp.CG)]
    _maybe_fence(t1_body, fence)
    t1_body.append(St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG))
    suffix = "" if fence is None else "+%ss" % _fence_name(fence)
    return LitmusTest(
        name="lb" + suffix, threads=(_thread(0, t0_body), _thread(1, t1_body)),
        scope_tree=_scope_tree(placement, ["T0", "T1"]),
        condition=_exists(RegEq(0, "r1", 1), RegEq(1, "r2", 1)),
        description="Load buffering, fence=%s" % _fence_name(fence), idiom="lb")


# ---------------------------------------------------------------------------
# Registry of the paper's reported configurations.
# ---------------------------------------------------------------------------

#: name -> zero-argument builder for each configuration whose observation
#: counts the paper reports.
PAPER_TESTS = {
    "coRR": corr,
    "mp-L1": mp_l1,
    "mp-L1+membar.ctas": lambda: mp_l1(fence=Scope.CTA),
    "mp-L1+membar.gls": lambda: mp_l1(fence=Scope.GL),
    "mp-L1+membar.syss": lambda: mp_l1(fence=Scope.SYS),
    "coRR-L2-L1": corr_l2_l1,
    "coRR-L2-L1+membar.cta": lambda: corr_l2_l1(fence=Scope.CTA),
    "coRR-L2-L1+membar.gl": lambda: corr_l2_l1(fence=Scope.GL),
    "coRR-L2-L1+membar.sys": lambda: corr_l2_l1(fence=Scope.SYS),
    "mp-volatile": mp_volatile,
    "dlb-mp": dlb_mp,
    "dlb-mp+membar.gls": lambda: dlb_mp(fences=True),
    "dlb-lb": dlb_lb,
    "dlb-lb+membar.gls": lambda: dlb_lb(fences=True),
    "cas-sl": cas_sl,
    "cas-sl+membar.gls": lambda: cas_sl(fences=True),
    "exch-sl": exch_sl,
    "sl-future": sl_future,
    "sl-future+fixed": lambda: sl_future(fixed=True),
    "sb": sb,
    "SB-fig12": sb_fig12,
    "mp": mp,
    "mp-fig14": mp_fig14,
    "mp+membar.gls": lambda: mp(fence0=Scope.GL, fence1=Scope.GL),
    "lb": lb,
    "lb+membar.ctas": lambda: lb(fence=Scope.CTA),
    "lb+membar.gls": lambda: lb(fence=Scope.GL),
}


def build(name):
    """Instantiate a registered paper test by name."""
    try:
        return PAPER_TESTS[name]()
    except KeyError:
        raise KeyError("unknown paper test %r; known: %s"
                       % (name, ", ".join(sorted(PAPER_TESTS))))


def all_paper_tests():
    """Instantiate every registered configuration (name -> LitmusTest)."""
    return {name: builder() for name, builder in PAPER_TESTS.items()}
