"""Final-state conditions of litmus tests.

A test ends with an assertion over the final state of registers and
memory, e.g. Fig. 12 line 12: ``exists (0:r2=0 /\\ 1:r2=0)``.  This module
provides the condition AST, a parser, and evaluation against a
:class:`FinalState`.
"""

import re
from dataclasses import dataclass

from ..errors import LitmusSyntaxError


@dataclass(frozen=True)
class FinalState:
    """One outcome of a litmus test run.

    ``regs`` maps ``(thread_index, register_name)`` to an integer;
    ``mem`` maps location names to integers.  Instances are hashable so
    the harness can build outcome histograms.
    """

    regs: tuple  # sorted tuple of ((tid, reg), value)
    mem: tuple  # sorted tuple of (loc, value)

    @staticmethod
    def make(regs=None, mem=None):
        regs = regs or {}
        mem = mem or {}
        return FinalState(tuple(sorted(regs.items())), tuple(sorted(mem.items())))

    def reg(self, tid, name):
        for (t, r), value in self.regs:
            if t == tid and r == name:
                return value
        raise KeyError((tid, name))

    def loc(self, name):
        for loc, value in self.mem:
            if loc == name:
                return value
        raise KeyError(name)

    def reg_dict(self):
        return dict(self.regs)

    def mem_dict(self):
        return dict(self.mem)

    def __str__(self):
        parts = ["%d:%s=%d" % (t, r, v) for (t, r), v in self.regs]
        parts.extend("%s=%d" % (loc, v) for loc, v in self.mem)
        return "; ".join(parts)


class Expr:
    """Base class of condition expressions."""

    def evaluate(self, state):
        raise NotImplementedError

    def registers(self):
        """The ``(tid, reg)`` pairs this expression mentions."""
        return set()

    def locations(self):
        """The memory locations this expression mentions."""
        return set()

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __invert__(self):
        return Not(self)


@dataclass(frozen=True)
class RegEq(Expr):
    """``tid:reg = value``."""

    tid: int
    reg: str
    value: int

    def evaluate(self, state):
        try:
            return state.reg(self.tid, self.reg) == self.value
        except KeyError:
            return False

    def registers(self):
        return {(self.tid, self.reg)}

    def __str__(self):
        return "%d:%s=%d" % (self.tid, self.reg, self.value)


@dataclass(frozen=True)
class MemEq(Expr):
    """``location = value`` over the final memory state."""

    loc: str
    value: int

    def evaluate(self, state):
        try:
            return state.loc(self.loc) == self.value
        except KeyError:
            return False

    def locations(self):
        return {self.loc}

    def __str__(self):
        return "%s=%d" % (self.loc, self.value)


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, state):
        return self.left.evaluate(state) and self.right.evaluate(state)

    def registers(self):
        return self.left.registers() | self.right.registers()

    def locations(self):
        return self.left.locations() | self.right.locations()

    def __str__(self):
        return r"%s /\ %s" % (self.left, self.right)


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, state):
        return self.left.evaluate(state) or self.right.evaluate(state)

    def registers(self):
        return self.left.registers() | self.right.registers()

    def locations(self):
        return self.left.locations() | self.right.locations()

    def __str__(self):
        return r"(%s \/ %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Not(Expr):
    body: Expr

    def evaluate(self, state):
        return not self.body.evaluate(state)

    def registers(self):
        return self.body.registers()

    def locations(self):
        return self.body.locations()

    def __str__(self):
        return "~(%s)" % self.body


@dataclass(frozen=True)
class Always(Expr):
    """The tautology: holds for every final state.

    The inner expression of :func:`trivial_condition`; mentions no
    registers and no locations, so it never perturbs a test's observed
    registers or address map.
    """

    def evaluate(self, state):
        return True

    def __str__(self):
        return "true"


@dataclass(frozen=True)
class Condition:
    """A quantified final condition: ``exists expr`` or ``forall expr``.

    For ``exists`` conditions (the common case) an execution *witnesses*
    the condition when the expression holds; the paper's ``obs`` counts
    are witness counts.
    """

    quantifier: str  # "exists" | "forall"
    expr: Expr

    def __post_init__(self):
        if self.quantifier not in ("exists", "forall"):
            raise LitmusSyntaxError("unknown quantifier %r" % self.quantifier)

    def holds(self, state):
        """Whether this single outcome satisfies the inner expression."""
        return self.expr.evaluate(state)

    def verdict(self, states):
        """Evaluate the quantified condition over a set of outcomes."""
        if self.quantifier == "exists":
            return any(self.expr.evaluate(state) for state in states)
        return all(self.expr.evaluate(state) for state in states)

    def registers(self):
        return self.expr.registers()

    def locations(self):
        return self.expr.locations()

    def __str__(self):
        return "%s (%s)" % (self.quantifier, self.expr)


def trivial_condition():
    """The trivial (always-true) condition: ``forall (true)``.

    Application launches (:class:`repro.apps.runtime.Grid`) assert
    nothing about their final state — callers inspect the returned
    memory image instead.  This is the explicit constructor for that
    case, replacing ad-hoc placeholder conditions: it holds for every
    outcome, quantifies over nothing, and mentions no registers or
    locations (so the machine observes no registers on its behalf).
    """
    return Condition("forall", Always())


# -- parsing ---------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<and>/\\|&&|\band\b)|(?P<or>\\/|\|\||\bor\b)|(?P<not>~|!|\bnot\b)"
    r"|(?P<lpar>\()|(?P<rpar>\))|(?P<atom>[0-9]+:[A-Za-z_%]\w*\s*=\s*-?\d+"
    r"|[A-Za-z_]\w*\s*=\s*-?\d+))")

_ATOM_REG_RE = re.compile(r"^(\d+):([A-Za-z_%]\w*)\s*=\s*(-?\d+)$")
_ATOM_MEM_RE = re.compile(r"^([A-Za-z_]\w*)\s*=\s*(-?\d+)$")


def _tokenize(text):
    tokens, position = [], 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            rest = text[position:].strip()
            if not rest:
                break
            raise LitmusSyntaxError("cannot tokenize condition at %r" % rest)
        position = match.end()
        for kind in ("and", "or", "not", "lpar", "rpar", "atom"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Parser:
    """Recursive-descent parser: ``or`` < ``and`` < ``not`` < atoms."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    def peek(self):
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return (None, None)

    def take(self):
        token = self.peek()
        self.position += 1
        return token

    def parse_expr(self):
        left = self.parse_and()
        while self.peek()[0] == "or":
            self.take()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_unary()
        while self.peek()[0] == "and":
            self.take()
            left = And(left, self.parse_unary())
        return left

    def parse_unary(self):
        kind, value = self.peek()
        if kind == "not":
            self.take()
            return Not(self.parse_unary())
        if kind == "lpar":
            self.take()
            inner = self.parse_expr()
            if self.take()[0] != "rpar":
                raise LitmusSyntaxError("missing ')' in condition")
            return inner
        if kind == "atom":
            self.take()
            return _parse_atom(value)
        raise LitmusSyntaxError("unexpected token %r in condition" % (value,))


def _parse_atom(text):
    text = text.strip()
    match = _ATOM_REG_RE.match(text)
    if match:
        return RegEq(int(match.group(1)), match.group(2), int(match.group(3)))
    match = _ATOM_MEM_RE.match(text)
    if match:
        return MemEq(match.group(1), int(match.group(2)))
    raise LitmusSyntaxError("malformed condition atom %r" % text)


def parse_condition(text):
    """Parse ``exists (...)`` / ``forall (...)`` into a :class:`Condition`.

    A bare expression (no quantifier) defaults to ``exists``, matching the
    paper's ``final:`` notation.
    """
    text = text.strip()
    quantifier = "exists"
    for word in ("exists", "forall", "final:"):
        if text.startswith(word):
            quantifier = "forall" if word == "forall" else "exists"
            text = text[len(word):].strip()
            break
    parser = _Parser(_tokenize(text))
    expr = parser.parse_expr()
    if parser.position != len(parser.tokens):
        raise LitmusSyntaxError("trailing tokens in condition %r" % text)
    return Condition(quantifier, expr)
