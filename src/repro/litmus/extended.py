"""Multi-thread litmus shapes beyond the paper's figures.

The paper's validation corpus (10930 diy-generated tests, Sec. 5.4)
covers far more shapes than the figures show.  This module adds the
classic three- and four-thread idioms, parameterised by placement and
fences, for use in validation benchmarks and model exploration:

* **wrc** — write-to-read causality: T0 writes ``x``; T1 sees it and
  writes ``y``; T2 sees ``y`` but reads stale ``x``.
* **isa2** — a three-thread message-passing chain through two flags.
* **iriw** — independent reads of independent writes: two writers, two
  readers that disagree on the order of the writes.
* **rwc** — read-to-write causality.

Scoped placements make these interesting on GPUs: e.g. WRC with T0/T1
in one CTA and T2 in another probes whether intra-CTA causality is
visible across the chip.
"""

from ..hierarchy import ScopeTree
from ..ptx.instructions import Guard, Ld, Membar, Setp, St
from ..ptx.operands import Addr, Imm, Loc, Reg
from ..ptx.program import ThreadProgram
from ..ptx.types import CacheOp
from .condition import And, Condition, RegEq
from .test import LitmusTest


def _thread(tid, instructions):
    return ThreadProgram(tid=tid, instructions=tuple(instructions))


def _exists(*atoms):
    expr = atoms[0]
    for atom in atoms[1:]:
        expr = And(expr, atom)
    return Condition("exists", expr)


def _maybe(instructions, fence):
    if fence is not None:
        instructions.append(Membar(fence))
    return instructions


def _tree(groups):
    """Build a scope tree from CTA groups of thread names."""
    return ScopeTree(tuple(tuple((name,) for name in group)
                           for group in groups))


def wrc(fence1=None, fence2=None, groups=(("T0", "T1"), ("T2",))):
    """Write-to-read causality.

    T0: ``st x=1``.  T1: ``ld x; [fence1]; st y=1``.  T2: ``ld y;
    [fence2]; ld x``.  Weak outcome: T1 saw ``x``, T2 saw ``y`` but not
    ``x`` (``1:r0=1 /\\ 2:r1=1 /\\ 2:r2=0``).
    """
    t0 = _thread(0, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
    t1_body = _maybe([Ld(Reg("r0"), Addr(Loc("x")), cop=CacheOp.CG)], fence1)
    t1_body.append(St(Addr(Loc("y")), Imm(1), cop=CacheOp.CG))
    t2_body = _maybe([Ld(Reg("r1"), Addr(Loc("y")), cop=CacheOp.CG)], fence2)
    t2_body.append(Ld(Reg("r2"), Addr(Loc("x")), cop=CacheOp.CG))
    return LitmusTest(
        name="wrc", threads=(t0, _thread(1, t1_body), _thread(2, t2_body)),
        scope_tree=_tree(groups),
        condition=_exists(RegEq(1, "r0", 1), RegEq(2, "r1", 1),
                          RegEq(2, "r2", 0)),
        description="write-to-read causality", idiom="mp")


def isa2(fence0=None, fence1=None, fence2=None,
         groups=(("T0",), ("T1",), ("T2",))):
    """ISA2: a message-passing chain through two flags.

    T0: ``st x=1; [f0]; st y=1``.  T1: ``ld y; [f1]; st z=1``.
    T2: ``ld z; [f2]; ld x``.  Weak: the chain is observed but ``x`` is
    stale at the end.
    """
    t0_body = _maybe([St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)], fence0)
    t0_body.append(St(Addr(Loc("y")), Imm(1), cop=CacheOp.CG))
    t1_body = _maybe([Ld(Reg("r0"), Addr(Loc("y")), cop=CacheOp.CG)], fence1)
    t1_body.append(St(Addr(Loc("z")), Imm(1), cop=CacheOp.CG))
    t2_body = _maybe([Ld(Reg("r1"), Addr(Loc("z")), cop=CacheOp.CG)], fence2)
    t2_body.append(Ld(Reg("r2"), Addr(Loc("x")), cop=CacheOp.CG))
    return LitmusTest(
        name="isa2",
        threads=(_thread(0, t0_body), _thread(1, t1_body), _thread(2, t2_body)),
        scope_tree=_tree(groups),
        condition=_exists(RegEq(1, "r0", 1), RegEq(2, "r1", 1),
                          RegEq(2, "r2", 0)),
        description="three-thread message-passing chain", idiom="mp")


def iriw(fence1=None, fence3=None,
         groups=(("T0",), ("T1",), ("T2",), ("T3",))):
    """Independent reads of independent writes.

    T0: ``st x=1``.  T2: ``st y=1``.  T1 reads ``x`` then ``y``; T3
    reads ``y`` then ``x``.  Weak: the readers disagree about the order
    of the two writes (both see the other location still 0).
    """
    t0 = _thread(0, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
    t2 = _thread(2, [St(Addr(Loc("y")), Imm(1), cop=CacheOp.CG)])
    t1_body = _maybe([Ld(Reg("r0"), Addr(Loc("x")), cop=CacheOp.CG)], fence1)
    t1_body.append(Ld(Reg("r1"), Addr(Loc("y")), cop=CacheOp.CG))
    t3_body = _maybe([Ld(Reg("r2"), Addr(Loc("y")), cop=CacheOp.CG)], fence3)
    t3_body.append(Ld(Reg("r3"), Addr(Loc("x")), cop=CacheOp.CG))
    return LitmusTest(
        name="iriw",
        threads=(t0, _thread(1, t1_body), t2, _thread(3, t3_body)),
        scope_tree=_tree(groups),
        condition=_exists(RegEq(1, "r0", 1), RegEq(1, "r1", 0),
                          RegEq(3, "r2", 1), RegEq(3, "r3", 0)),
        description="independent reads of independent writes", idiom="iriw")


def rwc(fence1=None, fence2=None, groups=(("T0",), ("T1",), ("T2",))):
    """Read-to-write causality.

    T0: ``st x=1``.  T1: ``ld x; [f1]; ld y``.  T2: ``st y=1; [f2];
    ld... `` — the classic RWC has T2 store ``y`` then read ``x``.
    Weak: T1 sees ``x`` but not ``y``; T2's read of ``x`` is stale.
    """
    t0 = _thread(0, [St(Addr(Loc("x")), Imm(1), cop=CacheOp.CG)])
    t1_body = _maybe([Ld(Reg("r0"), Addr(Loc("x")), cop=CacheOp.CG)], fence1)
    t1_body.append(Ld(Reg("r1"), Addr(Loc("y")), cop=CacheOp.CG))
    t2_body = _maybe([St(Addr(Loc("y")), Imm(1), cop=CacheOp.CG)], fence2)
    t2_body.append(Ld(Reg("r2"), Addr(Loc("x")), cop=CacheOp.CG))
    return LitmusTest(
        name="rwc",
        threads=(t0, _thread(1, t1_body), _thread(2, t2_body)),
        scope_tree=_tree(groups),
        condition=_exists(RegEq(1, "r0", 1), RegEq(1, "r1", 0),
                          RegEq(2, "r2", 0)),
        description="read-to-write causality", idiom="sb")


#: Named configurations for the validation benchmarks.
EXTENDED_TESTS = {
    "wrc": wrc,
    "wrc+cta-writersame": lambda: wrc(groups=(("T0", "T1"), ("T2",))),
    "wrc+all-inter": lambda: wrc(groups=(("T0",), ("T1",), ("T2",))),
    "isa2": isa2,
    "iriw": iriw,
    "iriw+readers-together": lambda: iriw(groups=(("T0",), ("T1", "T3"),
                                                  ("T2",))),
    "rwc": rwc,
}


def build_extended(name):
    return EXTENDED_TESTS[name]()
