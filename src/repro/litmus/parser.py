"""Parser for the GPU litmus text format (Fig. 12 of the paper).

The format::

    GPU_PTX SB
    { 0:.reg .s32 r0;  0:.reg .b64 r1 = x;  ...  y = 1; }
    T0               | T1               ;
    mov.s32 r0, 1    | mov.s32 r0, 1    ;
    st.cg.s32 [r1],r0 | st.cg.s32 [r1],r0 ;
    ScopeTree (grid (cta (warp T0) (warp T1)))
    x: shared, y: global
    exists (0:r2=0 /\\ 1:r2=0)

The init block declares typed registers per thread (optionally bound to a
location's address or an immediate) and initial memory values.  The scope
tree and memory map lines are optional; threads default to intra-CTA
placement and locations to global memory.
"""

import re

from ..errors import LitmusSyntaxError, PtxSyntaxError
from ..hierarchy import MemoryMap, ScopeTree
from ..ptx.operands import Imm, Loc
from ..ptx.parser import parse_instruction
from ..ptx.program import ThreadProgram
from ..ptx.types import TypeSpec
from .condition import parse_condition
from .test import LitmusTest

_REG_DECL_RE = re.compile(
    r"^(\d+):\s*\.reg\s+\.(\w+)\s+([A-Za-z_%]\w*)\s*(?:=\s*([A-Za-z_]\w*|-?\d+))?$")
_MEM_INIT_RE = re.compile(
    r"^(?:(global|shared)\s+)?([A-Za-z_]\w*)\s*=\s*(-?\d+)$")
_THREAD_NAME_RE = re.compile(r"^T(\d+)$")


def parse_litmus(text):
    """Parse litmus text into a :class:`~repro.litmus.test.LitmusTest`."""
    lines = _significant_lines(text)
    if not lines:
        raise LitmusSyntaxError("empty litmus file")

    header = lines.pop(0).split(None, 1)
    if len(header) != 2:
        raise LitmusSyntaxError("expected 'ARCH NAME' header")
    arch, name = header
    description = ""
    if lines and lines[0].startswith('"'):
        description = lines.pop(0).strip('"')

    init_entries, lines = _collect_init_block(lines)
    reg_types, reg_init, init_mem, space_hints = _parse_init_entries(init_entries)

    program_rows, lines = _collect_program_rows(lines)
    threads = _build_threads(program_rows, reg_types, reg_init)

    scope_tree, memory_map, condition = None, MemoryMap(space_hints), None
    for line in lines:
        if line.startswith("ScopeTree") or line.lstrip("(").startswith("grid"):
            scope_tree = ScopeTree.parse(line[len("ScopeTree"):] if
                                         line.startswith("ScopeTree") else line)
        elif line.startswith(("exists", "forall", "final:", "~exists")):
            negated = line.startswith("~")
            condition = parse_condition(line.lstrip("~"))
            if negated:
                from .condition import Condition, Not
                condition = Condition(condition.quantifier, Not(condition.expr))
        elif ":" in line:
            extra = MemoryMap.parse(line)
            merged = dict(memory_map.spaces)
            merged.update(extra.spaces)
            memory_map = MemoryMap(merged)
        else:
            raise LitmusSyntaxError("unrecognised litmus line %r" % line)

    if condition is None:
        raise LitmusSyntaxError("litmus test %r has no final condition" % name)
    if scope_tree is None:
        scope_tree = ScopeTree.intra_cta([program.name for program in threads])
    return LitmusTest(name=name, arch=arch, threads=tuple(threads),
                      scope_tree=scope_tree, memory_map=memory_map,
                      init_mem=init_mem, reg_init=reg_init,
                      condition=condition, description=description)


def _significant_lines(text):
    lines = []
    for raw in text.splitlines():
        line = raw.split("//")[0].rstrip()
        if line.strip():
            lines.append(line.strip())
    return lines


def _collect_init_block(lines):
    """Pull the ``{ ... }`` init block off the front of ``lines``."""
    if not lines or not lines[0].startswith("{"):
        return [], lines
    block, rest = [], []
    depth, closed = 0, False
    for index, line in enumerate(lines):
        if closed:
            rest = lines[index:]
            break
        depth += line.count("{") - line.count("}")
        block.append(line.strip("{}").strip())
        if depth == 0:
            closed = True
    if not closed:
        raise LitmusSyntaxError("unterminated init block")
    entries = []
    for chunk in block:
        entries.extend(entry.strip() for entry in chunk.split(";") if entry.strip())
    return entries, rest


def _parse_init_entries(entries):
    reg_types, reg_init, init_mem, space_hints = {}, {}, {}, {}
    for entry in entries:
        declaration = _REG_DECL_RE.match(entry)
        if declaration:
            tid = int(declaration.group(1))
            type_name, reg_name, binding = declaration.group(2, 3, 4)
            try:
                typ = TypeSpec(type_name)
            except ValueError:
                raise LitmusSyntaxError("unknown register type %r" % type_name)
            reg_types.setdefault(tid, {})[reg_name] = typ
            if binding is not None:
                if re.match(r"^-?\d+$", binding):
                    reg_init[(tid, reg_name)] = Imm(int(binding))
                else:
                    reg_init[(tid, reg_name)] = Loc(binding)
            continue
        memory = _MEM_INIT_RE.match(entry)
        if memory:
            space, location, value = memory.group(1, 2, 3)
            init_mem[location] = int(value)
            if space:
                space_hints[location] = space
            continue
        raise LitmusSyntaxError("unrecognised init entry %r" % entry)
    return reg_types, reg_init, init_mem, space_hints


def _collect_program_rows(lines):
    """Collect the ``|``-separated program table; returns (rows, rest)."""
    rows, rest = [], []
    in_table = False
    for index, line in enumerate(lines):
        is_row = line.endswith(";") and (
            "|" in line or in_table
            or _THREAD_NAME_RE.match(line.rstrip(";").strip()))
        if is_row:
            in_table = True
            rows.append([cell.strip() for cell in line.rstrip(";").split("|")])
        elif in_table:
            rest = lines[index:]
            break
        else:
            raise LitmusSyntaxError("expected program table, got %r" % line)
    if not rows:
        raise LitmusSyntaxError("litmus test has no program table")
    return rows, rest


def _build_threads(rows, reg_types, reg_init):
    header = rows[0]
    names = []
    for cell in header:
        match = _THREAD_NAME_RE.match(cell)
        if not match:
            raise LitmusSyntaxError("bad thread header cell %r" % cell)
        names.append(cell)
    if names != ["T%d" % i for i in range(len(names))]:
        raise LitmusSyntaxError("thread headers must be T0..Tn in order")

    threads = []
    for tid, name in enumerate(names):
        types = reg_types.get(tid, {})
        known = set(types) | {reg for (owner, reg) in reg_init if owner == tid}
        instructions = []
        for row in rows[1:]:
            cell = row[tid] if tid < len(row) else ""
            if not cell:
                continue
            try:
                instructions.append(parse_instruction(cell, registers=known or None))
            except PtxSyntaxError as exc:
                raise LitmusSyntaxError("in %s: %s" % (name, exc))
            known |= instructions[-1].defs()
        threads.append(ThreadProgram(tid=tid, instructions=tuple(instructions),
                                     name=name, reg_types=types))
    return threads
