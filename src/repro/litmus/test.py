"""The litmus test container tying programs, hierarchy and condition together."""

from dataclasses import dataclass, field

from ..errors import LitmusSyntaxError
from ..hierarchy import MemoryMap, ScopeTree
from ..ptx.instructions import Ld, St
from ..ptx.operands import Addr, Imm, Loc
from ..ptx.program import ThreadProgram
from ..ptx.types import MemorySpace
from .condition import Condition

#: Base address for litmus locations; locations are spaced so that small
#: array offsets never collide.
_LOCATION_BASE = 0x1000
_LOCATION_STRIDE = 64


@dataclass(frozen=True)
class LitmusTest:
    """A GPU litmus test (Fig. 12 of the paper).

    * ``threads`` — one :class:`~repro.ptx.program.ThreadProgram` per
      thread, indexed by ``tid``.
    * ``scope_tree`` — placement of the threads in the hierarchy.
    * ``memory_map`` — memory region of each location (default global).
    * ``init_mem`` — initial value of each location (default 0).
    * ``reg_init`` — initial register bindings ``(tid, reg) -> Loc | Imm``;
      litmus registers typically bind ``.b64`` registers to location
      addresses (Fig. 12 lines 2–5).
    * ``condition`` — the final-state assertion.
    """

    name: str
    threads: tuple
    condition: Condition
    scope_tree: ScopeTree = None
    memory_map: MemoryMap = field(default_factory=MemoryMap)
    init_mem: dict = field(default_factory=dict)
    reg_init: dict = field(default_factory=dict)
    arch: str = "GPU_PTX"
    description: str = ""
    idiom: str = ""

    def __post_init__(self):
        threads = tuple(self.threads)
        object.__setattr__(self, "threads", threads)
        if not threads:
            raise LitmusSyntaxError("litmus test %r has no threads" % self.name)
        for index, program in enumerate(threads):
            if not isinstance(program, ThreadProgram):
                raise LitmusSyntaxError("thread %d is not a ThreadProgram" % index)
            if program.tid != index:
                raise LitmusSyntaxError(
                    "thread %r has tid %d but occupies slot %d"
                    % (program.name, program.tid, index))
        if self.scope_tree is None:
            object.__setattr__(
                self, "scope_tree", ScopeTree.intra_cta([t.name for t in threads]))
        tree_names = set(self.scope_tree.threads)
        program_names = {program.name for program in threads}
        if tree_names != program_names:
            raise LitmusSyntaxError(
                "scope tree threads %s do not match programs %s"
                % (sorted(tree_names), sorted(program_names)))
        for (tid, reg), value in self.reg_init.items():
            if not 0 <= tid < len(threads):
                raise LitmusSyntaxError("reg_init mentions unknown thread %d" % tid)
            if not isinstance(value, (Loc, Imm)):
                raise LitmusSyntaxError(
                    "reg_init[%d:%s] must be Loc or Imm, got %r" % (tid, reg, value))

    # -- locations ---------------------------------------------------------

    def locations(self):
        """All memory location names the test mentions, sorted."""
        names = set(self.init_mem) | set(self.memory_map.spaces)
        names |= self.condition.locations()
        for program in self.threads:
            for instruction in program:
                addr = getattr(instruction, "addr", None)
                if isinstance(addr, Addr) and isinstance(addr.base, Loc):
                    names.add(addr.base.name)
        for value in self.reg_init.values():
            if isinstance(value, Loc):
                names.add(value.name)
        return sorted(names)

    def address_map(self):
        """Assign each location a distinct word address."""
        return {name: _LOCATION_BASE + index * _LOCATION_STRIDE
                for index, name in enumerate(self.locations())}

    def initial_value(self, name):
        return self.init_mem.get(name, 0)

    def space_of(self, name):
        return self.memory_map.space_of(name)

    # -- queries -----------------------------------------------------------

    @property
    def n_threads(self):
        return len(self.threads)

    def thread(self, tid):
        return self.threads[tid]

    def thread_by_name(self, name):
        for program in self.threads:
            if program.name == name:
                return program
        raise LitmusSyntaxError("no thread named %r" % name)

    def observed_registers(self):
        """The ``(tid, reg)`` pairs the final condition inspects."""
        return sorted(self.condition.registers())

    def has_loops(self):
        return any(program.has_loops() for program in self.threads)

    def validate(self):
        """Return a list of consistency warnings (empty when clean).

        Checks the paper's constraints: shared-memory locations must only
        be accessed by threads of a single CTA (Sec. 2.2), and condition
        registers must be written somewhere.
        """
        issues = []
        shared = {name for name in self.locations()
                  if self.space_of(name) is MemorySpace.SHARED}
        for name in shared:
            accessors = self._accessing_threads(name)
            ctas = {self.scope_tree.placement(self.threads[tid].name).cta
                    for tid in accessors}
            if len(ctas) > 1:
                issues.append(
                    "shared location %r accessed from multiple CTAs" % name)
        for tid, reg in self.condition.registers():
            if tid >= self.n_threads:
                issues.append("condition mentions unknown thread %d" % tid)
            elif reg not in self.threads[tid].registers():
                issues.append("condition register %d:%s never used" % (tid, reg))
        return issues

    def _accessing_threads(self, location):
        accessors = set()
        for program in self.threads:
            for instruction in program:
                addr = getattr(instruction, "addr", None)
                if isinstance(addr, Addr):
                    if isinstance(addr.base, Loc) and addr.base.name == location:
                        accessors.add(program.tid)
                    else:
                        binding = self.reg_init.get((program.tid, getattr(addr.base, "name", None)))
                        if isinstance(binding, Loc) and binding.name == location:
                            accessors.add(program.tid)
        return accessors

    def uses_cache_operator(self, cop):
        """True if any load/store carries the given cache operator."""
        for program in self.threads:
            for instruction in program:
                if isinstance(instruction, (Ld, St)) and instruction.cop is cop:
                    return True
        return False

    def uses_volatile(self):
        for program in self.threads:
            for instruction in program:
                if getattr(instruction, "volatile", False):
                    return True
        return False

    def __str__(self):
        from .writer import write_litmus  # local import to avoid a cycle
        return write_litmus(self)
