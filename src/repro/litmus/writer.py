"""Serialise a :class:`LitmusTest` into the GPU litmus format (Fig. 12)."""

from ..ptx.operands import Imm, Loc
from ..ptx.types import TypeSpec


def _register_declarations(test):
    """Yield the declaration entries of the init block."""
    for program in test.threads:
        names = sorted(program.registers())
        typed = dict(program.reg_types)
        for name in names:
            typ = typed.get(name)
            if typ is None:
                typ = TypeSpec.PRED if name.startswith("p") else TypeSpec.S32
            binding = test.reg_init.get((program.tid, name))
            if isinstance(binding, Loc):
                yield "%d:.reg %s %s = %s" % (program.tid, typ, name, binding.name)
            elif isinstance(binding, Imm):
                yield "%d:.reg %s %s = %d" % (program.tid, typ, name, binding.value)
            else:
                yield "%d:.reg %s %s" % (program.tid, typ, name)


def _memory_initialisers(test):
    for name in test.locations():
        value = test.initial_value(name)
        if value:
            yield "%s = %d" % (name, value)


def write_litmus(test):
    """Render ``test`` in the litmus text format parsed by
    :func:`repro.litmus.parser.parse_litmus`."""
    lines = ["%s %s" % (test.arch, test.name)]
    if test.description:
        lines.append('"%s"' % test.description)

    entries = list(_register_declarations(test)) + list(_memory_initialisers(test))
    lines.append("{")
    lines.extend(" %s;" % entry for entry in entries)
    lines.append("}")

    columns = []
    for program in test.threads:
        cell_lines = [str(instruction) for instruction in program.instructions]
        columns.append([program.name] + cell_lines)
    height = max(len(column) for column in columns)
    for column in columns:
        column.extend([""] * (height - len(column)))
    widths = [max(len(cell) for cell in column) for column in columns]
    for row_index in range(height):
        row = " | ".join(columns[i][row_index].ljust(widths[i])
                         for i in range(len(columns)))
        lines.append(" %s ;" % row)

    lines.append("ScopeTree %s" % test.scope_tree)
    if test.memory_map.spaces:
        lines.append(str(test.memory_map))
    lines.append(str(test.condition))
    return "\n".join(lines) + "\n"
