"""GPU litmus tests: format, conditions, the paper's test library."""

from .condition import (And, Condition, Expr, FinalState, MemEq, Not, Or,
                        RegEq, parse_condition)
from .extended import (EXTENDED_TESTS, build_extended, iriw, isa2, rwc,
                       wrc)
from .parser import parse_litmus
from .test import LitmusTest
from .writer import write_litmus

__all__ = [
    "And", "Condition", "Expr", "FinalState", "MemEq", "Not", "Or", "RegEq",
    "parse_condition", "parse_litmus", "LitmusTest", "write_litmus",
    "EXTENDED_TESTS", "build_extended", "iriw", "isa2", "rwc", "wrc",
]
