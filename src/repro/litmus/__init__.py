"""GPU litmus tests: format, conditions, the paper's test library."""

from .condition import (Always, And, Condition, Expr, FinalState, MemEq,
                        Not, Or, RegEq, parse_condition, trivial_condition)
from .extended import (EXTENDED_TESTS, build_extended, iriw, isa2, rwc,
                       wrc)
from .parser import parse_litmus
from .test import LitmusTest
from .writer import write_litmus

__all__ = [
    "Always", "And", "Condition", "Expr", "FinalState", "MemEq", "Not", "Or",
    "RegEq", "parse_condition", "trivial_condition",
    "parse_litmus", "LitmusTest", "write_litmus",
    "EXTENDED_TESTS", "build_extended", "iriw", "isa2", "rwc", "wrc",
]
