"""repro.api — the unified execution front door.

Everything that *runs* litmus tests goes through this package: the CLI,
the harness's backwards-compatible wrappers and the figure benchmarks
all build :class:`RunSpec` plans and hand them to a :class:`Session`,
which shards the work across a pool, merges histograms
deterministically and memoises completed specs by content fingerprint.

Quick tour::

    from repro.api import Session
    from repro.litmus import library

    session = Session(jobs=4, cache_dir="~/.repro-cache")
    result = session.run(library.build("mp"), "Titan", iterations=100000)
    print(result.summary())

    # The simulation engine is switchable per session, per call or per
    # spec ("fast" compiled cells by default, "reference" for the
    # generic interpreter); histograms are bit-identical either way.
    slow = Session(engine="reference")

    campaign = session.campaign(
        [library.build(name) for name in ("mp", "lb", "sb")],
        ["Titan", "GTX6", "HD7970"])
    print(campaign.summary_table())

    # Same request shape against the axiomatic model:
    checker = Session(backend="model:ptx")
    print(checker.run(library.build("mp"), "Titan").allowed)

    # The Sec. 5.4 soundness campaign — sim vs model over a corpus:
    from repro.api.conformance import run_soundness
    report = run_soundness(tests, ["TesC", "GTX6", "Titan", "GTX7"],
                           jobs=4, cache_dir=".repro-cache")
    assert report.ok, report.violation_lines()
"""

from .backends import (Backend, DEFAULT_SHARD_SIZE, ModelBackend, Shard,
                       SimBackend, make_backend, plan_shards, shard_seed)
from .cache import ResultCache, cache_key
from .conformance import (CellConformance, ConformanceReport, Violation,
                          run_soundness, uniquify_tests)
from .result import CampaignResult, SpecResult
from .session import (DEFAULT_CHUNK_SIZE, Session, SessionStats,
                      run_campaign)
from .spec import (BEST, RunSpec, matrix, parse_incantations,
                   resolve_chip, resolve_incantations)

__all__ = [
    "Backend", "DEFAULT_SHARD_SIZE", "ModelBackend", "Shard", "SimBackend",
    "make_backend", "plan_shards", "shard_seed",
    "ResultCache", "cache_key",
    "CellConformance", "ConformanceReport", "Violation", "run_soundness",
    "uniquify_tests",
    "CampaignResult", "SpecResult",
    "DEFAULT_CHUNK_SIZE", "Session", "SessionStats", "run_campaign",
    "BEST", "RunSpec", "matrix", "parse_incantations", "resolve_chip",
    "resolve_incantations",
]
