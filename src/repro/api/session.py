"""The :class:`Session`: plan, shard, execute, merge, memoise.

A session is the single front door for campaign execution.  It owns

* a :class:`~repro.api.backends.Backend` (sim or model),
* a worker pool configuration (``jobs`` threads or processes),
* a shard size (iterations per unit of parallel work), and
* an optional :class:`~repro.api.cache.ResultCache`.

``Session.run`` executes one cell; ``Session.run_specs`` executes any
plan; ``Session.campaign`` plans the cartesian product (the old
``run_matrix`` grid) and returns a
:class:`~repro.api.result.CampaignResult`.

Determinism.  The shard decomposition and per-shard seeds are pure
functions of each spec (:func:`~repro.api.backends.plan_shards`), and
shard histograms are merged in shard-index order — so ``jobs=8``
produces bit-identical histograms to ``jobs=1`` for the same specs, and
a single-shard run reproduces the legacy serial iteration stream.
"""

import contextlib
import os
from concurrent import futures as _futures
from dataclasses import asdict, dataclass

from ..errors import ReproError
from ..harness.histogram import Histogram
from .backends import DEFAULT_SHARD_SIZE, make_backend
from .cache import ResultCache, cache_key
from .result import CampaignResult, SpecResult
from .spec import BEST, RunSpec, matrix

#: Specs per :meth:`Session.run_stream` execution chunk.  Large enough to
#: keep a worker pool busy and let in-plan deduplication catch twins,
#: small enough that a 10k-test corpus never holds more than a chunk of
#: histograms in memory at once.
DEFAULT_CHUNK_SIZE = 64


def chunked(iterable, size):
    """Yield lists of up to ``size`` items — the streaming unit shared by
    :meth:`Session.run_stream` and the conformance pipeline."""
    chunk = []
    for item in iterable:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _execute_shard(backend, spec, shard):
    """Module-level so process pools can pickle the work unit.

    Returns ``(histogram, stats)`` — the stats delta (e.g. plan-cache
    hits) is captured *in the worker that ran the shard*, so process
    pools ship their counters back with the result.
    """
    histogram = backend.run_shard(spec, shard)
    return histogram, backend.consume_stats()


def _execute_spec(backend, spec):
    histogram = backend.run(spec)
    return histogram, backend.consume_stats()


def _merge_stats(parts):
    """Sum per-shard stats dicts; ``None`` when no shard reported any."""
    total = {}
    for part in parts:
        if part:
            for key, value in part.items():
                total[key] = total.get(key, 0) + value
    return total or None


@dataclass
class SessionStats:
    """What a session actually did (the cache test's instrument)."""

    planned: int = 0                #: specs requested
    executed: int = 0               #: specs that ran on the backend
    cache_hits: int = 0             #: specs satisfied from the cache
    deduplicated: int = 0           #: specs satisfied by an in-plan twin
    shards_executed: int = 0        #: shards run on the backend
    simulated_iterations: int = 0   #: iterations executed (sharded backends)
    plan_cache_hits: int = 0        #: batch lowering plans reused from disk
    plan_cache_misses: int = 0      #: batch lowerings analysed from scratch

    def snapshot(self):
        return asdict(self)


class Session:
    """A configured execution engine for litmus campaigns.

    Parameters
    ----------
    backend:
        ``"sim"`` (default), ``"model"``, ``"model:<name>"`` or a
        :class:`~repro.api.backends.Backend` instance.
    jobs:
        Worker count.  ``1`` (default) runs in-process and serially;
        ``>1`` shards specs across a pool.
    cache:
        ``True`` (default) attaches an in-memory
        :class:`~repro.api.cache.ResultCache`; ``False``/``None``
        disables memoisation; or pass a cache instance to share one
        across sessions.
    cache_dir:
        Adds the on-disk JSON tier (implies caching).
    shard_size:
        Iterations per shard (default
        :data:`~repro.api.backends.DEFAULT_SHARD_SIZE`).  The
        decomposition determines the per-shard seeds, so it is part of
        a result's identity: runs (and cache entries) with different
        *effective* decompositions are distinct, while any two shard
        sizes that yield the same decomposition (e.g. both at least the
        iteration count) share results.  Worker count never matters.
    executor:
        ``"thread"`` (default) or ``"process"``.  Threads are cheap and
        deterministic; processes sidestep the GIL for large campaigns
        (every work unit pickles cleanly).
    pool:
        An externally managed ``concurrent.futures`` executor to submit
        parallel work to instead of creating one per plan.  The caller
        owns its lifetime (the session never shuts it down), which lets
        several sessions — e.g. the sim and model halves of a
        conformance pipeline — share one worker pool.
    engine:
        Default simulation engine for specs this session builds:
        ``"fast"`` (compiled cells, the default) or ``"reference"``
        (the generic interpreter) — bit-identical histograms either
        way.  ``None`` defers to the ``REPRO_ENGINE`` environment
        variable; a prepared :class:`RunSpec` always keeps its own
        ``engine``.
    model_engine:
        The model-checking twin of ``engine`` for specs this session
        builds: ``"fast"`` (compiled model + pruned enumeration, the
        default) or ``"reference"``.  ``None`` defers to
        ``REPRO_MODEL_ENGINE``.

    Example::

        session = Session(jobs=4, engine="fast")
        result = session.run(library.build("mp"), "Titan",
                             iterations=100000)
        print(result.summary())
    """

    def __init__(self, backend="sim", jobs=1, cache=True, cache_dir=None,
                 shard_size=DEFAULT_SHARD_SIZE, executor="thread", pool=None,
                 engine=None, model_engine=None, batch_tail=None):
        self.backend = make_backend(backend)
        if jobs < 1:
            raise ReproError("jobs must be >= 1, got %r" % jobs)
        self.jobs = int(jobs)
        if shard_size < 1:
            raise ReproError("shard_size must be >= 1, got %r" % shard_size)
        self.shard_size = int(shard_size)
        if executor not in ("thread", "process"):
            raise ReproError("executor must be 'thread' or 'process', got %r"
                             % (executor,))
        self.executor = executor
        self.pool = pool
        if engine is not None:
            from ..sim.engine import resolve_engine
            engine = resolve_engine(engine)
        self.engine = engine
        if model_engine is not None:
            from ..model.models import resolve_model_engine
            model_engine = resolve_model_engine(model_engine)
        self.model_engine = model_engine
        if batch_tail is not None:
            from ..sim.engine import resolve_batch_tail
            batch_tail = resolve_batch_tail(batch_tail)
        self.batch_tail = batch_tail
        if isinstance(cache, ResultCache):
            self.cache = cache
        elif cache_dir or cache:
            self.cache = ResultCache(cache_dir=cache_dir)
        else:
            self.cache = None
        # A disk-backed session also shares lowered batch plans between
        # workers (and future sessions on the same directory): the plan
        # store lives next to the result entries.
        if (self.cache is not None and self.cache.cache_dir
                and hasattr(self.backend, "set_plan_cache")):
            self.backend.set_plan_cache(
                os.path.join(self.cache.cache_dir, "plans"))
        self.stats = SessionStats()

    # -- public API -------------------------------------------------------

    def run(self, test, chip=None, incantations=BEST, iterations=None,
            seed=0, engine=None, model_engine=None, batch_tail=None):
        """Execute one cell; accepts a prepared :class:`RunSpec` or the
        (test, chip, ...) fields of one.

        >>> from repro.api import Session
        >>> from repro.litmus import library
        >>> session = Session(cache=False)
        >>> result = session.run(library.build("mp"), "Titan",
        ...                      iterations=500, seed=1)
        >>> result.iterations
        500
        """
        if isinstance(test, RunSpec):
            spec = test
        else:
            if chip is None:
                raise ReproError("Session.run needs a chip unless given a "
                                 "RunSpec")
            spec = RunSpec.make(test, chip, incantations=incantations,
                                iterations=iterations, seed=seed,
                                engine=self._engine(engine),
                                model_engine=self._model_engine(model_engine),
                                batch_tail=self._batch_tail(batch_tail))
        return self.run_specs([spec])[0]

    def run_specs(self, specs):
        """Execute a plan; returns results in plan order.

        Duplicate specs within one plan (same backend cache key)
        execute once; the later occurrences share the first's result.
        """
        specs = list(specs)
        self.stats.planned += len(specs)
        results = {}
        pending = []
        first_seen = {}
        duplicates = {}
        for index, spec in enumerate(specs):
            key = self._cache_key(spec)
            if key in first_seen:
                duplicates[index] = first_seen[key]
                self.stats.deduplicated += 1
                continue
            first_seen[key] = index
            cached = self._lookup(spec)
            if cached is not None:
                self.stats.cache_hits += 1
                results[index] = cached
            else:
                pending.append((index, spec))
        if pending:
            if self.jobs > 1:
                executed = self._run_parallel(pending)
            else:
                executed = self._run_serial(pending)
            for index, result in executed:
                self._store(result)
                results[index] = result
        for index, original in duplicates.items():
            # Each plan position gets its own histogram copy so callers
            # mutating one result cannot corrupt its duplicates.
            source = results[original]
            results[index] = SpecResult(
                spec=specs[index], backend=source.backend,
                histogram=Histogram(dict(source.histogram.counts)),
                cached=True)
        return [results[index] for index in range(len(specs))]

    def campaign(self, tests, chips, incantations=BEST, iterations=None,
                 seed=0, engine=None, model_engine=None, batch_tail=None):
        """Plan and execute the cartesian product campaign."""
        specs = matrix(tests, chips, incantations=incantations,
                       iterations=iterations, seed=seed,
                       engine=self._engine(engine),
                       model_engine=self._model_engine(model_engine),
                       batch_tail=self._batch_tail(batch_tail))
        campaign = CampaignResult()
        for result in self.run_specs(specs):
            campaign.add(result)
        return campaign

    def plan(self, tests, chips, incantations=BEST, iterations=None, seed=0,
             engine=None, model_engine=None, batch_tail=None):
        """Lazily yield the cartesian-product plan of :meth:`campaign`.

        The generator twin of :func:`~repro.api.spec.matrix`: ``tests``
        may itself be a generator (e.g. a diy corpus being synthesised on
        the fly) — specs are built test by test, so a 10k-test corpus
        never materialises as a spec list.  Feed the result to
        :meth:`run_stream`.
        """
        chips = list(chips)
        engine = self._engine(engine)
        model_engine = self._model_engine(model_engine)
        batch_tail = self._batch_tail(batch_tail)
        for test in tests:
            for chip in chips:
                yield RunSpec.make(test, chip, incantations=incantations,
                                   iterations=iterations, seed=seed,
                                   engine=engine, model_engine=model_engine,
                                   batch_tail=batch_tail)

    def run_stream(self, specs, chunk_size=DEFAULT_CHUNK_SIZE):
        """Execute a plan in chunks; yields results in plan order.

        The streaming twin of :meth:`run_specs`: ``specs`` is any
        iterable (including a generator from :meth:`plan`), consumed
        ``chunk_size`` specs at a time, so at most one chunk of
        histograms is in flight at once.  Within a chunk the usual
        machinery applies — parallel sharding, cache lookups, in-plan
        deduplication; across chunks the result cache still catches
        repeats.  Bit-identical results to :meth:`run_specs` on the same
        plan.
        """
        if chunk_size < 1:
            raise ReproError("chunk_size must be >= 1, got %r" % (chunk_size,))
        for chunk in chunked(specs, chunk_size):
            for result in self.run_specs(chunk):
                yield result

    #: Backwards-friendly alias mirroring the old harness name.
    run_matrix = campaign

    def _engine(self, engine):
        """Per-call engine override, else the session default (which may
        itself be ``None`` = environment default)."""
        return engine if engine is not None else self.engine

    def _model_engine(self, model_engine):
        return model_engine if model_engine is not None else self.model_engine

    def _batch_tail(self, batch_tail):
        return batch_tail if batch_tail is not None else self.batch_tail

    # -- execution strategies ---------------------------------------------

    def _shards(self, spec):
        """The backend's parallel decomposition of ``spec`` (None =
        indivisible; sim: iteration shards; model: one verdict unit)."""
        return self.backend.shards(spec, self.shard_size)

    def _run_serial(self, pending):
        executed = []
        for index, spec in pending:
            shards = self._shards(spec)
            if shards is not None:
                outcomes = [_execute_shard(self.backend, spec, shard)
                            for shard in shards]
                histogram = Histogram.merge(h for h, _ in outcomes)
                stats = _merge_stats(s for _, s in outcomes)
                self._account(spec, shards)
            else:
                histogram, stats = _execute_spec(self.backend, spec)
                self._account(spec, None)
            executed.append((index, self._result(spec, histogram, stats)))
        return executed

    def _run_parallel(self, pending):
        # Decomposition is per spec (Backend.shards may return None for
        # an indivisible spec even on a sharding backend), so split the
        # plan accordingly instead of branching on the class-level flag.
        with self._pool() as pool:
            sharded = []
            whole = []
            for index, spec in pending:
                shards = self._shards(spec)
                if shards is not None:
                    sharded.append((index, spec, shards))
                else:
                    whole.append((index, spec))
            executed = []
            if sharded:
                executed.extend(self._run_parallel_sharded(pool, sharded))
            if whole:
                executed.extend(self._run_parallel_whole(pool, whole))
            return executed

    def _run_parallel_sharded(self, pool, plans):
        tasks = {}
        for index, spec, shards in plans:
            for shard in shards:
                tasks[(index, shard.index)] = pool.submit(
                    _execute_shard, self.backend, spec, shard)
        executed = []
        for index, spec, shards in plans:
            # Merge in shard-index order: bit-identical to the serial path
            # no matter which worker finished first.
            outcomes = [tasks[(index, shard.index)].result()
                        for shard in shards]
            histogram = Histogram.merge(h for h, _ in outcomes)
            stats = _merge_stats(s for _, s in outcomes)
            self._account(spec, shards)
            executed.append((index, self._result(spec, histogram, stats)))
        return executed

    def _run_parallel_whole(self, pool, pending):
        submitted = [(index, spec, pool.submit(_execute_spec, self.backend,
                                               spec))
                     for index, spec in pending]
        executed = []
        for index, spec, future in submitted:
            histogram, stats = future.result()
            self._account(spec, None)
            executed.append((index, self._result(spec, histogram, stats)))
        return executed

    def _pool(self):
        if self.pool is not None:
            # Shared pool: the with-block in _run_parallel must not
            # shut it down, so hand back a non-closing view.
            return contextlib.nullcontext(self.pool)
        if self.executor == "process":
            return _futures.ProcessPoolExecutor(max_workers=self.jobs)
        return _futures.ThreadPoolExecutor(max_workers=self.jobs)

    # -- bookkeeping ------------------------------------------------------

    def _result(self, spec, histogram, stats=None):
        if stats:
            self.stats.plan_cache_hits += stats.get("plan_cache_hits", 0)
            self.stats.plan_cache_misses += stats.get(
                "plan_cache_misses", 0)
        return SpecResult(spec=spec, backend=self.backend.name,
                          histogram=histogram, cached=False, stats=stats)

    def _account(self, spec, shards):
        self.stats.executed += 1
        if shards is not None:
            self.stats.shards_executed += len(shards)
            self.stats.simulated_iterations += sum(shard.iterations
                                                   for shard in shards)

    def _variant(self, spec):
        """The execution-parameter component of the cache key —
        delegated to the backend (the sim backend keys on the effective
        shard decomposition; model verdicts are decomposition-free)."""
        return self.backend.cache_variant(spec, self.shard_size)

    def _cache_key(self, spec):
        return cache_key(self.backend.name, self.backend.cache_signature(spec),
                         self._variant(spec))

    def _lookup(self, spec):
        if self.cache is None:
            return None
        return self.cache.get(self.backend.name, spec,
                              signature=self.backend.cache_signature(spec),
                              variant=self._variant(spec))

    def _store(self, result):
        if self.cache is not None:
            self.cache.put(result,
                           signature=self.backend.cache_signature(result.spec),
                           variant=self._variant(result.spec))


def run_campaign(tests, chips, incantations=BEST, iterations=None, seed=0,
                 backend="sim", jobs=1, cache_dir=None, engine=None,
                 model_engine=None, batch_tail=None):
    """One-shot convenience: build a Session, run the campaign."""
    session = Session(backend=backend, jobs=jobs, cache_dir=cache_dir,
                      engine=engine, model_engine=model_engine,
                      batch_tail=batch_tail)
    return session.campaign(tests, chips, incantations=incantations,
                            iterations=iterations, seed=seed)
