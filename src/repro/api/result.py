"""Result types of the campaign API: :class:`SpecResult` and
:class:`CampaignResult`.

``SpecResult`` is the unified per-cell outcome shared by every backend:
a histogram plus the spec that produced it.  For the sim backend the
histogram counts observed final states over the spec's iterations; for
a model backend it holds the allowed final states (count 1 each), so
``observations``/``allowed`` give the paper's Allowed/Forbidden verdict.

``CampaignResult`` aggregates the cells of one campaign into the
paper's grid — per-test and per-chip views plus the figure-style
summary tables of obs/100k counts.
"""

from dataclasses import dataclass, field

from .._util import format_table


@dataclass
class SpecResult:
    """Outcome of one :class:`~repro.api.spec.RunSpec` on one backend."""

    spec: object                   #: the RunSpec that produced this result
    backend: str                   #: name of the backend that ran it
    histogram: object              #: Histogram of final states
    cached: bool = False           #: satisfied from the result cache?
    #: Backend execution statistics for this spec (e.g. plan-cache
    #: hits/misses of the batch engine's cross-worker lowering cache),
    #: or ``None`` when the backend reported nothing.  Cached results
    #: carry ``None`` — nothing executed.
    stats: dict = None

    # -- spec delegation (RunResult-compatible surface) -------------------

    @property
    def test(self):
        return self.spec.test

    @property
    def chip(self):
        return self.spec.chip

    @property
    def incantations(self):
        return self.spec.incantations

    @property
    def iterations(self):
        return self.spec.iterations

    # -- verdicts ---------------------------------------------------------

    @property
    def observations(self):
        return self.histogram.observations(self.test.condition)

    @property
    def per_100k(self):
        return self.histogram.per_100k(self.test.condition)

    @property
    def observed_weak(self):
        return self.observations > 0

    @property
    def allowed(self):
        """Model-backend reading: does the backend allow the condition?"""
        return self.observations > 0

    def summary(self):
        return ("%s on %s [%s] via %s: %d/%d weak (%.0f per 100k)%s"
                % (self.test.name, self.chip.short, self.incantations,
                   self.backend, self.observations, self.histogram.total,
                   self.per_100k, " [cached]" if self.cached else ""))


@dataclass
class CampaignResult:
    """The grid of one campaign: ``(test name, chip short) -> SpecResult``."""

    results: dict = field(default_factory=dict)

    def add(self, result):
        self.results[result.spec.key] = result

    def get(self, test_name, chip_short):
        return self.results[(test_name, chip_short)]

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results.values())

    def __contains__(self, key):
        return key in self.results

    @property
    def tests(self):
        """Test names in first-seen campaign order."""
        return list(dict.fromkeys(name for name, _ in self.results))

    @property
    def chips(self):
        """Chip short names in first-seen campaign order."""
        return list(dict.fromkeys(short for _, short in self.results))

    def by_test(self, test_name):
        """``{chip short: SpecResult}`` for one test."""
        return {short: result for (name, short), result in self.results.items()
                if name == test_name}

    def by_chip(self, chip_short):
        """``{test name: SpecResult}`` for one chip."""
        return {name: result for (name, short), result in self.results.items()
                if short == chip_short}

    def weak_cells(self):
        """The ``(test name, chip short)`` cells with observed weakness."""
        return [key for key, result in self.results.items()
                if result.observed_weak]

    @property
    def total_iterations(self):
        return sum(result.iterations for result in self)

    @property
    def cached_cells(self):
        return sum(1 for result in self if result.cached)

    def summary_table(self, paper=None):
        """Paper-style obs/100k table: one row per test, one column per
        chip (the bottom-of-figure tables of Figs. 1-11).  ``paper``
        optionally maps ``(test name, chip short)`` to published counts,
        rendered alongside."""
        headers = ["obs/100k"] + self.chips
        rows = []
        for name in self.tests:
            per_chip = self.by_test(name)
            row = [name]
            for short in self.chips:
                result = per_chip.get(short)
                if result is None:
                    row.append("n/a")
                    continue
                cell = "%.0f" % result.per_100k
                if paper is not None and (name, short) in paper:
                    cell += " (paper %s)" % paper[(name, short)]
                row.append(cell)
            rows.append(row)
        return format_table(headers, rows)

    def summary(self):
        weak = self.weak_cells()
        return ("campaign: %d cells (%d tests x %d chips), %d weak, "
                "%d cached, %d iterations"
                % (len(self), len(self.tests), len(self.chips), len(weak),
                   self.cached_cells, self.total_iterations))
