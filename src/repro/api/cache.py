"""Result memoisation keyed by spec fingerprint.

The cache has two tiers: an in-memory dict (always on when a cache is
attached to a :class:`~repro.api.session.Session`) and an optional
on-disk JSON tier, one file per entry, so campaign results survive the
process and can be shared between sessions.  Keys combine the backend
name with the :meth:`RunSpec.fingerprint` — the same cell simulated and
model-checked are distinct entries.

Disk entries store the histogram as a list of ``{regs, mem, count}``
records (a :class:`~repro.litmus.condition.FinalState` is a pair of
sorted tuples, which maps cleanly onto JSON lists) plus enough metadata
to audit the cache directory by hand.
"""

import json
import os

from ..harness.histogram import Histogram
from ..litmus.condition import FinalState
from .result import SpecResult

#: Bump when the on-disk entry layout changes; mismatched versions are
#: treated as misses so stale caches degrade to re-simulation, not errors.
DISK_FORMAT_VERSION = 1


def cache_key(backend_name, signature, variant=""):
    """The cache key for a spec whose backend-relevant content hashes to
    ``signature`` (:meth:`Backend.cache_signature`).

    ``variant`` captures execution parameters outside the spec that
    still shape the result — for sharding backends the canonical shard
    decomposition, since per-shard seeding makes the histogram a
    function of the decomposition, not just the spec.
    """
    parts = [backend_name.replace(":", "_")]
    if variant:
        parts.append(variant)
    parts.append(signature)
    return "-".join(parts)


def _encode_state(state, count):
    return {"regs": [[tid, reg, value] for (tid, reg), value in state.regs],
            "mem": [[loc, value] for loc, value in state.mem],
            "count": count}


def _decode_state(record):
    regs = {(tid, reg): value for tid, reg, value in record["regs"]}
    mem = {loc: value for loc, value in record["mem"]}
    return FinalState.make(regs, mem), record["count"]


def encode_histogram(histogram):
    return [_encode_state(state, count)
            for state, count in sorted(histogram.counts.items(),
                                       key=lambda kv: str(kv[0]))]


def decode_histogram(records):
    histogram = Histogram()
    for record in records:
        state, count = _decode_state(record)
        histogram.add(state, count)
    return histogram


class ResultCache:
    """Two-tier (memory + optional disk) memo of completed specs."""

    def __init__(self, cache_dir=None):
        self.cache_dir = cache_dir
        self._memory = {}
        self.hits = 0
        self.misses = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self):
        return len(self._memory)

    def _path(self, key):
        return os.path.join(self.cache_dir, key + ".json")

    def get(self, backend_name, spec, signature=None, variant=""):
        """The cached :class:`SpecResult` for ``spec``, or ``None``.

        Returned results are marked ``cached=True``, rebound to the
        *caller's* spec object (signature equality guarantees the
        backend-relevant content matches) and carry a *fresh* histogram
        copy, so mutating a returned histogram can never poison later
        hits.
        """
        key = cache_key(backend_name, signature or spec.fingerprint(),
                        variant)
        entry = self._memory.get(key)
        if entry is None and self.cache_dir:
            entry = self._read_disk(key)
            if entry is not None:
                self._memory[key] = entry
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return SpecResult(spec=spec, backend=backend_name,
                          histogram=Histogram(dict(entry.counts)),
                          cached=True)

    def put(self, result, signature=None, variant=""):
        key = cache_key(result.backend,
                        signature or result.spec.fingerprint(), variant)
        # Store a private copy: callers own (and may mutate) the result
        # histogram they were handed.
        self._memory[key] = Histogram(dict(result.histogram.counts))
        if self.cache_dir:
            self._write_disk(key, result)

    def _read_disk(self, key):
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if payload.get("version") != DISK_FORMAT_VERSION:
                return None
            return decode_histogram(payload["histogram"])
        except (ValueError, KeyError, TypeError, OSError):
            # A corrupt entry must never poison a campaign: treat as miss.
            return None

    def _write_disk(self, key, result):
        payload = {
            "version": DISK_FORMAT_VERSION,
            "backend": result.backend,
            "test": result.spec.test.name,
            "chip": result.spec.chip.short,
            "incantations": str(result.spec.incantations),
            "iterations": result.spec.iterations,
            "seed": result.spec.seed,
            "fingerprint": result.spec.fingerprint(),
            "histogram": encode_histogram(result.histogram),
        }
        path = self._path(key)
        temporary = path + ".tmp"
        with open(temporary, "w") as handle:
            json.dump(payload, handle, indent=1)
        os.replace(temporary, path)
