"""Execution requests: the :class:`RunSpec` value type and its helpers.

A :class:`RunSpec` pins down everything that determines one execution
cell of the paper's campaigns — *which* litmus test, *which* chip,
*which* incantation combination, *how many* iterations and *which* seed
— and derives a stable content fingerprint from it.  The fingerprint is
the cache key of :mod:`repro.api.cache` and the base of the
deterministic per-shard seeds of :mod:`repro.api.backends`: two specs
with identical content hash identically across processes and sessions
(no reliance on Python's randomised ``hash``).
"""

import hashlib
from dataclasses import dataclass, replace

from ..errors import ReproError
from ..harness.incantations import Incantations, best_for
from ..litmus.writer import write_litmus
from ..model.models import resolve_model_engine
from ..sim.chip import CHIPS, ChipProfile
from ..sim.engine import (DEFAULT_BATCH_TAIL, resolve_batch_tail,
                          resolve_engine)

#: Sentinel accepted wherever an incantation combination is expected:
#: resolve to the most effective combination for the chip's vendor and
#: the test's idiom (the paper's reporting configuration, Sec. 3).
BEST = "best"


def resolve_chip(chip):
    """Accept a :class:`ChipProfile` or a Table 1 short name."""
    if isinstance(chip, ChipProfile):
        return chip
    try:
        return CHIPS[chip]
    except KeyError:
        raise ReproError("unknown chip %r; known: %s"
                         % (chip, ", ".join(sorted(CHIPS)))) from None


_INCANTATION_FLAGS = {
    "stress": "memory_stress", "memory-stress": "memory_stress",
    "bank-conflicts": "bank_conflicts", "bank": "bank_conflicts",
    "sync": "thread_sync", "thread-sync": "thread_sync",
    "random": "thread_rand", "thread-rand": "thread_rand",
}


def parse_incantations(text):
    """Parse a CLI-style incantation spec.

    Accepted forms: ``best`` (returns the :data:`BEST` sentinel),
    ``none``, ``all``, a Table 6 column number ``1``..``16``, or a
    ``+``-separated list of flags such as ``stress+sync+random``
    (the names printed by ``str(Incantations)``).
    """
    text = text.strip().lower()
    if text == BEST:
        return BEST
    if text == "none":
        return Incantations.none()
    if text == "all":
        return Incantations.all()
    if text.isdigit():
        try:
            return Incantations.from_column(int(text))
        except ValueError:
            raise ReproError("incantation column must be 1..16, got %s"
                             % text) from None
    flags = {}
    for part in text.split("+"):
        field_name = _INCANTATION_FLAGS.get(part.strip())
        if field_name is None:
            raise ReproError(
                "unknown incantation %r (expected best, none, all, a Table 6 "
                "column 1-16, or +-joined flags from: %s)"
                % (part.strip(), ", ".join(sorted(_INCANTATION_FLAGS))))
        flags[field_name] = True
    return Incantations(**flags)


def resolve_incantations(incantations, chip, test):
    """Normalise any accepted incantation spec to an :class:`Incantations`.

    ``None`` means the bare Sec. 4.2 setup; :data:`BEST` (or the string
    forms of :func:`parse_incantations`) resolve against the chip's
    vendor and the test's idiom.
    """
    if incantations is None:
        return Incantations.none()
    if isinstance(incantations, Incantations):
        return incantations
    if isinstance(incantations, str):
        parsed = parse_incantations(incantations)
        if parsed is not BEST:
            return parsed
        return best_for(chip.vendor, test.idiom or "mp")
    raise ReproError("cannot interpret incantations %r" % (incantations,))


def _chip_signature(chip):
    """Canonical text of everything about a chip that affects simulation.

    The dataclass ``repr`` covers every probability knob and structural
    switch; field order is fixed by the class definition, so the text is
    stable across runs and processes.
    """
    return repr(chip)


@dataclass(frozen=True)
class RunSpec:
    """One execution cell: test x chip x incantations x iterations x seed.

    Construct via :meth:`RunSpec.make` (which resolves chip short names
    and incantation specs) rather than directly, unless all fields are
    already normalised.
    """

    test: object                 #: a :class:`~repro.litmus.test.LitmusTest`
    chip: ChipProfile
    incantations: Incantations
    iterations: int
    seed: int = 0
    #: Simulation engine for sim backends: ``"fast"`` (the compiled
    #: cells of :mod:`repro.sim.compile`), ``"batch"`` (the numpy
    #: lockstep lowering of :mod:`repro.sim.batch`) or ``"reference"``
    #: (the generic interpreter).  ``reference``/``fast`` are
    #: bit-identical by property-tested contract and ``batch`` is
    #: distribution-equivalent under a documented seeded stream-break,
    #: so the engine is *not* part of the content fingerprint (and
    #: therefore never perturbs shard seeds) — but it *is* part of the
    #: sim backend's cache signature, so cached histograms never cross
    #: engines (a cached reference result must not mask a fast-engine
    #: bug, and a batch histogram must never satisfy a bit-exact
    #: fast/reference request).
    engine: str = "fast"
    #: Model-checking engine for model backends, with the same contract
    #: as ``engine``: ``"fast"`` (compiled model + pruned enumeration,
    #: :func:`repro.model.enumerate.enumerate_allowed`) or
    #: ``"reference"`` (materialise-then-check).  Excluded from the
    #: fingerprint, included in the model backend's cache signature.
    model_engine: str = "fast"
    #: Straggler-tail threshold of the batch engine (see
    #: :func:`repro.sim.engine.resolve_batch_tail`): live fraction at
    #: which a lockstep chunk suspends its survivors for coalesced
    #: draining.  Same discipline as ``engine``: excluded from the
    #: fingerprint (shard seeds stay knob-neutral), included in the sim
    #: backend's cache signature when the engine is ``batch`` (the tail
    #: hand-off changes the RNG stream, so histograms from different
    #: tails must not share cache entries).  Ignored by the other
    #: engines.
    batch_tail: float = DEFAULT_BATCH_TAIL

    @staticmethod
    def make(test, chip, incantations=BEST, iterations=None, seed=0,
             engine=None, model_engine=None, batch_tail=None):
        """Build a normalised spec.

        ``engine=None`` resolves through
        :func:`repro.sim.engine.resolve_engine` (the ``REPRO_ENGINE``
        environment variable, default ``"fast"``); ``model_engine=None``
        likewise through
        :func:`repro.model.models.resolve_model_engine`
        (``REPRO_MODEL_ENGINE``, default ``"fast"``); ``batch_tail=None``
        through :func:`repro.sim.engine.resolve_batch_tail`
        (``REPRO_BATCH_TAIL``, default 0.05).

        >>> from repro.litmus import library
        >>> spec = RunSpec.make(library.build("mp"), "Titan",
        ...                     iterations=1000, seed=7)
        >>> spec.key
        ('mp', 'Titan')
        >>> spec.engine
        'fast'
        >>> spec.model_engine
        'fast'
        """
        from ..harness.runner import default_iterations

        chip = resolve_chip(chip)
        incantations = resolve_incantations(incantations, chip, test)
        if iterations is None:
            iterations = default_iterations()
        if iterations < 1:
            raise ReproError("iterations must be positive, got %r" % iterations)
        return RunSpec(test=test, chip=chip, incantations=incantations,
                       iterations=int(iterations), seed=int(seed),
                       engine=resolve_engine(engine),
                       model_engine=resolve_model_engine(model_engine),
                       batch_tail=resolve_batch_tail(batch_tail))

    @property
    def key(self):
        """The campaign grid key: ``(test name, chip short)``."""
        return (self.test.name, self.chip.short)

    def with_iterations(self, iterations):
        return replace(self, iterations=int(iterations))

    def with_engine(self, engine):
        return replace(self, engine=resolve_engine(engine))

    def with_model_engine(self, model_engine):
        return replace(self,
                       model_engine=resolve_model_engine(model_engine))

    def with_batch_tail(self, batch_tail):
        return replace(self, batch_tail=resolve_batch_tail(batch_tail))

    def fingerprint(self):
        """Stable content hash of this spec (hex digest).

        Covers the full litmus text (not just the name), the chip's
        complete profile (so recalibrated knobs invalidate old cache
        entries), the incantation column, iterations and seed.  The
        ``engine`` and ``model_engine`` are deliberately **excluded**:
        per-shard seeds derive from this digest, and engine-independent
        seeding is exactly what makes the engine-equivalence contracts
        testable (fast/reference bit-identity, batch distribution
        equivalence on the very same shard seeds).  All
        fields are frozen, so the digest is computed once and memoised
        (cache lookup, store and every shard seed re-ask for it).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        payload = "\x1e".join([
            write_litmus(self.test),
            _chip_signature(self.chip),
            "column=%d" % self.incantations.column,
            "iterations=%d" % self.iterations,
            "seed=%d" % self.seed,
        ])
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def __str__(self):
        return "%s on %s [%s] x%d seed=%d" % (
            self.test.name, self.chip.short, self.incantations,
            self.iterations, self.seed)


def matrix(tests, chips, incantations=BEST, iterations=None, seed=0,
           engine=None, model_engine=None, batch_tail=None):
    """Cartesian-product campaign plan: one :class:`RunSpec` per
    (test, chip) cell — the planner behind ``Session.campaign`` and the
    successor of the old ``run_matrix`` loop."""
    specs = []
    for test in tests:
        for chip in chips:
            specs.append(RunSpec.make(test, chip, incantations=incantations,
                                      iterations=iterations, seed=seed,
                                      engine=engine,
                                      model_engine=model_engine,
                                      batch_tail=batch_tail))
    return specs
