"""Soundness campaigns (Sec. 5.4): sim observations vs model allowances.

The paper's headline validation runs a diy-generated corpus (10930
tests, 100k iterations, six chips) and checks that the PTX model allows
*every* observed final state.  This module is that campaign on top of
the :class:`~repro.api.session.Session` layer:

* :func:`run_soundness` streams the corpus in chunks through **two**
  backends — each test's executions on the operational simulator
  (:class:`~repro.api.backends.SimBackend`, sharded across the worker
  pool) and its allowed set under an axiomatic model
  (:class:`~repro.api.backends.ModelBackend`) — and joins them per
  ``(test, chip)`` cell.  Both sessions share one worker pool and one
  result cache, so model verdicts are enumerated once per test text
  (never once per chip) and a re-run against a warm ``cache_dir``
  performs no new simulation.
* :class:`ConformanceReport` holds the joined verdicts compactly —
  per-cell observation stats and the offending final states, never the
  full histograms — so corpus size is bounded by the report, not by the
  test count times the state space.

The model half refuses truncated enumerations by construction
(:class:`ModelBackend` enumerates with ``on_limit="error"``): an
under-approximated allowed set would turn healthy observations into
false "violations".
"""

from concurrent import futures as _futures
from dataclasses import dataclass, field, replace

from .._util import format_table
from ..diy.naming import NameAllocator
from ..errors import ReproError
from ..harness.report import conformance_table
from .backends import ModelBackend
from .session import DEFAULT_CHUNK_SIZE, Session, chunked
from .spec import BEST, RunSpec, matrix, resolve_chip

#: Default chip sweep for soundness campaigns: the paper validates the
#: PTX model on Nvidia chips (Sec. 5.4); these four cover Fermi and
#: Kepler at benchmark scale.  Shared by the CLI and the benchmarks so
#: their cells coincide (and cache-share).
SOUNDNESS_CHIPS = ("TesC", "GTX6", "Titan", "GTX7")


@dataclass(frozen=True)
class Violation:
    """One final state observed on a chip but forbidden by the model."""

    test: str                     #: test name
    chip: str                     #: chip short name
    state: object                 #: the offending FinalState
    count: int                    #: how often the sim observed it

    def describe(self):
        return ("%s on %s: observed %dx but the model forbids %s"
                % (self.test, self.chip, self.count, self.state))


@dataclass(frozen=True)
class CellConformance:
    """The sim-vs-model join for one ``(test, chip)`` campaign cell."""

    test: str                     #: test name
    chip: str                     #: chip short name
    incantations: str             #: incantation combination (display form)
    iterations: int               #: sim iterations behind the histogram
    observations: int             #: final-condition (weak) observations
    per_100k: float               #: weak observations per 100k iterations
    distinct_states: int          #: distinct final states the sim observed
    cached: bool                  #: sim histogram served from the cache?
    violations: tuple = ()        #: Violations (empty = sound cell)

    @property
    def sound(self):
        """Every observed final state is model-allowed (obs ⊆ allowed)."""
        return not self.violations


@dataclass
class ConformanceReport:
    """Joined verdict of one soundness campaign.

    ``allowed_counts`` maps each test name to the size of its allowed
    set; ``cells`` lists one :class:`CellConformance` per ``(test,
    chip)`` in campaign order.  Test names key the report, so the corpus
    must be uniquely named (:func:`uniquify_tests`,
    :func:`~repro.diy.generate.generate_tests`).
    """

    model: str                               #: model backend name
    allowed_counts: dict = field(default_factory=dict)
    cells: list = field(default_factory=list)
    sim_stats: dict = field(default_factory=dict)
    model_stats: dict = field(default_factory=dict)

    # -- accumulation -----------------------------------------------------

    def add_test(self, name, allowed_count):
        if name in self.allowed_counts:
            raise ReproError(
                "duplicate test name %r in soundness corpus; conformance "
                "reports are name-keyed (uniquify_tests() renames "
                "collisions)" % name)
        self.allowed_counts[name] = allowed_count

    def add_cell(self, cell):
        self.cells.append(cell)

    # -- shape ------------------------------------------------------------

    def __len__(self):
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @property
    def tests(self):
        """Test names in campaign order."""
        return list(self.allowed_counts)

    @property
    def chips(self):
        """Chip short names in first-seen campaign order."""
        return list(dict.fromkeys(cell.chip for cell in self.cells))

    # -- verdicts ---------------------------------------------------------

    @property
    def violations(self):
        """Every observed-but-forbidden final state, campaign order."""
        return [violation for cell in self.cells
                for violation in cell.violations]

    @property
    def ok(self):
        """The paper's Sec. 5.4 claim for this corpus: observed ⊆ allowed
        on every cell."""
        return all(cell.sound for cell in self.cells)

    @property
    def total_iterations(self):
        return sum(cell.iterations for cell in self.cells)

    @property
    def cached_cells(self):
        return sum(1 for cell in self.cells if cell.cached)

    # -- coverage ---------------------------------------------------------

    def _coverage(self, key):
        groups = {}
        for cell in self.cells:
            entry = groups.setdefault(key(cell), {
                "cells": 0, "weak": 0, "violations": 0, "iterations": 0,
                "cached": 0})
            entry["cells"] += 1
            entry["weak"] += 1 if cell.observations else 0
            entry["violations"] += len(cell.violations)
            entry["iterations"] += cell.iterations
            entry["cached"] += 1 if cell.cached else 0
        return groups

    def coverage_by_chip(self):
        """``{chip short: {cells, weak, violations, iterations, cached}}``."""
        return self._coverage(lambda cell: cell.chip)

    def coverage_by_incantations(self):
        """The same aggregates keyed by incantation combination."""
        return self._coverage(lambda cell: cell.incantations)

    def _coverage_table(self, label, groups):
        headers = [label, "cells", "weak", "violations", "iterations",
                   "cached"]
        rows = [[name, entry["cells"], entry["weak"], entry["violations"],
                 entry["iterations"], entry["cached"]]
                for name, entry in groups.items()]
        return format_table(headers, rows)

    def coverage_table(self):
        """Per-chip coverage: cells checked, weak cells, violations."""
        return self._coverage_table("chip", self.coverage_by_chip())

    def incantation_table(self):
        """Per-incantation-combination coverage."""
        return self._coverage_table("incantations",
                                    self.coverage_by_incantations())

    # -- rendering --------------------------------------------------------

    def summary_table(self, max_rows=None):
        """Paper-style obs/100k grid with forbidden-state flags.

        ``max_rows`` truncates the listing for large corpora (a trailing
        line reports how many rows were elided); cells with violations
        are always shown.
        """
        cells = {(cell.test, cell.chip): cell for cell in self.cells}
        tests = self.tests
        elided = 0
        if max_rows is not None and len(tests) > max_rows:
            unsound = {cell.test for cell in self.cells
                       if cell.violations}
            keep = [name for name in tests[:max_rows]]
            keep += [name for name in tests[max_rows:] if name in unsound]
            elided = len(tests) - len(keep)
            tests = keep
        table = conformance_table(tests, self.chips, cells)
        if elided:
            table += "\n... (%d sound rows elided)" % elided
        return table

    def violation_lines(self):
        return [violation.describe() for violation in self.violations]

    def summary(self):
        weak = sum(1 for cell in self.cells if cell.observations)
        return ("soundness vs %s: %d tests x %d chips = %d cells, "
                "%d weak, %d violations, %d cached, %d iterations"
                % (self.model, len(self.allowed_counts), len(self.chips),
                   len(self.cells), weak, len(self.violations),
                   self.cached_cells, self.total_iterations))


def uniquify_tests(tests):
    """Rename duplicate-named tests with deterministic ordinal suffixes.

    :func:`~repro.diy.generate.generate_tests` already guarantees unique
    names within one generated corpus; this helper covers mixed corpora
    (generated family + library + extended tests), where e.g. a generated
    ``mp`` and the library ``mp`` would otherwise merge in the name-keyed
    report despite having different bodies.
    """
    allocator = NameAllocator()
    out = []
    for test in tests:
        unique = allocator.assign(test.name)
        out.append(test if unique == test.name
                   else replace(test, name=unique))
    return out


def _join_cell(result, allowed):
    """Fold one sim :class:`SpecResult` against the model's allowed set
    into a compact :class:`CellConformance` (drops the histogram)."""
    test_name = result.test.name
    chip_short = result.chip.short
    violations = tuple(
        Violation(test=test_name, chip=chip_short, state=state, count=count)
        for state, count in sorted(result.histogram.counts.items(),
                                   key=lambda kv: str(kv[0]))
        if state not in allowed)
    return CellConformance(
        test=test_name, chip=chip_short,
        incantations=str(result.incantations),
        iterations=result.iterations,
        observations=result.observations,
        per_100k=result.per_100k,
        distinct_states=len(result.histogram.counts),
        cached=result.cached,
        violations=violations)


def run_soundness(tests, chips, model="ptx", incantations=BEST,
                  iterations=None, seed=0, jobs=1, executor="thread",
                  cache=True, cache_dir=None, chunk_size=DEFAULT_CHUNK_SIZE,
                  fuel=128, sim_session=None, model_session=None,
                  progress=None, engine=None, model_engine=None):
    """Run the Sec. 5.4 conformance campaign over ``tests`` x ``chips``.

    ``tests`` is any iterable of litmus tests (a generator streams —
    chunked planning holds at most ``chunk_size`` tests' histograms at
    once); names must be corpus-unique (see :func:`uniquify_tests`).
    ``model`` names the axiomatic reference (``"ptx"`` is the paper's).
    Sim cells use ``incantations``/``iterations``/``seed``/``engine``
    exactly like :meth:`Session.campaign` (``engine`` matters only for
    wall-clock: both engines yield bit-identical observations), and
    ``model_engine`` picks the model-checking engine the same way
    (``"fast"``, the default, makes longer diy corpora — length 6 and
    up — enumerable within a campaign's budget).

    Example — validate a small generated corpus on two chips::

        from repro.diy import default_pool, generate_tests
        tests = generate_tests(default_pool(), max_length=4, max_tests=20)
        report = run_soundness(tests, ["Titan", "GTX7"], iterations=1000)
        assert report.ok, report.violation_lines()

    ``jobs``/``executor``/``cache``/``cache_dir`` configure the two
    internally built sessions, which share one worker pool and one
    result cache; pass ``sim_session``/``model_session`` to reuse
    existing engines instead (e.g. the benchmarks' shared memoising
    session).  ``progress`` is an optional callable invoked with each
    finished :class:`CellConformance`.

    Returns a :class:`ConformanceReport`.  Raises
    :class:`~repro.errors.EnumerationError` rather than checking against
    a truncated (under-approximated) allowed set.
    """
    chips = [resolve_chip(chip) for chip in chips]
    if not chips:
        raise ReproError("run_soundness needs at least one chip")
    own_pool = None
    try:
        if jobs > 1 and (sim_session is None or model_session is None):
            pool_cls = (_futures.ProcessPoolExecutor
                        if executor == "process"
                        else _futures.ThreadPoolExecutor)
            own_pool = pool_cls(max_workers=jobs)
        if sim_session is None:
            sim_session = Session(backend="sim", jobs=jobs,
                                  executor=executor, cache=cache,
                                  cache_dir=cache_dir, pool=own_pool,
                                  engine=engine)
        if model_session is None:
            # Share the sim session's cache object so one cache_dir (and
            # one in-memory tier) serves both backends; keys never
            # collide because they embed the backend name.
            shared_cache = (sim_session.cache
                            if sim_session.cache is not None else cache)
            model_session = Session(
                backend=ModelBackend(model, fuel=fuel), jobs=jobs,
                executor=executor, cache=shared_cache,
                cache_dir=cache_dir, pool=own_pool,
                model_engine=model_engine)
        # Stats are reported as this campaign's delta, so reusing a
        # long-lived session (the benchmarks' shared one) still yields
        # per-campaign executed/cache-hit counts.
        sim_before = sim_session.stats.snapshot()
        model_before = model_session.stats.snapshot()
        report = ConformanceReport(model=model_session.backend.name)
        representative = chips[0]
        for chunk in chunked(tests, max(1, chunk_size)):
            # One model spec per *test* — ModelBackend's cache signature
            # ignores chip/iterations/seed, so this is the memoisation
            # unit — and a sim spec per (test, chip) cell.
            model_specs = [
                RunSpec.make(test, representative, incantations=None,
                             iterations=1, seed=0,
                             model_engine=(model_engine
                                           if model_engine is not None
                                           else model_session.model_engine))
                for test in chunk]
            allowed = {}
            for test, result in zip(chunk,
                                    model_session.run_specs(model_specs)):
                allowed[test.name] = frozenset(result.histogram.counts)
                report.add_test(test.name, len(allowed[test.name]))
            sim_specs = matrix(chunk, chips, incantations=incantations,
                               iterations=iterations, seed=seed,
                               engine=(engine if engine is not None
                                       else sim_session.engine))
            for result in sim_session.run_specs(sim_specs):
                cell = _join_cell(result, allowed[result.test.name])
                report.add_cell(cell)
                if progress is not None:
                    progress(cell)
    finally:
        if own_pool is not None:
            own_pool.shutdown()
    report.sim_stats = {key: value - sim_before[key]
                        for key, value in sim_session.stats.snapshot().items()}
    report.model_stats = {
        key: value - model_before[key]
        for key, value in model_session.stats.snapshot().items()}
    return report
