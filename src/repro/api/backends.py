"""Pluggable execution backends and deterministic shard planning.

A :class:`Backend` turns a :class:`~repro.api.spec.RunSpec` into a
:class:`~repro.harness.histogram.Histogram` of final states.  Two
implementations ship:

* :class:`SimBackend` — "run it on silicon": executes the spec on the
  operational GPU simulator, iteration by iteration, on the engine the
  spec names (``fast``: a memoised
  :class:`~repro.sim.compile.CompiledCell`; ``reference``:
  :class:`~repro.sim.machine.GpuMachine` — bit-identical histograms
  either way).  Supports *sharding*: a spec's iterations are split into
  fixed-size shards, each with a deterministic seed, so a pool can run
  them in parallel and merge the histograms bit-identically to the
  serial order.
* :class:`ModelBackend` — "check it against the model": enumerates the
  candidate executions of an axiomatic model
  (:mod:`repro.model.models`) and returns the *allowed* final states as
  a histogram (count 1 each), so operational campaigns and model
  checking share one request/result shape (cf. GPUMC's unified driver).

Shard seeding.  Shard 0 always uses the spec's own seed with a fresh
``random.Random`` — for a single-shard run this reproduces the legacy
``run_litmus`` iteration stream exactly.  Later shards derive their
seeds from the spec fingerprint and the shard index via SHA-256, so the
decomposition depends only on the spec and the shard size, never on the
worker count or execution order.
"""

import hashlib
import random
import threading
from dataclasses import dataclass

from ..harness.histogram import Histogram
from ..harness.incantations import efficacy
from ..litmus.writer import write_litmus
from ..model.models import MODELS, load_model
from ..sim.batch import compile_batch_cell
from ..sim.compile import compile_cell
from ..sim.engine import run_batch
from ..sim.machine import GpuMachine

#: Default iterations per shard.  Small campaign cells (every tier-1
#: test and the CI-sized benchmarks) fit in one shard and therefore
#: reproduce the legacy serial iteration stream bit for bit; the paper's
#: 100k-iteration cells split into four parallelisable shards.
DEFAULT_SHARD_SIZE = 25000


@dataclass(frozen=True)
class Shard:
    """One slice of a spec's iterations with its deterministic seed."""

    index: int
    iterations: int
    seed: int


def shard_seed(spec, index):
    """The deterministic seed of shard ``index`` of ``spec``.

    Shard 0 is the spec's own seed (legacy-stream parity); later shards
    hash the fingerprint and index so no two shards share a stream.
    """
    if index == 0:
        return spec.seed
    digest = hashlib.sha256(
        ("%s#shard-%d" % (spec.fingerprint(), index)).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def plan_shards(spec, shard_size=DEFAULT_SHARD_SIZE):
    """Split ``spec.iterations`` into deterministic shards.

    The decomposition is a pure function of the spec and the shard size
    — never of the worker count — which is what makes parallel and
    serial execution merge to bit-identical histograms.
    """
    if shard_size < 1:
        from ..errors import ReproError
        raise ReproError("shard_size must be >= 1, got %r" % shard_size)
    shards = []
    remaining = spec.iterations
    index = 0
    while remaining > 0:
        size = min(shard_size, remaining)
        shards.append(Shard(index=index, iterations=size,
                            seed=shard_seed(spec, index)))
        remaining -= size
        index += 1
    return shards


class Backend:
    """Protocol for execution backends.

    ``run`` must be deterministic in the spec.  Backends that set
    ``supports_sharding`` must implement ``run_shard`` such that merging
    all shard histograms of :meth:`shards` (any order) equals ``run``'s
    histogram for the same shard size.
    """

    name = "backend"
    supports_sharding = False

    def cache_signature(self, spec):
        """The part of ``spec`` this backend's result depends on.

        Defaults to the full fingerprint; backends whose results ignore
        some fields override this so equivalent cells share cache
        entries (e.g. a model verdict does not depend on the chip).
        """
        return spec.fingerprint()

    def shards(self, spec, shard_size):
        """Split ``spec`` into independent parallel work units.

        ``None`` means the spec is indivisible and must go through
        :meth:`run`.  The default for sharding backends is the
        iteration decomposition of :func:`plan_shards`; backends whose
        unit of work is not an iteration batch (one model verdict per
        test) override this.
        """
        if not self.supports_sharding:
            return None
        return plan_shards(spec, shard_size)

    def cache_variant(self, spec, shard_size):
        """The execution-parameter component of the cache key.

        Empty by default: most backends' results do not depend on how
        the work was decomposed.  The sim backend overrides this
        because per-shard seeding makes the histogram a function of the
        effective decomposition.
        """
        return ""

    def run(self, spec):
        """Execute ``spec`` fully; returns a Histogram."""
        raise NotImplementedError

    def run_shard(self, spec, shard):
        """Execute one shard of ``spec``; returns a Histogram."""
        raise NotImplementedError(
            "%s does not support sharded execution" % self.name)

    def consume_stats(self):
        """Execution statistics accumulated since the previous call
        (e.g. plan-cache hits), or ``None``.  Called in the worker that
        ran the shard, so process pools ship the counts back with the
        histogram."""
        return None


class SimBackend(Backend):
    """Operational execution on the simulated chips (Sec. 4 campaigns).

    ``spec.engine`` picks the execution engine per cell: ``"fast"``
    lowers the cell once through :func:`repro.sim.compile.compile_cell`
    and reuses the compiled machine for every shard this process runs
    (the memo is process-local — compiled cells hold closures and do not
    pickle, so process-pool workers each compile their own, amortised
    over a shard's iterations); ``"batch"`` lowers through
    :func:`repro.sim.batch.compile_batch_cell` into numpy
    structure-of-arrays kernels executing each shard as one lockstep
    batch (same memo discipline — batch cells hold numpy buffers and
    closures and do not pickle either); ``"reference"`` interprets
    through :class:`~repro.sim.machine.GpuMachine`.  ``reference`` and
    ``fast`` produce bit-identical histograms for the same shard seeds;
    ``batch`` is distribution-equivalent under a documented seeded
    stream-break (see :mod:`repro.sim.batch`).  The cache signature
    keeps all three apart (see :meth:`cache_signature`).
    """

    name = "sim"
    supports_sharding = True

    #: Compiled-cell memo cap; a long-lived session (e.g. the benchmark
    #: suite's shared one) must not accumulate closures without bound.
    MAX_COMPILED = 512

    def __init__(self, shard_size=DEFAULT_SHARD_SIZE):
        self.shard_size = shard_size
        # Per-*thread* memo: a CompiledCell mutates its own machine
        # state during run_once, so two pool threads must never share
        # one.  (Process pools sidestep this via pickling, which drops
        # the memo entirely — see __getstate__.)
        self._local = threading.local()
        # Plan-cache directory (a plain string, so it *does* pickle
        # into process-pool workers — that is the whole point: workers
        # share lowered batch plans through it instead of re-analysing
        # per process).  Set via set_plan_cache, typically by the
        # session when it has a disk cache directory.
        self.plan_dir = None

    def set_plan_cache(self, directory):
        """Share lowered batch plans through ``directory`` (None
        disables).  See :mod:`repro.sim.plancache`."""
        self.plan_dir = directory

    def __getstate__(self):
        # Compiled cells hold closures; drop the memo when a process
        # pool pickles the backend into its workers.
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()

    def cache_signature(self, spec):
        """Fingerprint plus engine.

        The fingerprint deliberately excludes the engine (shard seeds
        stay engine-neutral), but cached results must not cross
        engines: a histogram cached by one engine would otherwise
        satisfy (and silently mask) a run requested on another —
        including the equivalence tests that enforce the
        bit-identity/distribution-equivalence contracts in the first
        place, and the batch engine's histograms are only
        distribution-equivalent, not bit-identical.

        The batch engine's tail fraction joins for the same reason:
        the straggler hand-off changes the RNG stream, so histograms
        produced under different tails are distinct statistical draws
        and must not share cache entries.  The other engines have no
        tail, so the knob is omitted (their entries stay stable however
        ``REPRO_BATCH_TAIL`` is set).
        """
        if spec.engine == "batch":
            return "%s-%s-tail%g" % (spec.fingerprint(), spec.engine,
                                     spec.batch_tail)
        return "%s-%s" % (spec.fingerprint(), spec.engine)

    def cache_variant(self, spec, shard_size):
        """Per-shard seeding makes the histogram a function of the
        decomposition, which is fully determined by
        ``min(shard_size, iterations)`` — two shard sizes that both
        cover the whole spec produce the identical single shard and may
        share an entry."""
        return "shard%d" % min(shard_size, spec.iterations)

    def _machine(self, spec):
        intensity = efficacy(spec.chip.vendor, spec.test.idiom or "mp",
                             spec.incantations)
        if spec.engine in ("fast", "batch"):
            cells = getattr(self._local, "cells", None)
            if cells is None:
                cells = self._local.cells = {}
            # Key on what the compiled cell actually depends on — the
            # engine, test text, chip profile, incantation column — not
            # the full fingerprint, so iteration/seed variants of one
            # cell share a single compilation (and the two compiling
            # engines never share one).  The batch tail joins for batch
            # cells: it is baked into the lowered cell.
            key = (spec.engine, spec.test.name, write_litmus(spec.test),
                   repr(spec.chip), spec.incantations.column)
            if spec.engine == "batch":
                key += (spec.batch_tail,)
            machine = cells.get(key)
            if machine is None:
                if len(cells) >= self.MAX_COMPILED:
                    cells.clear()
                if spec.engine == "batch":
                    machine = self._lower_batch(spec, intensity)
                else:
                    machine = compile_cell(
                        spec.test, spec.chip, intensity=intensity,
                        shuffle_placement=spec.incantations.thread_rand)
                cells[key] = machine
            return machine
        return GpuMachine(spec.test, spec.chip, intensity=intensity,
                          shuffle_placement=spec.incantations.thread_rand)

    def _lower_batch(self, spec, intensity):
        """Lower a batch cell, sharing analysis plans across workers.

        With a plan cache attached, the picklable analysis product of
        the lowering is looked up by content signature before paying
        the analysis pass, and published after a miss — so a process
        pool analyses each cell once per campaign, not once per worker.
        The tail fraction is deliberately not part of the signature
        (plans are tail-independent runtime parameters).
        """
        plan = store = signature = None
        if self.plan_dir:
            from ..sim.batch import PLAN_VERSION
            from ..sim.plancache import plan_signature, plan_store
            store = plan_store(self.plan_dir)
            signature = plan_signature(
                "sim-batch", PLAN_VERSION, write_litmus(spec.test),
                repr(spec.chip), spec.incantations.column)
            plan = store.get(signature)
        machine = compile_batch_cell(
            spec.test, spec.chip, intensity=intensity,
            shuffle_placement=spec.incantations.thread_rand,
            tail_fraction=spec.batch_tail, plan=plan)
        if store is not None and plan is None:
            store.put(signature, machine.plan())
        return machine

    def consume_stats(self):
        if not self.plan_dir:
            return None
        from ..sim.plancache import plan_store
        return plan_store(self.plan_dir).consume_stats()

    def run_shard(self, spec, shard):
        return run_batch(self._machine(spec), shard.iterations,
                         random.Random(shard.seed), Histogram())

    def run(self, spec):
        return Histogram.merge(self.run_shard(spec, shard)
                               for shard in plan_shards(spec, self.shard_size))


class ModelBackend(Backend):
    """Axiomatic model checking behind the campaign API.

    The histogram holds each final state the model *allows* with count
    1; ``iterations`` in the spec is ignored (enumeration is exhaustive,
    not statistical).  ``SpecResult.observations > 0`` therefore reads
    as the paper's Allowed verdict for the test's condition.

    ``spec.model_engine`` picks the checking engine per cell:
    ``"fast"`` compiles the model once and prunes the enumeration with
    its monotone checks (:func:`repro.model.enumerate.enumerate_allowed`);
    ``"reference"`` materialises every candidate execution.  Identical
    allowed sets either way, kept apart in the cache (see
    :meth:`cache_signature`).

    *Sharding.*  A verdict is one indivisible enumeration, so each spec
    is its own shard: a campaign's test list spreads across the worker
    pool one verdict per worker (the verdict — one per test text — is
    already the memoisation unit, so chips never multiply the work).
    """

    supports_sharding = True

    def __init__(self, model="ptx", fuel=128, max_executions=None):
        self.model = load_model(model) if isinstance(model, str) else model
        self.name = "model:%s" % self.model.name
        self.fuel = fuel
        self.max_executions = max_executions

    def cache_signature(self, spec):
        """Verdicts depend only on the test text, the enumeration fuel
        and the model engine — not chip, iterations or seed — so a
        campaign across the seven result chips enumerates each test
        once, not seven times.  The engine is part of the signature for
        the same reason as the sim backend's: a cached reference
        verdict must never mask a fast-engine divergence."""
        payload = "%s\x1e fuel=%d\x1e engine=%s" % (
            write_litmus(spec.test), self.fuel, spec.model_engine)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def shards(self, spec, shard_size):
        """One verdict, one work unit.  ``iterations=0`` keeps the
        session's simulated-iteration accounting a sim-only statistic."""
        return [Shard(index=0, iterations=0, seed=spec.seed)]

    def run_shard(self, spec, shard):
        return self.run(spec)

    def run(self, spec):
        # on_limit="error" is non-negotiable here: the campaign layer
        # treats this histogram as the *complete* allowed set, and a
        # truncated enumeration would manufacture false "violations" in
        # soundness campaigns.  ``max_executions`` therefore acts as a
        # safety valve (refuse combinatorial blow-ups loudly), never as a
        # silent sampler.
        allowed = self.model.allowed_outcomes(
            spec.test, fuel=self.fuel, max_executions=self.max_executions,
            on_limit="error", engine=spec.model_engine)
        histogram = Histogram()
        for state in allowed:
            histogram.add(state)
        return histogram


def make_backend(backend):
    """Resolve a backend argument: an instance, ``"sim"``, ``"model"``
    (the paper's PTX model), ``"model:<name>"`` for any registered
    axiomatic model, ``"app"`` (application scenario campaigns),
    ``"analysis"`` (static race/ordering verdicts), or ``"exhaustive"``
    (DPOR stateless model checking of the compiled cell)."""
    if isinstance(backend, Backend):
        return backend
    if backend == "sim":
        return SimBackend()
    if backend == "model":
        return ModelBackend()
    if backend == "app":
        # Local import: the apps package sits above the api layer.
        from ..apps.backend import AppBackend
        return AppBackend()
    if backend == "analysis":
        # Local import: the analysis package sits above the api layer.
        from ..analysis.backend import AnalysisBackend
        return AnalysisBackend()
    if backend == "exhaustive":
        # Local import: the exhaustive package sits above the api layer.
        from ..exhaustive.backend import ExhaustiveBackend
        return ExhaustiveBackend()
    if isinstance(backend, str) and backend.startswith("model:"):
        return ModelBackend(backend.split(":", 1)[1])
    from ..errors import ReproError
    raise ReproError(
        "unknown backend %r (expected 'analysis', 'app', 'exhaustive', "
        "'model', 'sim', or 'model:NAME' where NAME is one of: %s)"
        % (backend, ", ".join(sorted(MODELS))))
