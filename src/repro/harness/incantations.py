"""Incantations: the testing heuristics of Sec. 4.3 and their efficacy.

The paper's four incantations — memory stress, general bank conflicts,
thread synchronisation, thread randomisation — are workloads and layout
choices that provoke weak behaviours.  Table 6 measures every one of the
16 combinations on the GTX Titan and Radeon HD 7970 for four idioms.

In the simulator, incantations act through an *efficacy multiplier* on
the chip's relaxation-intent probabilities (plus thread randomisation's
structural effect of shuffling CTA placement).  The multiplier tables
below are the paper's Table 6 rows, normalised per row; the column key
(recovered from the prose of Sec. 4.3, see DESIGN.md) is::

    column = 1 + 8*memory_stress + 4*bank_conflicts + 2*thread_sync
               + 1*thread_randomisation

so column 1 is "no incantations" and column 12 is stress+sync+random —
the combination the text singles out for inter-CTA tests.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Incantations:
    """One combination of the four incantations."""

    memory_stress: bool = False
    bank_conflicts: bool = False
    thread_sync: bool = False
    thread_rand: bool = False

    @property
    def column(self):
        """Table 6 column number (1-16) of this combination."""
        return (1 + 8 * self.memory_stress + 4 * self.bank_conflicts
                + 2 * self.thread_sync + 1 * self.thread_rand)

    @staticmethod
    def from_column(column):
        if not 1 <= column <= 16:
            raise ValueError("Table 6 columns are 1..16")
        bits = column - 1
        return Incantations(memory_stress=bool(bits & 8),
                            bank_conflicts=bool(bits & 4),
                            thread_sync=bool(bits & 2),
                            thread_rand=bool(bits & 1))

    @staticmethod
    def none():
        return Incantations()

    @staticmethod
    def all():
        return Incantations(True, True, True, True)

    def __str__(self):
        parts = [name for name, on in [
            ("stress", self.memory_stress), ("bank-conflicts", self.bank_conflicts),
            ("sync", self.thread_sync), ("random", self.thread_rand)] if on]
        return "+".join(parts) if parts else "none"


#: All 16 combinations in Table 6 column order.
ALL_COMBINATIONS = [Incantations.from_column(c) for c in range(1, 17)]

#: Table 6 rows, verbatim (obs / 100k, columns 1..16).
TABLE6 = {
    ("Nvidia", "coRR"): [0, 0, 0, 0, 0, 1235, 0, 9774,
                         161, 118, 847, 362, 632, 3384, 3993, 9985],
    ("Nvidia", "lb"): [0, 0, 0, 0, 0, 0, 0, 0,
                       181, 1067, 1555, 2247, 4, 37, 83, 486],
    ("Nvidia", "mp"): [0, 0, 0, 0, 0, 621, 0, 2921,
                       315, 1128, 2372, 4347, 7, 94, 442, 2888],
    ("Nvidia", "sb"): [0, 0, 0, 0, 0, 0, 0, 0,
                       462, 1403, 3308, 6673, 3, 50, 88, 749],
    ("AMD", "coRR"): [0] * 16,
    ("AMD", "lb"): [10959, 8979, 31895, 29092, 13510, 12729, 29779, 26737,
                    5094, 9360, 37624, 38664, 5321, 10054, 32796, 34196],
    ("AMD", "mp"): [212, 31, 243, 158, 277, 46, 318, 247,
                    473, 217, 1289, 563, 611, 339, 2542, 1628],
    ("AMD", "sb"): [0, 0, 0, 0, 2, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0],
}


def _normalised(row):
    peak = max(row)
    if peak == 0:
        return [1.0] * len(row)  # idiom never observed: multiplier is moot
    return [value / peak for value in row]


_EFFICACY = {key: _normalised(row) for key, row in TABLE6.items()}

#: Idioms not measured in Table 6 follow the mp profile (the
#: message-passing shape underlies most of the paper's distilled tests).
_DEFAULT_IDIOM = "mp"


def efficacy(vendor, idiom, incantations):
    """Multiplier in [0, 1] for the chip's relaxation probabilities."""
    table = _EFFICACY.get((vendor, idiom))
    if table is None:
        table = _EFFICACY.get((vendor, _DEFAULT_IDIOM))
    if table is None:
        raise KeyError("no efficacy table for vendor %r" % vendor)
    return table[incantations.column - 1]


def best_for(vendor, idiom):
    """The most effective incantation combination for this vendor/idiom —
    what the paper uses when reporting its per-figure observation counts
    ("using the most effective incantations", Sec. 3)."""
    table = _EFFICACY.get((vendor, idiom)) or _EFFICACY[(vendor, _DEFAULT_IDIOM)]
    column = max(range(16), key=lambda i: table[i]) + 1
    return Incantations.from_column(column)
