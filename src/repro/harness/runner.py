"""The litmus runner: execute a test many times on a simulated chip.

This is the reproduction of the paper's testing tool (Sec. 4.2): given a
litmus test it produces a histogram of all observed outcomes and the
observation count of the final condition, under a chosen combination of
incantations.  ``run_paper_config`` mirrors the paper's reporting: 100k
executions (scaled by ``REPRO_ITERS`` for CI-sized runs) under the most
effective incantations.
"""

import os
import random
from dataclasses import dataclass

from ..sim.chip import CHIPS, ChipProfile
from ..sim.machine import GpuMachine
from .histogram import Histogram
from .incantations import Incantations, best_for, efficacy

#: The paper's iteration count per test.
PAPER_ITERATIONS = 100000


def default_iterations(fallback=10000):
    """Iteration count for benchmarks: ``REPRO_ITERS`` env or ``fallback``."""
    value = os.environ.get("REPRO_ITERS")
    if not value:
        return fallback
    return max(int(value), 1)


@dataclass
class RunResult:
    """Outcome of running one litmus test on one chip."""

    test: object
    chip: ChipProfile
    incantations: Incantations
    histogram: Histogram
    iterations: int

    @property
    def observations(self):
        return self.histogram.observations(self.test.condition)

    @property
    def per_100k(self):
        return self.histogram.per_100k(self.test.condition)

    @property
    def observed_weak(self):
        return self.observations > 0

    def summary(self):
        return ("%s on %s [%s]: %d/%d weak (%.0f per 100k)"
                % (self.test.name, self.chip.short, self.incantations,
                   self.observations, self.iterations, self.per_100k))


def _resolve_chip(chip):
    if isinstance(chip, ChipProfile):
        return chip
    return CHIPS[chip]


def run_litmus(test, chip, incantations=None, iterations=None, seed=0):
    """Run ``test`` on ``chip`` under ``incantations``.

    ``incantations=None`` means the bare Sec. 4.2 setup (no incantations
    enabled) — which, as the paper reports, rarely witnesses anything on
    Nvidia chips.
    """
    chip = _resolve_chip(chip)
    incantations = incantations or Incantations.none()
    iterations = iterations or default_iterations()
    intensity = efficacy(chip.vendor, test.idiom or "mp", incantations)
    machine = GpuMachine(test, chip, intensity=intensity,
                         shuffle_placement=incantations.thread_rand)
    rng = random.Random(seed)
    histogram = Histogram()
    for _ in range(iterations):
        histogram.add(machine.run_once(rng))
    return RunResult(test=test, chip=chip, incantations=incantations,
                     histogram=histogram, iterations=iterations)


def run_paper_config(test, chip, iterations=None, seed=0):
    """Run with the most effective incantations — the configuration whose
    observation counts the paper's figures report."""
    chip = _resolve_chip(chip)
    incantations = best_for(chip.vendor, test.idiom or "mp")
    return run_litmus(test, chip, incantations=incantations,
                      iterations=iterations, seed=seed)


def run_matrix(tests, chips, iterations=None, seed=0, paper_config=True):
    """Run a family of tests across chips.

    Returns ``{(test name, chip short): RunResult}``.  Used by the
    figure-reproduction benchmarks.
    """
    results = {}
    for test in tests:
        for chip in chips:
            if paper_config:
                result = run_paper_config(test, chip, iterations, seed)
            else:
                result = run_litmus(test, chip, iterations=iterations, seed=seed)
            results[(test.name, _resolve_chip(chip).short)] = result
    return results
