"""The litmus runner: execute a test many times on a simulated chip.

This is the reproduction of the paper's testing tool (Sec. 4.2): given a
litmus test it produces a histogram of all observed outcomes and the
observation count of the final condition, under a chosen combination of
incantations.  ``run_paper_config`` mirrors the paper's reporting: 100k
executions (scaled by ``REPRO_ITERS`` for CI-sized runs) under the most
effective incantations.

Since the :mod:`repro.api` redesign these functions are thin
backwards-compatible wrappers: planning, sharding, parallelism and
caching live in :class:`repro.api.Session`; the wrappers build one-off
sessions (no cache, one worker) and repackage the results in the legacy
:class:`RunResult` shape.  For campaigns, prefer the session API — it
is the same engine with the knobs exposed.

Determinism note: up to one shard of iterations
(:data:`repro.api.DEFAULT_SHARD_SIZE`, 25000) the wrappers reproduce
the pre-1.1 single-RNG-stream histograms bit for bit for a given seed.
Beyond that, iterations run in deterministically seeded shards: still
fully reproducible for the same seed, but not the legacy stream.
"""

from dataclasses import dataclass

from .._util import env_int
from ..sim.chip import CHIPS, ChipProfile
from .histogram import Histogram
from .incantations import Incantations, best_for

#: The paper's iteration count per test.
PAPER_ITERATIONS = 100000


def default_iterations(fallback=10000):
    """Iteration count for benchmarks: ``REPRO_ITERS`` env or ``fallback``.

    A non-integer value fails fast with a clear
    :class:`~repro.errors.ConfigurationError`.
    """
    return env_int("REPRO_ITERS", fallback)


@dataclass
class RunResult:
    """Outcome of running one litmus test on one chip."""

    test: object
    chip: ChipProfile
    incantations: Incantations
    histogram: Histogram
    iterations: int

    @property
    def observations(self):
        return self.histogram.observations(self.test.condition)

    @property
    def per_100k(self):
        return self.histogram.per_100k(self.test.condition)

    @property
    def observed_weak(self):
        return self.observations > 0

    def summary(self):
        return ("%s on %s [%s]: %d/%d weak (%.0f per 100k)"
                % (self.test.name, self.chip.short, self.incantations,
                   self.observations, self.iterations, self.per_100k))


def _resolve_chip(chip):
    if isinstance(chip, ChipProfile):
        return chip
    return CHIPS[chip]


def _session(session):
    if session is not None:
        return session
    from ..api import Session
    return Session(backend="sim", jobs=1, cache=False)


def _legacy_result(result):
    return RunResult(test=result.spec.test, chip=result.spec.chip,
                     incantations=result.spec.incantations,
                     histogram=result.histogram,
                     iterations=result.spec.iterations)


def run_litmus(test, chip, incantations=None, iterations=None, seed=0,
               session=None, engine=None):
    """Run ``test`` on ``chip`` under ``incantations``.

    ``incantations=None`` means the bare Sec. 4.2 setup (no incantations
    enabled) — which, as the paper reports, rarely witnesses anything on
    Nvidia chips.  Pass ``session`` to reuse a configured
    :class:`repro.api.Session` (workers, cache) for many calls, and
    ``engine`` to pick the simulation engine (``"fast"``/``"reference"``,
    bit-identical histograms).
    """
    from ..api import RunSpec

    spec = RunSpec.make(test, chip,
                        incantations=incantations or Incantations.none(),
                        iterations=iterations, seed=seed, engine=engine)
    return _legacy_result(_session(session).run(spec))


def run_paper_config(test, chip, iterations=None, seed=0, session=None,
                     engine=None):
    """Run with the most effective incantations — the configuration whose
    observation counts the paper's figures report."""
    chip = _resolve_chip(chip)
    incantations = best_for(chip.vendor, test.idiom or "mp")
    return run_litmus(test, chip, incantations=incantations,
                      iterations=iterations, seed=seed, session=session,
                      engine=engine)


def run_matrix(tests, chips, iterations=None, seed=0, paper_config=True,
               session=None, engine=None):
    """Run a family of tests across chips.

    Returns ``{(test name, chip short): RunResult}``.  Used by the
    figure-reproduction benchmarks.  The heavy lifting happens in
    :meth:`repro.api.Session.campaign`; this wrapper keeps the legacy
    dict-of-RunResult shape.
    """
    incantations = "best" if paper_config else Incantations.none()
    campaign = _session(session).campaign(
        tests, [_resolve_chip(chip) for chip in chips],
        incantations=incantations, iterations=iterations, seed=seed,
        engine=engine)
    return {key: _legacy_result(result)
            for key, result in campaign.results.items()}
