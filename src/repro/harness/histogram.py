"""Outcome histograms: what the litmus tool prints after 100k runs."""

from dataclasses import dataclass, field


@dataclass
class Histogram:
    """A multiset of final states observed over many runs."""

    counts: dict = field(default_factory=dict)

    def add(self, state, count=1):
        self.counts[state] = self.counts.get(state, 0) + count

    @property
    def total(self):
        return sum(self.counts.values())

    def __len__(self):
        return len(self.counts)

    def __iter__(self):
        return iter(sorted(self.counts.items(), key=lambda kv: -kv[1]))

    def observations(self, condition):
        """How many runs satisfied the final condition's expression."""
        return sum(count for state, count in self.counts.items()
                   if condition.holds(state))

    def witnesses(self, condition):
        """The distinct final states satisfying the condition."""
        return [state for state in self.counts if condition.holds(state)]

    def per_100k(self, condition):
        """Observation count normalised to the paper's 100k executions."""
        if self.total == 0:
            return 0.0
        return self.observations(condition) * 100000.0 / self.total

    def merged(self, other):
        return Histogram.merge([self, other])

    @classmethod
    def merge(cls, histograms):
        """Merge any iterable of histograms into a new one.

        Counts add per state; merging is commutative and associative,
        which is what lets the session's sharded runs recombine into the
        same histogram regardless of completion order.
        """
        result = cls()
        for histogram in histograms:
            for state, count in histogram.counts.items():
                result.add(state, count)
        return result

    def pretty(self, condition=None):
        lines = ["Histogram (%d states, %d runs)" % (len(self), self.total)]
        for state, count in self:
            marker = ""
            if condition is not None and condition.holds(state):
                marker = "  *witness*"
            lines.append("%8d : %s%s" % (count, state, marker))
        if condition is not None:
            lines.append("Observation %d/%d for %s"
                         % (self.observations(condition), self.total, condition))
        return "\n".join(lines)
