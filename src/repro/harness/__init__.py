"""Litmus-running harness: incantations, runner, histograms, reports."""

from .histogram import Histogram
from .incantations import (ALL_COMBINATIONS, Incantations, TABLE6, best_for,
                           efficacy)
from .runner import (PAPER_ITERATIONS, RunResult, default_iterations,
                     run_litmus, run_matrix, run_paper_config)
from .report import comparison_line, figure_table

__all__ = [
    "Histogram",
    "ALL_COMBINATIONS", "Incantations", "TABLE6", "best_for", "efficacy",
    "PAPER_ITERATIONS", "RunResult", "default_iterations", "run_litmus",
    "run_matrix", "run_paper_config",
    "comparison_line", "figure_table",
]
