"""Paper-style observation tables for figure reproduction."""

from .._util import format_table


def figure_table(title, rows, chips, results, paper=None):
    """Render an obs/100k table like the bottom of Figs. 1-11.

    ``rows`` is a list of (row label, test name) pairs; ``results`` maps
    ``(test name, chip short)`` to RunResult; ``paper`` optionally maps
    the same keys to the paper's published counts, rendered alongside as
    ``sim (paper N)``.
    """
    headers = ["obs/100k"] + list(chips)
    body = []
    for label, test_name in rows:
        row = [label]
        for chip in chips:
            result = results.get((test_name, chip))
            if result is None:
                row.append("n/a")
                continue
            cell = "%.0f" % result.per_100k
            if paper is not None and (test_name, chip) in paper:
                cell += " (paper %s)" % paper[(test_name, chip)]
            row.append(cell)
        body.append(row)
    return "%s\n%s" % (title, format_table(headers, body))


def conformance_table(tests, chips, cells):
    """Render a Sec. 5.4 soundness grid: one row per test, one column per
    chip.

    ``cells`` maps ``(test name, chip short)`` to any object with a
    ``per_100k`` float and a ``violations`` sequence (the shape of
    :class:`repro.api.conformance.CellConformance`).  Sound cells render
    their obs/100k rate like the figure tables; unsound cells are flagged
    with the number of model-forbidden final states observed.
    """
    headers = ["obs/100k"] + list(chips)
    body = []
    for name in tests:
        row = [name]
        for chip in chips:
            cell = cells.get((name, chip))
            if cell is None:
                row.append("n/a")
            elif cell.violations:
                row.append("%.0f !%d forbidden"
                           % (cell.per_100k, len(cell.violations)))
            else:
                row.append("%.0f" % cell.per_100k)
        body.append(row)
    return format_table(headers, body)


def comparison_line(name, chip, measured, published):
    """One EXPERIMENTS.md-style comparison line."""
    if published == "n/a":
        return "%-24s %-8s measured %8.0f   paper n/a" % (name, chip, measured)
    agree = (measured > 0) == (published > 0)
    verdict = "shape-ok" if agree else "SHAPE-MISMATCH"
    return ("%-24s %-8s measured %8.0f   paper %8d   %s"
            % (name, chip, measured, published, verdict))
