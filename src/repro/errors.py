"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PtxSyntaxError(ReproError):
    """Raised when PTX assembly text cannot be parsed."""

    def __init__(self, message, line=None, text=None):
        self.line = line
        self.text = text
        location = "" if line is None else " (line %d)" % line
        snippet = "" if text is None else ": %r" % text
        super().__init__(message + location + snippet)


class LitmusSyntaxError(ReproError):
    """Raised when a litmus test file cannot be parsed."""


class ScopeTreeError(ReproError):
    """Raised for malformed scope trees or unknown thread placements."""


class CatSyntaxError(ReproError):
    """Raised when a .cat model file cannot be parsed."""


class CatEvalError(ReproError):
    """Raised when evaluating a .cat model fails (e.g. unknown relation)."""


class EnumerationError(ReproError):
    """Raised when candidate-execution enumeration fails."""


class SimulationError(ReproError):
    """Raised when the GPU simulator encounters an invalid state."""


class FuelExhausted(SimulationError):
    """Raised when a simulated thread runs out of execution fuel.

    Spin loops in litmus tests and applications are bounded by a fuel
    budget; exhausting it usually signals livelock (e.g. a lock that is
    never released).
    """


class ExplorationLimit(SimulationError):
    """Raised when exhaustive exploration exceeds its transition budget.

    The exhaustive backend treats its reachable-state set as *complete*,
    so the budget acts like the model backend's ``max_executions``: a
    safety valve that refuses combinatorial blow-ups loudly, never a
    silent sampler."""


class ConfigurationError(ReproError):
    """Raised for invalid environment/configuration values (e.g. a
    non-integer ``REPRO_ITERS``)."""


class CompileError(ReproError):
    """Raised by the CUDA/OpenCL/SASS compilation pipelines."""


class OptcheckViolation(ReproError):
    """Raised when optcheck finds SASS inconsistent with its specification."""


class GenerationError(ReproError):
    """Raised when diy cannot build a litmus test from a cycle."""
