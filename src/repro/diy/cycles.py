"""Cycle enumeration over relaxation edges (the core of diy, Sec. 4.1).

A cycle is a sequence of edges, interpreted cyclically: edge *i* connects
event *i* to event *i+1 (mod n)*.  A cycle is *well formed* when:

* adjacent directions agree (``dst`` of edge *i* = ``src`` of edge *i+1*);
* walking the cycle and switching threads at external edges returns to
  the starting thread (so threads partition the cycle into contiguous
  segments) and uses at least two threads;
* walking the cycle and switching locations at different-location edges
  returns to the starting location;
* the scope annotations of the external edges admit a consistent CTA
  assignment (same-CTA edges are transitive).
"""

from ..errors import GenerationError


class Cycle:
    """A validated cycle: edges plus per-event thread/location/direction."""

    def __init__(self, edges):
        edges = tuple(edges)
        if len(edges) < 2:
            raise GenerationError("a cycle needs at least two edges")
        self.edges = self._normalise(edges)
        self.n = len(edges)
        self._place()

    @staticmethod
    def _normalise(edges):
        """Rotate so the cycle ends with an external edge.

        Thread segments are then contiguous runs starting at event 0,
        which lets the generator emit instructions in cycle order.
        """
        external = [i for i, edge in enumerate(edges) if not edge.same_thread]
        if len(external) < 2:
            raise GenerationError(
                "a cycle needs at least two external (communication) edges")
        shift = (external[-1] + 1) % len(edges)
        return tuple(edges[shift:] + edges[:shift])

    def _place(self):
        edges = self.edges
        n = self.n
        for i, edge in enumerate(edges):
            nxt = edges[(i + 1) % n]
            if edge.dst != nxt.src:
                raise GenerationError(
                    "direction mismatch between %s and %s" % (edge, nxt))

        directions = [edge.src for edge in edges]

        # Threads: a new thread after every external edge; the final
        # external edge (guaranteed last by normalisation) wraps to T0.
        threads = [0]
        for edge in edges[:-1]:
            threads.append(threads[-1] + (0 if edge.same_thread else 1))
        n_threads = threads[-1] + 1

        # Locations: diy reuses locations cyclically — a new location
        # after every different-location edge, modulo the number of
        # such edges.  One lone location-changing edge cannot close.
        n_changes = sum(1 for edge in edges if not edge.same_loc)
        if n_changes == 1:
            raise GenerationError(
                "a single location-changing edge cannot close the cycle")
        locations, change_count = [0], 0
        for edge in edges[:-1]:
            if not edge.same_loc:
                change_count += 1
            locations.append(change_count % max(n_changes, 1))
        n_locations = max(n_changes, 1)

        self.directions = directions
        self.threads = threads
        self.locations = locations
        self.n_threads = n_threads
        self.n_locations = n_locations
        self.cta_groups = self._solve_scopes()

    def _solve_scopes(self):
        """Assign CTAs to threads consistently with edge scope annotations.

        Same-CTA edges union their endpoint threads; different-CTA edges
        then must cross groups.  Returns thread -> CTA index.
        """
        parent = list(range(self.n_threads))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        external = []
        for i, edge in enumerate(self.edges):
            if edge.same_thread:
                continue
            a = self.threads[i]
            b = self.threads[(i + 1) % self.n]
            external.append((edge, a, b))
            if edge.scope == "cta":
                parent[find(a)] = find(b)
        for edge, a, b in external:
            if edge.scope != "cta" and find(a) == find(b):
                raise GenerationError(
                    "scope annotations inconsistent: threads %d and %d must be"
                    " both intra- and inter-CTA" % (a, b))
        groups = {}
        assignment = []
        for tid in range(self.n_threads):
            root = find(tid)
            groups.setdefault(root, len(groups))
            assignment.append(groups[root])
        return assignment

    @property
    def name(self):
        return " ".join(edge.name for edge in self.edges)

    def canonical(self):
        """Rotation-canonical form (for deduplication)."""
        rotations = []
        names = [edge.name for edge in self.edges]
        for shift in range(self.n):
            rotations.append(tuple(names[shift:] + names[:shift]))
        return min(rotations)

    def __str__(self):
        return self.name


def try_cycle(edges):
    """Build a cycle, returning None when the sequence is ill-formed."""
    try:
        return Cycle(edges)
    except GenerationError:
        return None


def enumerate_cycles(pool, length, max_cycles=None):
    """Enumerate well-formed cycles of exactly ``length`` edges from
    ``pool``, deduplicated up to rotation.

    Mirrors diy's behaviour: the pool lists candidate relaxations and the
    tool "enumerates the possible cycles that can be formed with those
    edges" (Sec. 4.1).
    """
    seen = set()
    results = []

    def extend(sequence):
        if max_cycles is not None and len(results) >= max_cycles:
            return
        if len(sequence) == length:
            cycle = try_cycle(sequence)
            if cycle is None:
                return
            key = cycle.canonical()
            if key not in seen:
                seen.add(key)
                results.append(cycle)
            return
        last = sequence[-1] if sequence else None
        for edge in pool:
            if last is not None and last.dst != edge.src:
                continue
            # Cheap pruning: partial thread/location walks cannot recover
            # from having no external edge by the last position.
            extend(sequence + [edge])

    extend([])
    return results


def cycles_up_to(pool, max_length, max_cycles=None):
    """All cycles of length 2..max_length (deduplicated per length)."""
    cycles = []
    for length in range(2, max_length + 1):
        remaining = None if max_cycles is None else max_cycles - len(cycles)
        if remaining is not None and remaining <= 0:
            break
        cycles.extend(enumerate_cycles(pool, length, remaining))
    return cycles
