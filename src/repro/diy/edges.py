"""Relaxation edges for systematic test generation (Sec. 4.1).

The diy tool generates litmus tests from *cycles* of edges, each edge
being a candidate relaxation: program order between two accesses
(``PodWW``, ``PosRR``, ...), a dependency (``DpAddrdR``, ...), a fence
(``FencedWW.gl``, ...), or a communication step between threads
(``Rfe``, ``Fre``, ``Coe``).  The paper's GPU extension adds *scope
annotations* to communication edges (same CTA vs different CTAs) and
*region annotations* to locations; both are carried here.

Edge naming follows diy: ``Po``/``Dp``/``Fenced`` edges are *internal*
(same thread), ``Rfe``/``Fre``/``Coe`` are *external* (thread-changing,
and always same-location since ``rf``/``co``/``fr`` relate accesses to
one location).  The ``d``/``s`` letter says whether the edge changes
location (different) or not (same); direction letters give the source
and target access kinds.
"""

from dataclasses import dataclass

from ..errors import GenerationError
from ..ptx.types import Scope

#: Scope annotation values for external edges.
SAME_CTA = "cta"
DIFF_CTA = "dev"


@dataclass(frozen=True)
class Edge:
    """One candidate relaxation.

    ``kind``: "Po", "Dp", "Fenced", "Rfe", "Fre", "Coe".
    ``src``/``dst``: access directions "R"/"W" at the edge's endpoints.
    ``same_loc``: whether both endpoints target the same location.
    ``same_thread``: internal (True) vs external (False).
    ``dep``: for Dp edges, "addr"/"data"/"ctrl".
    ``fence``: for Fenced edges, the :class:`~repro.ptx.types.Scope`.
    ``scope``: for external edges, ``SAME_CTA`` or ``DIFF_CTA``.
    """

    kind: str
    src: str
    dst: str
    same_loc: bool
    same_thread: bool
    dep: str = None
    fence: Scope = None
    scope: str = DIFF_CTA

    def __post_init__(self):
        if self.src not in ("R", "W") or self.dst not in ("R", "W"):
            raise GenerationError("edge directions must be R or W")
        if self.kind == "Dp" and self.dep not in ("addr", "data", "ctrl"):
            raise GenerationError("Dp edge needs dep in addr/data/ctrl")
        if self.kind == "Dp" and self.src != "R":
            raise GenerationError("dependencies originate at reads")
        if self.kind == "Fenced" and self.fence is None:
            raise GenerationError("Fenced edge needs a fence scope")
        if self.kind in ("Rfe", "Fre", "Coe") and self.same_thread:
            raise GenerationError("communication edges are external")
        if self.kind in ("Rfe", "Fre", "Coe") and not self.same_loc:
            raise GenerationError("communication edges are same-location")

    @property
    def name(self):
        """Canonical diy-style edge name."""
        loc_letter = "s" if self.same_loc else "d"
        dirs = self.src + self.dst
        if self.kind == "Po":
            return "Po%s%s" % (loc_letter, dirs)
        if self.kind == "Dp":
            return "Dp%s%s%s" % (self.dep.capitalize(), loc_letter, self.dst)
        if self.kind == "Fenced":
            return "Fenced%s%s.%s" % (loc_letter, dirs, self.fence.value)
        suffix = "" if self.scope == DIFF_CTA else "-cta"
        return self.kind + suffix

    def __str__(self):
        return self.name


# -- constructors ------------------------------------------------------------

def po(src, dst, same_loc=False):
    """Program-order edge, e.g. ``po("W", "W")`` = PodWW."""
    return Edge("Po", src, dst, same_loc=same_loc, same_thread=True)


def dp(dep, dst, same_loc=False):
    """Dependency edge from a read, e.g. ``dp("addr", "R")`` = DpAddrdR."""
    return Edge("Dp", "R", dst, same_loc=same_loc, same_thread=True, dep=dep)


def fenced(scope, src, dst, same_loc=False):
    """Fence edge, e.g. ``fenced(Scope.GL, "W", "W")``."""
    return Edge("Fenced", src, dst, same_loc=same_loc, same_thread=True,
                fence=scope)


def rfe(scope=DIFF_CTA):
    """External read-from: a write observed by a read in another thread."""
    return Edge("Rfe", "W", "R", same_loc=True, same_thread=False, scope=scope)


def fre(scope=DIFF_CTA):
    """External from-read: a read overwritten by another thread's write."""
    return Edge("Fre", "R", "W", same_loc=True, same_thread=False, scope=scope)


def coe(scope=DIFF_CTA):
    """External coherence: two writes to one location, ordered."""
    return Edge("Coe", "W", "W", same_loc=True, same_thread=False, scope=scope)


#: The default edge pool used for family generation: every program-order
#: shape, every dependency, every fence scope, and the three external
#: communication edges at both GPU scopes.
def default_pool(scopes=(DIFF_CTA, SAME_CTA), fences=tuple(Scope)):
    pool = []
    for src in "WR":
        for dst in "WR":
            pool.append(po(src, dst))
    pool.append(po("R", "R", same_loc=True))   # PosRR: the coRR ingredient
    pool.append(po("W", "W", same_loc=True))   # PosWW: coherence pairs
    for dep in ("addr", "data", "ctrl"):
        targets = ("R", "W") if dep != "data" else ("W",)
        for dst in targets:
            pool.append(dp(dep, dst))
    for scope in fences:
        for src in "WR":
            for dst in "WR":
                pool.append(fenced(scope, src, dst))
    for scope in scopes:
        pool.extend([rfe(scope), fre(scope), coe(scope)])
    return pool


def fences_from_names(names):
    """Map CLI-style fence names to a tuple of :class:`Scope` values.

    Accepts an iterable of scope names (``"cta"``, ``"gl"``, ``"sys"``),
    the single words ``"all"``/``"none"``, or an empty iterable (no
    fence edges in the pool).  This is the ``--fences`` vocabulary of
    ``repro-litmus generate``/``soundness``; Sec. 5.4's corpus uses
    ``("cta", "gl")``.
    """
    names = [names] if isinstance(names, str) else list(names)
    if names == ["all"]:
        return tuple(Scope)
    if names == ["none"] or not names:
        return ()
    try:
        return tuple(Scope(name) for name in names)
    except ValueError:
        raise GenerationError(
            "unknown fence scope in %r (expected cta/gl/sys, or all/none)"
            % (names,)) from None


#: ``--scopes`` vocabulary: communication-edge scope annotations.
_SCOPE_NAMES = {"dev": DIFF_CTA, "device": DIFF_CTA, "cta": SAME_CTA}


def scopes_from_names(names):
    """Map CLI-style scope names to communication-edge annotations.

    ``"dev"`` (inter-CTA) and ``"cta"`` (intra-CTA) select which scope
    annotations the pool's ``Rfe``/``Fre``/``Coe`` edges carry.
    """
    names = [names] if isinstance(names, str) else list(names)
    if not names:
        raise GenerationError("at least one communication scope is required")
    try:
        return tuple(dict.fromkeys(_SCOPE_NAMES[name] for name in names))
    except KeyError:
        raise GenerationError(
            "unknown communication scope in %r (expected dev or cta)"
            % (names,)) from None


def parse_edge(text):
    """Parse a diy-style edge name (inverse of :attr:`Edge.name`)."""
    text = text.strip()
    scope = DIFF_CTA
    if text.endswith("-cta"):
        scope, text = SAME_CTA, text[:-len("-cta")]
    if text == "Rfe":
        return rfe(scope)
    if text == "Fre":
        return fre(scope)
    if text in ("Coe", "Wse"):
        return coe(scope)
    if text.startswith("Po") and len(text) == 5:
        loc, src, dst = text[2], text[3], text[4]
        return po(src, dst, same_loc=(loc == "s"))
    if text.startswith("Dp"):
        for dep in ("Addr", "Data", "Ctrl"):
            prefix = "Dp" + dep
            if text.startswith(prefix):
                loc, dst = text[len(prefix)], text[len(prefix) + 1]
                return dp(dep.lower(), dst, same_loc=(loc == "s"))
    if text.startswith("Fenced"):
        rest = text[len("Fenced"):]
        if "." in rest:
            dirs, scope_name = rest.split(".", 1)
            loc, src, dst = dirs[0], dirs[1], dirs[2]
            return fenced(Scope(scope_name), src, dst, same_loc=(loc == "s"))
    raise GenerationError("cannot parse edge name %r" % text)
