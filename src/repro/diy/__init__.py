"""diy for GPUs: systematic litmus-test generation from relaxation cycles."""

from .cycles import Cycle, cycles_up_to, enumerate_cycles, try_cycle
from .edges import (DIFF_CTA, Edge, SAME_CTA, coe, default_pool, dp, fenced,
                    fences_from_names, fre, parse_edge, po, rfe,
                    scopes_from_names)
from .generate import cycle_to_test, generate_tests
from .naming import NameAllocator, classify, idiom_of

__all__ = [
    "Cycle", "cycles_up_to", "enumerate_cycles", "try_cycle",
    "DIFF_CTA", "Edge", "SAME_CTA", "coe", "default_pool", "dp", "fenced",
    "fences_from_names", "fre", "parse_edge", "po", "rfe",
    "scopes_from_names",
    "cycle_to_test", "generate_tests",
    "NameAllocator", "classify", "idiom_of",
]
