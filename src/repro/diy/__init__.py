"""diy for GPUs: systematic litmus-test generation from relaxation cycles."""

from .cycles import Cycle, cycles_up_to, enumerate_cycles, try_cycle
from .edges import (DIFF_CTA, Edge, SAME_CTA, coe, default_pool, dp, fenced,
                    fre, parse_edge, po, rfe)
from .generate import cycle_to_test, generate_tests
from .naming import classify, idiom_of

__all__ = [
    "Cycle", "cycles_up_to", "enumerate_cycles", "try_cycle",
    "DIFF_CTA", "Edge", "SAME_CTA", "coe", "default_pool", "dp", "fenced",
    "fre", "parse_edge", "po", "rfe",
    "cycle_to_test", "generate_tests",
    "classify", "idiom_of",
]
