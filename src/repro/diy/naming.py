"""Classic idiom names for generated cycles (Table 3 of the paper).

diy names tests after the litmus idiom their cycle realises: ``mp``
(message passing), ``sb`` (store buffering), ``lb`` (load buffering),
``coRR`` (read-read coherence), and so on.  Cycles without a classic name
get their canonical edge string.
"""

#: Canonical (rotation-minimal) edge tuples for the classic idioms.  Scope
#: annotations are stripped before matching, so ``mp`` inter-CTA and
#: intra-CTA both classify as ``mp``.
_CLASSICS = {
    ("Fre", "PodWW", "Rfe", "PodRR"): "mp",
    ("Fre", "PodWR", "Fre", "PodWR"): "sb",
    ("PodRW", "Rfe", "PodRW", "Rfe"): "lb",
    ("Fre", "Rfe", "PosRR"): "coRR",
    ("Coe", "PosWW"): "coWW",
    ("Fre", "PosWR"): "coWR",
    ("PosRW", "Rfe"): "coRW1",
    ("Coe", "PodWW", "Coe", "PodWW"): "2+2w",
    ("Coe", "PodWR", "Fre", "PodWW"): "r",
    ("Coe", "PodWW", "Rfe", "PodRW"): "s",
}

#: Dependency/fence edge prefixes treated as decorated program order when
#: matching the classics: ``mp+membar.gl+addr`` etc.
_DECORATIONS = {"Dp": "Po", "Fenced": "Po"}


def _strip(edge_name):
    """Reduce an edge name to its bare program-order/communication shape."""
    if edge_name.endswith("-cta"):
        edge_name = edge_name[:-len("-cta")]
    if edge_name.startswith("Fenced"):
        body = edge_name[len("Fenced"):].split(".")[0]
        return "Po" + body
    if edge_name.startswith("Dp"):
        # DpAddrdR -> PodR? — direction of the source is always R.
        loc_and_dst = edge_name[len("DpAddr"):]
        return "Po" + loc_and_dst[0] + "R" + loc_and_dst[1]
    return edge_name


def _decorations(cycle):
    """Collect the fence/dependency decorations of a cycle, in edge order."""
    found = []
    for edge in cycle.edges:
        if edge.kind == "Fenced":
            found.append("membar.%s" % edge.fence.value)
        elif edge.kind == "Dp":
            found.append(edge.dep)
    return found


def classify(cycle):
    """Name a cycle: classic idiom (possibly decorated) or edge string.

    Examples: ``mp``, ``mp+membar.gl+addr``, ``sb`` — falling back to the
    canonical edge listing for cycles outside the classic table.
    """
    stripped = sorted(
        tuple(_strip(name) for name in rotation)
        for rotation in _rotations([edge.name for edge in cycle.edges]))
    base = None
    for rotation in stripped:
        if rotation in _CLASSICS:
            base = _CLASSICS[rotation]
            break
    if base is None:
        return "+".join(cycle.canonical())
    decorations = _decorations(cycle)
    if decorations:
        return base + "+" + "+".join(decorations)
    return base


def _rotations(names):
    return [names[i:] + names[:i] for i in range(len(names))]


def idiom_of(cycle):
    """The bare idiom (Table 3 glossary entry) of a cycle."""
    return classify(cycle).split("+")[0]


class NameAllocator:
    """Hand out corpus-unique test names from classified base names.

    :func:`classify` is deliberately many-to-one — scope annotations are
    stripped, so e.g. the inter-CTA and intra-CTA ``coRR`` cycles share a
    base name — which silently merges rows in any name-keyed campaign
    table.  The allocator keeps the first cycle's base name untouched and
    appends a deterministic ordinal suffix (``coRR-2``, ``coRR-3``, ...)
    to later distinct cycles, in allocation order; allocation order is
    enumeration order, so a given pool always yields the same names.
    """

    def __init__(self):
        self._next_ordinal = {}
        self._taken = set()

    def assign(self, base):
        """A unique name for the next test whose base name is ``base``."""
        ordinal = self._next_ordinal.get(base, 0)
        while True:
            ordinal += 1
            candidate = base if ordinal == 1 else "%s-%d" % (base, ordinal)
            if candidate not in self._taken:
                self._next_ordinal[base] = ordinal
                self._taken.add(candidate)
                return candidate
