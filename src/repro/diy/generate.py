"""Synthesise a litmus test from a relaxation cycle (Sec. 4.1).

Given a well-formed :class:`~repro.diy.cycles.Cycle`, build the PTX
litmus test whose final condition witnesses exactly that cycle:

* every write to a location gets a distinct value, numbered along the
  intended coherence order;
* an ``Rfe`` edge pins the target read to the source write's value;
* a ``Fre`` edge pins the source read to the value *before* the target
  write in coherence order (0 = the initial state);
* a ``Coe`` edge orders two writes, pinned by the final memory value;
* dependency edges are manufactured with the compiler-proof
  ``and 0x80000000`` scheme of Fig. 13(b), and fences become ``membar``
  instructions;
* scope annotations become the scope tree, and region annotations the
  memory map.
"""

import itertools

from ..errors import GenerationError
from ..hierarchy import MemoryMap, ScopeTree
from ..litmus.condition import And, Condition, MemEq, RegEq
from ..litmus.test import LitmusTest
from ..ptx.instructions import Add, And as AndInstr, Cvt, Guard, Ld, Membar, Setp, St
from ..ptx.operands import Addr, Imm, Loc, Reg
from ..ptx.program import ThreadProgram
from ..ptx.types import CacheOp, TypeSpec
from ..ptx.types import MemorySpace
from .naming import NameAllocator, classify

#: The always-false mask of Fig. 13(b): and-ing a small positive value
#: with the high bit yields 0, but only an inter-thread analysis can know.
_HIGH_BIT = 0x80000000
#: The never-stored sentinel used for manufactured control dependencies.
_CTRL_SENTINEL = 0x7FFFFFFF

_LOCATION_NAMES = "xyzabcdefg"


class _Events:
    """Resolved per-event facts computed from the cycle."""

    def __init__(self, cycle):
        self.cycle = cycle
        self.n = cycle.n
        self.directions = cycle.directions
        self.threads = cycle.threads
        self.loc_names = [
            _location_name(index) for index in cycle.locations]
        self.values = self._assign_values()
        self.expectations = self._read_expectations()

    def _writes_by_loc(self):
        groups = {}
        for index in range(self.n):
            if self.directions[index] == "W":
                groups.setdefault(self.loc_names[index], []).append(index)
        return groups

    def _assign_values(self):
        """Coherence positions (1-based) for writes, per location.

        ``Coe`` edges impose immediate ordering; remaining freedom is
        resolved by cycle position.  Contradictory ``Coe`` chains reject
        the cycle.
        """
        order_constraints = []
        for index, edge in enumerate(self.cycle.edges):
            if edge.kind == "Coe":
                order_constraints.append((index, (index + 1) % self.n))
        groups = self._writes_by_loc()
        values = {}
        for location, members in groups.items():
            ordered = self._topological(members, [
                pair for pair in order_constraints
                if pair[0] in members and pair[1] in members])
            for position, event in enumerate(ordered, start=1):
                values[event] = position
        return values

    @staticmethod
    def _topological(members, constraints):
        remaining = list(members)
        edges = set(constraints)
        ordered = []
        while remaining:
            free = [m for m in remaining
                    if not any(b == m for _, b in edges)]
            if not free:
                raise GenerationError("contradictory coherence constraints")
            head = free[0]  # cycle position breaks ties deterministically
            ordered.append(head)
            remaining.remove(head)
            edges = {(a, b) for a, b in edges if a != head}
        return ordered

    def _read_expectations(self):
        """Expected value for each read event pinned by a com edge."""
        expectations = {}

        def expect(event, value):
            if event in expectations and expectations[event] != value:
                raise GenerationError("contradictory read expectations")
            expectations[event] = value

        for index, edge in enumerate(self.cycle.edges):
            target = (index + 1) % self.n
            if edge.kind == "Rfe":
                expect(target, self.values[index])
            elif edge.kind == "Fre":
                expect(index, self.values[target] - 1)
        return expectations


def _location_name(index):
    if index < len(_LOCATION_NAMES):
        return _LOCATION_NAMES[index]
    return "loc%d" % index


class _ThreadBuilder:
    """Accumulates the instructions of one generated thread."""

    def __init__(self, tid):
        self.tid = tid
        self.instructions = []
        self.reg_counter = itertools.count()
        self.pred_counter = itertools.count()
        self.reg_init = {}
        self.read_regs = {}  # event index -> register name
        self.reg_types = {}

    def fresh_reg(self, typ=TypeSpec.S32):
        name = "r%d" % next(self.reg_counter)
        self.reg_types[name] = typ
        return name

    def fresh_pred(self):
        name = "p%d" % next(self.pred_counter)
        self.reg_types[name] = TypeSpec.PRED
        return name

    def bind_address(self, location):
        name = self.fresh_reg(TypeSpec.B64)
        self.reg_init[name] = Loc(location)
        return name

    def emit_read(self, event, location, dep=None, source_reg=None,
                  guard=None):
        register = self.fresh_reg()
        address = self._address(location, dep, source_reg)
        self.instructions.append(
            Ld(Reg(register), address, cop=CacheOp.CG, guard=guard))
        self.read_regs[event] = register
        return register

    def emit_write(self, event, location, value, dep=None, source_reg=None,
                   guard=None):
        address = self._address(location, dep, source_reg)
        if dep == "data":
            zero = self.fresh_reg(TypeSpec.B32)
            self.instructions.append(
                AndInstr(Reg(zero), Reg(source_reg), Imm(_HIGH_BIT),
                         typ=TypeSpec.B32))
            staged = self.fresh_reg()
            self.instructions.append(
                Add(Reg(staged), Reg(zero), Imm(value)))
            self.instructions.append(
                St(address, Reg(staged), cop=CacheOp.CG, guard=guard))
        else:
            self.instructions.append(
                St(address, Imm(value), cop=CacheOp.CG, guard=guard))

    def _address(self, location, dep, source_reg):
        if dep != "addr":
            return Addr(Loc(location))
        zero = self.fresh_reg(TypeSpec.B32)
        self.instructions.append(
            AndInstr(Reg(zero), Reg(source_reg), Imm(_HIGH_BIT),
                     typ=TypeSpec.B32))
        wide = self.fresh_reg(TypeSpec.B64)
        self.instructions.append(Cvt(Reg(wide), Reg(zero)))
        base = self.bind_address(location)
        target = self.fresh_reg(TypeSpec.B64)
        self.instructions.append(
            Add(Reg(target), Reg(base), Reg(wide), typ=TypeSpec.U64))
        return Addr(Reg(target))

    def emit_ctrl_guard(self, source_reg):
        predicate = self.fresh_pred()
        self.instructions.append(
            Setp("ne", Reg(predicate), Reg(source_reg), Imm(_CTRL_SENTINEL)))
        return Guard(predicate)

    def emit_fence(self, scope):
        self.instructions.append(Membar(scope))


def cycle_to_test(cycle, name=None, regions=None):
    """Build the :class:`~repro.litmus.test.LitmusTest` witnessing ``cycle``.

    ``regions`` optionally maps location names (``x``, ``y``, ...) to
    memory spaces; locations accessed from more than one CTA must stay
    global (checked).
    """
    events = _Events(cycle)
    builders = [_ThreadBuilder(tid) for tid in range(cycle.n_threads)]

    for index in range(cycle.n):
        builder = builders[cycle.threads[index]]
        incoming = cycle.edges[(index - 1) % cycle.n]
        dep, source_reg, guard = None, None, None
        if incoming.same_thread:
            if incoming.kind == "Dp":
                source_event = (index - 1) % cycle.n
                source_reg = builder.read_regs[source_event]
                if incoming.dep == "ctrl":
                    guard = builder.emit_ctrl_guard(source_reg)
                else:
                    dep = incoming.dep
            elif incoming.kind == "Fenced":
                builder.emit_fence(incoming.fence)
        if events.directions[index] == "R":
            builder.emit_read(index, events.loc_names[index], dep=dep,
                              source_reg=source_reg, guard=guard)
        else:
            builder.emit_write(index, events.loc_names[index],
                               events.values[index], dep=dep,
                               source_reg=source_reg, guard=guard)

    condition = _build_condition(cycle, events, builders)
    threads = tuple(
        ThreadProgram(tid=builder.tid, instructions=tuple(builder.instructions),
                      reg_types=builder.reg_types)
        for builder in builders)
    reg_init = {(builder.tid, reg): loc
                for builder in builders
                for reg, loc in builder.reg_init.items()}

    scope_tree = _build_scope_tree(cycle, [program.name for program in threads])
    memory_map = _build_memory_map(cycle, events, regions)
    return LitmusTest(
        name=name or classify(cycle), threads=threads, condition=condition,
        scope_tree=scope_tree, memory_map=memory_map, reg_init=reg_init,
        description="generated from cycle: %s" % cycle.name,
        idiom=classify(cycle).split("+")[0])


def _build_condition(cycle, events, builders):
    atoms = []
    for event, value in sorted(events.expectations.items()):
        tid = cycle.threads[event]
        register = builders[tid].read_regs[event]
        atoms.append(RegEq(tid, register, value))
    for location, members in sorted(events._writes_by_loc().items()):
        if len(members) > 1:
            final = max(members, key=lambda m: events.values[m])
            atoms.append(MemEq(location, events.values[final]))
    if not atoms:
        raise GenerationError("cycle %s yields no observable condition" % cycle)
    expr = atoms[0]
    for atom in atoms[1:]:
        expr = And(expr, atom)
    return Condition("exists", expr)


def _build_scope_tree(cycle, names):
    groups = {}
    for tid, cta in enumerate(cycle.cta_groups):
        groups.setdefault(cta, []).append(names[tid])
    ctas = tuple(tuple((name,) for name in groups[cta])
                 for cta in sorted(groups))
    return ScopeTree(ctas)


def _build_memory_map(cycle, events, regions):
    if not regions:
        return MemoryMap()
    accessors = {}
    for index in range(cycle.n):
        location = events.loc_names[index]
        accessors.setdefault(location, set()).add(
            cycle.cta_groups[cycle.threads[index]])
    spaces = {}
    for location, space in regions.items():
        space = MemorySpace(space) if isinstance(space, str) else space
        if space is MemorySpace.SHARED and len(accessors.get(location, ())) > 1:
            raise GenerationError(
                "location %r is accessed from several CTAs and cannot be"
                " shared" % location)
        spaces[location] = space
    return MemoryMap(spaces)


def generate_tests(pool, max_length, max_tests=None, regions=None):
    """Enumerate cycles from ``pool`` and synthesise a test per cycle.

    Cycles whose conditions are contradictory (unsatisfiable reads,
    conflicting coherence) are skipped, mirroring diy.  Returns a list of
    litmus tests with corpus-unique names: distinct cycles that classify
    to the same idiom (e.g. inter- and intra-CTA ``coRR``) are
    disambiguated with deterministic ordinal suffixes, so name-keyed
    campaign tables never merge rows silently.
    """
    from dataclasses import replace

    from .cycles import cycles_up_to

    names = NameAllocator()
    tests = []
    for cycle in cycles_up_to(pool, max_length):
        if max_tests is not None and len(tests) >= max_tests:
            break
        try:
            test = cycle_to_test(cycle, regions=regions)
        except GenerationError:
            continue
        # Allocate only for cycles that actually produced a test, so
        # skipped cycles never consume an ordinal.
        unique = names.assign(test.name)
        if unique != test.name:
            test = replace(test, name=unique)
        tests.append(test)
    assert len({test.name for test in tests}) == len(tests), \
        "generate_tests produced colliding names"
    return tests
