"""The :class:`AnalysisBackend`: static verdicts behind the campaign API.

The triage tier of the ROADMAP: one verdict per
:class:`~repro.api.spec.RunSpec` / :class:`~repro.apps.scenario.ScenarioSpec`,
delivered through the same :class:`~repro.api.session.Session` machinery
as simulations and model enumerations — fingerprint-keyed caching,
in-plan deduplication, ``Shard.iterations=0`` accounting (an analysis is
not a simulated iteration).

Verdicts travel as histograms so the cache's JSON round-trip and the
``SpecResult`` plumbing apply unchanged: a single synthetic final state
``{__analysis__: code}`` with count 1, decoded back by
:func:`verdict_from_histogram`.  Since the signature covers only the
litmus text (which includes the scope tree), a campaign across the seven
result chips analyses each scenario once, like model verdicts.

:func:`prescreen` and :func:`run_prescreened` implement the ``--prescreen``
flow: analyse every spec first, skip simulation for provably-clean cells
(their results are empty histograms — zero losses, by proof), and run
the rest through the real session.
"""

import hashlib

from ..api.backends import Backend, Shard
from ..harness.histogram import Histogram
from ..litmus.condition import FinalState
from ..litmus.writer import write_litmus
from .races import CLEAN, RACY, UNKNOWN, analyze_test

#: The synthetic location carrying a verdict through histogram plumbing.
ANALYSIS_LOCATION = "__analysis__"

#: Verdict <-> histogram encoding.
VERDICT_CODES = {CLEAN: 0, UNKNOWN: 1, RACY: 2}
CODE_VERDICTS = {code: verdict for verdict, code in VERDICT_CODES.items()}

#: Bump to invalidate cached verdicts when the analysis rules change.
ANALYSIS_VERSION = 1


def verdict_state(verdict):
    """Encode a verdict as a synthetic :class:`FinalState`."""
    return FinalState.make(mem={ANALYSIS_LOCATION: VERDICT_CODES[verdict]})


def verdict_from_histogram(histogram):
    """Decode a verdict histogram produced by :class:`AnalysisBackend`."""
    states = list(histogram.counts)
    if len(states) != 1:
        from ..errors import ReproError
        raise ReproError("not an analysis verdict histogram: %d states"
                         % len(states))
    mem = dict(states[0].mem)
    code = mem.get(ANALYSIS_LOCATION)
    if code not in CODE_VERDICTS:
        from ..errors import ReproError
        raise ReproError("not an analysis verdict histogram: %r" % (mem,))
    return CODE_VERDICTS[code]


class AnalysisBackend(Backend):
    """Static analysis as a campaign backend.

    ``run`` analyses the spec's litmus test and returns the encoded
    verdict.  Like the model backend, each spec is one indivisible work
    unit with ``iterations=0`` (pure static work — the session's
    simulated-iteration statistic stays a sim/app-only number), and the
    cache signature covers only the test text plus the analyzer version,
    so verdicts dedupe across chips, seeds and iteration counts.
    """

    name = "analysis"
    supports_sharding = True

    def cache_signature(self, spec):
        payload = "analysis-v%d\x1e%s" % (ANALYSIS_VERSION,
                                          write_litmus(spec.test))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def shards(self, spec, shard_size):
        return [Shard(index=0, iterations=0, seed=spec.seed)]

    def run_shard(self, spec, shard):
        return self.run(spec)

    def run(self, spec):
        report = analyze_test(spec.test)
        histogram = Histogram()
        histogram.add(verdict_state(report.verdict))
        return histogram


def analysis_session(jobs=1, executor="thread", cache=True, cache_dir=None,
                     pool=None):
    """A :class:`~repro.api.session.Session` wired to the analysis
    backend (the static twin of :func:`repro.apps.campaign.app_session`)."""
    from ..api.session import Session
    return Session(backend=AnalysisBackend(), jobs=jobs, executor=executor,
                   cache=cache, cache_dir=cache_dir, pool=pool)


def prescreen(specs, session=None):
    """Analyse a plan; returns the verdict list aligned with ``specs``.

    ``session`` may supply a shared analysis session (for cache/pool
    reuse); any other backend is rejected.
    """
    specs = list(specs)
    if session is None:
        session = analysis_session()
    if session.backend.name != AnalysisBackend.name:
        from ..errors import ReproError
        raise ReproError("prescreen needs an analysis session, got backend "
                         "%r" % session.backend.name)
    return [verdict_from_histogram(result.histogram)
            for result in session.run_specs(specs)]


def condition_skippable(test):
    """Is ``test``'s condition provably unobservable, so a campaign cell
    may skip execution and report zero observations?

    A clean verdict alone is *not* enough for litmus conditions: clean
    means race-free, and a race-free-by-intent test can still observe
    its condition — mp-volatile is clean (volatile races are exempt as
    intentional) yet weak (volatiles order nothing, Fig. 5).  The proof
    needs all three: clean, the verdict implying SC
    (:attr:`~repro.analysis.races.AnalysisReport.sc_obligation`), and
    the SC model forbidding the condition.
    """
    report = analyze_test(test)
    if report.verdict != CLEAN or not report.sc_obligation:
        return False
    from ..model.models import load_model
    return not load_model("sc").allows_condition(test)


def run_prescreened(specs, session, analysis=None, skip=None):
    """Run a plan with static triage: provably-clean specs skip the
    backend entirely.

    Returns ``(results, verdicts)``, both aligned with ``specs``.  A
    skipped spec's result is a :class:`~repro.api.result.SpecResult`
    tagged ``backend="analysis"`` with an *empty* histogram — zero
    observations; everything else carries the real session's result.

    ``skip(spec, verdict)`` decides what to skip; the default skips
    every clean spec, which is sound for *scenario* plans (observations
    are losses, and the clean proof is exactly "ordered pairs cannot
    lose").  Litmus-condition plans must pass a stricter predicate built
    on :func:`condition_skippable` — clean does not make a condition
    unobservable.
    """
    from ..api.result import SpecResult
    specs = list(specs)
    verdicts = prescreen(specs, session=analysis)
    if skip is None:
        skip = lambda spec, verdict: verdict == CLEAN
    skips = [bool(skip(spec, verdict))
             for spec, verdict in zip(specs, verdicts)]
    to_run = [spec for spec, skipped in zip(specs, skips) if not skipped]
    executed = iter(session.run_specs(to_run))
    results = []
    for spec, skipped in zip(specs, skips):
        if skipped:
            results.append(SpecResult(spec=spec, backend=AnalysisBackend.name,
                                      histogram=Histogram(), cached=False))
        else:
            results.append(next(executed))
    return results, verdicts
