"""Static race classification over litmus tests (the analyzer core).

Every pair of same-location accesses from different threads where at
least one side writes is classified as one of:

* ``sync`` — both sides are synchronisation accesses (atomics or
  volatiles): intentional racing in the CUDA idiom, exempt from race
  reporting (volatility still never *orders* anything — Fig. 5 shows
  volatiles reordering freely).
* ``ordered`` — a fence/atomic chain provably orders the two accesses
  under the chip's scoped-fence semantics, in either direction.  Two
  proof rules are implemented (below); both match the paper's ``(+)``
  fence fixes.
* ``racy`` — provably unordered: either the pair mixes a plain store
  with an atomic on one location (PTX *annuls* atomic guarantees then,
  Sec. 3.2.3 — the He-Yu release bug), or neither direction has even a
  candidate publish/acquire edge (no covering fence after the first
  access, and no covering fence or control/data dependency before the
  second).
* ``unknown`` — everything else.  The per-test verdict is ``racy`` if
  any pair is, else ``unknown`` if any pair (or any computed-address
  access) is, else ``clean``.  Only ``clean`` carries an obligation —
  the CI consistency job checks clean scenarios never lose in
  simulation and clean litmus tests stay SC (model allowed-sets).

Ordering proof rules
--------------------

*Fenced handshake* (orders ``a`` in Ti before ``b`` in Tj through a
flag ``f``): ``b`` has a control dependency on a load of ``f`` admitting
value set ``A``; ``b`` is reached from that load through a covering
fence (or ``b`` is a write — the simulator stalls guarded instructions
and the PTX model's ``dp`` includes ``ctrl``, so the dependency itself
orders the write); the initial value of ``f`` is not in ``A``; and every
store of a possibly-admitted value to ``f`` is either po-after a
covering fence that is po-after ``a`` (in Ti), po-after ``b`` (in Tj),
or provably stores an excluded value.  This is exactly the deque fix:
``st task; membar; st tail`` publishing into ``if (tail != 0) { membar;
ld task }``.

*Lock protection* (mutual exclusion): a location ``L`` accessed only
atomically, where each side has an *acquire* — a control dependency
whose governing instruction is an RMW on ``L`` admitting only values
distinct from what that RMW stores (a CAS/exchange that observed the
lock free), followed by a covering fence — and a *release* — a po-later
atomic write to ``L`` behind a covering fence.  This certifies the three
published locks once the paper's two fences are added.

Both rules refuse ``.ca`` endpoints and ``.ca`` guard loads: an L1-hit
load can return a stale value even across fences (Fig. 3, mp-L1), so a
``.ca`` read is never provably ordered after anything.
"""

from dataclasses import dataclass, field

from ..ptx.types import Scope
from .accesses import _stored_value, compatible_guards, summarize_test

#: Pair verdicts.
SYNC = "sync"
ORDERED = "ordered"
RACY = "racy"
UNKNOWN = "unknown"

#: Per-test verdicts (RACY/UNKNOWN shared with the pair vocabulary).
CLEAN = "clean"

#: Per-test verdicts, weakest-wins order.
VERDICTS = (CLEAN, UNKNOWN, RACY)


@dataclass(frozen=True)
class PairFinding:
    """One classified conflicting pair."""

    location: str
    a: str              #: display form of the first access
    b: str              #: display form of the second access
    verdict: str        #: sync | ordered | racy | unknown
    reason: str

    def __str__(self):
        return "[%s] %s / %s: %s (%s)" % (
            self.location, self.a, self.b, self.verdict, self.reason)


@dataclass(frozen=True)
class Diagnostic:
    """One guard finding: spin-deadlock, warp-divergence, an unordered
    cross-thread guard, or an annulled atomic flag."""

    kind: str
    thread: str
    location: str
    message: str

    def __str__(self):
        return "%s [%s, %s]: %s" % (self.kind, self.thread, self.location,
                                    self.message)


@dataclass
class AnalysisReport:
    """The analyzer's full output for one litmus test."""

    test_name: str
    verdict: str
    pairs: list = field(default_factory=list)
    diagnostics: list = field(default_factory=list)
    unresolved: list = field(default_factory=list)
    #: sync-exempt pairs involving a volatile access (volatiles never
    #: order — Fig. 5 — so these void the DRF-implies-SC reading)
    volatile_sync_pairs: int = 0
    #: locations with cross-thread atomic-atomic sync pairs
    atomic_sync_locations: frozenset = frozenset()

    @property
    def sc_obligation(self):
        """Does ``clean`` imply sequential consistency for this test?

        Volatile races void the implication (a volatile pair is exempt
        from race reporting as intentional, but volatiles reorder —
        mp-volatile is clean *and* weak).  Atomic RMW races are
        tolerated on at most one location: coherence totally orders one
        lock word, but racing RMWs spread over several locations can
        still interleave weakly (an all-RMW store-buffering shape).
        """
        return (self.verdict == CLEAN and self.volatile_sync_pairs == 0
                and len(self.atomic_sync_locations) <= 1)

    @property
    def racy_pairs(self):
        return [pair for pair in self.pairs if pair.verdict == RACY]

    @property
    def unknown_pairs(self):
        return [pair for pair in self.pairs if pair.verdict == UNKNOWN]

    def summary(self):
        counts = {}
        for pair in self.pairs:
            counts[pair.verdict] = counts.get(pair.verdict, 0) + 1
        detail = ", ".join("%d %s" % (counts[v], v)
                           for v in (RACY, UNKNOWN, ORDERED, SYNC)
                           if v in counts) or "no conflicting pairs"
        if self.unresolved:
            detail += ", %d unresolved address(es)" % len(self.unresolved)
        return "%s: %s (%s)" % (self.test_name, self.verdict, detail)

    def lines(self):
        out = [self.summary()]
        for pair in self.pairs:
            out.append("  pair %s" % pair)
        for note in self.unresolved:
            out.append("  unresolved %s" % note)
        for diagnostic in self.diagnostics:
            out.append("  diag %s" % diagnostic)
        return out


def _location_display(key):
    name, offset = key
    return "%s+%d" % (name, offset) if offset else name


def _initial_value(test, key):
    """The initial value of a (location, offset) cell: the test's
    ``init_mem`` for the base cell, zero-filled elsewhere."""
    name, offset = key
    return test.initial_value(name) if offset == 0 else 0


def _required_rank(tree, name_a, name_b):
    """The fence scope rank that covers communication between two
    threads: CTA suffices inside one CTA, device scope across CTAs."""
    if tree.same_cta(name_a, name_b):
        return Scope.CTA.rank
    return Scope.GL.rank


# -- ordering proofs --------------------------------------------------------

def _handshake(test, summaries, src, dst, rank):
    """Try to prove ``src`` happens-before ``dst`` through a flag
    handshake; returns a reason string or ``None``."""
    if src.stale_l1 or dst.stale_l1:
        return None
    ts, td = summaries[src.tid], summaries[dst.tid]
    for dep in td.deps_of(dst):
        if dep.stale_l1:
            continue
        flag = dep.key
        # The dependency's own load must be able to see the handshake:
        # an edge from the flag load into dst — a covering fence, or dst
        # being a write (ctrl deps order writes: the simulator cannot
        # retire a guarded store before its predicate resolves, and the
        # model's dp includes ctrl).
        if not (dst.writes
                or td.fence_between(dep.load_index, dst.index, rank,
                                    compatible_guards(dst))):
            continue
        if dep.admitted.admits(_initial_value(test, flag)):
            continue  # the guard can pass without any communication
        if _enabling_stores_fenced(test, summaries, src, dst, dep, flag,
                                   rank):
            return ("fenced handshake through %s (admitted %s) orders %s "
                    "before %s" % (_location_display(flag), dep.admitted,
                                   src.thread, dst.thread))
    return None


def _enabling_stores_fenced(test, summaries, src, dst, dep, flag, rank):
    """Every store that could make ``dep`` admit must be po-after a
    covering fence that is po-after ``src`` (or excluded/irrelevant)."""
    for summary in summaries:
        for store in summary.accesses:
            if not store.writes or store.key != flag:
                continue
            if (store.tid == dst.tid and store.index == dep.load_index):
                continue  # the dependency's own RMW
            possibly_admitted = (store.stored is None
                                 or dep.admitted.admits(store.stored))
            if not possibly_admitted:
                continue
            if store.tid == dst.tid:
                if store.index < dst.index:
                    return False  # could feed the guard locally
                continue  # po-after dst: cannot enable its own guard
            if store.tid != src.tid:
                return False  # a third thread could enable the guard
            guards = compatible_guards(src) | compatible_guards(store)
            if store.index <= src.index:
                return False
            if not summaries[src.tid].fence_between(src.index, store.index,
                                                    rank, guards):
                return False
    return True


def _lock_ordered(test, summaries, sync_locations, a, b, rank):
    """Try to prove mutual exclusion of ``a`` and ``b`` under a common
    all-atomic lock location; returns a reason string or ``None``."""
    if a.stale_l1 or b.stale_l1:
        return None
    for lock in sorted(sync_locations):
        if (_lock_protects(summaries[a.tid], a, lock, rank)
                and _lock_protects(summaries[b.tid], b, lock, rank)):
            return ("both accesses hold the %s lock (CAS/exchange "
                    "acquire with covering fences, atomic release)"
                    % _location_display(lock))
    return None


def _lock_protects(summary, access, lock, rank):
    """Acquire-fence-access-fence-release around ``access`` on ``lock``."""
    for dep in summary.deps_of(access):
        if dep.key != lock or not dep.atomic or dep.stale_l1:
            continue
        governing = summary.program.instructions[dep.load_index]
        stored = _stored_value(governing)
        if stored is None or not dep.admitted.excludes(stored):
            # The acquire RMW must have observed the lock *free* — its
            # own deposited value must not satisfy the admit set, else
            # this is no mutual exclusion (e.g. a bare atom.inc).
            continue
        guards = compatible_guards(access)
        if not (access.writes
                or summary.fence_between(dep.load_index, access.index, rank,
                                         guards)):
            continue
        for release in summary.accesses:
            if (release.index > access.index and release.key == lock
                    and release.atomic and release.writes
                    and summary.fence_between(
                        access.index, release.index, rank,
                        guards | compatible_guards(release))):
                return True
    return False


# -- the provably-racy rule -------------------------------------------------

def _can_publish(summary, access, rank):
    """Could anything order ``access`` before a later remote access?
    Any covering fence po-after it counts (even guarded — this rule
    only ever *blocks* a racy claim)."""
    return summary.any_fence_after(access.index, rank)


def _can_acquire(summary, access, rank):
    """Could anything order ``access`` after an earlier remote access?
    A covering fence po-before it; or, for writes, a control position
    (a guard, or sitting after a loop) or a data dependency — ctrl/data
    deps order writes after the loads they depend on."""
    if summary.any_fence_before(access.index, rank):
        return True
    if access.writes:
        if access.guard is not None:
            return True
        if any(tail < access.index for tail in summary.loop_tails):
            return True
        if access.index in summary.data_dep_stores:
            return True
    return False


# -- pair classification ----------------------------------------------------

def _classify_pair(test, summaries, sync_locations, a, b, rank):
    key = _location_display(a.key)
    if a.sync and b.sync:
        return PairFinding(key, a.describe(), b.describe(), SYNC,
                           "both sides are synchronisation accesses "
                           "(atomic/volatile)")
    reason = (_lock_ordered(test, summaries, sync_locations, a, b, rank)
              or _handshake(test, summaries, a, b, rank)
              or _handshake(test, summaries, b, a, rank))
    if reason:
        return PairFinding(key, a.describe(), b.describe(), ORDERED, reason)
    if a.atomic != b.atomic:
        plain = b if a.atomic else a
        if plain.writes:
            return PairFinding(
                key, a.describe(), b.describe(), RACY,
                "a plain store races an atomic on one location — PTX "
                "annuls atomic guarantees (Sec. 3.2.3)")
    forward = (_can_publish(summaries[a.tid], a, rank)
               and _can_acquire(summaries[b.tid], b, rank))
    backward = (_can_publish(summaries[b.tid], b, rank)
                and _can_acquire(summaries[a.tid], a, rank))
    if not forward and not backward:
        return PairFinding(
            key, a.describe(), b.describe(), RACY,
            "no covering fence or dependency can order these accesses "
            "in either direction")
    return PairFinding(key, a.describe(), b.describe(), UNKNOWN,
                       "a candidate ordering edge exists but none is "
                       "provable")


# -- guard diagnostics ------------------------------------------------------

def _guard_diagnostics(test, summaries, tree):
    diagnostics = []
    mixed_atomic = _mixed_atomic_locations(summaries)
    for summary in summaries:
        for point in summary.guard_points:
            flag = (point.location, point.offset)
            display = _location_display(flag)
            if flag in mixed_atomic:
                diagnostics.append(Diagnostic(
                    "annulled-atomic", point.thread, display,
                    "the guard's flag mixes plain stores with atomics; "
                    "PTX annuls atomic guarantees (Sec. 3.2.3)"))
            if point.admitted.admits(_initial_value(test, flag)):
                continue  # satisfiable without cross-thread data
            enabling = [store for other in summaries if other.tid != point.tid
                        for store in other.accesses
                        if store.writes and store.key == flag
                        and (store.stored is None
                             or point.admitted.admits(store.stored))]
            if not enabling:
                kind = ("spin-deadlock" if point.kind == "loop"
                        else "dead-guard")
                diagnostics.append(Diagnostic(
                    kind, point.thread, display,
                    "guard admits %s but no other thread ever stores an "
                    "admitted value (initially %d)"
                    % (point.admitted, _initial_value(test, flag))))
                continue
            if point.kind == "loop":
                same_warp = [store for store in enabling
                             if tree.same_warp(point.thread,
                                               summaries[store.tid].name)]
                if same_warp:
                    diagnostics.append(Diagnostic(
                        "warp-divergence", point.thread, display,
                        "spin loop waits on a same-warp writer (%s); SIMT "
                        "lockstep can starve it forever"
                        % summaries[same_warp[0].tid].name))
            ordered_writers = []
            for store in enabling:
                rank = _required_rank(tree, point.thread,
                                      summaries[store.tid].name)
                if summaries[store.tid].any_fence_before(store.index, rank):
                    ordered_writers.append(store)
            if not ordered_writers:
                diagnostics.append(Diagnostic(
                    "unordered-guard", point.thread, display,
                    "the %s body depends on cross-thread data but no "
                    "enabling store is behind a covering fence — stale "
                    "reads past the guard (the Fig. 7 shape)"
                    % ("loop exit" if point.kind == "loop" else "if")))
    return diagnostics


def _mixed_atomic_locations(summaries):
    atomic, plain_store = set(), set()
    for summary in summaries:
        for access in summary.accesses:
            if access.location is None:
                continue
            if access.atomic:
                atomic.add(access.key)
            elif access.writes:
                plain_store.add(access.key)
    return atomic & plain_store


# -- entry point ------------------------------------------------------------

def analyze_test(test):
    """Statically classify every conflicting pair of ``test``; returns
    an :class:`AnalysisReport` whose ``verdict`` is ``racy``,
    ``unknown`` or ``clean``."""
    summaries = summarize_test(test)
    tree = test.scope_tree

    by_location = {}
    unresolved = []
    for summary in summaries:
        for access in summary.accesses:
            if access.location is None:
                unresolved.append(access)
            else:
                by_location.setdefault(access.key, []).append(access)

    sync_locations = {key for key, accesses in by_location.items()
                      if all(access.atomic for access in accesses)}

    pairs = []
    volatile_sync = 0
    atomic_sync = set()
    for key in sorted(by_location):
        accesses = by_location[key]
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                if a.tid == b.tid or not (a.writes or b.writes):
                    continue
                rank = _required_rank(tree, a.thread, b.thread)
                pair = _classify_pair(test, summaries, sync_locations,
                                      a, b, rank)
                if pair.verdict == SYNC:
                    if a.atomic and b.atomic:
                        atomic_sync.add(key)
                    else:
                        volatile_sync += 1
                pairs.append(pair)

    unresolved_notes = []
    for access in unresolved:
        if _may_conflict(summaries, access):
            unresolved_notes.append(
                "%s: computed address may alias any location"
                % access.describe())

    diagnostics = _guard_diagnostics(test, summaries, tree)

    if any(pair.verdict == RACY for pair in pairs):
        verdict = RACY
    elif unresolved_notes or any(pair.verdict == UNKNOWN for pair in pairs):
        verdict = UNKNOWN
    else:
        verdict = CLEAN
    return AnalysisReport(test_name=test.name, verdict=verdict, pairs=pairs,
                          diagnostics=diagnostics,
                          unresolved=unresolved_notes,
                          volatile_sync_pairs=volatile_sync,
                          atomic_sync_locations=frozenset(atomic_sync))


def _may_conflict(summaries, access):
    """Could a computed-address access conflict with anything?  Only a
    single-threaded test (or an all-readers counterpart set) rules a
    conflict out."""
    for summary in summaries:
        if summary.tid == access.tid:
            continue
        for other in summary.accesses:
            if access.writes or other.writes:
                return True
    return False
