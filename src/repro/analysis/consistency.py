"""Cross-checking analyzer verdicts against the dynamic subsystems.

A ``clean`` verdict is a *proof obligation*; this module discharges it
three ways, turning the analyzer, the simulator and the exhaustive
explorer into soundness oracles for each other (the CI
``analysis-consistency`` job runs all three):

* **Scenarios vs campaigns** — a scenario the analyzer certifies clean
  must never lose in simulation, on any chip, at campaign intensity.
  One loss in a clean cell is a bug in exactly one of the two
  subsystems, loudly.
* **Litmus tests vs models** — a clean (data-race-free) litmus test must
  be SC: the PTX model's allowed final states must be a subset of the
  SC model's (DRF guarantees nothing weaker than sequential
  consistency).  A clean test with a PTX-only outcome means the
  analyzer certified a racy program.  The obligation applies only where
  clean actually implies SC (``AnalysisReport.sc_obligation``):
  volatile races are exempt from race reporting as intentional but
  volatiles *order nothing* (Fig. 5 — mp-volatile is clean and weak),
  and atomic RMW races on more than one location can still interleave
  weakly even though each lock word is coherence-ordered.
* **Scenarios vs exhaustive verification** — strictly stronger than the
  campaign oracle: a clean scenario must report **zero losses over all
  executions** under :mod:`repro.exhaustive`, on every chip, not merely
  over the sampled runs.  This is the differential lock between the
  static tier and the verifier tier — a clean cell that loses *any*
  execution convicts one of them.

``racy`` and ``unknown`` verdicts impose no constraint — the analyzer
is conservative by design, and weak behaviours are *allowed*, not
required, so a racy scenario observing zero losses is not a
contradiction.
"""

from dataclasses import dataclass, field

from ..litmus import library
from ..model.models import load_model
from .races import CLEAN, analyze_test


@dataclass(frozen=True)
class ConsistencyProblem:
    """One contradiction between a clean verdict and a dynamic result."""

    kind: str     #: "campaign-loss" | "model-weak" | "exhaustive-loss"
    subject: str  #: scenario or test name
    detail: str

    def __str__(self):
        return "%s [%s]: %s" % (self.kind, self.subject, self.detail)


@dataclass
class ConsistencyReport:
    """The outcome of one cross-check run."""

    scenario_rows: list = field(default_factory=list)
    library_rows: list = field(default_factory=list)
    exhaustive_rows: list = field(default_factory=list)
    problems: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.problems

    def lines(self):
        out = []
        if self.scenario_rows:
            out.append("scenario verdicts vs campaign losses:")
            for name, verdict, losses, runs in self.scenario_rows:
                out.append("  %-22s %-8s %d losses / %d cell-runs"
                           % (name, verdict, losses, runs))
        if self.library_rows:
            out.append("library verdicts vs model allowed-sets:")
            for name, verdict, note in self.library_rows:
                out.append("  %-22s %-8s %s" % (name, verdict, note))
        if self.exhaustive_rows:
            out.append("clean-scenario verdicts vs exhaustive "
                       "verification:")
            for name, verdict, losses, executions, bounded in \
                    self.exhaustive_rows:
                note = "%d losses / %d executions" % (losses, executions)
                if bounded:
                    note += " (loop-bounded)"
                out.append("  %-22s %-8s %s" % (name, verdict, note))
        for problem in self.problems:
            out.append("CONTRADICTION: %s" % problem)
        if not self.problems:
            out.append("consistency: ok (%d scenarios, %d library tests, "
                       "%d exhaustively verified)"
                       % (len(self.scenario_rows), len(self.library_rows),
                          len(self.exhaustive_rows)))
        return out


def check_scenarios(scenarios=None, chips=None, runs=None, seed=0,
                    intensity=None, jobs=1, executor="thread",
                    cache_dir=None, session=None):
    """Run the selected scenarios through an app campaign and flag any
    loss in an analyzer-certified-clean cell.

    Returns ``(rows, problems)`` where each row is ``(name, verdict,
    total losses, total runs)`` summed over the chips.
    """
    from ..apps.campaign import app_session, run_app_campaign
    from ..apps.scenario import SCENARIOS, STRESS
    from ..harness.runner import default_iterations
    from ..sim.chip import RESULT_CHIPS

    if scenarios is None:
        scenarios = list(SCENARIOS.values())
    scenarios = list(scenarios)
    chips = list(chips) if chips is not None else list(RESULT_CHIPS)
    if runs is None:
        runs = default_iterations(300)
    if intensity is None:
        intensity = STRESS
    reports = {scenario.name: analyze_test(scenario.test())
               for scenario in scenarios}
    if session is None:
        session = app_session(jobs=jobs, executor=executor,
                              cache_dir=cache_dir)
    campaign = run_app_campaign(scenarios, chips, runs=runs, seed=seed,
                                intensity=intensity, session=session)
    rows, problems = [], []
    for scenario in scenarios:
        verdict = reports[scenario.name].verdict
        cells = campaign.by_test(scenario.name)
        losses = sum(result.observations for result in cells.values())
        total = sum(result.iterations for result in cells.values())
        rows.append((scenario.name, verdict, losses, total))
        if verdict == CLEAN and losses:
            lossy = sorted(short for short, result in cells.items()
                           if result.observations)
            problems.append(ConsistencyProblem(
                "campaign-loss", scenario.name,
                "certified clean but lost %d/%d on %s"
                % (losses, total, ", ".join(lossy))))
    return rows, problems


def check_library(tests=None, fuel=128):
    """Check every clean litmus test is SC: PTX allowed-set within the
    SC model's.  Returns ``(rows, problems)``.

    Clean tests whose only races are sync-exempt volatile pairs (or
    atomic races spread over several locations) carry no SC obligation —
    see :attr:`~repro.analysis.races.AnalysisReport.sc_obligation`.
    """
    if tests is None:
        tests = [library.build(name) for name in sorted(library.PAPER_TESTS)]
    tests = list(tests)
    ptx, sc = load_model("ptx"), load_model("sc")
    rows, problems = [], []
    for test in tests:
        report = analyze_test(test)
        if report.verdict != CLEAN:
            rows.append((test.name, report.verdict, "no obligation"))
            continue
        if not report.sc_obligation:
            rows.append((test.name, report.verdict,
                         "clean, sync races exempt (volatiles order "
                         "nothing — Fig. 5); no SC obligation"))
            continue
        ptx_allowed = set(ptx.allowed_outcomes(test, fuel=fuel))
        sc_allowed = set(sc.allowed_outcomes(test, fuel=fuel))
        extra = ptx_allowed - sc_allowed
        if extra:
            sample = sorted(extra, key=str)[0]
            problems.append(ConsistencyProblem(
                "model-weak", test.name,
                "certified clean but the PTX model allows non-SC "
                "outcome %s" % (sample,)))
            rows.append((test.name, report.verdict,
                         "%d PTX-only outcomes" % len(extra)))
        else:
            rows.append((test.name, report.verdict,
                         "SC (%d allowed states)" % len(ptx_allowed)))
    return rows, problems


def check_exhaustive(scenarios=None, chips=None, loop_bound=None,
                     jobs=1, executor="thread", cache_dir=None):
    """Exhaustively verify every analyzer-certified-clean scenario.

    The strongest of the three oracles: a clean scenario must lose
    *zero* of all executions on every chip — the campaign oracle's
    sampled losses become a universally quantified claim.  Returns
    ``(rows, problems)`` where each row is ``(name, verdict, losses,
    executions, bounded)`` summed over the chips.  Non-clean scenarios
    impose no constraint and are skipped (their unfenced losses are the
    paper's point, not a contradiction).
    """
    from ..apps.scenario import SCENARIOS
    from ..exhaustive import DEFAULT_LOOP_BOUND, verify_scenarios
    from ..sim.chip import RESULT_CHIPS

    if scenarios is None:
        scenarios = list(SCENARIOS.values())
    scenarios = list(scenarios)
    chips = list(chips) if chips is not None else list(RESULT_CHIPS)
    if loop_bound is None:
        loop_bound = DEFAULT_LOOP_BOUND
    clean = [scenario for scenario in scenarios
             if analyze_test(scenario.test()).verdict == CLEAN]
    rows, problems = [], []
    if not clean:
        return rows, problems
    report = verify_scenarios(clean, chips, loop_bound=loop_bound,
                              jobs=jobs, executor=executor,
                              cache_dir=cache_dir, witnesses=False)
    by_name = {}
    for row in report.rows:
        losses, executions, bounded, lossy = by_name.get(
            row.scenario, (0, 0, False, []))
        if row.losses:
            lossy = lossy + [row.chip]
        by_name[row.scenario] = (losses + row.losses,
                                 executions + row.executions,
                                 bounded or row.bounded, lossy)
    for scenario in clean:
        losses, executions, bounded, lossy = by_name[scenario.name]
        rows.append((scenario.name, CLEAN, losses, executions, bounded))
        if losses:
            problems.append(ConsistencyProblem(
                "exhaustive-loss", scenario.name,
                "certified clean but lost %d of %d exhaustively "
                "enumerated executions on %s"
                % (losses, executions, ", ".join(sorted(lossy)))))
    return rows, problems


def run_consistency(scenarios=None, tests=None, chips=None, runs=None,
                    seed=0, intensity=None, jobs=1, executor="thread",
                    cache_dir=None, fuel=128, loop_bound=None):
    """The full cross-check; returns a :class:`ConsistencyReport`."""
    scenario_rows, scenario_problems = check_scenarios(
        scenarios, chips=chips, runs=runs, seed=seed, intensity=intensity,
        jobs=jobs, executor=executor, cache_dir=cache_dir)
    library_rows, library_problems = check_library(tests, fuel=fuel)
    exhaustive_rows, exhaustive_problems = check_exhaustive(
        scenarios, chips=chips, loop_bound=loop_bound, jobs=jobs,
        executor=executor, cache_dir=cache_dir)
    return ConsistencyReport(scenario_rows=scenario_rows,
                             library_rows=library_rows,
                             exhaustive_rows=exhaustive_rows,
                             problems=(scenario_problems + library_problems
                                       + exhaustive_problems))
