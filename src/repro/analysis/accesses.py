"""Per-thread dataflow summaries over lowered PTX programs.

The analyzer works on the same :class:`~repro.ptx.program.ThreadProgram`
objects the simulator executes — after CUDA-eDSL lowering, so ``while``
loops are guarded backward jumps and ``if`` bodies are predicated
instructions.  A :func:`summarize_thread` pass walks one program and
extracts, per thread:

* its **memory accesses** (:class:`Access`), with addresses resolved to
  symbolic locations where possible (``[x]`` directly; ``[r]`` through
  the test's ``reg_init`` when ``r`` is never redefined);
* its **fences** (:class:`FenceEvent`) with scope and guard;
* the **control dependencies** of each access (:class:`ControlDep`): the
  governing load/RMW, the flag location it reads, and the set of flag
  values that let the access execute (:class:`ValueCond`) — from ``@p``
  predication guards and from the position after a guarded backward jump
  (a loop exit).

The dependency extraction is deliberately conservative: a predicate must
have exactly one ``setp`` definition, the ``setp`` must compare a
register against an immediate, and every definition of the compared
register must load (or RMW) the *same* resolved location.  Anything else
yields no :class:`ControlDep`, which downstream can only push a verdict
towards ``unknown``, never towards a wrong ``clean``.
"""

from dataclasses import dataclass, field

from ..ptx.instructions import (AtomCas, AtomExch, Bra, Label, Ld, Setp, St,
                                is_rmw)
from ..ptx.operands import Imm, Loc, Reg
from ..ptx.types import CacheOp


@dataclass(frozen=True)
class ValueCond:
    """The set of values admitted by a lowered ``setp`` comparison:
    ``== value`` or ``!= value``."""

    op: str  # "eq" | "ne"
    value: int

    def admits(self, value):
        return (value == self.value) == (self.op == "eq")

    def excludes(self, value):
        return not self.admits(value)

    def negated(self):
        return ValueCond("ne" if self.op == "eq" else "eq", self.value)

    def __str__(self):
        return "%s %d" % ("==" if self.op == "eq" else "!=", self.value)


@dataclass(frozen=True)
class ControlDep:
    """One control dependency of an access: *this access only executes
    when the value loaded from (location, offset) at po-index
    ``load_index`` satisfies ``admitted``.*

    ``kind`` is ``"guard"`` (an ``@p`` predication guard) or
    ``"loop-exit"`` (the access sits after a guarded backward jump and
    only runs once the loop's continue condition fails).  ``atomic``
    marks a governing RMW (a lock acquire); ``stale_l1`` marks a
    governing ``.ca`` load, whose value can come from a stale L1 line
    even across fences (Fig. 3) and therefore never anchors an ordering
    proof.
    """

    location: str
    offset: int
    load_index: int
    admitted: ValueCond
    kind: str
    atomic: bool = False
    stale_l1: bool = False

    @property
    def key(self):
        return (self.location, self.offset)


@dataclass(frozen=True)
class Access:
    """One memory event of one thread, in program order.

    ``location`` is the resolved symbolic location name (``None`` when
    the address is computed and may alias anything); ``stored`` is the
    written value when it is an immediate (``None``: unknown or not a
    write).  ``stale_l1`` marks non-volatile ``.ca`` loads.
    """

    tid: int
    thread: str
    index: int
    instr: object
    kind: str  # "R" | "W" | "RMW"
    location: str = None
    offset: int = 0
    atomic: bool = False
    volatile: bool = False
    stale_l1: bool = False
    stored: int = None

    @property
    def reads(self):
        return self.kind in ("R", "RMW")

    @property
    def writes(self):
        return self.kind in ("W", "RMW")

    @property
    def sync(self):
        """Synchronisation access: atomics and volatiles are the CUDA
        idiom's intentional racing accesses (cf. relaxed atomics)."""
        return self.atomic or self.volatile

    @property
    def key(self):
        return (self.location, self.offset)

    @property
    def guard(self):
        return self.instr.guard

    def describe(self):
        return "%s#%d %s" % (self.thread, self.index, self.instr)


@dataclass(frozen=True)
class FenceEvent:
    """A ``membar`` at a po index, with its scope and (optional) guard."""

    index: int
    scope: object
    guard: object = None


@dataclass(frozen=True)
class GuardPoint:
    """One resolved ``While``/``If`` condition of a thread, for the
    divergence/deadlock diagnostics: the body (or the code after the
    loop) runs only when the flag at (location, offset) satisfies
    ``admitted``."""

    tid: int
    thread: str
    kind: str  # "loop" | "if"
    location: str
    offset: int
    load_index: int
    admitted: ValueCond
    index: int  # the branch / first guarded instruction


@dataclass
class ThreadSummary:
    """Everything the race rules need to know about one thread."""

    tid: int
    name: str
    program: object
    accesses: list = field(default_factory=list)
    fences: list = field(default_factory=list)
    #: access po-index -> tuple of ControlDep
    deps: dict = field(default_factory=dict)
    #: po indices of guarded backward jumps (loop tails)
    loop_tails: list = field(default_factory=list)
    #: resolved While/If conditions, for the guard diagnostics
    guard_points: list = field(default_factory=list)
    #: registers whose stored value derives from a load (per store index)
    data_dep_stores: set = field(default_factory=set)

    def deps_of(self, access):
        return self.deps.get(access.index, ())

    def fence_between(self, lo, hi, rank, guards=frozenset()):
        """A covering fence strictly between po indices ``lo`` and
        ``hi`` whose guard (if any) is in ``guards`` — i.e. provably
        executes whenever the endpoints do."""
        for fence in self.fences:
            if lo < fence.index < hi and fence.scope.rank >= rank:
                if fence.guard is None or fence.guard in guards:
                    return fence
        return None

    def any_fence_after(self, index, rank):
        """A covering fence po-after ``index`` — guarded or not.  Used
        only to *block* a provably-racy claim, so possibly-skipped
        fences count (conservative in the right direction)."""
        return any(fence.index > index and fence.scope.rank >= rank
                   for fence in self.fences)

    def any_fence_before(self, index, rank):
        return any(fence.index < index and fence.scope.rank >= rank
                   for fence in self.fences)


def compatible_guards(access):
    """The guard context an ordering proof may assume while reasoning
    about ``access``: exactly the access's own guard (a guarded fence
    with the same predicate executes whenever the access does)."""
    return frozenset(() if access.guard is None else (access.guard,))


def decode_read_registers(program):
    """Every register the decode path of ``program`` may read.

    The union of :meth:`~repro.ptx.instructions.Instruction.uses` over
    the whole program: operand registers (addresses, stored values,
    compare/new values, ALU sources) plus predication-guard registers.
    A register *outside* this set is written only as a load destination
    and never consulted while decoding — the intra-thread independence
    analysis of :mod:`repro.exhaustive.explore` uses that to prove a
    load's issue timing cannot steer its own thread's front end.
    """
    read = set()
    for instruction in program.instructions:
        read.update(instruction.uses())
    return frozenset(read)


def resolve_address(addr, tid, reg_init, defs_by_reg):
    """Resolve an :class:`~repro.ptx.operands.Addr` to ``(location
    name, offset)`` or ``(None, offset)`` when the base register is
    computed (any in-thread definition disqualifies the ``reg_init``
    binding)."""
    base = addr.base
    if isinstance(base, Loc):
        return base.name, addr.offset
    if base.name in defs_by_reg:
        return None, addr.offset
    binding = reg_init.get((tid, base.name))
    if isinstance(binding, Loc):
        return binding.name, addr.offset
    return None, addr.offset


def _stored_value(instr):
    """The immediate value a write stores, if statically known.  A CAS
    can only ever deposit ``new``; exchanges deposit ``src``; inc/add
    results depend on memory (unknown)."""
    if isinstance(instr, St) and isinstance(instr.src, Imm):
        return instr.src.value
    if isinstance(instr, AtomExch) and isinstance(instr.src, Imm):
        return instr.src.value
    if isinstance(instr, AtomCas) and isinstance(instr.new, Imm):
        return instr.new.value
    return None


def _make_access(program, index, instr, reg_init, defs_by_reg):
    if is_rmw(instr):
        kind = "RMW"
    elif isinstance(instr, Ld):
        kind = "R"
    else:
        kind = "W"
    location, offset = resolve_address(instr.addr, program.tid, reg_init,
                                       defs_by_reg)
    volatile = getattr(instr, "volatile", False)
    stale = (isinstance(instr, Ld) and not volatile
             and instr.effective_cop == CacheOp.CA)
    return Access(tid=program.tid, thread=program.name, index=index,
                  instr=instr, kind=kind, location=location, offset=offset,
                  atomic=is_rmw(instr), volatile=volatile, stale_l1=stale,
                  stored=_stored_value(instr) if kind != "R" else None)


def _condition_of(setp):
    """The (source register, ValueCond) of a ``setp`` comparing a
    register against an immediate; ``(None, None)`` otherwise."""
    if isinstance(setp.a, Reg) and isinstance(setp.b, Imm):
        return setp.a.name, ValueCond(setp.cmp, setp.b.value)
    if isinstance(setp.b, Reg) and isinstance(setp.a, Imm):
        return setp.b.name, ValueCond(setp.cmp, setp.a.value)
    return None, None


def _flag_source(reg, setp_index, instrs, defs_by_reg, program, reg_init):
    """The flag location a register's value provably comes from.

    Requires every definition of ``reg`` to be a load or RMW of one and
    the same resolved location (whatever iteration defined it, the value
    was read from that flag).  Returns ``(location, offset, governing
    def index, atomic, stale_l1)`` or ``None``.
    """
    def_indices = defs_by_reg.get(reg, [])
    if not def_indices:
        return None
    keys = set()
    for index in def_indices:
        instr = instrs[index]
        if not instr.is_memory_access:
            return None
        location, offset = resolve_address(instr.addr, program.tid, reg_init,
                                           defs_by_reg)
        if location is None:
            return None
        keys.add((location, offset))
    if len(keys) != 1:
        return None
    before = [index for index in def_indices if index < setp_index]
    if not before:
        return None
    governing = max(before)
    instr = instrs[governing]
    (location, offset), = keys
    stale = (isinstance(instr, Ld) and not instr.volatile
             and instr.effective_cop == CacheOp.CA)
    return location, offset, governing, is_rmw(instr), stale


def _resolve_pred(guard, conditions):
    """Resolve a guard's predicate to its admitted flag values: the
    single-``setp`` condition, negated for ``@!p``.  Returns the
    ``ControlDep`` ingredients or ``None``."""
    entry = conditions.get(guard.reg)
    if entry is None:
        return None
    source, admitted = entry
    if source is None or admitted is None:
        return None
    if guard.negated:
        admitted = admitted.negated()
    location, offset, load_index, atomic, stale = source
    return location, offset, load_index, admitted, atomic, stale


def _derives_from_load(reg, defs_by_reg, instrs, _seen=None):
    """True when a register's value (transitively) comes out of a
    memory read — the store publishing it carries a data dependency."""
    if _seen is None:
        _seen = set()
    if reg in _seen:
        return False
    _seen.add(reg)
    for index in defs_by_reg.get(reg, ()):
        instr = instrs[index]
        if instr.is_memory_access:
            return True
        for used in instr.uses():
            if _derives_from_load(used, defs_by_reg, instrs, _seen):
                return True
    return False


def summarize_thread(program, reg_init):
    """Build the :class:`ThreadSummary` of one lowered thread."""
    instrs = list(program.instructions)
    defs_by_reg = {}
    for index, instr in enumerate(instrs):
        for reg in instr.defs():
            defs_by_reg.setdefault(reg, []).append(index)
    label_index = {instr.name: index for index, instr in enumerate(instrs)
                   if isinstance(instr, Label)}

    summary = ThreadSummary(tid=program.tid, name=program.name,
                            program=program)
    for index, instr in enumerate(instrs):
        if instr.is_fence:
            summary.fences.append(FenceEvent(index, instr.scope, instr.guard))
        elif instr.is_memory_access:
            summary.accesses.append(
                _make_access(program, index, instr, reg_init, defs_by_reg))

    # Single-definition predicates with immediate comparisons.
    conditions = {}
    for index, instr in enumerate(instrs):
        if (isinstance(instr, Setp)
                and len(defs_by_reg.get(instr.dst.name, ())) == 1):
            reg, admitted = _condition_of(instr)
            source = None
            if reg is not None:
                source = _flag_source(reg, index, instrs, defs_by_reg,
                                      program, reg_init)
            conditions[instr.dst.name] = (source, admitted)

    # Predication-guard dependencies.
    for access in summary.accesses:
        if access.guard is None:
            continue
        resolved = _resolve_pred(access.guard, conditions)
        if resolved is None:
            continue
        location, offset, load_index, admitted, atomic, stale = resolved
        dep = ControlDep(location=location, offset=offset,
                         load_index=load_index, admitted=admitted,
                         kind="guard", atomic=atomic, stale_l1=stale)
        summary.deps.setdefault(access.index, []).append(dep)

    # Loop-exit dependencies: any access after a guarded backward jump
    # only runs once the loop's continue condition failed.
    for index, instr in enumerate(instrs):
        if not isinstance(instr, Bra) or instr.guard is None:
            continue
        target = label_index.get(instr.target)
        if target is None or target > index:
            continue
        summary.loop_tails.append(index)
        resolved = _resolve_pred(instr.guard, conditions)
        if resolved is None:
            continue
        location, offset, load_index, admitted, atomic, stale = resolved
        exit_admitted = admitted.negated()
        summary.guard_points.append(GuardPoint(
            tid=program.tid, thread=program.name, kind="loop",
            location=location, offset=offset, load_index=load_index,
            admitted=exit_admitted, index=index))
        for access in summary.accesses:
            if access.index > index:
                dep = ControlDep(location=location, offset=offset,
                                 load_index=load_index,
                                 admitted=exit_admitted, kind="loop-exit",
                                 atomic=atomic, stale_l1=stale)
                summary.deps.setdefault(access.index, []).append(dep)

    # If-guard points (one per distinct resolved predicate), for the
    # divergence diagnostics.
    seen_preds = set()
    for index, instr in enumerate(instrs):
        guard = instr.guard
        if guard is None or isinstance(instr, Bra) or guard.reg in seen_preds:
            continue
        seen_preds.add(guard.reg)
        resolved = _resolve_pred(guard, conditions)
        if resolved is None:
            continue
        location, offset, load_index, admitted, atomic, stale = resolved
        summary.guard_points.append(GuardPoint(
            tid=program.tid, thread=program.name, kind="if",
            location=location, offset=offset, load_index=load_index,
            admitted=admitted, index=index))

    # Stores whose value carries a data dependency from a load.
    for access in summary.accesses:
        if (isinstance(access.instr, St) and isinstance(access.instr.src, Reg)
                and _derives_from_load(access.instr.src.name, defs_by_reg,
                                       instrs)):
            summary.data_dep_stores.add(access.index)

    for index in summary.deps:
        summary.deps[index] = tuple(summary.deps[index])
    return summary


def summarize_test(test):
    """One :class:`ThreadSummary` per thread of a litmus test."""
    return [summarize_thread(program, test.reg_init)
            for program in test.threads]
