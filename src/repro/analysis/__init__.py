"""Static pre-screening analysis: provable races, provable ordering,
spin/divergence diagnostics, and the campaign triage backend.

The analyzer works on lowered PTX thread programs (the same objects the
simulator runs), classifies every conflicting access pair as provably
racy / provably ordered / unknown under the chip's scoped-fence
semantics, and folds the pair verdicts into a per-test verdict:
``racy`` / ``unknown`` / ``clean``.  ``clean`` is a proof, and the
:mod:`~repro.analysis.consistency` cross-checks hold it to that — a
clean scenario must never lose in simulation; a clean litmus test must
stay SC under the PTX model.

Front doors:

* :func:`analyze_test` — analyse one litmus test, full report.
* :class:`AnalysisBackend` / :func:`analysis_session` — the
  :class:`~repro.api.session.Session`-compatible triage backend
  (``make_backend("analysis")`` resolves here).
* :func:`prescreen` / :func:`run_prescreened` — the ``--prescreen``
  flow: skip simulation for provably-clean cells.
* :func:`run_consistency` — the CI cross-check.
"""

from .accesses import (Access, ControlDep, FenceEvent, GuardPoint,
                       ThreadSummary, ValueCond, summarize_test,
                       summarize_thread)
from .backend import (ANALYSIS_LOCATION, AnalysisBackend, analysis_session,
                      condition_skippable, prescreen, run_prescreened,
                      verdict_from_histogram, verdict_state)
from .consistency import (ConsistencyProblem, ConsistencyReport,
                          check_exhaustive, check_library,
                          check_scenarios, run_consistency)
from .races import (CLEAN, ORDERED, RACY, SYNC, UNKNOWN, AnalysisReport,
                    Diagnostic, PairFinding, analyze_test)

__all__ = [
    "ANALYSIS_LOCATION",
    "Access",
    "AnalysisBackend",
    "AnalysisReport",
    "CLEAN",
    "ConsistencyProblem",
    "ConsistencyReport",
    "ControlDep",
    "Diagnostic",
    "FenceEvent",
    "GuardPoint",
    "ORDERED",
    "PairFinding",
    "RACY",
    "SYNC",
    "ThreadSummary",
    "UNKNOWN",
    "ValueCond",
    "analysis_session",
    "analyze_test",
    "check_exhaustive",
    "check_library",
    "check_scenarios",
    "condition_skippable",
    "prescreen",
    "run_consistency",
    "run_prescreened",
    "summarize_test",
    "summarize_thread",
    "verdict_from_histogram",
    "verdict_state",
]
