"""The AMD OpenCL compilation path and its documented miscompilations.

The paper cannot hand-write AMD ISA (no public assemblers), so its AMD
tests are OpenCL kernels compiled by the AMD OpenCL compiler into
Evergreen (TeraScale 2) or Southern Islands (GCN 1.0) code — and the
compiler itself turned out to be part of the story (Table 2):

* **GCN 1.0 / Southern Islands**: the compiler *removes the fence between
  two loads* (Sec. 3.1.2), so fenced mp stays weak on the HD 7970;
* **TeraScale 2 / Evergreen**: the compiler *reorders a load past a
  following CAS* (Sec. 3.2.1) — a miscompilation that invalidates the
  dlb-lb test on the HD 6570 (reported as "n/a" in Fig. 8);
* both backends *combine repeated loads from one location into a single
  load* (Sec. 4.4), which would mask coRR; marking the location volatile
  suppresses this.

This module models those compilers at the PTX-as-portable-IR level: an
OpenCL kernel is represented by the same instruction list as a PTX
thread (with every ``membar`` read as ``mem_fence(CLK_GLOBAL_MEM_FENCE)``
— OpenCL 1.2 fences carry no scope), the "compiler" applies the
documented transformations, and the result can be inspected (the paper's
"we checked the generated ISA files by hand") or run on the simulated
AMD chips via :func:`effective_litmus`.
"""

from dataclasses import dataclass, field

from ..errors import CompileError
from ..litmus.test import LitmusTest
from ..ptx.instructions import (AtomCas, AtomExch, AtomInc, Ld, Membar, Mov,
                                St)
from ..ptx.program import ThreadProgram

#: Architectures and their ISA names (Table 1 / Sec. 2.3).
ARCHITECTURES = {
    "TeraScale 2": "Evergreen",
    "GCN 1.0": "Southern Islands",
}

#: Transformation tags reported by the compilers.
FENCE_REMOVED = "fence-removed-between-loads"
LOAD_CAS_REORDERED = "load-cas-reordered"
LOADS_COMBINED = "repeated-loads-combined"


@dataclass
class AmdCompileResult:
    """Output of compiling one thread for an AMD architecture."""

    architecture: str
    instructions: tuple
    isa_text: str
    transformations: list = field(default_factory=list)

    @property
    def miscompiled(self):
        """True when a semantics-changing transformation fired."""
        return LOAD_CAS_REORDERED in self.transformations


def _combine_repeated_loads(instructions, transformations):
    """Adjacent loads from one location merge into one (both backends).

    Volatile loads are exempt — this is the paper's documented way to
    suppress the optimisation.
    """
    result = []
    for instruction in instructions:
        previous = result[-1] if result else None
        if (isinstance(instruction, Ld) and isinstance(previous, Ld)
                and not instruction.volatile and not previous.volatile
                and instruction.addr == previous.addr
                and instruction.guard is None and previous.guard is None):
            result.append(Mov(instruction.dst, previous.dst,
                              typ=instruction.typ))
            transformations.append(LOADS_COMBINED)
            continue
        result.append(instruction)
    return result


def _remove_fences_between_loads(instructions, transformations):
    """Southern Islands: a fence flanked by loads is dropped."""
    result = []
    for index, instruction in enumerate(instructions):
        if isinstance(instruction, Membar):
            before = instructions[index - 1] if index else None
            after = (instructions[index + 1]
                     if index + 1 < len(instructions) else None)
            if isinstance(before, Ld) and isinstance(after, Ld):
                transformations.append(FENCE_REMOVED)
                continue
        result.append(instruction)
    return result


def _reorder_load_past_cas(instructions, transformations):
    """TeraScale 2: a load followed by a CAS is emitted CAS-first.

    The paper regards this as a miscompilation: "it invalidates code that
    uses a CAS to synchronise between threads".
    """
    result = list(instructions)
    index = 0
    while index + 1 < len(result):
        first, second = result[index], result[index + 1]
        if (isinstance(first, Ld) and isinstance(second, AtomCas)
                and first.guard is None and second.guard is None
                and first.addr != second.addr):
            result[index], result[index + 1] = second, first
            transformations.append(LOAD_CAS_REORDERED)
            index += 2
            continue
        index += 1
    return result


_EVERGREEN_MNEMONICS = {
    Ld: "VFETCH", St: "MEM_RAT_CACHELESS STORE_RAW",
    AtomCas: "MEM_RAT ATOMIC_CMPXCHG_INT", AtomExch: "MEM_RAT ATOMIC_XCHG_INT",
    AtomInc: "MEM_RAT ATOMIC_INC", Membar: "FENCE_MEM", Mov: "MOV",
}
_SI_MNEMONICS = {
    Ld: "BUFFER_LOAD_DWORD", St: "BUFFER_STORE_DWORD",
    AtomCas: "BUFFER_ATOMIC_CMPSWAP", AtomExch: "BUFFER_ATOMIC_SWAP",
    AtomInc: "BUFFER_ATOMIC_ADD", Membar: "S_WAITCNT vmcnt(0)", Mov: "V_MOV_B32",
}


def _isa_text(architecture, instructions):
    table = (_EVERGREEN_MNEMONICS if architecture == "TeraScale 2"
             else _SI_MNEMONICS)
    lines = []
    for instruction in instructions:
        mnemonic = table.get(type(instruction), "; %s" % instruction)
        lines.append("  %s  ; from: %s" % (mnemonic, instruction))
    return "\n".join(lines)


def compile_opencl_thread(program, architecture):
    """Compile one OpenCL thread for an AMD architecture."""
    if architecture not in ARCHITECTURES:
        raise CompileError("unknown AMD architecture %r (known: %s)"
                           % (architecture, ", ".join(ARCHITECTURES)))
    transformations = []
    instructions = list(program.instructions)
    instructions = _combine_repeated_loads(instructions, transformations)
    if architecture == "GCN 1.0":
        instructions = _remove_fences_between_loads(instructions,
                                                    transformations)
    else:
        instructions = _reorder_load_past_cas(instructions, transformations)
    return AmdCompileResult(
        architecture=architecture, instructions=tuple(instructions),
        isa_text=_isa_text(architecture, instructions),
        transformations=transformations)


def effective_litmus(test, architecture):
    """What actually runs on the AMD chip: the test *after* compilation.

    Returns ``(effective test, transformations, valid)``.  ``valid`` is
    False when a miscompilation (the TeraScale 2 load/CAS reorder)
    invalidates the test — the paper's "n/a" entries.
    """
    threads, transformations = [], []
    for program in test.threads:
        compiled = compile_opencl_thread(program, architecture)
        transformations.extend(compiled.transformations)
        threads.append(ThreadProgram(
            tid=program.tid, instructions=compiled.instructions,
            name=program.name, reg_types=dict(program.reg_types)))
    effective = LitmusTest(
        name=test.name + "@" + ARCHITECTURES[architecture],
        threads=tuple(threads), condition=test.condition,
        scope_tree=test.scope_tree, memory_map=test.memory_map,
        init_mem=dict(test.init_mem), reg_init=dict(test.reg_init),
        description=test.description, idiom=test.idiom)
    valid = LOAD_CAS_REORDERED not in transformations
    return effective, transformations, valid
