"""optcheck: verify that compiled SASS matches the litmus test (Sec. 4.4).

The tool embeds a specification into the PTX of a litmus test — one
``xor`` instruction per memory access, whose integer literal encodes the
register used, the kind of instruction, and its position in the order of
memory accesses — then checks the disassembled SASS against it:

    xor.b32 r2, rb, 0x07f3a001
                     \\______/
                      constant encodes (kind, position); the register
                      operand names the access's register

Because every access in a generated litmus test uses a distinct register,
the correspondence between accesses and ``xor`` markers is one-to-one.
optcheck catches both *reorderings* (the CUDA 5.5 volatile-load swap) and
*removals* of memory accesses.
"""

import re
from dataclasses import dataclass

from ..errors import OptcheckViolation
from ..ptx.instructions import (AtomAdd, AtomCas, AtomExch, AtomInc, Ld, St,
                                Xor)
from ..ptx.operands import Imm, Reg
from ..ptx.program import ThreadProgram
from ..ptx.types import TypeSpec
from .sass import assemble, cuobjdump

#: High bits distinguishing specification xors from programme xors.
MAGIC = 0x07F3A000
_MAGIC_MASK = 0xFFFFF000
_KIND_SHIFT = 6
_POSITION_MASK = 0x3F

#: Instruction-kind codes (e.g. "00 for a load with cache operator .cg").
KIND_CODES = {
    "ld.cg": 0, "ld.ca": 1, "ld.volatile": 2,
    "st": 3, "st.volatile": 4,
    "atom.cas": 5, "atom.exch": 6, "atom.add": 7,
}

_SASS_KINDS = {
    "LDG.CG": "ld.cg", "LDG.CA": "ld.ca", "LDV": "ld.volatile",
    "STG": "st", "STV": "st.volatile",
}


def _kind_of_ptx(instruction):
    if isinstance(instruction, Ld):
        if instruction.volatile:
            return "ld.volatile"
        return "ld.%s" % instruction.effective_cop.value
    if isinstance(instruction, St):
        return "st.volatile" if instruction.volatile else "st"
    if isinstance(instruction, AtomCas):
        return "atom.cas"
    if isinstance(instruction, AtomExch):
        return "atom.exch"
    if isinstance(instruction, (AtomInc, AtomAdd)):
        return "atom.add"
    return None


def _register_of(instruction):
    """The distinguishing register of an access (loads: destination;
    stores: the source register when there is one)."""
    if isinstance(instruction, Ld):
        return instruction.dst.name
    if isinstance(instruction, St):
        return instruction.src.name if isinstance(instruction.src, Reg) else "rz"
    return instruction.dst.name  # atomics


@dataclass(frozen=True)
class SpecEntry:
    """One decoded specification marker."""

    position: int
    kind: str
    register: str


def encode(kind, position):
    return MAGIC | (KIND_CODES[kind] << _KIND_SHIFT) | position


def decode(value):
    if (value & _MAGIC_MASK) != MAGIC:
        return None
    kind_code = (value >> _KIND_SHIFT) & 0xF
    for kind, code in KIND_CODES.items():
        if code == kind_code:
            return kind, value & _POSITION_MASK
    return None


def embed_specification(program):
    """Append the specification xors to a thread program."""
    spec = []
    position = 0
    for instruction in program.instructions:
        kind = _kind_of_ptx(instruction)
        if kind is None:
            continue
        spec.append(Xor(Reg("rspec%d" % position),
                        Reg(_register_of(instruction)),
                        Imm(encode(kind, position)), typ=TypeSpec.B32))
        position += 1
    return ThreadProgram(tid=program.tid,
                         instructions=program.instructions + tuple(spec),
                         name=program.name, reg_types=dict(program.reg_types))


_XOR_RE = re.compile(r"LOP\.XOR (\S+), (\S+), (0x[0-9a-f]+)")
_ACCESS_RE = re.compile(
    r"(LDG\.\w+|LDV|STG|STV|ATOM) ([^;]*)")


def _parse_spec(dump):
    entries = []
    for match in _XOR_RE.finditer(dump):
        value = int(match.group(3), 16)
        decoded = decode(value)
        if decoded is None:
            continue
        kind, position = decoded
        entries.append(SpecEntry(position=position, kind=kind,
                                 register=match.group(2).rstrip(",")))
    return sorted(entries, key=lambda entry: entry.position)


def _parse_accesses(dump):
    accesses = []
    for match in _ACCESS_RE.finditer(dump):
        opcode, rest = match.group(1), match.group(2)
        operands = [part.strip() for part in rest.split(",")]
        if opcode == "ATOM":
            sub = operands[0]
            kind = {"CAS": "atom.cas", "EXCH": "atom.exch",
                    "ADD": "atom.add"}[sub]
            register = operands[1]
        elif opcode.startswith("LD"):
            kind = _SASS_KINDS[opcode]
            register = operands[0]
        else:
            kind = _SASS_KINDS[opcode]
            source = operands[1] if len(operands) > 1 else "rz"
            register = source if source.startswith("r") else "rz"
        accesses.append((kind, register))
    return accesses


def check_sass(dump):
    """Check a cuobjdump listing against its embedded specification.

    Raises :class:`~repro.errors.OptcheckViolation` when the memory
    accesses of the SASS do not match the specification's order, kinds or
    registers — i.e. when the assembler reordered or removed accesses.
    """
    spec = _parse_spec(dump)
    if not spec:
        raise OptcheckViolation("no specification markers found in SASS")
    accesses = _parse_accesses(dump)
    if len(accesses) != len(spec):
        raise OptcheckViolation(
            "SASS has %d memory accesses but the specification lists %d"
            % (len(accesses), len(spec)))
    for entry, (kind, register) in zip(spec, accesses):
        if kind != entry.kind:
            raise OptcheckViolation(
                "access %d: expected %s, SASS has %s"
                % (entry.position, entry.kind, kind))
        if entry.register != "rz" and register != entry.register:
            raise OptcheckViolation(
                "access %d (%s): expected register %s, SASS uses %s"
                % (entry.position, kind, entry.register, register))
    return True


def optcheck(program, opt_level="-O3", cuda_version="6.0", seed=0):
    """The full Sec. 4.4 pipeline for one thread.

    Embed the specification, assemble with ``ptxas``, disassemble with
    ``cuobjdump``, and check.  Returns the SASS program when the check
    passes; raises :class:`OptcheckViolation` otherwise.
    """
    instrumented = embed_specification(program)
    sass = assemble(instrumented, opt_level=opt_level,
                    cuda_version=cuda_version, seed=seed)
    check_sass(cuobjdump(sass))
    return sass
