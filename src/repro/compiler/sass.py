"""A SASS-like target ISA and a ``ptxas``-style assembler (Sec. 4.4).

Nvidia's real SASS is undocumented; the paper works around it by
disassembling binaries with ``cuobjdump`` and checking them against a
specification.  To exercise that workflow we model:

* a **SASS instruction set** (``LDG``, ``STG``, ``ATOM``, ``MEMBAR``,
  ``MOV32I``, ``IADD``, ``LOP.AND``, ``LOP.XOR``, ``ISETP``, ``BRA``,
  ``NOP``) with a textual form that :func:`cuobjdump` prints;
* an assembler with two optimisation levels:

  - ``-O0`` keeps every PTX operation but *separates adjacent memory
    accesses with scheduling filler* ("instructions that were adjacent in
    the PTX code are separated by several instructions in the SASS
    code") — undesirable for litmus testing;
  - ``-O3`` drops the filler and runs peephole optimisations, including
    the **xor-false-dependency elimination** that destroys Fig. 13(a)
    dependency chains, and — for CUDA release 5.5 — the documented bug of
    **reordering volatile loads to the same address** (observed while
    testing coRR on Maxwell; fixed in CUDA 6.0).
"""

import random
from dataclasses import dataclass, field

from ..errors import CompileError
from ..ptx.instructions import (Add, And, AtomAdd, AtomCas, AtomExch,
                                AtomInc, Bra, Cvt, Label, Ld, Membar, Mov,
                                Setp, St, Xor)
from ..ptx.operands import Addr, Imm, Loc, Reg


@dataclass(frozen=True)
class SassInstr:
    """One SASS instruction: opcode plus textual operands.

    ``source`` records the index of the PTX instruction this SASS
    instruction implements (None for filler), which optcheck uses to map
    accesses back to the litmus test.
    """

    opcode: str
    operands: tuple = ()
    source: int = None

    @property
    def is_memory_access(self):
        return self.opcode.startswith(("LDG", "STG", "LDV", "STV", "ATOM"))

    def __str__(self):
        if not self.operands:
            return self.opcode
        return "%s %s" % (self.opcode, ", ".join(str(op) for op in self.operands))


@dataclass
class SassProgram:
    """The SASS for one thread."""

    instructions: list = field(default_factory=list)
    name: str = "T?"

    def memory_accesses(self):
        return [i for i in self.instructions if i.is_memory_access]

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self):
        return len(self.instructions)


def _addr_text(addr):
    base = addr.base.name if isinstance(addr.base, (Loc, Reg)) else str(addr.base)
    return "[%s+%d]" % (base, addr.offset) if addr.offset else "[%s]" % base


def _operand_text(operand):
    if isinstance(operand, Imm):
        return hex(operand.value) if operand.value > 255 else str(operand.value)
    if isinstance(operand, Addr):
        return _addr_text(operand)
    return str(operand)


def _translate(instruction, index):
    """One PTX instruction -> one or more SASS instructions."""
    if isinstance(instruction, Ld):
        opcode = "LDV" if instruction.volatile else "LDG"
        suffix = "" if instruction.volatile else ".%s" % instruction.effective_cop.value.upper()
        return [SassInstr(opcode + suffix,
                          (str(instruction.dst), _addr_text(instruction.addr)),
                          source=index)]
    if isinstance(instruction, St):
        opcode = "STV" if instruction.volatile else "STG"
        return [SassInstr(opcode,
                          (_addr_text(instruction.addr), _operand_text(instruction.src)),
                          source=index)]
    if isinstance(instruction, AtomCas):
        return [SassInstr("ATOM", ("CAS", str(instruction.dst),
                                   _addr_text(instruction.addr),
                                   _operand_text(instruction.cmp),
                                   _operand_text(instruction.new)), source=index)]
    if isinstance(instruction, AtomExch):
        return [SassInstr("ATOM", ("EXCH", str(instruction.dst),
                                   _addr_text(instruction.addr),
                                   _operand_text(instruction.src)), source=index)]
    if isinstance(instruction, (AtomInc, AtomAdd)):
        return [SassInstr("ATOM", ("ADD", str(instruction.dst),
                                   _addr_text(instruction.addr)), source=index)]
    if isinstance(instruction, Membar):
        return [SassInstr("MEMBAR", (instruction.scope.value.upper(),), source=index)]
    if isinstance(instruction, Mov):
        return [SassInstr("MOV32I", (str(instruction.dst),
                                     _operand_text(instruction.src)), source=index)]
    if isinstance(instruction, Add):
        return [SassInstr("IADD", (str(instruction.dst), _operand_text(instruction.a),
                                   _operand_text(instruction.b)), source=index)]
    if isinstance(instruction, And):
        return [SassInstr("LOP.AND", (str(instruction.dst), _operand_text(instruction.a),
                                      _operand_text(instruction.b)), source=index)]
    if isinstance(instruction, Xor):
        return [SassInstr("LOP.XOR", (str(instruction.dst), _operand_text(instruction.a),
                                      _operand_text(instruction.b)), source=index)]
    if isinstance(instruction, Cvt):
        return [SassInstr("I2I", (str(instruction.dst), str(instruction.src)),
                          source=index)]
    if isinstance(instruction, Setp):
        return [SassInstr("ISETP.%s" % instruction.cmp.upper(),
                          (str(instruction.dst), _operand_text(instruction.a),
                           _operand_text(instruction.b)), source=index)]
    if isinstance(instruction, Bra):
        return [SassInstr("BRA", (instruction.target,), source=index)]
    if isinstance(instruction, Label):
        return [SassInstr("LABEL", (instruction.name,), source=index)]
    raise CompileError("cannot translate %r to SASS" % (instruction,))


def _xor_false_dep_elimination(sass):
    """Peephole: ``LOP.XOR r, a, a`` is always zero — fold it.

    This is the optimisation that destroys the Fig. 13(a) dependency
    scheme: once the xor folds to a constant, the subsequent adds fold
    too and the manufactured address dependency vanishes.
    """
    known_zero = set()
    optimised = []
    for instr in sass:
        if (instr.opcode == "LOP.XOR" and len(instr.operands) == 3
                and instr.operands[1] == instr.operands[2]):
            known_zero.add(instr.operands[0])
            optimised.append(SassInstr("MOV32I", (instr.operands[0], "0"),
                                       source=instr.source))
            continue
        if (instr.opcode in ("IADD", "I2I") and len(instr.operands) >= 2
                and any(op in known_zero for op in instr.operands[1:])):
            remaining = [op for op in instr.operands[1:] if op not in known_zero]
            if len(remaining) == 1:
                # x + 0 = x: the instruction becomes a register copy; the
                # dependency on the zero register is gone.
                optimised.append(SassInstr("MOV", (instr.operands[0], remaining[0]),
                                           source=instr.source))
                continue
            if not remaining:
                known_zero.add(instr.operands[0])
                optimised.append(SassInstr("MOV32I", (instr.operands[0], "0"),
                                           source=instr.source))
                continue
        if instr.operands and instr.operands[0] in known_zero:
            known_zero.discard(instr.operands[0])
        optimised.append(instr)
    return optimised


def _cuda55_volatile_reorder(sass, rng):
    """The CUDA 5.5 bug (Sec. 4.4 / Table 2 bottom): adjacent volatile
    loads from the same address are occasionally swapped."""
    result = list(sass)
    for i in range(len(result) - 1):
        a, b = result[i], result[i + 1]
        if (a.opcode == "LDV" and b.opcode == "LDV"
                and a.operands[1] == b.operands[1] and rng.random() < 0.5):
            result[i], result[i + 1] = b, a
    return result


_FILLER = [
    SassInstr("NOP"), SassInstr("MOV", ("RZ", "RZ")),
    SassInstr("IADD", ("R255", "R255", "0")), SassInstr("NOP"),
]


def assemble(program, opt_level="-O3", cuda_version="6.0", seed=0):
    """Assemble a PTX :class:`~repro.ptx.program.ThreadProgram` to SASS.

    ``opt_level`` is ``-O0`` or ``-O3``; ``cuda_version`` selects compiler
    behaviour (``"5.5"`` reproduces the volatile-reorder bug).
    """
    if opt_level not in ("-O0", "-O3"):
        raise CompileError("ptxas supports -O0 and -O3 here")
    rng = random.Random(seed)
    sass = []
    for index, instruction in enumerate(program.instructions):
        translated = _translate(instruction, index)
        sass.extend(translated)
        if opt_level == "-O0":
            # Unoptimised schedules interleave address math and fills.
            sass.extend(_FILLER[: 2 + rng.randrange(3)])
    if opt_level == "-O3":
        sass = _xor_false_dep_elimination(sass)
        if cuda_version == "5.5":
            sass = _cuda55_volatile_reorder(sass, rng)
    return SassProgram(instructions=sass, name=program.name)


def cuobjdump(sass_program):
    """Disassemble: the textual dump optcheck parses (à la cuobjdump)."""
    lines = ["\t.text.%s:" % sass_program.name]
    lines.extend("\t/*%04x*/  %s ;" % (8 * i, instr)
                 for i, instr in enumerate(sass_program))
    return "\n".join(lines)
