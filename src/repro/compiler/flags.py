"""The paper's experimental fix for Fermi's L1 (Sec. 3.1.2).

No fence restores ordering for ``.ca`` (L1-targeting) loads on the Tesla
C2075, so the paper "experimentally fixes this issue by setting cache
operators to .cg (using the CUDA compiler flags ``-Xptxas -dlcm=cg``
``-Xptxas -dscm=cg``) and using membar.gl fences" — i.e. compile every
load and store to target the L2.

:func:`apply_cache_flags` performs that rewriting on a litmus test (or a
single thread program), mirroring what the compiler flags do.
"""

from dataclasses import replace

from ..litmus.test import LitmusTest
from ..ptx.instructions import Ld, St
from ..ptx.program import ThreadProgram
from ..ptx.types import CacheOp

#: The flag spellings from the paper.
DLCM_FLAG = "-Xptxas -dlcm=cg"
DSCM_FLAG = "-Xptxas -dscm=cg"


def _rewrite_instruction(instruction):
    if isinstance(instruction, Ld) and not instruction.volatile:
        if instruction.effective_cop is not CacheOp.CG:
            return replace(instruction, cop=CacheOp.CG)
    if isinstance(instruction, St) and not instruction.volatile:
        if instruction.effective_cop is not CacheOp.CG:
            return replace(instruction, cop=CacheOp.CG)
    return instruction


def apply_cache_flags(target):
    """Rewrite all non-volatile loads/stores to the ``.cg`` operator.

    Accepts a :class:`~repro.ptx.program.ThreadProgram` or a
    :class:`~repro.litmus.test.LitmusTest`; returns the rewritten copy.
    """
    if isinstance(target, ThreadProgram):
        return ThreadProgram(
            tid=target.tid,
            instructions=tuple(_rewrite_instruction(i) for i in target),
            name=target.name, reg_types=dict(target.reg_types))
    if isinstance(target, LitmusTest):
        return LitmusTest(
            name=target.name + "+dlcm=cg",
            threads=tuple(apply_cache_flags(t) for t in target.threads),
            condition=target.condition, scope_tree=target.scope_tree,
            memory_map=target.memory_map, init_mem=dict(target.init_mem),
            reg_init=dict(target.reg_init), description=target.description,
            idiom=target.idiom)
    raise TypeError("expected a ThreadProgram or LitmusTest, got %r"
                    % (target,))
