"""Manufacturing dependencies that survive optimisation (Sec. 4.5, Fig. 13).

Litmus tests probe whether dependencies order memory accesses.  A *false*
dependency must have no effect on computed values yet survive the
assembler's optimiser:

* the classic CPU scheme (Fig. 13a) xors a value with itself — ``ptxas``
  at ``-O3`` knows ``x ^ x = 0`` and deletes the chain;
* the paper's scheme (Fig. 13b) ands the loaded value with
  ``0x80000000`` — also always 0 in a litmus test (stores write small
  positive values), but proving it requires an inter-thread analysis the
  assembler does not perform, so the chain survives.
"""

import re

from ..ptx.instructions import Add, And, Cvt, Ld, Xor
from ..ptx.operands import Addr, Imm, Loc, Reg
from ..ptx.types import CacheOp, TypeSpec
from .._util import HIGH_BIT32

#: The constant of Fig. 13(b): just the high bit set.
HIGH_BIT = HIGH_BIT32


def xor_dependency_chain(source_reg, base_reg, target_reg,
                         scratch=("rx1", "rx2")):
    """Fig. 13(a): an address-dependency chain ``ptxas -O3`` optimises
    away (``xor r, src, src`` is always zero)."""
    zero, wide = scratch
    return [
        Xor(Reg(zero), Reg(source_reg), Reg(source_reg), typ=TypeSpec.B32),
        Cvt(Reg(wide), Reg(zero)),
        Add(Reg(target_reg), Reg(base_reg), Reg(wide), typ=TypeSpec.U64),
    ]


def and_dependency_chain(source_reg, base_reg, target_reg,
                         scratch=("ra1", "ra2")):
    """Fig. 13(b): the and-with-high-bit chain that survives ``-O3``."""
    zero, wide = scratch
    return [
        And(Reg(zero), Reg(source_reg), Imm(HIGH_BIT), typ=TypeSpec.B32),
        Cvt(Reg(wide), Reg(zero)),
        Add(Reg(target_reg), Reg(base_reg), Reg(wide), typ=TypeSpec.U64),
    ]


def dependent_load_pair(location_a, location_b, scheme="and"):
    """The full Fig. 13 snippet: load ``a``, manufacture a dependency,
    load ``b`` through the dependent address register.

    Returns (instructions, reg_init) where reg_init binds the base
    register to ``location_b``'s address.
    """
    chain_builder = (and_dependency_chain if scheme == "and"
                     else xor_dependency_chain)
    instructions = [Ld(Reg("r1"), Addr(Loc(location_a)), cop=CacheOp.CG)]
    instructions.extend(chain_builder("r1", "r0", "r4"))
    instructions.append(Ld(Reg("r5"), Addr(Reg("r4")), cop=CacheOp.CG))
    return instructions, {"r0": Loc(location_b)}


_BRACKET_RE = re.compile(r"\[(\w+)(?:\+\d+)?\]")


def sass_address_dependency_intact(sass_program):
    """Static dataflow over SASS: does the *last* load's address register
    still depend on the *first* load's destination?

    This is how one verifies, on the disassembled code, that the
    manufactured dependency survived (or, for the xor scheme, that it was
    folded away).
    """
    tainted = set()
    first_load_seen = False
    for instruction in sass_program:
        opcode = instruction.opcode
        operands = [op.rstrip(",") for op in map(str, instruction.operands)]
        if opcode.startswith("LDG") or opcode == "LDV":
            register, address = operands[0], operands[1]
            match = _BRACKET_RE.match(address)
            base = match.group(1) if match else None
            if first_load_seen:
                return base in tainted
            first_load_seen = True
            tainted.add(register)
            continue
        if not operands:
            continue
        destination, sources = operands[0], operands[1:]
        if opcode == "MOV32I":
            tainted.discard(destination)  # constant: kills the taint
        elif opcode in ("MOV", "I2I", "IADD", "LOP.AND", "LOP.XOR"):
            if any(source in tainted for source in sources):
                tainted.add(destination)
            else:
                tainted.discard(destination)
    return False
