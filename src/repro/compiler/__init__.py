"""Compilation tooling: Table 5 lowering, SASS pipeline, optcheck, AMD."""

from .amd import (AmdCompileResult, ARCHITECTURES, FENCE_REMOVED,
                  LOAD_CAS_REORDERED, LOADS_COMBINED, compile_opencl_thread,
                  effective_litmus)
from .cuda import (AddTo, AtomicCas, AtomicExchange, AtomicIncrement, Cond,
                   If, Kernel, Load, Store, TABLE5, Threadfence, While,
                   compile_kernel, do_while_cas_spin)
from .deps import (HIGH_BIT, and_dependency_chain, dependent_load_pair,
                   sass_address_dependency_intact, xor_dependency_chain)
from .flags import DLCM_FLAG, DSCM_FLAG, apply_cache_flags
from .optcheck import (KIND_CODES, MAGIC, SpecEntry, check_sass, decode,
                       embed_specification, encode, optcheck)
from .sass import SassInstr, SassProgram, assemble, cuobjdump

__all__ = [
    "AmdCompileResult", "ARCHITECTURES", "FENCE_REMOVED",
    "LOAD_CAS_REORDERED", "LOADS_COMBINED", "compile_opencl_thread",
    "effective_litmus",
    "AddTo", "AtomicCas", "AtomicExchange", "AtomicIncrement", "Cond", "If",
    "Kernel", "Load", "Store", "TABLE5", "Threadfence", "While",
    "compile_kernel", "do_while_cas_spin",
    "HIGH_BIT", "and_dependency_chain", "dependent_load_pair",
    "sass_address_dependency_intact", "xor_dependency_chain",
    "DLCM_FLAG", "DSCM_FLAG", "apply_cache_flags",
    "KIND_CODES", "MAGIC", "SpecEntry", "check_sass", "decode",
    "embed_specification", "encode", "optcheck",
    "SassInstr", "SassProgram", "assemble", "cuobjdump",
]
