"""Chip profiles: the GPUs of Table 1 as simulator configurations.

Real hardware is unavailable, so each chip is modelled as a
:class:`ChipProfile`: a set of *structural switches* saying which
micro-architectural relaxations exist (store buffering, non-FIFO drain,
out-of-order loads, the load-load hazard, un-invalidated L1 lines,
atomics that do or don't order) plus *probability knobs* calibrated
against the paper's observation tables so that weak-outcome rates land
near the published per-100k counts.

The switches are inferred from the paper's data:

* **GTX 280** (Tesla) — no weak behaviour observed (Sec. 1 fn. 7):
  everything off.
* **GTX 540m** (Fermi GF108) — coRR (Fig. 1: 11642) and mp-L1 (Fig. 3:
  4979) but *zero* on every inter-CTA ``.cg``/atomic test (Figs. 7-11):
  load-load reordering and the load-load hazard only; stores and atomics
  ordered; a ``membar.cta`` restores mp-L1 but does not invalidate the
  L1 (Fig. 4: 1934 with ``membar.cta``).
* **Tesla C2075** (Fermi GF110) — everything relaxed, and no fence of any
  scope reliably invalidates the L1 (Figs. 3 and 4: weak under
  ``membar.sys``).
* **GTX 660 / GTX Titan** (Kepler) — everything relaxed; ``membar.gl``
  restores all orderings; ``membar.cta`` leaks inter-CTA (Fig. 3: 14 and
  1696); residual L1 staleness is tiny (Fig. 4: 2 and 141).
* **GTX 750** (Maxwell) — a rare store-drain reordering only (Fig. 3
  no-fence: 3); atomics and volatiles ordered; no hazard, no staleness.
* **Radeon HD 6570** (TeraScale 2) — no coRR, no store buffering; W→W
  drain reordering (cas-sl: 508) and load-load reordering (mp: 9327).
* **Radeon HD 7970** (GCN 1.0) — massive R→W reordering (Tab. 6 lb:
  38664), W→W (cas-sl: 748), loads reorder (mp: 2956); sb essentially
  absent (Tab. 6: 2); no coRR.
"""

from dataclasses import dataclass, field

from ..ptx.types import Scope


@dataclass(frozen=True)
class ChipProfile:
    """Static description of one GPU chip for the simulator.

    Structural switches (booleans) decide *whether* a relaxation can ever
    happen; probability knobs decide *how often* the per-iteration intent
    fires (before the harness multiplies in incantation efficacy).
    """

    name: str
    short: str
    vendor: str
    architecture: str
    year: int
    n_sms: int = 8

    # -- per-relaxation intent probabilities ------------------------------
    #: keys: ``r_pass_w`` (load before older store: sb), ``w_pass_w``
    #: (non-FIFO store drain: mp writer side, cas-sl), ``r_pass_r``
    #: (out-of-order loads: mp reader side), ``w_pass_r`` (store before
    #: older load: lb), ``rr_hazard`` (same-address load reorder: coRR).
    #: A missing key means the relaxation is structurally absent.
    p_relax: dict = field(default_factory=dict)
    atomic_ordered: bool = True       #: atomics issue strictly in order
    volatile_ordered: bool = True     #: .volatile accesses issue in order
    l1_stale_reads: bool = False      #: .ca loads may hit un-invalidated lines

    # -- L1 (.ca) pathologies of the Fermi generation ----------------------
    #: same-address load-load reordering when the two loads use *different*
    #: cache operators (the coRR-L2-L1 refill path of Fig. 4) — distinct
    #: from ``rr_hazard``, which Fig. 4 shows does not apply across cache
    #: levels (GTX 660: coRR 9599 but coRR-L2-L1 only 2).
    p_mixed_hazard: float = 0.0
    #: probability that the Fig. 4 refill path survives a fence of the
    #: given scope (TesC: even membar.sys, Fig. 4 bottom row).
    p_mixed_bypass: dict = field(default_factory=dict)
    #: probability that a ``.ca`` load to a *different* location passes a
    #: fence of the given scope (why "no fence is sufficient under default
    #: CUDA compilation schemes" on the Tesla C2075, Sec. 3.1.2).
    p_ca_bypass: dict = field(default_factory=dict)

    # -- legacy stale-L1 machinery (off by default; kept configurable) ----
    p_stale: float = 0.0              #: L1-staleness intent
    p_l1_warm: float = 0.5            #: warm line per location (given intent)
    p_store_invalidates_own_l1: float = 1.0
    p_cg_evicts_l1: float = 1.0       #: .cg load evicts the matching L1 line
    #: probability that a fence of the given scope invalidates stale lines
    fence_l1_inval: dict = field(default_factory=dict)
    #: fraction of reordering weakness that survives an under-scoped fence
    #: (e.g. membar.cta in an inter-CTA test); 0 = the fence still works
    underscoped_fence_damping: float = 0.0

    RELAXATIONS = ("r_pass_w", "w_pass_w", "r_pass_r", "w_pass_r",
                   "rr_hazard", "volatile_relax")
    SCOPED_BYPASSES = ("mixed_bypass", "ca_bypass")

    def fence_inval_probability(self, scope):
        return self.fence_l1_inval.get(scope, 1.0)

    def relax_probability(self, kind):
        # ``volatile_relax`` is a *dampener* on reordering volatile pairs
        # (chips whose volatiles reorder less often than plain accesses);
        # absent means volatile pairs reorder as freely as plain ones.
        default = 1.0 if kind == "volatile_relax" else 0.0
        return self.p_relax.get(kind, default)

    def draw_intents(self, rng, intensity=1.0):
        """Draw this iteration's relaxation intents (one Bernoulli per
        relaxation kind), scaled by the harness's incantation intensity."""
        intents = {kind: rng.random() < self.relax_probability(kind) * intensity
                   for kind in self.RELAXATIONS if kind != "volatile_relax"}
        intents["volatile_relax"] = (
            rng.random() < self.relax_probability("volatile_relax"))
        intents["mixed_hazard"] = rng.random() < self.p_mixed_hazard * intensity
        for scope in Scope:
            intents["mixed_bypass_%s" % scope.value] = (
                rng.random() < self.p_mixed_bypass.get(scope, 0.0))
            intents["ca_bypass_%s" % scope.value] = (
                rng.random() < self.p_ca_bypass.get(scope, 0.0))
        return intents

    @property
    def is_weak(self):
        return (any(p > 0 for p in self.p_relax.values())
                or self.l1_stale_reads)

    def __str__(self):
        return "%s (%s %s, %d)" % (self.short, self.vendor, self.architecture,
                                   self.year)


def _nvidia(short, name, architecture, year, **kwargs):
    return ChipProfile(name=name, short=short, vendor="Nvidia",
                       architecture=architecture, year=year, **kwargs)


def _amd(short, name, architecture, year, **kwargs):
    return ChipProfile(name=name, short=short, vendor="AMD",
                       architecture=architecture, year=year, **kwargs)


#: The chips of Table 1, keyed by the paper's short names.
CHIPS = {
    "GTX280": _nvidia(
        "GTX280", "GeForce GTX 280", "Tesla", 2008,
        # No weak behaviour was observed on this chip (Sec. 1, fn. 7).
    ),
    "GTX5": _nvidia(
        "GTX5", "GeForce GTX 540m", "Fermi", 2011, n_sms=2,
        p_relax={"rr_hazard": 0.48, "r_pass_r": 0.46},
        atomic_ordered=True, volatile_ordered=False, l1_stale_reads=True,
        p_mixed_hazard=0.10, p_mixed_bypass={Scope.CTA: 0.76},
        underscoped_fence_damping=0.0,
    ),
    "TesC": _nvidia(
        "TesC", "Tesla C2075", "Fermi", 2011, n_sms=14,
        p_relax={"rr_hazard": 0.35, "r_pass_r": 0.88, "w_pass_w": 0.004,
                 "r_pass_w": 0.15, "w_pass_r": 0.05, "volatile_relax": 0.45},
        atomic_ordered=False, volatile_ordered=False, l1_stale_reads=True,
        p_mixed_hazard=0.115,
        p_mixed_bypass={Scope.CTA: 0.73, Scope.GL: 0.50, Scope.SYS: 0.48},
        p_ca_bypass={Scope.CTA: 0.015, Scope.GL: 0.018, Scope.SYS: 0.015},
        underscoped_fence_damping=0.029,
    ),
    "GTX6": _nvidia(
        "GTX6", "GeForce GTX 660", "Kepler", 2012, n_sms=5,
        p_relax={"rr_hazard": 0.39, "r_pass_r": 0.24, "w_pass_w": 0.003,
                 "r_pass_w": 0.15, "w_pass_r": 0.025},
        atomic_ordered=False, volatile_ordered=False, l1_stale_reads=True,
        p_mixed_hazard=0.00008,
        underscoped_fence_damping=0.004,
    ),
    "Titan": _nvidia(
        "Titan", "GeForce GTX Titan", "Kepler", 2013, n_sms=14,
        p_relax={"rr_hazard": 0.4, "r_pass_r": 0.37, "w_pass_w": 0.04,
                 "r_pass_w": 0.13, "w_pass_r": 0.065, "volatile_relax": 0.37},
        atomic_ordered=False, volatile_ordered=False, l1_stale_reads=True,
        p_mixed_hazard=0.0052,
        underscoped_fence_damping=0.28,
    ),
    "GTX7": _nvidia(
        "GTX7", "GeForce GTX 750", "Maxwell", 2014, n_sms=4,
        p_relax={"w_pass_w": 0.00006},
        atomic_ordered=True, volatile_ordered=True,
    ),
    "HD6570": _amd(
        "HD6570", "Radeon HD 6570", "TeraScale 2", 2011, n_sms=6,
        p_relax={"r_pass_r": 0.68, "w_pass_w": 0.038},
        atomic_ordered=False, volatile_ordered=True,
    ),
    "HD7970": _amd(
        "HD7970", "Radeon HD 7970", "GCN 1.0", 2012, n_sms=32,
        p_relax={"r_pass_r": 0.17, "w_pass_w": 0.07, "w_pass_r": 0.8,
                 "r_pass_w": 0.00003},
        atomic_ordered=False, volatile_ordered=True,
    ),
}

#: The chips whose results the paper tabulates (Table 1 minus the
#: GTX 280, which exhibited no weak behaviour and is omitted from the
#: results tables — Sec. 1).
RESULT_CHIPS = ["GTX5", "TesC", "GTX6", "Titan", "GTX7", "HD6570", "HD7970"]
NVIDIA_RESULT_CHIPS = ["GTX5", "TesC", "GTX6", "Titan", "GTX7"]
AMD_RESULT_CHIPS = ["HD6570", "HD7970"]


def chip(short):
    """Look up a chip profile by its Table 1 short name."""
    try:
        return CHIPS[short]
    except KeyError:
        raise KeyError("unknown chip %r; known: %s"
                       % (short, ", ".join(sorted(CHIPS))))
