"""Vectorized batch engine: numpy structure-of-arrays cell lowering.

The fast engine of :mod:`repro.sim.compile` removed the per-instruction
*dispatch* cost but still walks one Python closure per step per
iteration.  This module lowers a cell one level further: all iterations
of a shard advance **in lockstep** through the same stochastic process,
with machine and memory state held in structure-of-arrays numpy buffers
whose leading axis is the iteration.  One scheduler round picks a thread
*per iteration* with a single vectorized draw; decode, the
preserved-program-order check and memory effects each run as batched
array kernels over the iterations that selected that thread.

Lowering summary
----------------

* **Registers** — per thread, an ``(N, R)`` int64 matrix (register name
  → column, resolved at compile time) plus an ``(N, R)`` pending mask.
* **Pending queue** — each memory instruction owns one static *slot*;
  the queue is an ``(N, K)`` membership mask plus per-slot sequence
  numbers and pre-resolved dynamic operands.  (The frontend cannot
  decode past an instruction whose sources are pending, so at most one
  in-flight instance per static op can exist — checked at push time.)
* **Memory** — locations become dense column indices: one ``(N, Lg)``
  global array, an ``(N, S, Ls)`` shared array and — only on chips with
  incoherent L1s — ``(N, S, Lg)`` L1 value/presence arrays.
* **Incantation draws** — the per-iteration intent vector is an
  ``(N, n_slots)`` Bernoulli matrix drawn once per batch; pass rules
  index it with the same slot constants as the fast engine.
* **Eligibility** — pair-blocking rules are compiled per ordered slot
  pair into constants or tiny mask kernels (same-address hazards,
  volatile pairs, fence bypass with the same-address-probe), evaluated
  over the selected iterations at once.
* **Step kernels** operate on *compact row-index arrays* (the
  iterations that scheduled this thread and are actually decoding or
  issuing), so per-kernel cost tracks the work, not the batch width.

RNG-stream contract (the documented seeded stream-break)
--------------------------------------------------------

``reference`` and ``fast`` consume one ``random.Random`` stream in
bit-identical order.  Batching necessarily breaks that sequential
stream: draws become *array* draws from a ``numpy`` PCG64 generator
seeded deterministically from the shard's ``random.Random`` (via
``getrandbits``), so results remain a pure function of the shard seed —
but the histograms are no longer bit-identical to the other engines.
What *is* preserved is the stochastic process itself: every transition
probability (intent vector, staleness, L1 warm lines, CTA placement,
uniform runnable-thread choice, random non-oldest eligible pick,
store/fence/cg cache draws, under-scoped fence damping) is identical,
so the outcome *distribution* of every cell is exactly the fast
engine's.  ``tests/test_sim_batch.py`` enforces this with
distribution-equivalence tests plus weak-behaviour-verdict and
scenario-loss-verdict parity on the acceptance corpora.

numpy is a *guarded* dependency: importing this module without numpy is
fine; building a cell raises
:class:`~repro.errors.ConfigurationError` naming the ``repro[batch]``
install extra.
"""

try:  # guarded dependency: the [batch] install extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from ..errors import ConfigurationError, FuelExhausted, SimulationError
from ..litmus.condition import FinalState
from ..ptx.operands import Imm, Loc, Reg
from ..ptx.types import MemorySpace, Scope
from .compile import (K_ADD, K_CAS, K_EXCH, K_FENCE, K_LOAD, K_STORE,
                      SLOT_BYPASS_BASE, SLOT_MIXED_HAZARD, SLOT_RR_HAZARD,
                      SLOT_VOLATILE, _bypass_slots, _PASS_PAIR, _SCOPES)
from .machine import _FUEL_PER_INSTRUCTION

#: Iterations per lockstep batch.  One default shard
#: (:data:`repro.api.backends.DEFAULT_SHARD_SIZE`) is exactly one batch;
#: larger requests split so state arrays stay cache- and memory-friendly.
MAX_BATCH = 25000

#: Issue-window size and decode budget (the reference engine's).
WINDOW = 16
BUDGET = 32

_NO_SEQ = 1 << 62  # masked-argmin filler; larger than any real seq


def have_numpy():
    """True when the optional numpy dependency is importable."""
    return np is not None


def require_numpy():
    """Raise :class:`ConfigurationError` unless numpy is available."""
    if np is None:
        raise ConfigurationError(
            "engine='batch' needs numpy, which is not installed; "
            "install the batch extra (pip install 'repro[batch]') or "
            "pick engine='fast'/'reference' (no third-party packages)")


def _unique_rows(matrix):
    """``np.unique(matrix, axis=0, return_counts=True)``, but fast.

    Final-state columns span tiny ranges, so the rows almost always
    pack losslessly into one int64 key (mixed radix over the per-column
    spans) — sorting scalars instead of void-view rows.  Falls back to
    the generic row-unique when a pathological value range overflows.
    """
    if matrix.shape[1] == 0 or len(matrix) == 0:
        return matrix[:1], np.asarray([len(matrix)] * min(len(matrix), 1))
    lo = matrix.min(axis=0)
    spans = [int(s) + 1 for s in (matrix.max(axis=0) - lo)]
    total = 1
    for span in spans:
        total *= span
        if total > (1 << 62):
            states, counts = np.unique(matrix, axis=0, return_counts=True)
            return states, counts
    key = np.zeros(len(matrix), dtype=np.int64)
    mult = 1
    for column, span in enumerate(spans):
        key += (matrix[:, column] - lo[column]) * mult
        mult *= span
    packed, counts = np.unique(key, return_counts=True)
    states = np.empty((len(packed), matrix.shape[1]), dtype=np.int64)
    mult = 1
    for column, span in enumerate(spans):
        states[:, column] = (packed // mult) % span + lo[column]
        mult *= span
    return states, counts


class _SlotStatic:
    """Compile-time facts for one memory-instruction queue slot."""

    __slots__ = ("kind", "dst_col", "cop", "volatile", "is_load", "is_store",
                 "atomic", "ca_load", "pass_pair", "mixed_slot", "ca_slot",
                 "inval_prob", "addr_const", "addr_reg_col", "val_const",
                 "val_reg_col", "cmp_const", "cmp_reg_col", "static_addr",
                 "shared", "gloc", "sloc")

    def __init__(self, kind, dst_col=None, cop=None, volatile=False,
                 mixed_slot=0, ca_slot=0, inval_prob=0.0):
        self.kind = kind
        self.dst_col = dst_col
        self.cop = cop
        self.volatile = volatile
        self.is_load = kind in (K_LOAD, K_CAS, K_EXCH, K_ADD)
        self.is_store = kind in (K_STORE, K_CAS, K_EXCH, K_ADD)
        self.atomic = kind in (K_CAS, K_EXCH, K_ADD)
        self.ca_load = kind == K_LOAD and cop == "ca"
        self.pass_pair = _PASS_PAIR[self.is_store]
        self.mixed_slot = mixed_slot
        self.ca_slot = ca_slot
        self.inval_prob = inval_prob
        self.addr_const = 0
        self.addr_reg_col = None
        self.val_const = 0
        self.val_reg_col = None
        self.cmp_const = 0
        self.cmp_reg_col = None
        self.static_addr = None   # resolved address when compile-time known
        self.shared = False
        self.gloc = -1
        self.sloc = -1


class _ThreadStatic:
    """Compiled per-thread program: step kernels plus slot tables."""

    __slots__ = ("tid", "code", "ncode", "init_regs", "n_regs", "reg_index",
                 "slots", "K", "static_order", "pairs", "issue", "cta",
                 "window_check")

    def __init__(self, tid, cta):
        self.tid = tid
        self.cta = cta
        self.code = []
        self.ncode = 0
        self.init_regs = None
        self.n_regs = 0
        self.reg_index = {}
        self.slots = []
        self.K = 0
        self.static_order = True
        self.pairs = []
        self.issue = []
        self.window_check = False


class _ThreadState:
    """Runtime SoA state for one thread across a batch."""

    __slots__ = ("S", "pc", "regs", "pending", "in_q", "q_seq", "q_addr",
                 "q_val", "q_cmp", "seq", "dec_blocked")

    _ARRAYS = ("pc", "regs", "pending", "in_q", "q_seq", "q_addr",
               "q_val", "q_cmp", "seq", "dec_blocked")

    def __init__(self, S, n):
        self.S = S
        self.pc = np.zeros(n, dtype=np.int64)
        self.regs = np.tile(S.init_regs, (n, 1))
        self.pending = np.zeros((n, S.n_regs), dtype=bool)
        self.in_q = np.zeros((n, max(S.K, 1)), dtype=bool)
        self.q_seq = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.q_addr = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.q_val = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.q_cmp = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.seq = np.zeros(n, dtype=np.int64)
        self.dec_blocked = np.zeros(n, dtype=bool)

    def take(self, idx):
        """Compact every array down to the rows in ``idx``."""
        for name in self._ARRAYS:
            setattr(self, name, getattr(self, name)[idx])


class _BatchState:
    """All mutable SoA state for one lockstep batch."""

    __slots__ = ("n", "rng", "threads", "glob", "shm", "l1h", "l1v", "iv",
                 "any_intent", "stale", "sm", "fuel", "stalled", "progress",
                 "budget", "dec")

    def __init__(self, cell, n, rng):
        self.n = n
        self.rng = rng
        # -- incantation draws, one Bernoulli matrix per batch --------
        self.iv = rng.random((n, len(cell.draw_probs))) < cell._probs_row
        self.any_intent = self.iv.any(axis=1)
        stale = rng.random(n) < cell.p_stale
        self.stale = stale & cell.l1_active
        # -- memory image ---------------------------------------------
        self.glob = np.tile(cell._init_global_row, (n, 1))
        if cell.n_shared:
            self.shm = np.tile(cell._init_shared_row, (n, cell.n_sms, 1))
        else:
            self.shm = None
        if cell.l1_active:
            shape = (n, cell.n_sms, cell.n_global)
            warm = (self.stale[:, None, None]
                    & (rng.random(shape) < cell.p_l1_warm))
            self.l1h = warm
            # Values only matter where a line is present; fill warm
            # lines with the initial image, leave the rest garbage.
            self.l1v = np.empty(shape, dtype=np.int64)
            self.l1v[warm] = np.broadcast_to(cell._init_global_row,
                                             shape)[warm]
        else:
            self.l1h = None
            self.l1v = None
        # -- CTA placement --------------------------------------------
        if cell.shuffle_placement:
            cta_sm = rng.integers(0, cell.n_sms, size=(n, cell.n_ctas))
            self.sm = cta_sm[:, cell._thread_cta_row]
        else:
            self.sm = np.tile(cell._static_sm_row, (n, 1))
        # -- scheduler bookkeeping ------------------------------------
        self.fuel = np.full(n, cell.fuel, dtype=np.int64)
        self.stalled = np.zeros(n, dtype=np.int64)
        self.progress = np.zeros(n, dtype=bool)
        self.budget = np.zeros(n, dtype=np.int64)
        self.dec = np.zeros(n, dtype=bool)
        self.threads = [_ThreadState(S, n) for S in cell._thread_statics]

    def take(self, idx):
        for name in ("iv", "any_intent", "stale", "glob", "sm", "fuel",
                     "stalled", "progress", "budget", "dec"):
            setattr(self, name, getattr(self, name)[idx])
        if self.shm is not None:
            self.shm = self.shm[idx]
        if self.l1h is not None:
            self.l1h = self.l1h[idx]
            self.l1v = self.l1v[idx]
        for thread in self.threads:
            thread.take(idx)
        self.n = len(self.iv)


class BatchCell:
    """One cell lowered to lockstep numpy execution.

    Same constructor parameters as
    :class:`~repro.sim.compile.CompiledCell`; answers
    ``run_many(iterations, rng, histogram)`` (the whole point) and a
    compatibility ``run_once(rng)``.  Holds numpy buffers and kernels —
    not picklable; process-pool backends compile per worker, exactly
    like compiled cells.
    """

    def __init__(self, test, chip, intensity=1.0, stale_intensity=None,
                 shuffle_placement=False, fuel=None, scope_blind=False):
        require_numpy()
        self.test = test
        self.chip = chip
        self.intensity = intensity
        self.stale_intensity = (intensity if stale_intensity is None
                                else stale_intensity)
        self.shuffle_placement = shuffle_placement
        self.scope_blind = scope_blind
        address_map = test.address_map()
        self.address_map = address_map

        placement = test.scope_tree.classify()
        required_scope = Scope.GL if placement == "inter-cta" else Scope.CTA
        total_instructions = sum(len(program) for program in test.threads)
        self.fuel = fuel or _FUEL_PER_INSTRUCTION * max(total_instructions, 1)

        # -- intent draw plan (same slot order as the fast engine) ----
        relax = chip.relax_probability
        probs = [relax("r_pass_w") * intensity,
                 relax("w_pass_w") * intensity,
                 relax("r_pass_r") * intensity,
                 relax("w_pass_r") * intensity,
                 relax("rr_hazard") * intensity,
                 relax("volatile_relax"),
                 chip.p_mixed_hazard * intensity]
        for scope in _SCOPES:
            probs.append(chip.p_mixed_bypass.get(scope, 0.0))
            probs.append(chip.p_ca_bypass.get(scope, 0.0))
        if scope_blind:
            for index in range(SLOT_BYPASS_BASE, len(probs)):
                probs[index] = 0.0
        self.draw_probs = probs
        self._probs_row = np.asarray(probs)
        self.p_stale = chip.p_stale * self.stale_intensity
        self.l1_active = chip.l1_stale_reads
        self.p_l1_warm = chip.p_l1_warm
        self.p_store_inval = chip.p_store_invalidates_own_l1
        self.p_cg_evict = chip.p_cg_evicts_l1
        self.atomic_ordered = chip.atomic_ordered
        self.volatile_ordered = chip.volatile_ordered
        self.n_sms = max(chip.n_sms, 1)
        self.n_ctas = test.scope_tree.n_ctas

        # -- dense location indexing ----------------------------------
        names = sorted(address_map)
        addresses = sorted(address_map[name] for name in names)
        name_of = {address_map[name]: name for name in names}
        self._addr_sorted = np.asarray(addresses, dtype=np.int64)
        gloc_of, sloc_of, shared_of = {}, {}, {}
        init_global, init_shared = [], []
        for address in addresses:
            name = name_of[address]
            value = test.initial_value(name)
            if test.space_of(name) is MemorySpace.SHARED:
                shared_of[address] = True
                sloc_of[address] = len(init_shared)
                init_shared.append(value)
            else:
                shared_of[address] = False
                gloc_of[address] = len(init_global)
                init_global.append(value)
        self.n_global = len(init_global)
        self.n_shared = len(init_shared)
        self._init_global_row = np.asarray(init_global, dtype=np.int64)
        self._init_shared_row = np.asarray(init_shared, dtype=np.int64)
        # aligned lookup tables for dynamically computed addresses
        self._loc_shared = np.asarray(
            [shared_of[a] for a in addresses], dtype=bool)
        self._loc_gidx = np.asarray(
            [gloc_of.get(a, -1) for a in addresses], dtype=np.int64)
        self._loc_sidx = np.asarray(
            [sloc_of.get(a, -1) for a in addresses], dtype=np.int64)
        self._shared_of = shared_of
        self._gloc_of = gloc_of
        self._sloc_of = sloc_of

        # -- per-thread lowering --------------------------------------
        self.thread_ctas = [test.scope_tree.placement(program.name).cta
                            for program in test.threads]
        observed = tuple(test.observed_registers())
        self._thread_statics = []
        for program, cta in zip(test.threads, self.thread_ctas):
            compiler = _BatchCompiler(self, program, test, cta,
                                      required_scope, scope_blind, chip)
            self._thread_statics.append(compiler.compile())
        self._static_sm_row = np.asarray(
            [cta % self.n_sms for cta in self.thread_ctas], dtype=np.int64)
        self._thread_cta_row = np.asarray(self.thread_ctas, dtype=np.int64)

        # -- final-state plans ----------------------------------------
        self._obs_plan = []
        for key in observed:
            tid, reg = key
            S = self._thread_statics[tid]
            self._obs_plan.append((key, tid, S.reg_index.get(reg)))
        self._final_plan = []
        for name, address in sorted(address_map.items()):
            if shared_of[address]:
                self._final_plan.append((name, True, sloc_of[address]))
            else:
                self._final_plan.append((name, False, gloc_of[address]))
        self._stall_limit = (4 * len(self._thread_statics)
                             * (len(test.threads) + 4))

    # -- execution ---------------------------------------------------------

    def run_many(self, iterations, rng, histogram=None):
        """Run ``iterations`` lockstep iterations into ``histogram``.

        ``rng`` is the shard's ``random.Random``; the numpy generator
        seed derives from it deterministically (the documented
        stream-break), so results remain a pure function of the shard
        seed.
        """
        if histogram is None:
            from ..harness.histogram import Histogram
            histogram = Histogram()
        remaining = iterations
        blocks = []
        while remaining > 0:
            size = min(remaining, MAX_BATCH)
            gen = np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
            blocks.append(self._run_batch_rows(size, gen))
            remaining -= size
        matrix = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        states, counts = _unique_rows(matrix)
        add = histogram.add
        for row, count in zip(states.tolist(), counts.tolist()):
            add(self._final_state(row), count)
        return histogram

    def run_once(self, rng):
        """Compatibility single-iteration entry (``GpuMachine`` shape)."""
        gen = np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
        row = self._run_batch_rows(1, gen)[0].tolist()
        return self._final_state(row)

    def _final_state(self, row):
        nreg = len(self._obs_plan)
        regs = tuple((plan[0], int(value))
                     for plan, value in zip(self._obs_plan, row[:nreg]))
        mem = tuple((plan[0], int(value))
                    for plan, value in zip(self._final_plan, row[nreg:]))
        return FinalState(regs, mem)

    def _collect(self, st, idx):
        """Observable matrix rows (obs regs, then final memory) of ``idx``."""
        columns = []
        for _key, tid, col in self._obs_plan:
            if col is None:
                columns.append(np.zeros(len(idx), dtype=np.int64))
            else:
                columns.append(st.threads[tid].regs[idx, col])
        for _name, shared, loc in self._final_plan:
            if shared:
                # A modified shared location lives in one CTA's SM for
                # valid tests; min over SM copies is the reference
                # engine's sorted-first tie-break and the identity when
                # all copies agree.
                columns.append(st.shm[idx, :, loc].min(axis=1))
            else:
                columns.append(st.glob[idx, loc])
        return np.stack(columns, axis=1)

    def _run_batch_rows(self, n, rng):
        st = _BatchState(self, n, rng)
        statics = self._thread_statics
        T = len(statics)
        stall_limit = self._stall_limit
        test_name = self.test.name
        blocks = []
        while True:
            runnable = np.empty((st.n, T), dtype=bool)
            for t in range(T):
                th = st.threads[t]
                runnable[:, t] = ((th.pc < th.S.ncode)
                                  | th.in_q.any(axis=1))
            alive = runnable.any(axis=1)
            n_alive = int(alive.sum())
            if n_alive == 0:
                blocks.append(self._collect(st, np.arange(st.n)))
                break
            if n_alive <= (st.n * 3) // 4 and st.n - n_alive >= 64:
                blocks.append(self._collect(st, np.nonzero(~alive)[0]))
                keep = np.nonzero(alive)[0]
                st.take(keep)
                runnable = runnable[keep]
                alive = runnable.any(axis=1)
            if bool((alive & (st.fuel <= 0)).any()):
                raise FuelExhausted(
                    "test %s did not terminate (likely livelock)"
                    % test_name)
            # -- choose one runnable thread per iteration -------------
            counts = runnable.sum(axis=1)
            draw = (rng.random(st.n) * counts).astype(np.int64)
            cum = runnable.cumsum(axis=1)
            chosen = (cum <= draw[:, None]).sum(axis=1)
            st.progress[:] = False
            for t in range(T):
                sel = np.nonzero(alive & (chosen == t))[0]
                if not len(sel):
                    continue
                th = st.threads[t]
                todo = sel[~th.dec_blocked[sel]]
                if len(todo):
                    self._decode(st, th, todo)
                self._issue_round(st, th, sel)
            idle = alive & ~st.progress
            st.stalled[st.progress] = 0
            st.stalled[idle] += 1
            if bool((st.stalled > stall_limit).any()):
                raise SimulationError(
                    "all threads stalled in %s — dependency deadlock?"
                    % test_name)
            st.fuel[alive] -= 1
        return np.concatenate(blocks) if len(blocks) > 1 else blocks[0]

    # -- frontend ----------------------------------------------------------

    def _decode(self, st, th, rows):
        """In-order decode sweeps for the selected iteration rows.

        Kernels drop rows from ``st.dec`` on a stall; every surviving
        row retires at least one instruction per sweep, so the decode
        budget bounds the sweep count.
        """
        S = th.S
        st.budget[rows] = BUDGET
        st.dec[rows] = True
        code = S.code
        ncode = S.ncode
        live = rows
        while True:
            live = live[st.dec[live] & (st.budget[live] > 0)]
            live = live[th.pc[live] < ncode]
            if not len(live):
                break
            for p in range(ncode):
                here = live[st.dec[live]]
                if not len(here):
                    break
                sub = here[th.pc[here] == p]
                if len(sub):
                    code[p](st, th, sub)
                live = here
        st.dec[rows] = False
        # Re-running decode with unchanged registers cannot progress
        # (decode is deterministic in regs/pending/pc), so skip it until
        # one of this thread's loads completes — unless the budget ran
        # out, in which case next tick's fresh budget must retry.
        th.dec_blocked[rows[st.budget[rows] > 0]] = True

    # -- issue -------------------------------------------------------------

    def _issue_round(self, st, th, sel):
        S = th.S
        if S.K == 0:
            return
        if S.K == 1:
            rows = sel[th.in_q[sel, 0]]
            if not len(rows):
                return
            th.in_q[rows, 0] = False
            S.issue[0](st, th, rows)
            st.progress[rows] = True
            return
        inq = th.in_q[sel]
        q_seq = th.q_seq[sel]
        elig = inq.copy()
        static_order = S.static_order
        for j in range(S.K):
            if not inq[:, j].any():
                continue
            blocked = None
            for i, fn in S.pairs[j]:
                older = inq[:, i]
                if not static_order:
                    older = older & (q_seq[:, i] < q_seq[:, j])
                if not older.any():
                    continue
                if fn is not None:
                    older = older & fn(st, th, sel)
                    if not older.any():
                        continue
                blocked = older if blocked is None else (blocked | older)
            if blocked is not None:
                elig[:, j] &= ~blocked
        has = elig.any(axis=1)
        if not has.any():
            return
        rows = sel[has]
        elig = elig[has]
        seqs = q_seq[has]
        ecount = elig.sum(axis=1)
        seqm = np.where(elig, seqs, _NO_SEQ)
        oldest = seqm.argmin(axis=1)
        # Under an active intent the engine *seeks* reorderings: uniform
        # pick among the non-oldest eligible ops when there are several.
        use_rand = st.any_intent[rows] & (ecount > 1)
        if use_rand.any():
            cand = elig.copy()
            np.put_along_axis(cand, oldest[:, None], False, axis=1)
            target = (st.rng.random(len(rows))
                      * np.maximum(ecount - 1, 0)).astype(np.int64)
            cum = cand.cumsum(axis=1)
            rand_col = (cum <= target[:, None]).sum(axis=1)
            col = np.where(use_rand, rand_col, oldest)
        else:
            col = oldest
        for k in range(S.K):
            mk = col == k
            if not mk.any():
                continue
            krows = rows[mk]
            th.in_q[krows, k] = False
            S.issue[k](st, th, krows)
        if S.window_check:
            # A freed queue slot can unblock a window-limited decode.
            th.dec_blocked[rows] = False
        st.progress[rows] = True


class _BatchCompiler:
    """Lowers one thread program into vector step kernels + slot tables.

    Step kernels share a calling convention: ``step(st, th, rows)``
    with ``rows`` an int index array of the iterations decoding this
    pc.  A kernel drops stalled rows from ``st.dec`` and advances the
    rest (pc, budget, progress) — mirroring the reference decode loop's
    per-thread semantics across all selected iterations at once.
    """

    def __init__(self, cell, program, test, cta, required_scope,
                 scope_blind, chip):
        self.cell = cell
        self.program = program
        self.test = test
        self.required_scope = required_scope
        self.scope_blind = scope_blind
        self.chip = chip
        self.S = _ThreadStatic(program.tid, cta)

    # -- register table ----------------------------------------------------

    def _register_columns(self):
        names = set()
        for (tid, name) in self.test.reg_init:
            if tid == self.program.tid:
                names.add(name)
        for (tid, name) in self.test.observed_registers():
            if tid == self.program.tid:
                names.add(name)
        for instruction in self.program.instructions:
            guard = getattr(instruction, "guard", None)
            if guard is not None:
                names.add(guard.reg)
            for attr in ("dst", "src", "a", "b", "cmp", "new"):
                operand = getattr(instruction, attr, None)
                if isinstance(operand, Reg):
                    names.add(operand.name)
            addr = getattr(instruction, "addr", None)
            if addr is not None and isinstance(addr.base, Reg):
                names.add(addr.base.name)
        return {name: col for col, name in enumerate(sorted(names))}

    def compile(self):
        S = self.S
        S.reg_index = self._register_columns()
        S.n_regs = max(len(S.reg_index), 1)
        init = np.zeros(S.n_regs, dtype=np.int64)
        for (tid, name), binding in self.test.reg_init.items():
            if tid != self.program.tid:
                continue
            if isinstance(binding, Loc):
                init[S.reg_index[name]] = self.cell.address_map[binding.name]
            else:
                init[S.reg_index[name]] = binding.value
        S.init_regs = init

        # First pass: build slot statics for every memory instruction so
        # pair compilation can see the full table.
        from ..ptx.instructions import (AtomAdd, AtomCas, AtomExch, AtomInc,
                                        Ld, Membar, St)
        slot_of = {}
        for pc, instruction in enumerate(self.program.instructions):
            slot = None
            if isinstance(instruction, Ld):
                cop = (None if instruction.volatile
                       else instruction.effective_cop.value)
                slot = _SlotStatic(K_LOAD,
                                   dst_col=S.reg_index[instruction.dst.name],
                                   cop=cop, volatile=instruction.volatile)
                self._bind_addr(slot, instruction.addr)
            elif isinstance(instruction, St):
                cop = (None if instruction.volatile
                       else instruction.effective_cop.value)
                slot = _SlotStatic(K_STORE, cop=cop,
                                   volatile=instruction.volatile)
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.src, "val")
            elif isinstance(instruction, AtomCas):
                slot = _SlotStatic(K_CAS,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.new, "val")
                self._bind_value(slot, instruction.cmp, "cmp")
            elif isinstance(instruction, AtomExch):
                slot = _SlotStatic(K_EXCH,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.src, "val")
            elif isinstance(instruction, AtomInc):
                slot = _SlotStatic(K_ADD,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                slot.val_const = 1
            elif isinstance(instruction, AtomAdd):
                slot = _SlotStatic(K_ADD,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.src, "val")
            elif isinstance(instruction, Membar):
                scope = instruction.scope
                mixed_slot, ca_slot = _bypass_slots(scope)
                slot = _SlotStatic(
                    K_FENCE, mixed_slot=mixed_slot, ca_slot=ca_slot,
                    inval_prob=self.chip.fence_l1_inval.get(scope, 1.0))
                slot.static_addr = -1  # fences carry no address
            if slot is not None:
                slot_of[pc] = len(S.slots)
                S.slots.append(slot)
        S.K = len(S.slots)
        S.window_check = S.K >= WINDOW
        S.static_order = not self.program.has_loops()

        # Second pass: step kernels.
        S.code = [self._compile_one(pc, instruction, slot_of.get(pc))
                  for pc, instruction in enumerate(self.program.instructions)]
        S.ncode = len(S.code)

        # Pair-blocking plans and issue kernels.
        S.pairs = [self._compile_pairs(j) for j in range(S.K)]
        S.issue = [self._compile_issue(k) for k in range(S.K)]
        return S

    def _bind_addr(self, slot, addr):
        if isinstance(addr.base, Loc):
            address = self.cell.address_map[addr.base.name] + addr.offset
            slot.addr_const = address
            slot.static_addr = address
            slot.shared = self.cell._shared_of.get(address, False)
            if slot.shared:
                slot.sloc = self.cell._sloc_of[address]
            else:
                gloc = self.cell._gloc_of.get(address)
                if gloc is None:
                    raise SimulationError(
                        "access to uninstalled address %#x" % address)
                slot.gloc = gloc
        else:
            slot.addr_const = addr.offset
            slot.addr_reg_col = self.S.reg_index[addr.base.name]

    def _bind_value(self, slot, operand, which):
        if isinstance(operand, Imm):
            setattr(slot, which + "_const", operand.value)
        elif isinstance(operand, Reg):
            setattr(slot, which + "_reg_col", self.S.reg_index[operand.name])
        else:
            raise SimulationError("bad value operand %r" % (operand,))

    # -- step kernels ------------------------------------------------------

    def _compile_one(self, pc, instruction, slot_index):
        from ..ptx.instructions import (Add, And, Bra, Cvt, Label, Membar,
                                        Mov, Setp, Xor)
        if slot_index is not None:
            if isinstance(instruction, Membar):
                step = self._compile_fence_push(slot_index,
                                                instruction.scope)
            else:
                step = self._compile_push(slot_index)
        elif isinstance(instruction, Mov):
            step = self._compile_mov(instruction)
        elif isinstance(instruction, (Add, And, Xor)):
            ops = {"add": lambda a, b: (a + b) & 0xFFFFFFFF,
                   "and": lambda a, b: a & b,
                   "xor": lambda a, b: a ^ b}
            step = self._compile_binary(instruction, ops[instruction.opcode])
        elif isinstance(instruction, Setp):
            if instruction.cmp == "eq":
                fn = lambda a, b: (a == b).astype(np.int64)
            else:
                fn = lambda a, b: (a != b).astype(np.int64)
            step = self._compile_binary(instruction, fn)
        elif isinstance(instruction, Cvt):
            step = self._compile_cvt(instruction)
        elif isinstance(instruction, Bra):
            target = self.program.labels[instruction.target]

            def step(st, th, rows, _target=target):
                th.pc[rows] = _target
                st.budget[rows] -= 1
                st.progress[rows] = True
        elif isinstance(instruction, Label):
            def step(st, th, rows):
                th.pc[rows] += 1
                st.budget[rows] -= 1
                st.progress[rows] = True
        else:
            raise SimulationError(
                "batch engine cannot lower %r" % (instruction,))

        guard = getattr(instruction, "guard", None)
        if guard is None:
            return step
        gcol = self.S.reg_index[guard.reg]
        wanted = not guard.negated

        def guarded(st, th, rows, _inner=step, _gcol=gcol, _wanted=wanted):
            stall = th.pending[rows, _gcol]
            if stall.any():
                st.dec[rows[stall]] = False
                rows = rows[~stall]
                if not len(rows):
                    return
            skip = (th.regs[rows, _gcol] != 0) != _wanted
            if skip.any():
                hop = rows[skip]
                th.pc[hop] += 1
                st.budget[hop] -= 1
                st.progress[hop] = True
                rows = rows[~skip]
            if len(rows):
                _inner(st, th, rows)

        return guarded

    def _ready_guard(self, cols):
        """Build the pending-source stall check for ``cols``."""
        cols = tuple(c for c in cols if c is not None)

        def check(st, th, rows):
            if not cols:
                return rows
            stall = th.pending[rows, cols[0]]
            for c in cols[1:]:
                stall = stall | th.pending[rows, c]
            if stall.any():
                st.dec[rows[stall]] = False
                rows = rows[~stall]
            return rows

        return check

    def _compile_push(self, k):
        slot = self.S.slots[k]
        ready = self._ready_guard((slot.addr_reg_col, slot.val_reg_col,
                                   slot.cmp_reg_col))
        addr_const = slot.addr_const
        addr_col = slot.addr_reg_col
        val_const, val_col = slot.val_const, slot.val_reg_col
        cmp_const, cmp_col = slot.cmp_const, slot.cmp_reg_col
        dst = slot.dst_col
        window_check = None
        if self.S.window_check:
            window_check = True
        name = self.test.name

        def step(st, th, rows, _k=k):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            if window_check:
                full = th.in_q[rows].sum(axis=1) >= WINDOW
                if full.any():
                    st.dec[rows[full]] = False
                    rows = rows[~full]
                    if not len(rows):
                        return
            if th.in_q[rows, _k].any():
                raise SimulationError(
                    "batch engine: op re-enqueued while still pending "
                    "in %s (unguarded loop over a memory op?)" % name)
            th.in_q[rows, _k] = True
            th.q_seq[rows, _k] = th.seq[rows]
            th.seq[rows] += 1
            if addr_col is None:
                th.q_addr[rows, _k] = addr_const
            else:
                th.q_addr[rows, _k] = th.regs[rows, addr_col] + addr_const
            if val_col is None:
                th.q_val[rows, _k] = val_const
            else:
                th.q_val[rows, _k] = th.regs[rows, val_col]
            if cmp_col is None:
                th.q_cmp[rows, _k] = cmp_const
            else:
                th.q_cmp[rows, _k] = th.regs[rows, cmp_col]
            if dst is not None:
                th.pending[rows, dst] = True
            th.pc[rows] += 1
            st.budget[rows] -= 1
            st.progress[rows] = True

        return step

    def _compile_fence_push(self, k, scope):
        covered = self.scope_blind or scope.covers(self.required_scope)
        damping = self.chip.underscoped_fence_damping

        def push(st, th, rows, _k=k):
            th.in_q[rows, _k] = True
            th.q_seq[rows, _k] = th.seq[rows]
            th.seq[rows] += 1
            th.q_addr[rows, _k] = -1
            th.pc[rows] += 1
            st.budget[rows] -= 1
            st.progress[rows] = True

        if covered:
            # The scope check is pre-bound: a sufficient fence always
            # enters the queue, with no per-iteration decision.
            return push

        # Under-scoped fence: the chip's damping fraction of decodes
        # sees it as a no-op (non-zero membar.cta rows of Fig. 3).
        def step(st, th, rows):
            enq = st.rng.random(len(rows)) >= damping
            skip = rows[~enq]
            if len(skip):
                th.pc[skip] += 1
                st.budget[skip] -= 1
                st.progress[skip] = True
            go = rows[enq]
            if len(go):
                push(st, th, go)

        return step

    def _compile_mov(self, instruction):
        dst = self.S.reg_index[instruction.dst.name]
        if isinstance(instruction.src, Loc):
            const = self.cell.address_map[instruction.src.name]

            def step(st, th, rows, _dst=dst, _const=const):
                th.regs[rows, _dst] = _const
                th.pc[rows] += 1
                st.budget[rows] -= 1
                st.progress[rows] = True

            return step
        if isinstance(instruction.src, Imm):
            const = instruction.src.value

            def step(st, th, rows, _dst=dst, _const=const):
                th.regs[rows, _dst] = _const
                th.pc[rows] += 1
                st.budget[rows] -= 1
                st.progress[rows] = True

            return step
        src = self.S.reg_index[instruction.src.name]
        ready = self._ready_guard((src,))

        def step(st, th, rows, _dst=dst, _src=src):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            th.regs[rows, _dst] = th.regs[rows, _src]
            th.pc[rows] += 1
            st.budget[rows] -= 1
            st.progress[rows] = True

        return step

    def _compile_binary(self, instruction, fn):
        dst = self.S.reg_index[instruction.dst.name]
        aconst, acol = self._value_spec(instruction.a)
        bconst, bcol = self._value_spec(instruction.b)
        ready = self._ready_guard((acol, bcol))

        def step(st, th, rows, _dst=dst, _fn=fn):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            a = aconst if acol is None else th.regs[rows, acol]
            b = bconst if bcol is None else th.regs[rows, bcol]
            th.regs[rows, _dst] = _fn(a, b)
            th.pc[rows] += 1
            st.budget[rows] -= 1
            st.progress[rows] = True

        return step

    def _compile_cvt(self, instruction):
        dst = self.S.reg_index[instruction.dst.name]
        src = self.S.reg_index[instruction.src.name]
        ready = self._ready_guard((src,))

        def step(st, th, rows, _dst=dst, _src=src):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            th.regs[rows, _dst] = th.regs[rows, _src]
            th.pc[rows] += 1
            st.budget[rows] -= 1
            st.progress[rows] = True

        return step

    def _value_spec(self, operand):
        if isinstance(operand, Imm):
            return operand.value, None
        if isinstance(operand, Reg):
            return 0, self.S.reg_index[operand.name]
        raise SimulationError("bad value operand %r" % (operand,))

    # -- pair-blocking plans ----------------------------------------------

    def _compile_pairs(self, j):
        """Blocking plan for slot ``j``: a list of ``(i, fn)`` where
        ``fn(st, th, sel) -> bool[len(sel)]`` (or None for an
        unconditional block) is evaluated against every older in-queue
        slot ``i``."""
        S = self.S
        if S.static_order:
            candidates = range(j)
        else:
            candidates = (i for i in range(S.K) if i != j)
        return [(i, self._compile_pair(j, i)) for i in candidates]

    def _compile_pair(self, j, i):
        S = self.S
        yst, ost = S.slots[j], S.slots[i]
        if yst.kind == K_FENCE:
            return None  # a fence may pass nothing
        if ost.kind == K_FENCE:
            # Only a .ca load may slip past a fence (Figs. 3 and 4),
            # gated by the scope's (mixed, ca) bypass intents and the
            # same-address-probe over earlier loads in the queue.
            if not yst.ca_load:
                return None
            loads = tuple(c for c in range(S.K) if S.slots[c].is_load)
            mixed_slot, ca_slot = ost.mixed_slot, ost.ca_slot

            def fence_block(st, th, sel, _j=j, _i=i, _loads=loads):
                addr_j = th.q_addr[sel, _j]
                fence_seq = th.q_seq[sel, _i]
                before = None
                for c in _loads:
                    probe = (th.in_q[sel, c]
                             & (th.q_seq[sel, c] < fence_seq)
                             & (th.q_addr[sel, c] == addr_j))
                    before = probe if before is None else (before | probe)
                passes = np.where(before, st.iv[sel, mixed_slot],
                                  st.iv[sel, ca_slot])
                return ~passes

            return fence_block
        if self.chip.atomic_ordered and (yst.atomic or ost.atomic):
            return None
        volatile_pair = yst.volatile and ost.volatile
        if volatile_pair and self.chip.volatile_ordered:
            return None
        pass_slot = yst.pass_pair[ost.is_store]
        both_loads = yst.kind == K_LOAD and ost.kind == K_LOAD
        hz_slot = (SLOT_RR_HAZARD if yst.cop == ost.cop
                   else SLOT_MIXED_HAZARD)
        static = (yst.static_addr is not None and ost.static_addr is not None)
        if static:
            same = yst.static_addr == ost.static_addr
            if same and not both_loads:
                return None  # same-address non-load-load pairs never reorder
            slot = hz_slot if same else pass_slot
            if volatile_pair:
                def fn(st, th, sel, _slot=slot):
                    return ~st.iv[sel, _slot] | ~st.iv[sel, SLOT_VOLATILE]
            else:
                def fn(st, th, sel, _slot=slot):
                    return ~st.iv[sel, _slot]
            return fn

        def fn(st, th, sel, _j=j, _i=i):
            same = th.q_addr[sel, _j] == th.q_addr[sel, _i]
            if both_loads:
                blocked = np.where(same, ~st.iv[sel, hz_slot],
                                   ~st.iv[sel, pass_slot])
            else:
                blocked = same | ~st.iv[sel, pass_slot]
            if volatile_pair:
                blocked = blocked | ~st.iv[sel, SLOT_VOLATILE]
            return blocked

        return fn

    # -- issue kernels ----------------------------------------------------

    def _compile_issue(self, k):
        slot = self.S.slots[k]
        tid = self.S.tid
        kind = slot.kind
        if kind == K_FENCE:
            return self._compile_issue_fence(k, slot, tid)
        if kind == K_STORE:
            return self._compile_issue_store(k, slot, tid)
        if kind == K_LOAD:
            return self._compile_issue_load(k, slot, tid)
        return self._compile_issue_atomic(k, slot, tid)

    def _dynamic_locs(self, addresses):
        """Resolve raw addresses to dense location indices (vectorized
        twin of the uninstalled-address check)."""
        table = self.cell._addr_sorted
        pos = np.searchsorted(table, addresses)
        pos_clipped = np.minimum(pos, len(table) - 1)
        valid = table[pos_clipped] == addresses
        if not valid.all():
            bad = int(addresses[~valid][0])
            raise SimulationError(
                "access to uninstalled address %#x" % bad)
        return pos_clipped

    def _compile_issue_load(self, k, slot, tid):
        dst = slot.dst_col
        plain = slot.volatile or slot.cop is None
        cop = slot.cop
        dynamic = slot.static_addr is None

        def issue(st, th, rows, _k=k):
            sm = st.sm[rows, tid]
            if dynamic:
                locs = self._dynamic_locs(th.q_addr[rows, _k])
                value = self._read_dynamic(st, rows, sm, locs, plain, cop)
            elif slot.shared:
                value = st.shm[rows, sm, slot.sloc]
            else:
                value = self._read_global(st, rows, sm, slot.gloc,
                                          plain, cop)
            th.regs[rows, dst] = value
            th.pending[rows, dst] = False
            th.dec_blocked[rows] = False

        return issue

    def _read_global(self, st, idx, sm, gloc, plain, cop):
        cell = self.cell
        base = st.glob[idx, gloc]
        if plain or not cell.l1_active:
            return base
        if cop == "ca":
            has = st.l1h[idx, sm, gloc]
            hit = has & st.stale[idx]
            value = np.where(hit, st.l1v[idx, sm, gloc], base)
            fill = ~hit
            if fill.any():
                st.l1v[idx[fill], sm[fill], gloc] = base[fill]
                st.l1h[idx[fill], sm[fill], gloc] = True
            return value
        if cop in ("cg", "cv"):
            has = st.l1h[idx, sm, gloc]
            if has.any():
                evict = has & (st.rng.random(len(idx)) < cell.p_cg_evict)
                if evict.any():
                    st.l1h[idx[evict], sm[evict], gloc] = False
            return base
        return base

    def _read_dynamic(self, st, idx, sm, locs, plain, cop):
        cell = self.cell
        value = np.zeros(len(idx), dtype=np.int64)
        shared = cell._loc_shared[locs]
        if shared.any():
            s = shared
            value[s] = st.shm[idx[s], sm[s], cell._loc_sidx[locs[s]]]
        g = ~shared
        if g.any():
            gloc = cell._loc_gidx[locs[g]]
            gi, gs = idx[g], sm[g]
            base = st.glob[gi, gloc]
            if plain or not cell.l1_active:
                value[g] = base
            elif cop == "ca":
                has = st.l1h[gi, gs, gloc]
                hit = has & st.stale[gi]
                value[g] = np.where(hit, st.l1v[gi, gs, gloc], base)
                fill = ~hit
                if fill.any():
                    st.l1v[gi[fill], gs[fill], gloc[fill]] = base[fill]
                    st.l1h[gi[fill], gs[fill], gloc[fill]] = True
            elif cop in ("cg", "cv"):
                has = st.l1h[gi, gs, gloc]
                if has.any():
                    evict = has & (st.rng.random(len(gi)) < cell.p_cg_evict)
                    if evict.any():
                        st.l1h[gi[evict], gs[evict], gloc[evict]] = False
                value[g] = base
            else:
                value[g] = base
        return value

    def _compile_issue_store(self, k, slot, tid):
        cell = self.cell
        dynamic = slot.static_addr is None

        def issue(st, th, rows, _k=k):
            sm = st.sm[rows, tid]
            value = th.q_val[rows, _k]
            if dynamic:
                locs = self._dynamic_locs(th.q_addr[rows, _k])
                shared = cell._loc_shared[locs]
                if shared.any():
                    s = shared
                    st.shm[rows[s], sm[s], cell._loc_sidx[locs[s]]] = value[s]
                g = ~shared
                if g.any():
                    self._write_global(st, rows[g], sm[g],
                                       cell._loc_gidx[locs[g]], value[g])
            elif slot.shared:
                st.shm[rows, sm, slot.sloc] = value
            else:
                self._write_global(st, rows, sm, slot.gloc, value)

        return issue

    def _write_global(self, st, idx, sm, gloc, value):
        cell = self.cell
        st.glob[idx, gloc] = value
        if not cell.l1_active:
            return
        # Stores bypass the L1 and invalidate the writing SM's own line
        # only unreliably; remote lines are never touched (Sec. 3.1.2).
        has = st.l1h[idx, sm, gloc]
        if has.any():
            inval = has & (st.rng.random(len(idx)) < cell.p_store_inval)
            if inval.any():
                if getattr(gloc, "ndim", 0):
                    st.l1h[idx[inval], sm[inval], gloc[inval]] = False
                else:
                    st.l1h[idx[inval], sm[inval], gloc] = False

    def _compile_issue_fence(self, k, slot, tid):
        cell = self.cell
        prob = slot.inval_prob

        def issue(st, th, rows, _k=k):
            if not cell.l1_active or prob <= 0.0:
                return
            sm = st.sm[rows, tid]
            lines = st.l1h[rows, sm, :]
            if lines.any():
                drop = lines & (st.rng.random(lines.shape) < prob)
                st.l1h[rows, sm, :] = lines & ~drop

        return issue

    def _compile_issue_atomic(self, k, slot, tid):
        cell = self.cell
        kind = slot.kind
        dst = slot.dst_col
        dynamic = slot.static_addr is None

        def issue(st, th, rows, _k=k):
            sm = st.sm[rows, tid]
            value = th.q_val[rows, _k]
            if dynamic:
                locs = self._dynamic_locs(th.q_addr[rows, _k])
                shared = cell._loc_shared[locs]
                sidx = cell._loc_sidx[locs]
                gidx = cell._loc_gidx[locs]
                old = np.zeros(len(rows), dtype=np.int64)
                if shared.any():
                    s = shared
                    old[s] = st.shm[rows[s], sm[s], sidx[s]]
                g = ~shared
                if g.any():
                    old[g] = st.glob[rows[g], gidx[g]]
            elif slot.shared:
                old = st.shm[rows, sm, slot.sloc]
            else:
                old = st.glob[rows, slot.gloc]
            if kind == K_CAS:
                write = old == th.q_cmp[rows, _k]
                new = value
            elif kind == K_EXCH:
                write = None  # unconditional
                new = value
            else:  # K_ADD
                write = None
                new = old + value
            if write is None:
                if dynamic:
                    if shared.any():
                        s = shared
                        st.shm[rows[s], sm[s], sidx[s]] = new[s]
                    g = ~shared
                    if g.any():
                        st.glob[rows[g], gidx[g]] = new[g]
                elif slot.shared:
                    st.shm[rows, sm, slot.sloc] = new
                else:
                    st.glob[rows, slot.gloc] = new
            elif write.any():
                w = write
                if dynamic:
                    ws = w & shared
                    if ws.any():
                        st.shm[rows[ws], sm[ws], sidx[ws]] = new[ws]
                    wg = w & ~shared
                    if wg.any():
                        st.glob[rows[wg], gidx[wg]] = new[wg]
                elif slot.shared:
                    st.shm[rows[w], sm[w], slot.sloc] = new[w]
                else:
                    st.glob[rows[w], slot.gloc] = new[w]
            th.regs[rows, dst] = old
            th.pending[rows, dst] = False
            th.dec_blocked[rows] = False

        return issue


def compile_batch_cell(test, chip, intensity=1.0, stale_intensity=None,
                       shuffle_placement=False, fuel=None, scope_blind=False):
    """Lower one campaign cell into a :class:`BatchCell`.

    Parameters mirror :func:`~repro.sim.compile.compile_cell`; the
    result answers ``run_many(iterations, rng, histogram)`` with the
    same outcome *distribution* as the fast engine (see the module
    docstring for the RNG-stream contract).  Raises
    :class:`~repro.errors.ConfigurationError` when numpy is missing.
    """
    return BatchCell(test, chip, intensity=intensity,
                     stale_intensity=stale_intensity,
                     shuffle_placement=shuffle_placement, fuel=fuel,
                     scope_blind=scope_blind)
