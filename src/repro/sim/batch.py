"""Vectorized batch engine: numpy structure-of-arrays cell lowering.

The fast engine of :mod:`repro.sim.compile` removed the per-instruction
*dispatch* cost but still walks one Python closure per step per
iteration.  This module lowers a cell one level further: all iterations
of a shard advance **in lockstep** through the same stochastic process,
with machine and memory state held in structure-of-arrays numpy buffers
whose leading axis is the iteration.  One scheduler round picks a thread
*per iteration* with a single vectorized draw; decode, the
preserved-program-order check and memory effects each run as batched
array kernels over the iterations that selected that thread.

Lowering summary
----------------

* **Registers** — per thread, an ``(N, R)`` int64 matrix (register name
  → column, resolved at compile time) plus an ``(N, R)`` pending mask.
* **Pending queue** — each memory instruction owns one static *slot*;
  the queue is an ``(N, K)`` membership mask plus per-slot sequence
  numbers and pre-resolved dynamic operands.  (The frontend cannot
  decode past an instruction whose sources are pending, so at most one
  in-flight instance per static op can exist — checked at push time.)
* **Memory** — locations become dense column indices: one ``(N, Lg)``
  global array, an ``(N, S, Ls)`` shared array and — only on chips with
  incoherent L1s — ``(N, S, Lg)`` L1 value/presence arrays.
* **Incantation draws** — the per-iteration intent vector is an
  ``(N, n_slots)`` Bernoulli matrix drawn once per batch; pass rules
  index it with the same slot constants as the fast engine.
* **Eligibility** — pair-blocking rules are compiled per ordered slot
  pair into constants or tiny mask kernels (same-address hazards,
  volatile pairs, fence bypass with the same-address-probe), evaluated
  over the selected iterations at once.
* **Step kernels** operate on *compact row-index arrays* (the
  iterations that scheduled this thread and are actually decoding or
  issuing), so per-kernel cost tracks the work, not the batch width.

RNG-stream contract (the documented seeded stream-break)
--------------------------------------------------------

``reference`` and ``fast`` consume one ``random.Random`` stream in
bit-identical order.  Batching necessarily breaks that sequential
stream: draws become *array* draws from a ``numpy`` PCG64 generator
seeded deterministically from the shard's ``random.Random`` (via
``getrandbits``), so results remain a pure function of the shard seed —
but the histograms are no longer bit-identical to the other engines.
What *is* preserved is the stochastic process itself: every transition
probability (intent vector, staleness, L1 warm lines, CTA placement,
uniform runnable-thread choice, random non-oldest eligible pick,
store/fence/cg cache draws, under-scoped fence damping) is identical,
so the outcome *distribution* of every cell is exactly the fast
engine's.  ``tests/test_sim_batch.py`` enforces this with
distribution-equivalence tests plus weak-behaviour-verdict and
scenario-loss-verdict parity on the acceptance corpora.

numpy is a *guarded* dependency: importing this module without numpy is
fine; building a cell raises
:class:`~repro.errors.ConfigurationError` naming the ``repro[batch]``
install extra.
"""

import random as _random

try:  # guarded dependency: the [batch] install extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None

from ..errors import ConfigurationError, FuelExhausted, SimulationError
from ..litmus.condition import FinalState
from ..ptx.operands import Imm, Loc, Reg
from ..ptx.types import MemorySpace, Scope
from .compile import (K_ADD, K_CAS, K_EXCH, K_FENCE, K_LOAD, K_STORE,
                      SLOT_BYPASS_BASE, SLOT_MIXED_HAZARD, SLOT_RR_HAZARD,
                      SLOT_VOLATILE, _bypass_slots, _PASS_PAIR, _SCOPES,
                      compile_cell)
from .engine import resolve_batch_tail
from .machine import _FUEL_PER_INSTRUCTION

#: Iterations per lockstep batch.  One default shard
#: (:data:`repro.api.backends.DEFAULT_SHARD_SIZE`) is exactly one batch;
#: larger requests split so state arrays stay cache- and memory-friendly.
MAX_BATCH = 25000

#: Issue-window size and decode budget (the reference engine's).
WINDOW = 16
BUDGET = 32

_NO_SEQ = 1 << 62  # masked-argmin filler; larger than any real seq

#: Once a straggler tail has coalesced down to this many rows, lockstep
#: dispatch stops paying for itself (fixed per-tick kernel overhead
#: dwarfs the per-row work) and the survivors are drained one by one on
#: the embedded fast-engine cell instead.  A scalar resume costs about
#: as much as a fast-engine iteration (~tens of µs), so the cutover
#: sits where a lockstep tick's fixed cost exceeds the handful of
#: scalar finishes it would replace — measured on the pinned corpus,
#: that is a few dozen rows, not hundreds.
_DRAIN_ROWS = 32

#: Adaptive chunk sizing targets this much live SoA state per chunk —
#: beyond it the working set falls out of shared cache and per-tick
#: kernels slow down measurably on the pinned corpus.
_CACHE_TARGET = 12 << 20

#: Floor for adaptive chunk widths: below this the fixed per-tick
#: dispatch overhead dominates and wider always wins.
_MIN_CHUNK = 2048

#: Version tag of the picklable lowering plan (bump on layout changes
#: to :class:`_ThreadStatic`/:class:`_SlotStatic`).
PLAN_VERSION = 1


def have_numpy():
    """True when the optional numpy dependency is importable."""
    return np is not None


def require_numpy():
    """Raise :class:`ConfigurationError` unless numpy is available."""
    if np is None:
        raise ConfigurationError(
            "engine='batch' needs numpy, which is not installed; "
            "install the batch extra (pip install 'repro[batch]') or "
            "pick engine='fast'/'reference' (no third-party packages)")


def _unique_rows(matrix):
    """``np.unique(matrix, axis=0, return_counts=True)``, but fast.

    Final-state columns span tiny ranges, so the rows almost always
    pack losslessly into one int64 key (mixed radix over the per-column
    spans) — sorting scalars instead of void-view rows.  Falls back to
    the generic row-unique when a pathological value range overflows.
    """
    if matrix.shape[1] == 0 or len(matrix) == 0:
        return matrix[:1], np.asarray([len(matrix)] * min(len(matrix), 1))
    lo = matrix.min(axis=0)
    spans = [int(s) + 1 for s in (matrix.max(axis=0) - lo)]
    total = 1
    for span in spans:
        total *= span
        if total > (1 << 62):
            states, counts = np.unique(matrix, axis=0, return_counts=True)
            return states, counts
    key = np.zeros(len(matrix), dtype=np.int64)
    mult = 1
    for column, span in enumerate(spans):
        key += (matrix[:, column] - lo[column]) * mult
        mult *= span
    packed, counts = np.unique(key, return_counts=True)
    states = np.empty((len(packed), matrix.shape[1]), dtype=np.int64)
    mult = 1
    for column, span in enumerate(spans):
        states[:, column] = (packed // mult) % span + lo[column]
        mult *= span
    return states, counts


class _SlotStatic:
    """Compile-time facts for one memory-instruction queue slot."""

    __slots__ = ("kind", "dst_col", "cop", "volatile", "is_load", "is_store",
                 "atomic", "ca_load", "pass_pair", "mixed_slot", "ca_slot",
                 "inval_prob", "addr_const", "addr_reg_col", "val_const",
                 "val_reg_col", "cmp_const", "cmp_reg_col", "static_addr",
                 "shared", "gloc", "sloc")

    def __init__(self, kind, dst_col=None, cop=None, volatile=False,
                 mixed_slot=0, ca_slot=0, inval_prob=0.0):
        self.kind = kind
        self.dst_col = dst_col
        self.cop = cop
        self.volatile = volatile
        self.is_load = kind in (K_LOAD, K_CAS, K_EXCH, K_ADD)
        self.is_store = kind in (K_STORE, K_CAS, K_EXCH, K_ADD)
        self.atomic = kind in (K_CAS, K_EXCH, K_ADD)
        self.ca_load = kind == K_LOAD and cop == "ca"
        self.pass_pair = _PASS_PAIR[self.is_store]
        self.mixed_slot = mixed_slot
        self.ca_slot = ca_slot
        self.inval_prob = inval_prob
        self.addr_const = 0
        self.addr_reg_col = None
        self.val_const = 0
        self.val_reg_col = None
        self.cmp_const = 0
        self.cmp_reg_col = None
        self.static_addr = None   # resolved address when compile-time known
        self.shared = False
        self.gloc = -1
        self.sloc = -1


class _ThreadStatic:
    """Compiled per-thread program: step kernels plus slot tables."""

    __slots__ = ("tid", "code", "ncode", "init_regs", "n_regs", "reg_index",
                 "slots", "K", "static_order", "pairs", "issue", "cta",
                 "window_check", "slot_of")

    def __init__(self, tid, cta):
        self.tid = tid
        self.cta = cta
        self.code = []
        self.ncode = 0
        self.init_regs = None
        self.n_regs = 0
        self.reg_index = {}
        self.slots = []
        self.K = 0
        self.static_order = True
        self.pairs = []
        self.issue = []
        self.window_check = False
        self.slot_of = {}


class _ThreadState:
    """Runtime SoA state for one thread across a batch."""

    __slots__ = ("S", "pc", "regs", "pending", "in_q", "q_n", "q_seq",
                 "q_addr", "q_val", "q_cmp", "seq", "dec_blocked")

    _ARRAYS = ("pc", "regs", "pending", "in_q", "q_n", "q_seq", "q_addr",
               "q_val", "q_cmp", "seq", "dec_blocked")

    def __init__(self, S, n):
        self.S = S
        self.pc = np.zeros(n, dtype=np.int64)
        self.regs = np.tile(S.init_regs, (n, 1))
        self.pending = np.zeros((n, S.n_regs), dtype=bool)
        self.in_q = np.zeros((n, max(S.K, 1)), dtype=bool)
        # Per-row occupancy count of ``in_q`` — maintained at every
        # enqueue/dequeue so runnability and window-limit checks are a
        # scalar compare instead of an axis reduction per tick.
        self.q_n = np.zeros(n, dtype=np.int64)
        self.q_seq = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.q_addr = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.q_val = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.q_cmp = np.zeros((n, max(S.K, 1)), dtype=np.int64)
        self.seq = np.zeros(n, dtype=np.int64)
        self.dec_blocked = np.zeros(n, dtype=bool)

    def take(self, idx):
        """Compact every array down to the rows in ``idx``."""
        for name in self._ARRAYS:
            setattr(self, name, getattr(self, name)[idx])


class _BatchState:
    """All mutable SoA state for one lockstep batch."""

    __slots__ = ("n", "rng", "threads", "glob", "shm", "l1h", "l1v", "iv",
                 "any_intent", "stale", "sm", "fuel", "stalled", "progress",
                 "budget", "dec", "adaptive")

    def __init__(self, cell, n, rng, adaptive=False):
        self.n = n
        self.rng = rng
        # Adaptive-path flag: chunks of the tail hand-off path may
        # break the legacy RNG stream (the contract there is
        # distribution equivalence, not bit-identity), which lets both
        # the draws below and the kernels skip semantically inert work.
        self.adaptive = adaptive
        # -- incantation draws, one Bernoulli matrix per batch --------
        cols = cell._nz_prob_cols
        if adaptive and len(cols) < len(cell.draw_probs):
            # Zero-probability slots can never fire: draw only the
            # live columns (stream-breaking, adaptive chunks only).
            self.iv = np.zeros((n, len(cell.draw_probs)), dtype=bool)
            if len(cols):
                self.iv[:, cols] = (rng.random((n, len(cols)))
                                    < cell._probs_row[cols])
        else:
            self.iv = rng.random((n, len(cell.draw_probs))) < cell._probs_row
        self.any_intent = self.iv.any(axis=1)
        stale = rng.random(n) < cell.p_stale
        self.stale = stale & cell.l1_active
        # -- memory image ---------------------------------------------
        self.glob = np.tile(cell._init_global_row, (n, 1))
        if cell.n_shared:
            self.shm = np.tile(cell._init_shared_row,
                               (n, cell.n_sms_eff, 1))
        else:
            self.shm = None
        if cell.l1_active:
            eshape = (n, cell.n_sms_eff, cell.n_global)
            if adaptive:
                # Stream-breaking compact draw: only the SMs the static
                # placement uses, and none at all when lines can never
                # start warm.
                if cell.p_l1_warm > 0.0:
                    warm = (self.stale[:, None, None]
                            & (rng.random(eshape) < cell.p_l1_warm))
                else:
                    warm = np.zeros(eshape, dtype=bool)
            else:
                # The warm draw keeps the full n_sms shape so the RNG
                # stream is unchanged; only the used-SM slices are
                # stored.
                shape = (n, cell.n_sms, cell.n_global)
                draw = rng.random(shape) < cell.p_l1_warm
                if cell.n_sms_eff != cell.n_sms:
                    draw = draw[:, cell._sm_used, :]
                warm = self.stale[:, None, None] & draw
            self.l1h = warm
            # Values only matter where a line is present; fill warm
            # lines with the initial image, leave the rest garbage.
            self.l1v = np.empty(eshape, dtype=np.int64)
            if warm.any():
                self.l1v[warm] = np.broadcast_to(cell._init_global_row,
                                                 eshape)[warm]
        else:
            self.l1h = None
            self.l1v = None
        # -- CTA placement --------------------------------------------
        if cell.shuffle_placement:
            cta_sm = rng.integers(0, cell.n_sms, size=(n, cell.n_ctas))
            self.sm = cta_sm[:, cell._thread_cta_row]
        else:
            self.sm = np.tile(cell._sm_compact_row, (n, 1))
        # -- scheduler bookkeeping ------------------------------------
        self.fuel = np.full(n, cell.fuel, dtype=np.int64)
        self.stalled = np.zeros(n, dtype=np.int64)
        self.progress = np.zeros(n, dtype=bool)
        self.budget = np.zeros(n, dtype=np.int64)
        self.dec = np.zeros(n, dtype=bool)
        self.threads = [_ThreadState(S, n) for S in cell._thread_statics]

    def take(self, idx):
        for name in ("iv", "any_intent", "stale", "glob", "sm", "fuel",
                     "stalled", "progress", "budget", "dec"):
            setattr(self, name, getattr(self, name)[idx])
        if self.shm is not None:
            self.shm = self.shm[idx]
        if self.l1h is not None:
            self.l1h = self.l1h[idx]
            self.l1v = self.l1v[idx]
        for thread in self.threads:
            thread.take(idx)
        self.n = len(self.iv)


class BatchCell:
    """One cell lowered to lockstep numpy execution.

    Same constructor parameters as
    :class:`~repro.sim.compile.CompiledCell`; answers
    ``run_many(iterations, rng, histogram)`` (the whole point) and a
    compatibility ``run_once(rng)``.  Holds numpy buffers and kernels —
    not picklable; process-pool backends compile per worker, exactly
    like compiled cells.
    """

    def __init__(self, test, chip, intensity=1.0, stale_intensity=None,
                 shuffle_placement=False, fuel=None, scope_blind=False,
                 tail_fraction=None, plan=None):
        require_numpy()
        self.test = test
        self.chip = chip
        self.intensity = intensity
        self.stale_intensity = (intensity if stale_intensity is None
                                else stale_intensity)
        self.shuffle_placement = shuffle_placement
        self.scope_blind = scope_blind
        self.tail_fraction = resolve_batch_tail(tail_fraction)
        address_map = test.address_map()
        self.address_map = address_map

        placement = test.scope_tree.classify()
        required_scope = Scope.GL if placement == "inter-cta" else Scope.CTA
        total_instructions = sum(len(program) for program in test.threads)
        self.fuel = fuel or _FUEL_PER_INSTRUCTION * max(total_instructions, 1)

        # -- intent draw plan (same slot order as the fast engine) ----
        relax = chip.relax_probability
        probs = [relax("r_pass_w") * intensity,
                 relax("w_pass_w") * intensity,
                 relax("r_pass_r") * intensity,
                 relax("w_pass_r") * intensity,
                 relax("rr_hazard") * intensity,
                 relax("volatile_relax"),
                 chip.p_mixed_hazard * intensity]
        for scope in _SCOPES:
            probs.append(chip.p_mixed_bypass.get(scope, 0.0))
            probs.append(chip.p_ca_bypass.get(scope, 0.0))
        if scope_blind:
            for index in range(SLOT_BYPASS_BASE, len(probs)):
                probs[index] = 0.0
        self.draw_probs = probs
        self._probs_row = np.asarray(probs)
        # Columns that can actually fire — adaptive chunks (free to
        # break the legacy stream) draw only these.
        self._nz_prob_cols = np.nonzero(self._probs_row > 0.0)[0]
        self.p_stale = chip.p_stale * self.stale_intensity
        self.l1_active = chip.l1_stale_reads
        self.p_l1_warm = chip.p_l1_warm
        self.p_store_inval = chip.p_store_invalidates_own_l1
        self.p_cg_evict = chip.p_cg_evicts_l1
        self.atomic_ordered = chip.atomic_ordered
        self.volatile_ordered = chip.volatile_ordered
        self.n_sms = max(chip.n_sms, 1)
        self.n_ctas = test.scope_tree.n_ctas

        # -- dense location indexing ----------------------------------
        names = sorted(address_map)
        addresses = sorted(address_map[name] for name in names)
        name_of = {address_map[name]: name for name in names}
        self._addr_sorted = np.asarray(addresses, dtype=np.int64)
        gloc_of, sloc_of, shared_of = {}, {}, {}
        init_global, init_shared = [], []
        for address in addresses:
            name = name_of[address]
            value = test.initial_value(name)
            if test.space_of(name) is MemorySpace.SHARED:
                shared_of[address] = True
                sloc_of[address] = len(init_shared)
                init_shared.append(value)
            else:
                shared_of[address] = False
                gloc_of[address] = len(init_global)
                init_global.append(value)
        self.n_global = len(init_global)
        self.n_shared = len(init_shared)
        self._init_global_row = np.asarray(init_global, dtype=np.int64)
        self._init_shared_row = np.asarray(init_shared, dtype=np.int64)
        # aligned lookup tables for dynamically computed addresses
        self._loc_shared = np.asarray(
            [shared_of[a] for a in addresses], dtype=bool)
        self._loc_gidx = np.asarray(
            [gloc_of.get(a, -1) for a in addresses], dtype=np.int64)
        self._loc_sidx = np.asarray(
            [sloc_of.get(a, -1) for a in addresses], dtype=np.int64)
        self._shared_of = shared_of
        self._gloc_of = gloc_of
        self._sloc_of = sloc_of

        # -- per-thread lowering --------------------------------------
        self.thread_ctas = [test.scope_tree.placement(program.name).cta
                            for program in test.threads]
        observed = tuple(test.observed_registers())
        if plan is not None and (plan.get("version") != PLAN_VERSION
                                 or len(plan.get("threads", ()))
                                 != len(test.threads)):
            plan = None  # stale or foreign plan: fall back to analysis
        self._thread_statics = []
        for index, (program, cta) in enumerate(zip(test.threads,
                                                   self.thread_ctas)):
            compiler = _BatchCompiler(self, program, test, cta,
                                      required_scope, scope_blind, chip)
            if plan is not None:
                # Plan-cache hit: skip the analysis pass (register
                # columns + slot tables) and regenerate only the
                # closures, which cannot be pickled.
                compiler.S = plan["threads"][index]
                self._thread_statics.append(compiler.codegen())
            else:
                self._thread_statics.append(compiler.compile())
        self._static_sm_row = np.asarray(
            [cta % self.n_sms for cta in self.thread_ctas], dtype=np.int64)
        self._thread_cta_row = np.asarray(self.thread_ctas, dtype=np.int64)
        # With static placement only a handful of SMs are ever
        # addressed, so per-SM state (shared memory, L1 lines) is
        # allocated for the used subset only and ``sm`` ids are
        # remapped to compact indices; ``_sm_used[compact]`` recovers
        # the real id (needed when a row is handed to the fast engine).
        # Row compaction then copies kilobytes instead of megabytes.
        if self.shuffle_placement:
            self._sm_used = np.arange(self.n_sms, dtype=np.int64)
        else:
            self._sm_used = np.unique(self._static_sm_row)
        self.n_sms_eff = len(self._sm_used)
        remap = np.zeros(self.n_sms, dtype=np.int64)
        remap[self._sm_used] = np.arange(self.n_sms_eff, dtype=np.int64)
        self._sm_compact_row = remap[self._static_sm_row]

        # -- final-state plans ----------------------------------------
        self._obs_plan = []
        for key in observed:
            tid, reg = key
            S = self._thread_statics[tid]
            self._obs_plan.append((key, tid, S.reg_index.get(reg)))
        self._final_plan = []
        for name, address in sorted(address_map.items()):
            if shared_of[address]:
                self._final_plan.append((name, True, sloc_of[address]))
            else:
                self._final_plan.append((name, False, gloc_of[address]))
        self._stall_limit = (4 * len(self._thread_statics)
                             * (len(test.threads) + 4))

        # -- straggler-tail support -----------------------------------
        # Address per dense location column (gloc/sloc order), used to
        # rebuild a dict-keyed memory image when a row is handed off to
        # the fast engine.
        self._gaddr_list = [a for a in addresses if not shared_of[a]]
        self._saddr_list = [a for a in addresses if shared_of[a]]
        self._fast = None        # lazily compiled fast-engine twin
        self._reg_names = None   # per-thread column -> register name
        self._profile = None     # retirement telemetry of the last run
        self._last_ticks = (0, 0)
        # Static state-bytes-per-row estimate feeding adaptive chunk
        # sizing (refined by the measured retirement profile per call).
        per_row = 8 * (len(self.draw_probs) + self.n_global
                       + self.n_sms_eff * self.n_shared + 8)
        if self.l1_active:
            per_row += 9 * self.n_sms_eff * self.n_global
        for S in self._thread_statics:
            per_row += 8 * (2 * S.n_regs + 4 * max(S.K, 1) + 4)
        self._row_bytes = per_row

    # -- plan extraction ---------------------------------------------------

    def plan(self):
        """Picklable lowering plan for the cross-worker plan cache.

        Contains the analysis product of every thread — register
        columns, slot tables, pair metadata — with the unpicklable
        closures stripped; :class:`BatchCell` rebuilt with ``plan=``
        skips straight to closure generation.
        """
        stripped = []
        for S in self._thread_statics:
            clone = _ThreadStatic(S.tid, S.cta)
            clone.init_regs = S.init_regs
            clone.n_regs = S.n_regs
            clone.reg_index = S.reg_index
            clone.slots = S.slots
            clone.K = S.K
            clone.static_order = S.static_order
            clone.window_check = S.window_check
            clone.slot_of = S.slot_of
            stripped.append(clone)
        return {"version": PLAN_VERSION, "threads": stripped}

    # -- execution ---------------------------------------------------------

    def run_many(self, iterations, rng, histogram=None):
        """Run ``iterations`` lockstep iterations into ``histogram``.

        ``rng`` is the shard's ``random.Random``; the numpy generator
        seed derives from it deterministically (the documented
        stream-break), so results remain a pure function of the shard
        seed.
        """
        if histogram is None:
            from ..harness.histogram import Histogram
            histogram = Histogram()
        tail = self.tail_fraction
        blocks = []
        if tail <= 0.0:
            # Legacy fixed-width chunking — kept *bit-identical* to the
            # pre-tail batch stream (property-tested), which is why the
            # tail/adaptive paths below are fully fenced off here.
            remaining = iterations
            while remaining > 0:
                size = min(remaining, MAX_BATCH)
                gen = np.random.Generator(
                    np.random.PCG64(rng.getrandbits(64)))
                blocks.append(self._run_batch_rows(size, gen))
                remaining -= size
        else:
            tails = []
            remaining = iterations
            width = self._first_width()
            ticks = row_ticks = peak = 0
            while remaining > 0:
                size = min(remaining, width)
                gen = np.random.Generator(
                    np.random.PCG64(rng.getrandbits(64)))
                st = _BatchState(self, size, gen, adaptive=True)
                survivor = self._advance(st, blocks, int(tail * size))
                chunk_ticks, chunk_rows = self._last_ticks
                ticks += chunk_ticks
                row_ticks += chunk_rows
                peak = max(peak, size)
                if survivor is not None and survivor.n:
                    tails.append(survivor)
                remaining -= size
                width = self._next_width(size, ticks, row_ticks)
            drained = sum(t.n for t in tails)
            if tails:
                self._drain_tail(tails, rng, blocks)
            self._profile = {"ticks": ticks, "row_ticks": row_ticks,
                             "peak_width": peak, "drained": drained}
        matrix = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        states, counts = _unique_rows(matrix)
        add = histogram.add
        for row, count in zip(states.tolist(), counts.tolist()):
            add(self._final_state(row), count)
        return histogram

    # -- adaptive chunk sizing --------------------------------------------

    def _first_width(self):
        """Chunk width before any retirement has been measured: bound
        the *full-width* working set by the cache target."""
        cap = _CACHE_TARGET // max(self._row_bytes, 1)
        return int(min(MAX_BATCH, max(_MIN_CHUNK, cap)))

    def _next_width(self, width, ticks, row_ticks):
        """Refine the chunk width from the measured retirement profile.

        ``row_ticks / ticks`` is the mean number of live rows per tick
        over the chunks executed so far *in this call* — compaction
        shrinks the hot arrays as rows retire, so the sustained working
        set is ``row_bytes * live_fraction`` per row of width.  The
        profile is a deterministic function of the shard seed, keeping
        sharded results independent of execution order; it is never
        carried across ``run_many`` calls.
        """
        if not ticks:
            return width
        live_fraction = min(max(row_ticks / ticks / max(width, 1), 0.05),
                            1.0)
        cap = int(_CACHE_TARGET / max(self._row_bytes * live_fraction, 1))
        return int(min(MAX_BATCH, max(_MIN_CHUNK, cap)))

    def run_once(self, rng):
        """Compatibility single-iteration entry (``GpuMachine`` shape)."""
        gen = np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
        row = self._run_batch_rows(1, gen)[0].tolist()
        return self._final_state(row)

    def _final_state(self, row):
        nreg = len(self._obs_plan)
        regs = tuple((plan[0], int(value))
                     for plan, value in zip(self._obs_plan, row[:nreg]))
        mem = tuple((plan[0], int(value))
                    for plan, value in zip(self._final_plan, row[nreg:]))
        return FinalState(regs, mem)

    def _collect(self, st, idx):
        """Observable matrix rows (obs regs, then final memory) of ``idx``."""
        columns = []
        for _key, tid, col in self._obs_plan:
            if col is None:
                columns.append(np.zeros(len(idx), dtype=np.int64))
            else:
                columns.append(st.threads[tid].regs[idx, col])
        for _name, shared, loc in self._final_plan:
            if shared:
                # A modified shared location lives in one CTA's SM for
                # valid tests; min over SM copies is the reference
                # engine's sorted-first tie-break and the identity when
                # all copies agree.  Unused SMs (dropped by the compact
                # allocation) always hold the initial image, so fold it
                # back into the min.
                column = st.shm[idx, :, loc].min(axis=1)
                if self.n_sms_eff != self.n_sms:
                    column = np.minimum(column,
                                        self._init_shared_row[loc])
                columns.append(column)
            else:
                columns.append(st.glob[idx, loc])
        return np.stack(columns, axis=1)

    def _run_batch_rows(self, n, rng):
        st = _BatchState(self, n, rng)
        blocks = []
        self._advance(st, blocks, 0)
        return np.concatenate(blocks) if len(blocks) > 1 else blocks[0]

    def _advance(self, st, blocks, tail_rows):
        """Advance a lockstep batch until every row retires — or, with
        ``tail_rows > 0``, until at most that many rows remain live.

        Retired rows' observables are appended to ``blocks``.  Returns
        ``None`` when the batch fully retired, or the suspended
        :class:`_BatchState` (compacted to the live rows) for the
        straggler hand-off.  Suspension happens at a tick boundary —
        before the scheduler draw — so the surviving rows' state is a
        complete, consistent machine snapshot.
        """
        rng = st.rng
        statics = self._thread_statics
        T = len(statics)
        stall_limit = self._stall_limit
        test_name = self.test.name
        ticks = 0
        row_ticks = 0
        # Scalar guards let the per-tick safety checks skip their array
        # reductions entirely until they can possibly fire: fuel drops
        # by at most one per tick, and a stall streak grows by at most
        # one per tick, so entry-time extrema bound both from above.
        # Compaction only removes rows, which keeps the bounds sound.
        fuel_floor = int(st.fuel.min())
        stall_head = stall_limit - int(st.stalled.max())
        while True:
            # ``cum[:, t]`` counts the runnable threads up to ``t``:
            # its last column is the per-row runnable count (zero means
            # retired) and it directly drives the scheduler pick, so
            # one cumulative sum replaces the any/sum reductions a
            # separate ``runnable``/``alive`` formulation needs.
            runnable = np.empty((st.n, T), dtype=bool)
            for t in range(T):
                th = st.threads[t]
                runnable[:, t] = (th.pc < th.S.ncode) | (th.q_n > 0)
            cum = runnable.cumsum(axis=1)
            counts = cum[:, T - 1]
            n_alive = int(np.count_nonzero(counts))
            if n_alive == 0:
                blocks.append(self._collect(st, np.arange(st.n)))
                self._last_ticks = (ticks, row_ticks)
                return None
            if tail_rows and n_alive <= tail_rows:
                done = np.nonzero(counts == 0)[0]
                if len(done):
                    blocks.append(self._collect(st, done))
                    st.take(np.nonzero(counts != 0)[0])
                self._last_ticks = (ticks, row_ticks)
                return st
            if n_alive <= (st.n * 3) // 4 and st.n - n_alive >= 64:
                dead = counts == 0
                blocks.append(self._collect(st, np.nonzero(dead)[0]))
                keep = np.nonzero(~dead)[0]
                st.take(keep)
                cum = cum[keep]
                counts = cum[:, T - 1]
            alive = counts > 0
            if ticks >= fuel_floor and bool((alive & (st.fuel <= 0)).any()):
                raise FuelExhausted(
                    "test %s did not terminate (likely livelock)"
                    % test_name)
            # -- choose one runnable thread per iteration -------------
            draw = (rng.random(st.n) * counts).astype(np.int64)
            chosen = (cum <= draw[:, None]).sum(axis=1)
            st.progress[:] = False
            for t in range(T):
                # Retired rows land at ``chosen == T`` (every cumsum
                # entry is zero), so the pick itself masks them out.
                sel = np.nonzero(chosen == t)[0]
                if not len(sel):
                    continue
                th = st.threads[t]
                todo = sel[~th.dec_blocked[sel]]
                if len(todo):
                    self._decode(st, th, todo)
                self._issue_round(st, th, sel)
            idle = alive & ~st.progress
            st.stalled[st.progress] = 0
            st.stalled += idle
            if (ticks >= stall_head
                    and bool((st.stalled > stall_limit).any())):
                raise SimulationError(
                    "all threads stalled in %s — dependency deadlock?"
                    % test_name)
            st.fuel -= alive
            ticks += 1
            row_ticks += n_alive

    # -- straggler hand-off ------------------------------------------------

    def _concat_states(self, states):
        """Coalesce suspended chunk tails into one dense batch state."""
        if len(states) == 1:
            return states[0]
        st = _BatchState.__new__(_BatchState)
        st.rng = states[0].rng
        st.adaptive = states[0].adaptive
        for name in ("iv", "any_intent", "stale", "glob", "sm", "fuel",
                     "stalled", "progress", "budget", "dec"):
            setattr(st, name,
                    np.concatenate([getattr(s, name) for s in states]))
        st.shm = (np.concatenate([s.shm for s in states])
                  if states[0].shm is not None else None)
        if states[0].l1h is not None:
            st.l1h = np.concatenate([s.l1h for s in states])
            st.l1v = np.concatenate([s.l1v for s in states])
        else:
            st.l1h = None
            st.l1v = None
        threads = []
        for t, S in enumerate(self._thread_statics):
            th = _ThreadState.__new__(_ThreadState)
            th.S = S
            for name in _ThreadState._ARRAYS:
                setattr(th, name,
                        np.concatenate([getattr(s.threads[t], name)
                                        for s in states]))
            threads.append(th)
        st.threads = threads
        st.n = len(st.iv)
        return st

    def _drain_tail(self, tails, rng, blocks):
        """Finish suspended straggler rows off the lockstep fast path.

        The per-chunk tails first coalesce into one dense batch (so a
        sharded request pays one final narrow batch rather than one
        sparse tail per chunk) and re-enter lockstep while still wide
        enough to amortize dispatch; once at most :data:`_DRAIN_ROWS`
        rows survive, each is transplanted onto the embedded fast-engine
        cell and run to completion scalar-style.  Each drained row gets
        an independent ``random.Random`` seeded from the batch
        generator — the same documented stream-break contract as the
        chunk seeds themselves.
        """
        st = self._concat_states(tails)
        st.rng = np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
        fraction = self.tail_fraction
        while st is not None and st.n > _DRAIN_ROWS:
            threshold = max(int(fraction * st.n), _DRAIN_ROWS)
            st = self._advance(st, blocks, threshold)
        if st is None or not st.n:
            return
        fast = self._fast_twin()
        width = len(self._obs_plan) + len(self._final_plan)
        out = np.empty((st.n, width), dtype=np.int64)
        for row in range(st.n):
            snap = self._snapshot_row(st, row)
            seed = int(st.rng.integers(0, 1 << 63))
            state = fast.resume(snap, _random.Random(seed))
            out[row, :] = ([value for _, value in state.regs]
                           + [value for _, value in state.mem])
        blocks.append(out)

    def _fast_twin(self):
        """The embedded fast-engine cell straggler rows resume on."""
        if self._fast is None:
            self._fast = compile_cell(
                self.test, self.chip, intensity=self.intensity,
                stale_intensity=self.stale_intensity,
                shuffle_placement=self.shuffle_placement, fuel=self.fuel,
                scope_blind=self.scope_blind)
        return self._fast

    def _thread_reg_names(self):
        if self._reg_names is None:
            self._reg_names = []
            for S in self._thread_statics:
                names = [""] * len(S.reg_index)
                for name, col in S.reg_index.items():
                    names[col] = name
                self._reg_names.append(names)
        return self._reg_names

    def _snapshot_row(self, st, row):
        """Extract one row's complete machine state for the fast engine.

        The payload mirrors the fast cell's mutable state exactly: the
        drawn intent vector, the memory image keyed by real addresses,
        per-SM L1 lines, and per-thread register files, pending sets and
        queues (slot index ``k`` maps onto the fast cell's ``k``-th op
        static — both compilers assign slots to memory instructions in
        program order).
        """
        reg_names = self._thread_reg_names()
        threads = []
        for t, th in enumerate(st.threads):
            names = reg_names[t]
            regs = {name: int(value)
                    for name, value in zip(names, th.regs[row].tolist())}
            pending = {names[c] for c in np.nonzero(th.pending[row])[0]}
            queue = []
            for k in np.nonzero(th.in_q[row])[0].tolist():
                queue.append((int(th.q_seq[row, k]), k,
                              int(th.q_addr[row, k]),
                              int(th.q_val[row, k]),
                              int(th.q_cmp[row, k])))
            queue.sort()  # the fast queue is seq-ascending by invariant
            threads.append({"sm": int(self._sm_used[st.sm[row, t]]),
                            "pc": int(th.pc[row]),
                            "seq": int(th.seq[row]),
                            "regs": regs, "pending": pending,
                            "queue": queue})
        glob = {address: int(value) for address, value in
                zip(self._gaddr_list, st.glob[row].tolist())}
        shared = [{} for _ in range(self.n_sms)]
        if self.n_shared:
            for s, real in enumerate(self._sm_used.tolist()):
                shared[real] = {address: int(value) for address, value in
                                zip(self._saddr_list,
                                    st.shm[row, s].tolist())}
        l1 = [{} for _ in range(self.n_sms)]
        if self.l1_active:
            for s, real in enumerate(self._sm_used.tolist()):
                for g in np.nonzero(st.l1h[row, s])[0].tolist():
                    l1[real][self._gaddr_list[g]] = int(st.l1v[row, s, g])
        return {"iv": [bool(v) for v in st.iv[row].tolist()],
                "stale": bool(st.stale[row]),
                "fuel": int(st.fuel[row]),
                "global": glob, "shared": shared, "l1": l1,
                "threads": threads}

    # -- frontend ----------------------------------------------------------

    def _decode(self, st, th, rows):
        """In-order decode sweeps for the selected iteration rows.

        Kernels drop rows from ``st.dec`` on a stall; every surviving
        row retires at least one instruction per sweep, so the decode
        budget bounds the sweep count.
        """
        S = th.S
        st.budget[rows] = BUDGET
        st.dec[rows] = True
        code = S.code
        ncode = S.ncode
        live = rows
        while True:
            live = live[st.dec[live] & (st.budget[live] > 0)]
            live = live[th.pc[live] < ncode]
            if not len(live):
                break
            # ``here`` is fixed for the sweep; ``pcs``/``dmask`` are
            # per-position shadows refreshed only for the rows the last
            # kernel actually ran (a step kernel is the only thing that
            # can clear ``st.dec`` or move a pc), so the refresh cost
            # scales with the kernel's row set, not the sweep width.
            here = live[st.dec[live]]
            if not len(here):
                break
            pcs = th.pc[here]
            # ``counts[p]`` is the exact number of still-decodable rows
            # sitting at pc ``p``, maintained incrementally as kernels
            # move rows — it gates the scan (absent pcs cost one python
            # int check instead of a full-width compare) and makes the
            # post-mask emptiness test free: a positive count
            # guarantees a non-empty ``sub``.
            counts = np.bincount(pcs, minlength=ncode)
            dmask = None
            for p in range(ncode):
                if not counts[p]:
                    continue
                sub_mask = pcs == p
                if dmask is not None:
                    sub_mask &= dmask
                sub = here[sub_mask]
                code[p](st, th, sub)
                newpc = th.pc[sub]
                newd = st.dec[sub]
                pcs[sub_mask] = newpc
                if dmask is None:
                    dmask = np.ones(len(here), dtype=bool)
                dmask[sub_mask] = newd
                moved = newpc[newd]
                moved = moved[moved < ncode]
                counts[p] = 0
                if len(moved):
                    counts += np.bincount(moved, minlength=ncode)
        st.dec[rows] = False
        # Every kernel pairs a budget decrement with instruction
        # retirement, so a single compare recovers per-row progress —
        # the per-kernel ``st.progress`` scatters this replaces were a
        # measurable share of tick time.  Rows of other threads are
        # untouched: each row schedules one thread per tick, so decode
        # row sets are disjoint across threads.
        budgets = st.budget[rows]
        st.progress[rows] = budgets < BUDGET
        # Re-running decode with unchanged registers cannot progress
        # (decode is deterministic in regs/pending/pc), so skip it until
        # one of this thread's loads completes — unless the budget ran
        # out, in which case next tick's fresh budget must retry.
        th.dec_blocked[rows[budgets > 0]] = True

    # -- issue -------------------------------------------------------------

    def _issue_round(self, st, th, sel):
        S = th.S
        if S.K == 0:
            return
        if S.K == 1:
            rows = sel[th.in_q[sel, 0]]
            if not len(rows):
                return
            th.in_q[rows, 0] = False
            th.q_n[rows] = 0
            S.issue[0](st, th, rows)
            st.progress[rows] = True
            return
        inq = th.in_q[sel]
        # One reduction yields per-slot membership counts as plain ints;
        # the per-slot/per-pair ``.any()`` gates they replace were the
        # dominant fixed per-tick cost at narrow batch widths.
        nq = inq.sum(axis=0).tolist()
        if not any(nq):
            return
        occupied = [j for j in range(S.K) if nq[j]]
        if len(occupied) == 1:
            # Only one slot holds queued ops: nothing can block it,
            # every row's single eligible op is trivially the oldest,
            # and no reordering draw happens (``ecount`` is 1 for every
            # eligible row), so the general selection machinery reduces
            # to issuing that slot directly.  This is the steady state
            # of a spin loop — the dominant issue shape on the app
            # scenarios — and consumes no generator draws, exactly like
            # the general path it shortcuts.
            j = occupied[0]
            rows = sel[inq[:, j]]
            th.in_q[rows, j] = False
            th.q_n[rows] -= 1
            S.issue[j](st, th, rows)
            if S.window_check:
                th.dec_blocked[rows] = False
            st.progress[rows] = True
            return
        # Selection only ever involves the occupied slots, so the
        # matrices below are built over that column subset; slot
        # indices map back through ``occupied`` at issue time.  The
        # subset preserves ascending column order, which keeps argmin
        # tie-breaks and the cumulative reorder pick identical to the
        # full-width formulation (empty columns contribute nothing to
        # either), so the generator stream is untouched.
        m = len(occupied)
        inq_o = inq[:, occupied]
        q_seq_o = th.q_seq[np.ix_(sel, occupied)]
        elig = inq_o.copy()
        static_order = S.static_order
        for jj, j in enumerate(occupied):
            blocked = None
            for i, fn in S.pairs[j]:
                if not nq[i]:
                    continue
                ii = occupied.index(i)
                older = inq_o[:, ii]
                if not static_order:
                    older = older & (q_seq_o[:, ii] < q_seq_o[:, jj])
                    if not older.any():
                        continue
                if fn is not None:
                    older = older & fn(st, th, sel)
                    if not older.any():
                        continue
                blocked = older if blocked is None else (blocked | older)
            if blocked is not None:
                elig[:, jj] &= ~blocked
        has = elig.any(axis=1)
        if not has.any():
            return
        rows = sel[has]
        elig = elig[has]
        seqs = q_seq_o[has]
        ecount = elig.sum(axis=1)
        seqm = np.where(elig, seqs, _NO_SEQ)
        oldest = seqm.argmin(axis=1)
        # Under an active intent the engine *seeks* reorderings: uniform
        # pick among the non-oldest eligible ops when there are several.
        use_rand = st.any_intent[rows] & (ecount > 1)
        if use_rand.any():
            cand = elig.copy()
            cand[np.arange(len(rows)), oldest] = False
            target = (st.rng.random(len(rows))
                      * np.maximum(ecount - 1, 0)).astype(np.int64)
            cum = cand.cumsum(axis=1)
            rand_col = (cum <= target[:, None]).sum(axis=1)
            col = np.where(use_rand, rand_col, oldest)
        else:
            col = oldest
        kcounts = np.bincount(col, minlength=m).tolist()
        for kk, k in enumerate(occupied):
            if not kcounts[kk]:
                continue
            krows = rows[col == kk]
            th.in_q[krows, k] = False
            th.q_n[krows] -= 1
            S.issue[k](st, th, krows)
        if S.window_check:
            # A freed queue slot can unblock a window-limited decode.
            th.dec_blocked[rows] = False
        st.progress[rows] = True


class _BatchCompiler:
    """Lowers one thread program into vector step kernels + slot tables.

    Step kernels share a calling convention: ``step(st, th, rows)``
    with ``rows`` an int index array of the iterations decoding this
    pc.  A kernel drops stalled rows from ``st.dec`` and advances the
    rest (pc, budget, progress) — mirroring the reference decode loop's
    per-thread semantics across all selected iterations at once.
    """

    def __init__(self, cell, program, test, cta, required_scope,
                 scope_blind, chip):
        self.cell = cell
        self.program = program
        self.test = test
        self.required_scope = required_scope
        self.scope_blind = scope_blind
        self.chip = chip
        self.S = _ThreadStatic(program.tid, cta)

    # -- register table ----------------------------------------------------

    def _register_columns(self):
        names = set()
        for (tid, name) in self.test.reg_init:
            if tid == self.program.tid:
                names.add(name)
        for (tid, name) in self.test.observed_registers():
            if tid == self.program.tid:
                names.add(name)
        for instruction in self.program.instructions:
            guard = getattr(instruction, "guard", None)
            if guard is not None:
                names.add(guard.reg)
            for attr in ("dst", "src", "a", "b", "cmp", "new"):
                operand = getattr(instruction, attr, None)
                if isinstance(operand, Reg):
                    names.add(operand.name)
            addr = getattr(instruction, "addr", None)
            if addr is not None and isinstance(addr.base, Reg):
                names.add(addr.base.name)
        return {name: col for col, name in enumerate(sorted(names))}

    def compile(self):
        self.analyze()
        return self.codegen()

    def analyze(self):
        """First pass: register columns and slot tables.

        Everything this pass produces is picklable — it is exactly the
        payload of :meth:`BatchCell.plan` that the cross-worker plan
        cache stores; :meth:`codegen` rebuilds only the closures.
        """
        S = self.S
        S.reg_index = self._register_columns()
        S.n_regs = max(len(S.reg_index), 1)
        init = np.zeros(S.n_regs, dtype=np.int64)
        for (tid, name), binding in self.test.reg_init.items():
            if tid != self.program.tid:
                continue
            if isinstance(binding, Loc):
                init[S.reg_index[name]] = self.cell.address_map[binding.name]
            else:
                init[S.reg_index[name]] = binding.value
        S.init_regs = init

        # First pass: build slot statics for every memory instruction so
        # pair compilation can see the full table.
        from ..ptx.instructions import (AtomAdd, AtomCas, AtomExch, AtomInc,
                                        Ld, Membar, St)
        slot_of = {}
        for pc, instruction in enumerate(self.program.instructions):
            slot = None
            if isinstance(instruction, Ld):
                cop = (None if instruction.volatile
                       else instruction.effective_cop.value)
                slot = _SlotStatic(K_LOAD,
                                   dst_col=S.reg_index[instruction.dst.name],
                                   cop=cop, volatile=instruction.volatile)
                self._bind_addr(slot, instruction.addr)
            elif isinstance(instruction, St):
                cop = (None if instruction.volatile
                       else instruction.effective_cop.value)
                slot = _SlotStatic(K_STORE, cop=cop,
                                   volatile=instruction.volatile)
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.src, "val")
            elif isinstance(instruction, AtomCas):
                slot = _SlotStatic(K_CAS,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.new, "val")
                self._bind_value(slot, instruction.cmp, "cmp")
            elif isinstance(instruction, AtomExch):
                slot = _SlotStatic(K_EXCH,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.src, "val")
            elif isinstance(instruction, AtomInc):
                slot = _SlotStatic(K_ADD,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                slot.val_const = 1
            elif isinstance(instruction, AtomAdd):
                slot = _SlotStatic(K_ADD,
                                   dst_col=S.reg_index[instruction.dst.name])
                self._bind_addr(slot, instruction.addr)
                self._bind_value(slot, instruction.src, "val")
            elif isinstance(instruction, Membar):
                scope = instruction.scope
                mixed_slot, ca_slot = _bypass_slots(scope)
                slot = _SlotStatic(
                    K_FENCE, mixed_slot=mixed_slot, ca_slot=ca_slot,
                    inval_prob=self.chip.fence_l1_inval.get(scope, 1.0))
                slot.static_addr = -1  # fences carry no address
            if slot is not None:
                slot_of[pc] = len(S.slots)
                S.slots.append(slot)
        S.K = len(S.slots)
        S.window_check = S.K >= WINDOW
        S.static_order = not self.program.has_loops()
        S.slot_of = slot_of
        return S

    def codegen(self):
        """Second pass: step kernels, pair-blocking plans, issue kernels
        — the closures, regenerated per process on a plan-cache hit."""
        S = self.S
        slot_of = S.slot_of
        S.code = [self._compile_one(pc, instruction, slot_of.get(pc))
                  for pc, instruction in enumerate(self.program.instructions)]
        S.ncode = len(S.code)
        S.pairs = [self._compile_pairs(j) for j in range(S.K)]
        S.issue = [self._compile_issue(k) for k in range(S.K)]
        return S

    def _bind_addr(self, slot, addr):
        if isinstance(addr.base, Loc):
            address = self.cell.address_map[addr.base.name] + addr.offset
            slot.addr_const = address
            slot.static_addr = address
            slot.shared = self.cell._shared_of.get(address, False)
            if slot.shared:
                slot.sloc = self.cell._sloc_of[address]
            else:
                gloc = self.cell._gloc_of.get(address)
                if gloc is None:
                    raise SimulationError(
                        "access to uninstalled address %#x" % address)
                slot.gloc = gloc
        else:
            slot.addr_const = addr.offset
            slot.addr_reg_col = self.S.reg_index[addr.base.name]

    def _bind_value(self, slot, operand, which):
        if isinstance(operand, Imm):
            setattr(slot, which + "_const", operand.value)
        elif isinstance(operand, Reg):
            setattr(slot, which + "_reg_col", self.S.reg_index[operand.name])
        else:
            raise SimulationError("bad value operand %r" % (operand,))

    # -- step kernels ------------------------------------------------------

    def _compile_one(self, pc, instruction, slot_index):
        from ..ptx.instructions import (Add, And, Bra, Cvt, Label, Membar,
                                        Mov, Setp, Xor)
        if slot_index is not None:
            if isinstance(instruction, Membar):
                step = self._compile_fence_push(slot_index,
                                                instruction.scope)
            else:
                step = self._compile_push(slot_index)
        elif isinstance(instruction, Mov):
            step = self._compile_mov(instruction)
        elif isinstance(instruction, (Add, And, Xor)):
            ops = {"add": lambda a, b: (a + b) & 0xFFFFFFFF,
                   "and": lambda a, b: a & b,
                   "xor": lambda a, b: a ^ b}
            step = self._compile_binary(instruction, ops[instruction.opcode])
        elif isinstance(instruction, Setp):
            if instruction.cmp == "eq":
                fn = lambda a, b: (a == b).astype(np.int64)
            else:
                fn = lambda a, b: (a != b).astype(np.int64)
            step = self._compile_binary(instruction, fn)
        elif isinstance(instruction, Cvt):
            step = self._compile_cvt(instruction)
        elif isinstance(instruction, Bra):
            target = self.program.labels[instruction.target]

            def step(st, th, rows, _target=target):
                th.pc[rows] = _target
                st.budget[rows] -= 1
        elif isinstance(instruction, Label):
            def step(st, th, rows):
                th.pc[rows] += 1
                st.budget[rows] -= 1
        else:
            raise SimulationError(
                "batch engine cannot lower %r" % (instruction,))

        guard = getattr(instruction, "guard", None)
        if guard is None:
            return step
        gcol = self.S.reg_index[guard.reg]
        wanted = not guard.negated

        def guarded(st, th, rows, _inner=step, _gcol=gcol, _wanted=wanted):
            stall = th.pending[rows, _gcol]
            if stall.any():
                st.dec[rows[stall]] = False
                rows = rows[~stall]
                if not len(rows):
                    return
            skip = (th.regs[rows, _gcol] != 0) != _wanted
            if skip.any():
                hop = rows[skip]
                th.pc[hop] += 1
                st.budget[hop] -= 1
                rows = rows[~skip]
            if len(rows):
                _inner(st, th, rows)

        return guarded

    def _ready_guard(self, cols):
        """Build the pending-source stall check for ``cols``."""
        cols = tuple(c for c in cols if c is not None)

        def check(st, th, rows):
            if not cols:
                return rows
            stall = th.pending[rows, cols[0]]
            for c in cols[1:]:
                stall = stall | th.pending[rows, c]
            if stall.any():
                st.dec[rows[stall]] = False
                rows = rows[~stall]
            return rows

        return check

    def _compile_push(self, k):
        slot = self.S.slots[k]
        ready = self._ready_guard((slot.addr_reg_col, slot.val_reg_col,
                                   slot.cmp_reg_col))
        addr_const = slot.addr_const
        addr_col = slot.addr_reg_col
        val_const, val_col = slot.val_const, slot.val_reg_col
        cmp_const, cmp_col = slot.cmp_const, slot.cmp_reg_col
        dst = slot.dst_col
        window_check = None
        if self.S.window_check:
            window_check = True
        name = self.test.name

        def step(st, th, rows, _k=k):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            if window_check:
                full = th.q_n[rows] >= WINDOW
                if full.any():
                    st.dec[rows[full]] = False
                    rows = rows[~full]
                    if not len(rows):
                        return
            if th.in_q[rows, _k].any():
                raise SimulationError(
                    "batch engine: op re-enqueued while still pending "
                    "in %s (unguarded loop over a memory op?)" % name)
            th.in_q[rows, _k] = True
            th.q_n[rows] += 1
            th.q_seq[rows, _k] = th.seq[rows]
            th.seq[rows] += 1
            if addr_col is None:
                th.q_addr[rows, _k] = addr_const
            else:
                th.q_addr[rows, _k] = th.regs[rows, addr_col] + addr_const
            if val_col is None:
                th.q_val[rows, _k] = val_const
            else:
                th.q_val[rows, _k] = th.regs[rows, val_col]
            if cmp_col is None:
                th.q_cmp[rows, _k] = cmp_const
            else:
                th.q_cmp[rows, _k] = th.regs[rows, cmp_col]
            if dst is not None:
                th.pending[rows, dst] = True
            th.pc[rows] += 1
            st.budget[rows] -= 1

        return step

    def _compile_fence_push(self, k, scope):
        covered = self.scope_blind or scope.covers(self.required_scope)
        damping = self.chip.underscoped_fence_damping

        def push(st, th, rows, _k=k):
            th.in_q[rows, _k] = True
            th.q_n[rows] += 1
            th.q_seq[rows, _k] = th.seq[rows]
            th.seq[rows] += 1
            th.q_addr[rows, _k] = -1
            th.pc[rows] += 1
            st.budget[rows] -= 1

        if covered:
            # The scope check is pre-bound: a sufficient fence always
            # enters the queue, with no per-iteration decision.
            return push

        # Under-scoped fence: the chip's damping fraction of decodes
        # sees it as a no-op (non-zero membar.cta rows of Fig. 3).
        def step(st, th, rows):
            enq = st.rng.random(len(rows)) >= damping
            skip = rows[~enq]
            if len(skip):
                th.pc[skip] += 1
                st.budget[skip] -= 1
            go = rows[enq]
            if len(go):
                push(st, th, go)

        return step

    def _compile_mov(self, instruction):
        dst = self.S.reg_index[instruction.dst.name]
        if isinstance(instruction.src, Loc):
            const = self.cell.address_map[instruction.src.name]

            def step(st, th, rows, _dst=dst, _const=const):
                th.regs[rows, _dst] = _const
                th.pc[rows] += 1
                st.budget[rows] -= 1

            return step
        if isinstance(instruction.src, Imm):
            const = instruction.src.value

            def step(st, th, rows, _dst=dst, _const=const):
                th.regs[rows, _dst] = _const
                th.pc[rows] += 1
                st.budget[rows] -= 1

            return step
        src = self.S.reg_index[instruction.src.name]
        ready = self._ready_guard((src,))

        def step(st, th, rows, _dst=dst, _src=src):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            th.regs[rows, _dst] = th.regs[rows, _src]
            th.pc[rows] += 1
            st.budget[rows] -= 1

        return step

    def _compile_binary(self, instruction, fn):
        dst = self.S.reg_index[instruction.dst.name]
        aconst, acol = self._value_spec(instruction.a)
        bconst, bcol = self._value_spec(instruction.b)
        ready = self._ready_guard((acol, bcol))

        def step(st, th, rows, _dst=dst, _fn=fn):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            a = aconst if acol is None else th.regs[rows, acol]
            b = bconst if bcol is None else th.regs[rows, bcol]
            th.regs[rows, _dst] = _fn(a, b)
            th.pc[rows] += 1
            st.budget[rows] -= 1

        return step

    def _compile_cvt(self, instruction):
        dst = self.S.reg_index[instruction.dst.name]
        src = self.S.reg_index[instruction.src.name]
        ready = self._ready_guard((src,))

        def step(st, th, rows, _dst=dst, _src=src):
            rows = ready(st, th, rows)
            if not len(rows):
                return
            th.regs[rows, _dst] = th.regs[rows, _src]
            th.pc[rows] += 1
            st.budget[rows] -= 1

        return step

    def _value_spec(self, operand):
        if isinstance(operand, Imm):
            return operand.value, None
        if isinstance(operand, Reg):
            return 0, self.S.reg_index[operand.name]
        raise SimulationError("bad value operand %r" % (operand,))

    # -- pair-blocking plans ----------------------------------------------

    def _compile_pairs(self, j):
        """Blocking plan for slot ``j``: a list of ``(i, fn)`` where
        ``fn(st, th, sel) -> bool[len(sel)]`` (or None for an
        unconditional block) is evaluated against every older in-queue
        slot ``i``."""
        S = self.S
        if S.static_order:
            candidates = range(j)
        else:
            candidates = (i for i in range(S.K) if i != j)
        return [(i, self._compile_pair(j, i)) for i in candidates]

    def _compile_pair(self, j, i):
        S = self.S
        yst, ost = S.slots[j], S.slots[i]
        if yst.kind == K_FENCE:
            return None  # a fence may pass nothing
        if ost.kind == K_FENCE:
            # Only a .ca load may slip past a fence (Figs. 3 and 4),
            # gated by the scope's (mixed, ca) bypass intents and the
            # same-address-probe over earlier loads in the queue.
            if not yst.ca_load:
                return None
            loads = tuple(c for c in range(S.K) if S.slots[c].is_load)
            mixed_slot, ca_slot = ost.mixed_slot, ost.ca_slot

            def fence_block(st, th, sel, _j=j, _i=i, _loads=loads):
                addr_j = th.q_addr[sel, _j]
                fence_seq = th.q_seq[sel, _i]
                before = None
                for c in _loads:
                    probe = (th.in_q[sel, c]
                             & (th.q_seq[sel, c] < fence_seq)
                             & (th.q_addr[sel, c] == addr_j))
                    before = probe if before is None else (before | probe)
                passes = np.where(before, st.iv[sel, mixed_slot],
                                  st.iv[sel, ca_slot])
                return ~passes

            return fence_block
        if self.chip.atomic_ordered and (yst.atomic or ost.atomic):
            return None
        volatile_pair = yst.volatile and ost.volatile
        if volatile_pair and self.chip.volatile_ordered:
            return None
        pass_slot = yst.pass_pair[ost.is_store]
        both_loads = yst.kind == K_LOAD and ost.kind == K_LOAD
        hz_slot = (SLOT_RR_HAZARD if yst.cop == ost.cop
                   else SLOT_MIXED_HAZARD)
        static = (yst.static_addr is not None and ost.static_addr is not None)
        if static:
            same = yst.static_addr == ost.static_addr
            if same and not both_loads:
                return None  # same-address non-load-load pairs never reorder
            slot = hz_slot if same else pass_slot
            if volatile_pair:
                def fn(st, th, sel, _slot=slot):
                    return ~st.iv[sel, _slot] | ~st.iv[sel, SLOT_VOLATILE]
            else:
                def fn(st, th, sel, _slot=slot):
                    return ~st.iv[sel, _slot]
            return fn

        def fn(st, th, sel, _j=j, _i=i):
            same = th.q_addr[sel, _j] == th.q_addr[sel, _i]
            if both_loads:
                blocked = np.where(same, ~st.iv[sel, hz_slot],
                                   ~st.iv[sel, pass_slot])
            else:
                blocked = same | ~st.iv[sel, pass_slot]
            if volatile_pair:
                blocked = blocked | ~st.iv[sel, SLOT_VOLATILE]
            return blocked

        return fn

    # -- issue kernels ----------------------------------------------------

    def _compile_issue(self, k):
        slot = self.S.slots[k]
        tid = self.S.tid
        kind = slot.kind
        if kind == K_FENCE:
            return self._compile_issue_fence(k, slot, tid)
        if kind == K_STORE:
            return self._compile_issue_store(k, slot, tid)
        if kind == K_LOAD:
            return self._compile_issue_load(k, slot, tid)
        return self._compile_issue_atomic(k, slot, tid)

    def _dynamic_locs(self, addresses):
        """Resolve raw addresses to dense location indices (vectorized
        twin of the uninstalled-address check)."""
        table = self.cell._addr_sorted
        pos = np.searchsorted(table, addresses)
        pos_clipped = np.minimum(pos, len(table) - 1)
        valid = table[pos_clipped] == addresses
        if not valid.all():
            bad = int(addresses[~valid][0])
            raise SimulationError(
                "access to uninstalled address %#x" % bad)
        return pos_clipped

    def _compile_issue_load(self, k, slot, tid):
        dst = slot.dst_col
        plain = slot.volatile or slot.cop is None
        cop = slot.cop
        dynamic = slot.static_addr is None

        def issue(st, th, rows, _k=k):
            sm = st.sm[rows, tid]
            if dynamic:
                locs = self._dynamic_locs(th.q_addr[rows, _k])
                value = self._read_dynamic(st, rows, sm, locs, plain, cop)
            elif slot.shared:
                value = st.shm[rows, sm, slot.sloc]
            else:
                value = self._read_global(st, rows, sm, slot.gloc,
                                          plain, cop)
            th.regs[rows, dst] = value
            th.pending[rows, dst] = False
            th.dec_blocked[rows] = False

        return issue

    def _read_global(self, st, idx, sm, gloc, plain, cop):
        cell = self.cell
        base = st.glob[idx, gloc]
        if plain or not cell.l1_active:
            return base
        if cop == "ca":
            has = st.l1h[idx, sm, gloc]
            hit = has & st.stale[idx]
            value = np.where(hit, st.l1v[idx, sm, gloc], base)
            fill = ~hit
            if st.adaptive:
                # Lines of non-stale rows can never hit (``hit`` needs
                # ``stale``), so filling them is semantically inert; it
                # only perturbs downstream ``has.any()`` draw gates,
                # i.e. the RNG stream — skipped off the legacy path.
                fill &= st.stale[idx]
            if fill.any():
                st.l1v[idx[fill], sm[fill], gloc] = base[fill]
                st.l1h[idx[fill], sm[fill], gloc] = True
            return value
        if cop in ("cg", "cv"):
            has = st.l1h[idx, sm, gloc]
            if has.any():
                evict = has & (st.rng.random(len(idx)) < cell.p_cg_evict)
                if evict.any():
                    st.l1h[idx[evict], sm[evict], gloc] = False
            return base
        return base

    def _read_dynamic(self, st, idx, sm, locs, plain, cop):
        cell = self.cell
        value = np.zeros(len(idx), dtype=np.int64)
        shared = cell._loc_shared[locs]
        if shared.any():
            s = shared
            value[s] = st.shm[idx[s], sm[s], cell._loc_sidx[locs[s]]]
        g = ~shared
        if g.any():
            gloc = cell._loc_gidx[locs[g]]
            gi, gs = idx[g], sm[g]
            base = st.glob[gi, gloc]
            if plain or not cell.l1_active:
                value[g] = base
            elif cop == "ca":
                has = st.l1h[gi, gs, gloc]
                hit = has & st.stale[gi]
                value[g] = np.where(hit, st.l1v[gi, gs, gloc], base)
                fill = ~hit
                if st.adaptive:
                    fill &= st.stale[gi]
                if fill.any():
                    st.l1v[gi[fill], gs[fill], gloc[fill]] = base[fill]
                    st.l1h[gi[fill], gs[fill], gloc[fill]] = True
            elif cop in ("cg", "cv"):
                has = st.l1h[gi, gs, gloc]
                if has.any():
                    evict = has & (st.rng.random(len(gi)) < cell.p_cg_evict)
                    if evict.any():
                        st.l1h[gi[evict], gs[evict], gloc[evict]] = False
                value[g] = base
            else:
                value[g] = base
        return value

    def _compile_issue_store(self, k, slot, tid):
        cell = self.cell
        dynamic = slot.static_addr is None

        def issue(st, th, rows, _k=k):
            sm = st.sm[rows, tid]
            value = th.q_val[rows, _k]
            if dynamic:
                locs = self._dynamic_locs(th.q_addr[rows, _k])
                shared = cell._loc_shared[locs]
                if shared.any():
                    s = shared
                    st.shm[rows[s], sm[s], cell._loc_sidx[locs[s]]] = value[s]
                g = ~shared
                if g.any():
                    self._write_global(st, rows[g], sm[g],
                                       cell._loc_gidx[locs[g]], value[g])
            elif slot.shared:
                st.shm[rows, sm, slot.sloc] = value
            else:
                self._write_global(st, rows, sm, slot.gloc, value)

        return issue

    def _write_global(self, st, idx, sm, gloc, value):
        cell = self.cell
        st.glob[idx, gloc] = value
        if not cell.l1_active:
            return
        # Stores bypass the L1 and invalidate the writing SM's own line
        # only unreliably; remote lines are never touched (Sec. 3.1.2).
        has = st.l1h[idx, sm, gloc]
        if has.any():
            inval = has & (st.rng.random(len(idx)) < cell.p_store_inval)
            if inval.any():
                if getattr(gloc, "ndim", 0):
                    st.l1h[idx[inval], sm[inval], gloc[inval]] = False
                else:
                    st.l1h[idx[inval], sm[inval], gloc] = False

    def _compile_issue_fence(self, k, slot, tid):
        cell = self.cell
        prob = slot.inval_prob

        def issue(st, th, rows, _k=k):
            if not cell.l1_active or prob <= 0.0:
                return
            sm = st.sm[rows, tid]
            lines = st.l1h[rows, sm, :]
            if lines.any():
                drop = lines & (st.rng.random(lines.shape) < prob)
                st.l1h[rows, sm, :] = lines & ~drop

        return issue

    def _compile_issue_atomic(self, k, slot, tid):
        cell = self.cell
        kind = slot.kind
        dst = slot.dst_col
        dynamic = slot.static_addr is None

        def issue(st, th, rows, _k=k):
            sm = st.sm[rows, tid]
            value = th.q_val[rows, _k]
            if dynamic:
                locs = self._dynamic_locs(th.q_addr[rows, _k])
                shared = cell._loc_shared[locs]
                sidx = cell._loc_sidx[locs]
                gidx = cell._loc_gidx[locs]
                old = np.zeros(len(rows), dtype=np.int64)
                if shared.any():
                    s = shared
                    old[s] = st.shm[rows[s], sm[s], sidx[s]]
                g = ~shared
                if g.any():
                    old[g] = st.glob[rows[g], gidx[g]]
            elif slot.shared:
                old = st.shm[rows, sm, slot.sloc]
            else:
                old = st.glob[rows, slot.gloc]
            if kind == K_CAS:
                write = old == th.q_cmp[rows, _k]
                new = value
            elif kind == K_EXCH:
                write = None  # unconditional
                new = value
            else:  # K_ADD
                write = None
                new = old + value
            if write is None:
                if dynamic:
                    if shared.any():
                        s = shared
                        st.shm[rows[s], sm[s], sidx[s]] = new[s]
                    g = ~shared
                    if g.any():
                        st.glob[rows[g], gidx[g]] = new[g]
                elif slot.shared:
                    st.shm[rows, sm, slot.sloc] = new
                else:
                    st.glob[rows, slot.gloc] = new
            elif write.any():
                w = write
                if dynamic:
                    ws = w & shared
                    if ws.any():
                        st.shm[rows[ws], sm[ws], sidx[ws]] = new[ws]
                    wg = w & ~shared
                    if wg.any():
                        st.glob[rows[wg], gidx[wg]] = new[wg]
                elif slot.shared:
                    st.shm[rows[w], sm[w], slot.sloc] = new[w]
                else:
                    st.glob[rows[w], slot.gloc] = new[w]
            th.regs[rows, dst] = old
            th.pending[rows, dst] = False
            th.dec_blocked[rows] = False

        return issue


def compile_batch_cell(test, chip, intensity=1.0, stale_intensity=None,
                       shuffle_placement=False, fuel=None, scope_blind=False,
                       tail_fraction=None, plan=None):
    """Lower one campaign cell into a :class:`BatchCell`.

    Parameters mirror :func:`~repro.sim.compile.compile_cell`; the
    result answers ``run_many(iterations, rng, histogram)`` with the
    same outcome *distribution* as the fast engine (see the module
    docstring for the RNG-stream contract).  Raises
    :class:`~repro.errors.ConfigurationError` when numpy is missing.

    ``tail_fraction`` tunes the straggler hand-off threshold (``None``
    resolves ``REPRO_BATCH_TAIL``/the default; ``0`` disables the tail
    and reproduces the legacy bit-exact batch stream).  ``plan`` is an
    optional pre-analyzed lowering plan from :meth:`BatchCell.plan` —
    a plan-cache hit skips the analysis pass.
    """
    return BatchCell(test, chip, intensity=intensity,
                     stale_intensity=stale_intensity,
                     shuffle_placement=shuffle_placement, fuel=fuel,
                     scope_blind=scope_blind, tail_fraction=tail_fraction,
                     plan=plan)
