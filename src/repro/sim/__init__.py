"""Operational GPU simulator: chips, memory system, thread engines.

Three engines execute litmus iterations:

* ``reference`` — :class:`GpuMachine`'s generic per-instruction
  interpreter (:mod:`repro.sim.engine`), the semantic ground truth;
* ``fast`` — the compile-once/run-many specialisation of
  :mod:`repro.sim.compile`, bit-identical by property-tested contract
  and several times faster;
* ``batch`` — the numpy structure-of-arrays lowering of
  :mod:`repro.sim.batch`: whole shards execute in lockstep, another
  order of magnitude faster again.  Distribution-equivalent rather than
  bit-identical (a documented seeded RNG-stream-break) and gated on the
  optional ``repro[batch]`` dependency; ``fast`` is the parity
  reference its tests compare against.

Pick one per run via :func:`run_iterations`'s ``engine`` argument, the
``engine`` field of :class:`repro.api.RunSpec`, or the CLI's
``--engine``; :func:`~repro.sim.engine.resolve_engine` applies the
``REPRO_ENGINE`` environment default.
"""

from .batch import BatchCell, compile_batch_cell, have_numpy
from .chip import (AMD_RESULT_CHIPS, CHIPS, ChipProfile,
                   NVIDIA_RESULT_CHIPS, RESULT_CHIPS, chip)
from .compile import CompiledCell, compile_cell
from .engine import (DEFAULT_ENGINE, ENGINES, PendingOp, ThreadEngine,
                     resolve_engine, run_batch)
from .machine import GpuMachine, run_iterations
from .memory import MemorySystem

__all__ = [
    "AMD_RESULT_CHIPS", "CHIPS", "ChipProfile", "NVIDIA_RESULT_CHIPS",
    "RESULT_CHIPS", "chip",
    "BatchCell", "compile_batch_cell", "have_numpy",
    "CompiledCell", "compile_cell",
    "DEFAULT_ENGINE", "ENGINES", "PendingOp", "ThreadEngine",
    "resolve_engine", "run_batch",
    "GpuMachine", "run_iterations",
    "MemorySystem",
]
