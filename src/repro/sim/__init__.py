"""Operational GPU simulator: chips, memory system, thread engines."""

from .chip import (AMD_RESULT_CHIPS, CHIPS, ChipProfile,
                   NVIDIA_RESULT_CHIPS, RESULT_CHIPS, chip)
from .engine import PendingOp, ThreadEngine
from .machine import GpuMachine, run_iterations
from .memory import MemorySystem

__all__ = [
    "AMD_RESULT_CHIPS", "CHIPS", "ChipProfile", "NVIDIA_RESULT_CHIPS",
    "RESULT_CHIPS", "chip",
    "PendingOp", "ThreadEngine",
    "GpuMachine", "run_iterations",
    "MemorySystem",
]
