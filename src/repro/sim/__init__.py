"""Operational GPU simulator: chips, memory system, thread engines.

Two engines execute litmus iterations:

* ``reference`` — :class:`GpuMachine`'s generic per-instruction
  interpreter (:mod:`repro.sim.engine`), the semantic ground truth;
* ``fast`` — the compile-once/run-many specialisation of
  :mod:`repro.sim.compile`, bit-identical by property-tested contract
  and several times faster.

Pick one per run via :func:`run_iterations`'s ``engine`` argument, the
``engine`` field of :class:`repro.api.RunSpec`, or the CLI's
``--engine``; :func:`~repro.sim.engine.resolve_engine` applies the
``REPRO_ENGINE`` environment default.
"""

from .chip import (AMD_RESULT_CHIPS, CHIPS, ChipProfile,
                   NVIDIA_RESULT_CHIPS, RESULT_CHIPS, chip)
from .compile import CompiledCell, compile_cell
from .engine import (DEFAULT_ENGINE, ENGINES, PendingOp, ThreadEngine,
                     resolve_engine, run_batch)
from .machine import GpuMachine, run_iterations
from .memory import MemorySystem

__all__ = [
    "AMD_RESULT_CHIPS", "CHIPS", "ChipProfile", "NVIDIA_RESULT_CHIPS",
    "RESULT_CHIPS", "chip",
    "CompiledCell", "compile_cell",
    "DEFAULT_ENGINE", "ENGINES", "PendingOp", "ThreadEngine",
    "resolve_engine", "run_batch",
    "GpuMachine", "run_iterations",
    "MemorySystem",
]
