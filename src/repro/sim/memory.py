"""The simulated GPU memory system: global memory, per-SM L1, shared.

Global memory (with the L2 as its coherent access point) is a single
word-addressed store: all ``.cg`` traffic and all atomics hit it directly.
Each SM additionally has:

* an **L1 cache** that is *not* kept coherent (the Fermi behaviour of
  Sec. 3.1.2): ``.ca`` loads may hit lines holding stale values; remote
  stores never invalidate them; fences invalidate them only with the
  chip-specific probability; ``.cg`` loads evict the matching line with
  the chip's probability ("existing cache lines that match the requested
  address in L1 will be evicted" — which the paper shows is unreliable);
* a **shared memory** scratchpad, private to the SM's CTAs.
"""

from ..errors import SimulationError
from ..ptx.types import MemorySpace


class MemorySystem:
    """All memory state for one simulated iteration."""

    def __init__(self, chip, rng, n_sms, stale_intent=False):
        self.chip = chip
        self.rng = rng
        self.n_sms = n_sms
        self.global_mem = {}
        self.shared_mem = [dict() for _ in range(n_sms)]
        self.l1 = [dict() for _ in range(n_sms)]
        self.stale_intent = stale_intent and chip.l1_stale_reads
        self.space_of_addr = {}

    # -- initialisation ------------------------------------------------------

    def install(self, address, value, space):
        """Set the initial value of one location."""
        self.space_of_addr[address] = space
        if space is MemorySpace.SHARED:
            for shared in self.shared_mem:
                shared[address] = value
        else:
            self.global_mem[address] = value

    def warm_l1(self):
        """Populate L1 lines with initial values (the stale-read seed).

        Each global location lands in each SM's L1 independently with
        probability ``p_l1_warm`` — modelling lines left behind by the
        harness's initialisation writes and by earlier test iterations.
        """
        if not self.stale_intent:
            return
        for sm in range(self.n_sms):
            for address, value in self.global_mem.items():
                if self.rng.random() < self.chip.p_l1_warm:
                    self.l1[sm][address] = value

    def _space(self, address):
        space = self.space_of_addr.get(address)
        if space is None:
            raise SimulationError("access to uninstalled address %#x" % address)
        return space

    # -- reads -----------------------------------------------------------------

    def read(self, sm, address, cop=None, volatile=False):
        """Perform a load issued from ``sm``; returns the value."""
        if self._space(address) is MemorySpace.SHARED:
            return self.shared_mem[sm][address]
        value = self.global_mem[address]
        if volatile or cop is None:
            return value
        if cop == "ca":
            line = self.l1[sm].get(address)
            if line is not None and self.stale_intent:
                return line
            # Miss (or coherent-L1 chip): fill the line with the fresh value.
            if self.chip.l1_stale_reads:
                self.l1[sm][address] = value
            return value
        if cop in ("cg", "cv"):
            # The PTX manual says a .cg load evicts the matching L1 line;
            # the paper shows this is unreliable (Fig. 4).
            if address in self.l1[sm]:
                if self.rng.random() < self.chip.p_cg_evicts_l1:
                    del self.l1[sm][address]
            return value
        return value

    # -- writes ----------------------------------------------------------------

    def write(self, sm, address, value, volatile=False):
        """Perform a store issued from ``sm``."""
        if self._space(address) is MemorySpace.SHARED:
            self.shared_mem[sm][address] = value
            return
        self.global_mem[address] = value
        # Stores bypass the L1 (there is no L1 store operator, Sec. 3.1.2)
        # and update the writing SM's own line only unreliably; remote
        # SMs' lines are never invalidated (the Fermi incoherence).
        if address in self.l1[sm]:
            if self.rng.random() < self.chip.p_store_invalidates_own_l1:
                del self.l1[sm][address]

    # -- atomics ------------------------------------------------------------------

    def atomic_cas(self, sm, address, compare, new):
        old = self._atomic_read(sm, address)
        if old == compare:
            self._atomic_write(sm, address, new)
        return old

    def atomic_exch(self, sm, address, new):
        old = self._atomic_read(sm, address)
        self._atomic_write(sm, address, new)
        return old

    def atomic_add(self, sm, address, operand):
        old = self._atomic_read(sm, address)
        self._atomic_write(sm, address, old + operand)
        return old

    def _atomic_read(self, sm, address):
        if self._space(address) is MemorySpace.SHARED:
            return self.shared_mem[sm][address]
        return self.global_mem[address]

    def _atomic_write(self, sm, address, value):
        if self._space(address) is MemorySpace.SHARED:
            self.shared_mem[sm][address] = value
        else:
            self.global_mem[address] = value

    # -- fences ----------------------------------------------------------------

    def fence(self, sm, scope):
        """Apply a fence's cache effect: invalidate the SM's stale lines
        with the chip's per-scope probability."""
        probability = self.chip.fence_inval_probability(scope)
        if probability <= 0.0 or not self.l1[sm]:
            return
        for address in list(self.l1[sm]):
            if self.rng.random() < probability:
                del self.l1[sm][address]

    # -- final state -------------------------------------------------------------

    def final_value(self, address):
        """The final value of a location (global, or any modified SM copy
        of a shared location)."""
        space = self._space(address)
        if space is not MemorySpace.SHARED:
            return self.global_mem[address]
        values = {shared.get(address) for shared in self.shared_mem}
        values.discard(None)
        if len(values) == 1:
            return values.pop()
        # Multiple SM copies diverged (cannot happen for valid tests:
        # shared locations are single-CTA); report the first modified one.
        return next(iter(sorted(v for v in values if v is not None)))
