"""The GPU machine: assembles chips, memory and thread engines per test.

:class:`GpuMachine` runs one litmus test on one chip profile, one
iteration at a time.  Per iteration it draws the chip's *intents*
(reordering, L1 staleness) — optionally scaled by the harness's
incantation efficacy — places CTAs onto SMs, and interleaves the thread
engines under a randomised scheduler until every thread retires.
"""

import random

from ..errors import FuelExhausted, SimulationError
from ..litmus.condition import FinalState
from ..ptx.types import Scope
from .engine import ThreadEngine
from .memory import MemorySystem

#: Scheduler-tick budget per thread instruction (spin-loop headroom).
_FUEL_PER_INSTRUCTION = 600


class GpuMachine:
    """One litmus test bound to one chip.

    ``reorder_p``/``stale_p`` override the chip's base intent
    probabilities (the harness passes incantation-scaled values);
    ``shuffle_placement`` models the thread-randomisation incantation's
    structural effect (random CTA-to-SM assignment).
    """

    def __init__(self, test, chip, intensity=1.0, stale_intensity=None,
                 shuffle_placement=False, fuel=None, scope_blind=False):
        self.test = test
        self.chip = chip
        self.intensity = intensity
        self.stale_intensity = (intensity if stale_intensity is None
                                else stale_intensity)
        self.shuffle_placement = shuffle_placement
        #: Scope-blind machines treat every fence as full-strength
        #: regardless of scope — the (unsound) assumption of the
        #: operational model of Sorensen et al. (Sec. 6).
        self.scope_blind = scope_blind
        self.address_map = test.address_map()
        self.spaces = {name: test.space_of(name) for name in test.locations()}
        self.required_scope = self._required_scope()
        total_instructions = sum(len(program) for program in test.threads)
        self.fuel = fuel or _FUEL_PER_INSTRUCTION * max(total_instructions, 1)

    def _required_scope(self):
        """The fence scope needed to order this test's communication.

        Intra-CTA (and mixed) placements require only ``membar.cta``;
        purely inter-CTA placements require ``membar.gl``.  Treating
        mixed placements as CTA-scoped makes fences *stronger* than the
        model requires, preserving soundness (model ⊇ simulator).
        """
        placement = self.test.scope_tree.classify()
        return Scope.GL if placement == "inter-cta" else Scope.CTA

    def _assign_sms(self, rng):
        """Map each CTA of the scope tree to an SM."""
        n_ctas = self.test.scope_tree.n_ctas
        n_sms = max(self.chip.n_sms, 1)
        if self.shuffle_placement:
            return [rng.randrange(n_sms) for _ in range(n_ctas)]
        return [index % n_sms for index in range(n_ctas)]

    def run_once(self, rng):
        """Run one iteration; returns the observed FinalState."""
        intents = self.chip.draw_intents(rng, self.intensity)
        if self.scope_blind:
            for key in list(intents):
                if key.startswith(("mixed_bypass_", "ca_bypass_")):
                    intents[key] = False
        stale_intent = rng.random() < self.chip.p_stale * self.stale_intensity

        memory = MemorySystem(self.chip, rng, n_sms=self.chip.n_sms,
                              stale_intent=stale_intent)
        for name, address in self.address_map.items():
            memory.install(address, self.test.initial_value(name),
                           self.spaces[name])
        memory.warm_l1()

        cta_sm = self._assign_sms(rng)
        engines = []
        for program in self.test.threads:
            placement = self.test.scope_tree.placement(program.name)
            engine = ThreadEngine(
                program=program, sm=cta_sm[placement.cta], chip=self.chip,
                memory=memory, address_map=self.address_map,
                reg_init=self.test.reg_init,
                fence_effective=self._fence_policy(rng),
                rng=rng)
            engines.append(engine)

        fuel = self.fuel
        stalled_rounds = 0
        while True:
            runnable = [engine for engine in engines if not engine.done]
            if not runnable:
                break
            if fuel <= 0:
                raise FuelExhausted(
                    "test %s did not terminate (likely livelock)" % self.test.name)
            engine = rng.choice(runnable)
            if engine.tick(intents):
                stalled_rounds = 0
            else:
                stalled_rounds += 1
                if stalled_rounds > 4 * len(engines) * (len(self.test.threads) + 4):
                    raise SimulationError(
                        "all threads stalled in %s — dependency deadlock?"
                        % self.test.name)
            fuel -= 1

        return self._final_state(engines, memory)

    def _fence_policy(self, rng):
        """Per-iteration decision function for fence effectiveness.

        A fence whose scope covers the test's required scope is always
        effective.  An under-scoped fence (e.g. ``membar.cta`` between
        CTAs) is *usually still effective on real chips* — only the
        chip's damping fraction of weak runs sees it as a no-op (cf. the
        non-zero ``membar.cta`` rows of Fig. 3).
        """
        def effective(scope):
            if self.scope_blind or scope.covers(self.required_scope):
                return True
            return rng.random() >= self.chip.underscoped_fence_damping

        return effective

    def _final_state(self, engines, memory):
        regs = {}
        for tid, reg in self.test.observed_registers():
            regs[(tid, reg)] = engines[tid].regs.get(reg, 0)
        mem = {name: memory.final_value(address)
               for name, address in self.address_map.items()}
        return FinalState.make(regs, mem)


def run_iterations(test, chip, iterations, seed=0, intensity=1.0,
                   stale_intensity=None, shuffle_placement=False,
                   engine=None):
    """Convenience: run ``iterations`` runs, returning a histogram dict
    ``FinalState -> count``.  (The full-featured runner with incantations
    lives in :mod:`repro.harness.runner`.)

    ``engine`` picks the execution engine: ``"reference"`` interprets
    through :class:`GpuMachine`, ``"fast"`` runs the compiled cell of
    :mod:`repro.sim.compile` (bit-identical histograms), ``"batch"``
    runs the whole request as one numpy lockstep batch
    (:mod:`repro.sim.batch` — distribution-equivalent, needs the
    ``repro[batch]`` extra); ``None`` defers to
    :func:`~repro.sim.engine.resolve_engine`.
    """
    from .engine import resolve_engine

    resolved = resolve_engine(engine)
    if resolved == "batch":
        from .batch import compile_batch_cell

        cell = compile_batch_cell(test, chip, intensity=intensity,
                                  stale_intensity=stale_intensity,
                                  shuffle_placement=shuffle_placement)
        counts = cell.run_many(iterations, random.Random(seed)).counts
        return dict(counts)
    if resolved == "fast":
        from .compile import compile_cell

        machine = compile_cell(test, chip, intensity=intensity,
                               stale_intensity=stale_intensity,
                               shuffle_placement=shuffle_placement)
    else:
        machine = GpuMachine(test, chip, intensity=intensity,
                             stale_intensity=stale_intensity,
                             shuffle_placement=shuffle_placement)
    rng = random.Random(seed)
    histogram = {}
    for _ in range(iterations):
        state = machine.run_once(rng)
        histogram[state] = histogram.get(state, 0) + 1
    return histogram
